//! Stream sinks: print, collect, count.

use std::fmt::Display;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot_shim::Mutex;
use raftlib::prelude::*;

/// `parking_lot` is not a dependency of this crate; the tiny shim keeps the
/// lock choice local (std `Mutex` is fine for sink-side aggregation).
mod parking_lot_shim {
    pub use std::sync::Mutex;
}

/// The paper's `print` kernel (Figure 3): writes each item and a separator
/// to a writer (stdout by default).
pub struct Print<T: Display + Send + Clone + 'static> {
    sep: char,
    writer: Box<dyn Write + Send>,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Display + Send + Clone + 'static> Print<T> {
    /// Print to stdout with `sep` after each item (the paper's
    /// `print< std::int64_t, '\n' >`).
    pub fn new(sep: char) -> Self {
        Print {
            sep,
            writer: Box::new(std::io::stdout()),
            _marker: std::marker::PhantomData,
        }
    }

    /// Print into any writer (tests, files).
    pub fn to_writer(sep: char, writer: impl Write + Send + 'static) -> Self {
        Print {
            sep,
            writer: Box::new(writer),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Display + Send + Clone + 'static> Kernel for Print<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<T>("in")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<T>("in");
        match input.pop() {
            Ok(v) => {
                drop(input);
                let _ = write!(self.writer, "{v}{}", self.sep);
                KStatus::Proceed
            }
            Err(_) => {
                let _ = self.writer.flush();
                KStatus::Stop
            }
        }
    }

    fn name(&self) -> String {
        "print".to_string()
    }
}

/// Collects the stream into a `Vec` the caller holds a handle to.
pub struct Collect<T: Send + Clone + 'static> {
    out: Arc<Mutex<Vec<T>>>,
}

impl<T: Send + Clone + 'static> Collect<T> {
    /// Create the kernel plus the handle from which the result is read
    /// after `exe()` returns.
    pub fn new() -> (Self, Arc<Mutex<Vec<T>>>) {
        let out = Arc::new(Mutex::new(Vec::new()));
        (Collect { out: out.clone() }, out)
    }
}

impl<T: Send + Clone + 'static> Kernel for Collect<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<T>("in")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<T>("in");
        // Batch-drain to cut lock traffic.
        let mut local = Vec::new();
        match input.pop_range(256, &mut local) {
            Ok(_) => {
                drop(input);
                self.out.lock().unwrap().append(&mut local);
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "collect".to_string()
    }
}

/// Counts items (and nothing else) — the cheapest possible sink, used by
/// benchmarks so sink cost never pollutes a measurement.
pub struct Count<T: Send + Clone + 'static> {
    n: Arc<AtomicU64>,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Send + Clone + 'static> Count<T> {
    /// Create the kernel plus the live counter handle.
    pub fn new() -> (Self, Arc<AtomicU64>) {
        let n = Arc::new(AtomicU64::new(0));
        (
            Count {
                n: n.clone(),
                _marker: std::marker::PhantomData,
            },
            n,
        )
    }
}

impl<T: Send + Clone + 'static> Kernel for Count<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<T>("in")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<T>("in");
        let mut local = Vec::new();
        match input.pop_range(1024, &mut local) {
            Ok(got) => {
                self.n.fetch_add(got as u64, Ordering::Relaxed);
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "count".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::Generate;

    #[test]
    fn collect_preserves_order() {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..100u32));
        let (collect, handle) = Collect::<u32>::new();
        let sink = map.add(collect);
        map.link(src, "out", sink, "in").unwrap();
        map.exe().unwrap();
        let got = handle.lock().unwrap();
        assert_eq!(*got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn count_counts() {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..12345u32));
        let (count, n) = Count::<u32>::new();
        let sink = map.add(count);
        map.link(src, "out", sink, "in").unwrap();
        map.exe().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 12345);
    }

    #[test]
    fn print_writes_separated_items() {
        // Writer that pushes into a shared Vec<u8>.
        #[derive(Clone)]
        struct VecWriter(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for VecWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(1..4u8));
        let sink = map.add(Print::<u8>::to_writer('\n', VecWriter(buf.clone())));
        map.link(src, "out", sink, "in").unwrap();
        map.exe().unwrap();
        assert_eq!(&*buf.lock().unwrap(), b"1\n2\n3\n");
    }
}
