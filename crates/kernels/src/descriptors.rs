//! Pass-by-descriptor byte kernels over a shared-memory arena.
//!
//! The paper's zero-copy claim (§5) extends across process boundaries with
//! the [`raft_buffer::arena`] allocator: payload bytes live once in a
//! mapped segment, and what streams between kernels is a fixed-size
//! [`Descriptor`] (offset + length + generation, 16 bytes). A 4 KiB
//! payload crosses a ring as 16 bytes; the consumer reads the bytes in
//! place and recycles the slot. These kernels package that pattern for
//! graph use:
//!
//! * [`DescChunkSource`] — stages a shared corpus into arena slots and
//!   emits descriptors (the "read file, distribute" kernel with the file
//!   bytes in shared memory);
//! * [`DescCount`] — resolves each descriptor, counts occurrences of a
//!   byte with the runtime-dispatched SIMD scanner
//!   ([`raft_algos::simd::count_byte`]), frees the slot, and emits the
//!   per-chunk count;
//! * [`DescFree`] — terminal drain that just recycles descriptors (for
//!   graphs whose scan stage must not own the arena receiver).
//!
//! The Tx and Rx endpoints of one arena live in *different* kernels — the
//! descriptors themselves travel through an ordinary stream, whose
//! Release/Acquire edge is exactly the visibility contract the arena
//! requires. Within one process the same kernels work over a heap-backed
//! arena ([`raft_buffer::arena::ShmArena::pair`] falls back automatically),
//! so graphs are testable without `memfd`.

use raft_buffer::arena::{ArenaRx, ArenaTx, Descriptor};
use raftlib::prelude::*;

/// Source kernel: stages a shared corpus into arena slots, `chunk` bytes
/// at a time, and emits a [`Descriptor`] per chunk on port `"out"`.
///
/// Back-pressure is physical: when every arena slot is in flight the
/// source parks on the arena's recycle waker until the consumer frees one
/// (or stops, which ends the stream).
pub struct DescChunkSource {
    tx: ArenaTx,
    data: std::sync::Arc<Vec<u8>>,
    chunk: usize,
    pos: usize,
}

impl DescChunkSource {
    /// Stream `data` through `tx` as `chunk`-byte payloads (the last chunk
    /// may be short). `chunk` must fit the arena's slot size.
    pub fn new(tx: ArenaTx, data: std::sync::Arc<Vec<u8>>, chunk: usize) -> Self {
        assert!(chunk > 0 && chunk <= tx.slot_size(), "chunk exceeds slot");
        DescChunkSource {
            tx,
            data,
            chunk,
            pos: 0,
        }
    }
}

impl Kernel for DescChunkSource {
    fn ports(&self) -> PortSpec {
        PortSpec::new().output::<Descriptor>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        if ctx.stop_requested() || self.pos >= self.data.len() {
            return KStatus::Stop;
        }
        let end = (self.pos + self.chunk).min(self.data.len());
        let Some(mut w) = self.tx.alloc(end - self.pos) else {
            // All slots in flight — park on the arena's recycle waker
            // (bounded futex wait) instead of busy-spinning through the
            // scheduler; the consumer's free wakes us. A `false` return
            // means the consuming side is gone and no slot will ever come
            // back, so emitting further descriptors is pointless.
            if self.tx.wait_free_slot() {
                return KStatus::Proceed;
            }
            return KStatus::Stop;
        };
        w.bytes().copy_from_slice(&self.data[self.pos..end]);
        let d = w.publish();
        let mut out = ctx.output::<Descriptor>("out");
        match out.push(d) {
            Ok(()) => {
                self.pos = end;
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "desc-chunk-source".to_string()
    }
}

/// Transform kernel: for each [`Descriptor`] on `"in"`, resolve the
/// payload in the arena, count occurrences of `needle` with the SIMD
/// scanner, recycle the slot, and emit the count on `"out"`.
///
/// Stale or forged descriptors (a peer replaying a freed slot) are
/// rejected by the arena's generation check and counted as zero rather
/// than trusted.
pub struct DescCount {
    rx: ArenaRx,
    needle: u8,
}

impl DescCount {
    /// Count `needle` bytes in every payload arriving through `rx`.
    pub fn new(rx: ArenaRx, needle: u8) -> Self {
        DescCount { rx, needle }
    }
}

impl Kernel for DescCount {
    fn ports(&self) -> PortSpec {
        PortSpec::new()
            .input::<Descriptor>("in")
            .output::<u64>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<Descriptor>("in");
        let d = match input.pop() {
            Ok(d) => d,
            Err(_) => return KStatus::Stop,
        };
        let count = match self.rx.resolve(&d) {
            Ok(bytes) => raft_algos::simd::count_byte(bytes, self.needle) as u64,
            Err(_) => 0,
        };
        let _ = self.rx.free(d);
        let mut out = ctx.output::<u64>("out");
        match out.push(count) {
            Ok(()) => KStatus::Proceed,
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "desc-count".to_string()
    }
}

/// Terminal sink that recycles every descriptor it receives without
/// touching the payload. The `ArenaRx` is single-owner, so exactly one
/// kernel in a graph can resolve and free; `DescFree` is that kernel for
/// graphs whose earlier stages only route descriptors.
pub struct DescFree {
    rx: ArenaRx,
    freed: u64,
}

impl DescFree {
    /// Recycle descriptors through `rx`.
    pub fn new(rx: ArenaRx) -> Self {
        DescFree { rx, freed: 0 }
    }
}

impl Kernel for DescFree {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<Descriptor>("in")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<Descriptor>("in");
        match input.pop() {
            Ok(d) => {
                if self.rx.free(d).is_ok() {
                    self.freed += 1;
                }
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "desc-free".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::Collect;
    use raft_buffer::arena::ShmArena;

    #[test]
    fn corpus_counts_survive_the_descriptor_path() {
        // 64 KiB corpus, every 7th byte is the needle.
        let data: Vec<u8> = (0..65536u32)
            .map(|i| if i % 7 == 0 { b'x' } else { b'.' })
            .collect();
        let expected = data.iter().filter(|&&b| b == b'x').count() as u64;
        let data = std::sync::Arc::new(data);

        let (tx, rx) = ShmArena::pair(8, 4096);
        let mut map = RaftMap::new();
        let src = map.add(DescChunkSource::new(tx, data, 4096));
        let scan = map.add(DescCount::new(rx, b'x'));
        let (sink, got) = Collect::<u64>::new();
        let sink = map.add(sink);
        map.link(src, "out", scan, "in").unwrap();
        map.link(scan, "out", sink, "in").unwrap();
        let report = map.exe().unwrap();
        assert_eq!(got.lock().unwrap().iter().sum::<u64>(), expected);
        // 16 chunks of 4096 bytes crossed as 16-byte descriptors.
        assert_eq!(report.edge("desc-chunk-source").unwrap().stats.popped, 16);
    }

    #[test]
    fn desc_free_drains_without_reading() {
        let data = std::sync::Arc::new(vec![0u8; 4096 * 4]);
        let (tx, rx) = ShmArena::pair(4, 4096);
        let mut map = RaftMap::new();
        let src = map.add(DescChunkSource::new(tx, data, 4096));
        let sink = map.add(DescFree::new(rx));
        map.link(src, "out", sink, "in").unwrap();
        // 4 slots, 4 chunks: completion proves recycling works (otherwise
        // the source starves after the first lap with nothing freeing).
        let report = map.exe().unwrap();
        assert_eq!(report.total_items(), 4);
    }
}
