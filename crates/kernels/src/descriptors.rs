//! Pass-by-descriptor byte kernels over a shared-memory arena.
//!
//! The paper's zero-copy claim (§5) extends across process boundaries with
//! the [`raft_buffer::arena`] allocator: payload bytes live once in a
//! mapped segment, and what streams between kernels is a fixed-size
//! [`Descriptor`] (offset + length + generation, 16 bytes). A 4 KiB
//! payload crosses a ring as 16 bytes; the consumer reads the bytes in
//! place and recycles the slot. These kernels package that pattern for
//! graph use:
//!
//! * [`DescChunkSource`] — stages a shared corpus into arena slots and
//!   emits descriptors (the "read file, distribute" kernel with the file
//!   bytes in shared memory);
//! * [`DescCount`] — resolves each descriptor, counts occurrences of a
//!   byte with the runtime-dispatched SIMD scanner
//!   ([`raft_algos::simd::count_byte`]), frees the slot, and emits the
//!   per-chunk count;
//! * [`DescFree`] — terminal drain that just recycles descriptors (for
//!   graphs whose scan stage must not own the arena receiver);
//! * [`DescShip`] — journaled cross-process shipper: encodes elements into
//!   arena slots and sends descriptors through a
//!   [`raft_buffer::arena::DescriptorSender`], surviving worker-process
//!   respawns under `raftlib::proc` supervision.
//!
//! The Tx and Rx endpoints of one arena live in *different* kernels — the
//! descriptors themselves travel through an ordinary stream, whose
//! Release/Acquire edge is exactly the visibility contract the arena
//! requires. Within one process the same kernels work over a heap-backed
//! arena ([`raft_buffer::arena::ShmArena::pair`] falls back automatically),
//! so graphs are testable without `memfd`.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use raft_buffer::arena::{ArenaRx, ArenaTx, Descriptor, DescriptorSender, SendOutcome};
use raftlib::prelude::*;

/// Source kernel: stages a shared corpus into arena slots, `chunk` bytes
/// at a time, and emits a [`Descriptor`] per chunk on port `"out"`.
///
/// Back-pressure is physical: when every arena slot is in flight the
/// source parks on the arena's recycle waker until the consumer frees one
/// (or stops, which ends the stream).
pub struct DescChunkSource {
    tx: ArenaTx,
    data: std::sync::Arc<Vec<u8>>,
    chunk: usize,
    pos: usize,
}

impl DescChunkSource {
    /// Stream `data` through `tx` as `chunk`-byte payloads (the last chunk
    /// may be short). `chunk` must fit the arena's slot size.
    pub fn new(tx: ArenaTx, data: std::sync::Arc<Vec<u8>>, chunk: usize) -> Self {
        assert!(chunk > 0 && chunk <= tx.slot_size(), "chunk exceeds slot");
        DescChunkSource {
            tx,
            data,
            chunk,
            pos: 0,
        }
    }
}

impl Kernel for DescChunkSource {
    fn ports(&self) -> PortSpec {
        PortSpec::new().output::<Descriptor>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        if ctx.stop_requested() || self.pos >= self.data.len() {
            return KStatus::Stop;
        }
        let end = (self.pos + self.chunk).min(self.data.len());
        let Some(mut w) = self.tx.alloc(end - self.pos) else {
            // All slots in flight — park on the arena's recycle waker
            // (bounded futex wait) instead of busy-spinning through the
            // scheduler; the consumer's free wakes us. A `false` return
            // means the consuming side is gone and no slot will ever come
            // back, so emitting further descriptors is pointless.
            if self.tx.wait_free_slot() {
                return KStatus::Proceed;
            }
            return KStatus::Stop;
        };
        w.bytes().copy_from_slice(&self.data[self.pos..end]);
        let d = w.publish();
        let mut out = ctx.output::<Descriptor>("out");
        match out.push(d) {
            Ok(()) => {
                self.pos = end;
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "desc-chunk-source".to_string()
    }
}

/// Transform kernel: for each [`Descriptor`] on `"in"`, resolve the
/// payload in the arena, count occurrences of `needle` with the SIMD
/// scanner, recycle the slot, and emit the count on `"out"`.
///
/// Stale or forged descriptors (a peer replaying a freed slot) are
/// rejected by the arena's generation check and counted as zero rather
/// than trusted.
pub struct DescCount {
    rx: ArenaRx,
    needle: u8,
}

impl DescCount {
    /// Count `needle` bytes in every payload arriving through `rx`.
    pub fn new(rx: ArenaRx, needle: u8) -> Self {
        DescCount { rx, needle }
    }
}

impl Kernel for DescCount {
    fn ports(&self) -> PortSpec {
        PortSpec::new()
            .input::<Descriptor>("in")
            .output::<u64>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<Descriptor>("in");
        let d = match input.pop() {
            Ok(d) => d,
            Err(_) => return KStatus::Stop,
        };
        let count = match self.rx.resolve(&d) {
            Ok(bytes) => raft_algos::simd::count_byte(bytes, self.needle) as u64,
            Err(_) => 0,
        };
        let _ = self.rx.free(d);
        let mut out = ctx.output::<u64>("out");
        match out.push(count) {
            Ok(()) => KStatus::Proceed,
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "desc-count".to_string()
    }
}

/// Sink kernel that ships each input element to a **supervised worker
/// process**: encode it to bytes, stage the bytes in the arena, and
/// journal-and-push the descriptor through the [`DescriptorSender`] — the
/// producer-side half of cross-process exactly-once delivery
/// (`raftlib::proc`).
///
/// The sender is shared with the supervisor's recovery path behind a
/// mutex, so the lock is taken once per send *attempt* and never held
/// while yielding back to the scheduler — a worker respawn can always
/// grab it between attempts. A [`SendOutcome::Busy`] attempt (arena full,
/// or a recovery window open while the worker respawns) is retried on the
/// next `run`; the `halt` flag (typically
/// `ProcSupervisor::terminal_flag`) breaks the retry loop once the worker
/// is terminally gone and the `Busy` can never clear.
pub struct DescShip<T, F> {
    sender: Arc<Mutex<DescriptorSender>>,
    encode: F,
    halt: Option<Arc<AtomicBool>>,
    buf: Vec<u8>,
    pending: bool,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T, F> DescShip<T, F>
where
    T: Send + Clone + 'static,
    F: Fn(&T, &mut Vec<u8>) + Send + 'static,
{
    /// Ship every element arriving on `"in"`, encoded by `encode`, through
    /// `sender`. `halt` (usually the supervisor's terminal flag) stops the
    /// kernel when the consuming worker is gone for good.
    pub fn new(
        sender: Arc<Mutex<DescriptorSender>>,
        encode: F,
        halt: Option<Arc<AtomicBool>>,
    ) -> Self {
        DescShip {
            sender,
            encode,
            halt,
            buf: Vec::new(),
            pending: false,
            _marker: std::marker::PhantomData,
        }
    }

    fn halted(&self) -> bool {
        self.halt.as_ref().is_some_and(|h| h.load(Relaxed))
    }
}

impl<T, F> Kernel for DescShip<T, F>
where
    T: Send + Clone + 'static,
    F: Fn(&T, &mut Vec<u8>) + Send + 'static,
{
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<T>("in")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        if !self.pending {
            let mut input = ctx.input::<T>("in");
            let v = match input.pop() {
                Ok(v) => v,
                Err(_) => return KStatus::Stop,
            };
            self.buf.clear();
            (self.encode)(&v, &mut self.buf);
            self.pending = true;
        }
        // One attempt per lock acquisition.
        let outcome = self
            .sender
            .lock()
            .expect("sender lock")
            .send_bytes(&self.buf);
        match outcome {
            SendOutcome::Sent => {
                self.pending = false;
                KStatus::Proceed
            }
            SendOutcome::Busy => {
                if self.halted() || ctx.stop_requested() {
                    return KStatus::Stop;
                }
                // Arena full: park on the recycle waker (bounded) unless a
                // recovery window is open — then the slot drought clears
                // when the respawned worker starts freeing, so just come
                // back. The wait's `false` ("consumer gone") is advisory
                // here: during a restart the closed flag is transiently
                // set, so the halt flag above is the real stop signal.
                {
                    let mut s = self.sender.lock().expect("sender lock");
                    if !s.recovering() {
                        let _ = s.wait_arena_slot();
                    }
                }
                std::thread::yield_now();
                KStatus::Proceed
            }
        }
    }

    fn name(&self) -> String {
        "desc-ship".to_string()
    }
}

/// Terminal sink that recycles every descriptor it receives without
/// touching the payload. The `ArenaRx` is single-owner, so exactly one
/// kernel in a graph can resolve and free; `DescFree` is that kernel for
/// graphs whose earlier stages only route descriptors.
pub struct DescFree {
    rx: ArenaRx,
    freed: u64,
}

impl DescFree {
    /// Recycle descriptors through `rx`.
    pub fn new(rx: ArenaRx) -> Self {
        DescFree { rx, freed: 0 }
    }
}

impl Kernel for DescFree {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<Descriptor>("in")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<Descriptor>("in");
        match input.pop() {
            Ok(d) => {
                if self.rx.free(d).is_ok() {
                    self.freed += 1;
                }
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "desc-free".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::Collect;
    use raft_buffer::arena::ShmArena;

    #[test]
    fn corpus_counts_survive_the_descriptor_path() {
        // 64 KiB corpus, every 7th byte is the needle.
        let data: Vec<u8> = (0..65536u32)
            .map(|i| if i % 7 == 0 { b'x' } else { b'.' })
            .collect();
        let expected = data.iter().filter(|&&b| b == b'x').count() as u64;
        let data = std::sync::Arc::new(data);

        let (tx, rx) = ShmArena::pair(8, 4096);
        let mut map = RaftMap::new();
        let src = map.add(DescChunkSource::new(tx, data, 4096));
        let scan = map.add(DescCount::new(rx, b'x'));
        let (sink, got) = Collect::<u64>::new();
        let sink = map.add(sink);
        map.link(src, "out", scan, "in").unwrap();
        map.link(scan, "out", sink, "in").unwrap();
        let report = map.exe().unwrap();
        assert_eq!(got.lock().unwrap().iter().sum::<u64>(), expected);
        // 16 chunks of 4096 bytes crossed as 16-byte descriptors.
        assert_eq!(report.edge("desc-chunk-source").unwrap().stats.popped, 16);
    }

    #[test]
    fn desc_ship_delivers_encoded_payloads_in_order() {
        use raft_buffer::shm::ShmRing;
        const N: u64 = 64;
        let (arena_tx, mut arena_rx) = ShmArena::pair(8, 32);
        let (ring_p, mut ring_c) = ShmRing::<Descriptor>::pair(8);
        let sender = Arc::new(Mutex::new(DescriptorSender::new(arena_tx, ring_p, 32)));

        // "Worker": pops descriptors, checks payload order, commits, frees.
        // Count-based termination — the sender side stays open until the
        // map is dropped, so EoS is not the signal here.
        let commit_seg = sender.lock().unwrap().ring_segment_shared();
        let worker = std::thread::spawn(move || {
            let mut seen = 0u64;
            while seen < N {
                let Ok(d) = ring_c.pop() else { break };
                let bytes = arena_rx.resolve(&d).unwrap().to_vec();
                assert_eq!(bytes, format!("v:{seen}").into_bytes());
                commit_seg.commit_word().store(seen + 1, Relaxed);
                arena_rx.free(d).unwrap();
                seen += 1;
            }
            seen
        });

        let mut map = RaftMap::new();
        let mut i = 0u64;
        let src = map.add(raftlib::lambda::lambda_source(move || {
            i += 1;
            (i <= N).then_some(i - 1)
        }));
        let ship = map.add(DescShip::new(
            sender.clone(),
            |v: &u64, buf: &mut Vec<u8>| buf.extend_from_slice(format!("v:{v}").as_bytes()),
            None,
        ));
        map.link(src, "0", ship, "in").unwrap();
        map.exe().unwrap();
        assert_eq!(worker.join().unwrap(), N);
        let mut s = sender.lock().unwrap();
        s.ack_committed();
        assert_eq!(s.pending(), 0, "worker committed everything");
    }

    #[test]
    fn desc_free_drains_without_reading() {
        let data = std::sync::Arc::new(vec![0u8; 4096 * 4]);
        let (tx, rx) = ShmArena::pair(4, 4096);
        let mut map = RaftMap::new();
        let src = map.add(DescChunkSource::new(tx, data, 4096));
        let sink = map.add(DescFree::new(rx));
        map.link(src, "out", sink, "in").unwrap();
        // 4 slots, 4 chunks: completion proves recycling works (otherwise
        // the source starves after the first lap with nothing freeing).
        let report = map.exe().unwrap();
        assert_eq!(report.total_items(), 4);
    }
}
