//! Per-item transform kernels and the reduce-to-a-value kernel.

use std::sync::{Arc, Mutex};

use raftlib::prelude::*;

/// Item-to-item transform kernel; replicable when the function is `Clone`
/// (state-free transforms are the paper's prime candidates for automatic
/// replication).
pub struct Map<A, B, F> {
    f: F,
    _marker: std::marker::PhantomData<fn(A) -> B>,
}

impl<A, B, F> Map<A, B, F>
where
    A: Send + Clone + 'static,
    B: Send + Clone + 'static,
    F: FnMut(A) -> B + Clone + Send + 'static,
{
    /// Build from the transform function.
    pub fn new(f: F) -> Self {
        Map {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<A, B, F> Kernel for Map<A, B, F>
where
    A: Send + Clone + 'static,
    B: Send + Clone + 'static,
    F: FnMut(A) -> B + Clone + Send + 'static,
{
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<A>("in").output::<B>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<A>("in");
        match input.pop() {
            Ok(v) => {
                drop(input);
                let b = (self.f)(v);
                let mut out = ctx.output::<B>("out");
                if out.push(b).is_err() {
                    return KStatus::Stop;
                }
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "map".to_string()
    }

    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        Some(Box::new(Map {
            f: self.f.clone(),
            _marker: std::marker::PhantomData,
        }))
    }

    // The constructor's contract is a pure per-item transform (a closure
    // smuggling cross-item state in captures gets what it asked for), so
    // the kernel classifies stateless and joins fused chains.
    fn is_stateless(&self) -> bool {
        true
    }

    fn is_fusable(&self) -> bool {
        true
    }

    fn batch_stage(&mut self) -> Option<Box<dyn raftlib::ErasedBatchStage>> {
        Some(raftlib::per_element("map", self.f.clone()))
    }
}

/// Batch transform over borrowed input: maps whole slices of the input
/// ring at a time instead of popping item by item.
///
/// Where [`Map`] pays one queue synchronization per element, `SliceMap`
/// lends up to `batch` queued elements to the transform zero-copy
/// ([`InPort::pop_slice`]), collects the results, and publishes them with
/// one bulk push — the queue protocol is amortized over the whole batch on
/// both sides. The transform takes `&A`, which is what makes the
/// borrow-from-the-ring view possible; use it when the transform doesn't
/// need ownership (scans, lookups, arithmetic over `Copy` data).
///
/// Replicable when the function is `Clone`, like [`Map`].
///
/// [`InPort::pop_slice`]: raftlib::InPort::pop_slice
pub struct SliceMap<A, B, F> {
    f: F,
    batch: usize,
    scratch: Vec<B>,
    _marker: std::marker::PhantomData<fn(&A) -> B>,
}

impl<A, B, F> SliceMap<A, B, F>
where
    A: Send + Clone + 'static,
    B: Send + Clone + 'static,
    F: FnMut(&A) -> B + Clone + Send + 'static,
{
    /// Build from the by-reference transform function.
    pub fn new(f: F) -> Self {
        SliceMap {
            f,
            batch: 256,
            scratch: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Set the maximum elements transformed per `run()` quantum.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }
}

impl<A, B, F> Kernel for SliceMap<A, B, F>
where
    A: Send + Clone + 'static,
    B: Send + Clone + 'static,
    F: FnMut(&A) -> B + Clone + Send + 'static,
{
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<A>("in").output::<B>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<A>("in");
        let f = &mut self.f;
        let scratch = &mut self.scratch;
        // One fence entry lends the whole front of the input ring to the
        // transform; the elements are consumed when the view returns.
        let popped = input.pop_slice(self.batch, |view| {
            scratch.extend(view.iter().map(&mut *f));
        });
        drop(input);
        if popped.is_err() {
            return KStatus::Stop;
        }
        let mut out = ctx.output::<B>("out");
        if out.push_batch(&mut self.scratch).is_err() {
            return KStatus::Stop;
        }
        KStatus::Proceed
    }

    fn name(&self) -> String {
        "slice_map".to_string()
    }

    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        Some(Box::new(SliceMap {
            f: self.f.clone(),
            batch: self.batch,
            scratch: Vec::new(),
            _marker: std::marker::PhantomData,
        }))
    }

    // Pure by contract, like [`Map`]; the scratch buffer is reused
    // allocation, not cross-item state.
    fn is_stateless(&self) -> bool {
        true
    }

    fn is_fusable(&self) -> bool {
        true
    }

    fn batch_stage(&mut self) -> Option<Box<dyn raftlib::ErasedBatchStage>> {
        // In a fused chain the batch is owned, so the by-reference
        // transform runs over each element in place.
        let mut f = self.f.clone();
        Some(raftlib::per_element("slice_map", move |a: A| f(&a)))
    }
}

/// Filtering transform: items mapped to `None` are dropped — the
/// "heuristically skipping" data-dependent behaviour the paper calls out in
/// text search (§3).
pub struct FilterMap<A, B, F> {
    f: F,
    _marker: std::marker::PhantomData<fn(A) -> B>,
}

impl<A, B, F> FilterMap<A, B, F>
where
    A: Send + Clone + 'static,
    B: Send + Clone + 'static,
    F: FnMut(A) -> Option<B> + Clone + Send + 'static,
{
    /// Build from the filtering function.
    pub fn new(f: F) -> Self {
        FilterMap {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<A, B, F> Kernel for FilterMap<A, B, F>
where
    A: Send + Clone + 'static,
    B: Send + Clone + 'static,
    F: FnMut(A) -> Option<B> + Clone + Send + 'static,
{
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<A>("in").output::<B>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<A>("in");
        match input.pop() {
            Ok(v) => {
                drop(input);
                if let Some(b) = (self.f)(v) {
                    let mut out = ctx.output::<B>("out");
                    if out.push(b).is_err() {
                        return KStatus::Stop;
                    }
                }
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "filter_map".to_string()
    }

    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        Some(Box::new(FilterMap {
            f: self.f.clone(),
            _marker: std::marker::PhantomData,
        }))
    }

    // Pure by contract, like [`Map`]; dropping items is a per-item
    // decision, so order and content are preserved under fusion.
    fn is_stateless(&self) -> bool {
        true
    }

    fn is_fusable(&self) -> bool {
        true
    }

    fn batch_stage(&mut self) -> Option<Box<dyn raftlib::ErasedBatchStage>> {
        Some(raftlib::per_element_filter("filter_map", self.f.clone()))
    }
}

/// Handle holding the final value of a [`Fold`] after `exe()`.
pub type FoldHandle<B> = Arc<Mutex<B>>;

/// Reduce a stream to a single value — the paper's Figure 6 `reduce< int,
/// func >( val )`: "val now has the result".
pub struct Fold<A, B, F> {
    f: F,
    acc: FoldHandle<B>,
    _marker: std::marker::PhantomData<fn(A)>,
}

impl<A, B, F> Fold<A, B, F>
where
    A: Send + Clone + 'static,
    B: Send + Clone + 'static,
    F: FnMut(&mut B, A) + Send + 'static,
{
    /// Build from the initial value and fold function; returns the kernel
    /// and the handle the final value is read from.
    pub fn new(init: B, f: F) -> (Self, FoldHandle<B>) {
        let acc = Arc::new(Mutex::new(init));
        (
            Fold {
                f,
                acc: acc.clone(),
                _marker: std::marker::PhantomData,
            },
            acc,
        )
    }
}

impl<A, B, F> Kernel for Fold<A, B, F>
where
    A: Send + Clone + 'static,
    B: Send + Clone + 'static,
    F: FnMut(&mut B, A) + Send + 'static,
{
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<A>("in")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<A>("in");
        let mut local = Vec::new();
        match input.pop_range(256, &mut local) {
            Ok(_) => {
                drop(input);
                let mut acc = self.acc.lock().unwrap();
                for v in local {
                    (self.f)(&mut acc, v);
                }
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "fold".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::Generate;

    #[test]
    fn map_transforms_every_item() {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..50u32));
        let dbl = map.add(Map::new(|x: u32| x as u64 * 2));
        let (we, handle) = crate::containers::write_each::<u64>();
        let dst = map.add(we);
        map.link(src, "out", dbl, "in").unwrap();
        map.link(dbl, "out", dst, "in").unwrap();
        map.exe().unwrap();
        assert_eq!(
            *handle.lock().unwrap(),
            (0..50).map(|x| x * 2).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn filter_map_drops_items() {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..100u32));
        let evens = map.add(FilterMap::new(|x: u32| x.is_multiple_of(2).then_some(x)));
        let (we, handle) = crate::containers::write_each::<u32>();
        let dst = map.add(we);
        map.link(src, "out", evens, "in").unwrap();
        map.link(evens, "out", dst, "in").unwrap();
        map.exe().unwrap();
        assert_eq!(handle.lock().unwrap().len(), 50);
    }

    /// The paper's Figure 6: array -> stream -> reduce to a single value.
    #[test]
    fn fold_reduces_to_value() {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(1..=100u64));
        let (fold, result) = Fold::new(0u64, |acc: &mut u64, v: u64| *acc += v);
        let dst = map.add(fold);
        map.link(src, "out", dst, "in").unwrap();
        map.exe().unwrap();
        assert_eq!(*result.lock().unwrap(), 5050);
    }

    #[test]
    fn map_is_replicable() {
        let k = Map::new(|x: u8| x);
        assert!(k.clone_replica().is_some());
    }

    #[test]
    fn slice_map_transforms_every_item_in_order() {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..5000u32));
        let dbl = map.add(SliceMap::new(|x: &u32| *x as u64 * 2).with_batch(64));
        let (we, handle) = crate::containers::write_each::<u64>();
        let dst = map.add(we);
        map.link(src, "out", dbl, "in").unwrap();
        map.link(dbl, "out", dst, "in").unwrap();
        map.exe().unwrap();
        assert_eq!(
            *handle.lock().unwrap(),
            (0..5000).map(|x| x * 2).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn slice_map_is_replicable() {
        let k = SliceMap::new(|x: &u8| *x);
        assert!(k.clone_replica().is_some());
    }
}
