#![warn(missing_docs)]

//! # raft-kernels
//!
//! The standard kernel library for `raftlib`, reproducing the stock kernels
//! the RaftLib paper uses in its examples and benchmark (§4.2, Figures 3,
//! 5, 6, 9):
//!
//! * [`generate::Generate`] — bounded sources from iterators or generator
//!   closures (the paper's random-number `generate` kernel);
//! * [`sinks::Print`] / [`sinks::Collect`] / [`sinks::Count`] — stream
//!   sinks, including the paper's `print` kernel;
//! * [`containers::ReadEach`] / [`containers::WriteEach`] — C++
//!   standard-library container integration (Figure 5): feed a stream from
//!   any iterator, collect a stream back into a `Vec` the caller keeps a
//!   handle to;
//! * [`containers::ForEach`] — the zero-copy array source of Figure 6: the
//!   array is shared (`Arc`), and what streams are `(range, Arc)` slices —
//!   no element copying;
//! * [`transforms::Map`] / [`transforms::FilterMap`] / [`transforms::Fold`]
//!   — per-item transforms and the `reduce`-to-a-value kernel of Figure 6;
//!   [`transforms::SliceMap`] — the batch variant, transforming zero-copy
//!   slices borrowed straight from the input ring;
//! * [`bytes::ByteChunkSource`] / [`bytes::ByteChunk`] — the "read file &
//!   distribute" kernel of the text-search topology (Figure 8): shares one
//!   in-memory corpus and streams zero-copy chunk descriptors;
//! * [`descriptors::DescChunkSource`] / [`descriptors::DescCount`] — the
//!   cross-process variant: payload bytes live in a shared-memory arena
//!   and streams carry 16-byte [`raft_buffer::Descriptor`]s, so the same
//!   zero-copy pattern survives a process boundary;
//! * [`routing::Tee`] / [`routing::Zip`] / [`routing::Take`] — stream
//!   duplication, element-wise joining, truncation;
//! * [`windows::SlidingWindow`] — the §3 sliding-window access pattern,
//!   built on `peek_range`; [`windows::Batch`] / [`windows::Flatten`] —
//!   grouping and ungrouping;
//! * [`sequence::Stamp`] / [`sequence::Resequence`] — §4.1's third stream
//!   discipline: process out of order (replicated), re-order downstream.

#[cfg(feature = "raft_failpoints")]
pub mod chaos;

pub mod bytes;
pub mod containers;
pub mod descriptors;
pub mod generate;
pub mod routing;
pub mod sequence;
pub mod sinks;
pub mod transforms;
pub mod windows;

#[cfg(feature = "raft_failpoints")]
pub use chaos::{ChaosConfig, ChaosKernel};

pub use bytes::{ByteChunk, ByteChunkSource};
pub use containers::{
    for_each, read_each, write_each, CollectHandle, ForEach, ReadEach, WriteEach,
};
pub use descriptors::{DescChunkSource, DescCount, DescFree, DescShip};
pub use generate::Generate;
pub use routing::{Take, Tee, Zip};
pub use sequence::{map_seq, Resequence, Seq, Stamp};
pub use sinks::{Collect, Count, Print};
pub use transforms::{FilterMap, Fold, FoldHandle, Map, SliceMap};
pub use windows::{Batch, Flatten, SlidingWindow};
