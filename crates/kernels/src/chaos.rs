//! `ChaosKernel` — deterministic fault injection at the kernel boundary.
//!
//! Part of the `raft_failpoints` harness: wrap any kernel and the wrapper
//! injects panics and stalls around the inner `run()` on a schedule drawn
//! from a seeded xorshift stream — the same fault sequence on every run
//! with the same [`ChaosConfig`]. This is how the supervision test suite
//! exercises every [`SupervisorPolicy`](raftlib::SupervisorPolicy) without
//! writing a bespoke panicking kernel per case.
//!
//! `ChaosKernel` presents the inner kernel's ports unchanged, so it drops
//! into any topology; `clone_replica()` produces a *non-faulting* copy of
//! the inner kernel's replica — modelling the common real-world shape
//! where a restarted instance does not re-hit the original fault.

use raftlib::prelude::*;

/// Fault schedule for one [`ChaosKernel`].
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the per-wrapper xorshift draw stream.
    pub seed: u64,
    /// Panic before the inner `run()` on average once every `panic_1_in`
    /// invocations (`0` = never).
    pub panic_1_in: u32,
    /// Stall (sleep) before the inner `run()` on average once every
    /// `stall_1_in` invocations (`0` = never).
    pub stall_1_in: u32,
    /// Stall duration.
    pub stall: std::time::Duration,
    /// Total fault budget across panics and stalls (`0` = unlimited). A
    /// bounded budget keeps restart-policy tests terminating.
    pub max_faults: u32,
}

impl ChaosConfig {
    /// Panic on average once every `one_in` invocations, at most `budget`
    /// times, drawn from `seed`.
    pub fn panics(seed: u64, one_in: u32, budget: u32) -> Self {
        ChaosConfig {
            seed,
            panic_1_in: one_in,
            stall_1_in: 0,
            stall: std::time::Duration::ZERO,
            max_faults: budget,
        }
    }

    /// Stall `stall` long on average once every `one_in` invocations, at
    /// most `budget` times, drawn from `seed`.
    pub fn stalls(seed: u64, one_in: u32, stall: std::time::Duration, budget: u32) -> Self {
        ChaosConfig {
            seed,
            panic_1_in: 0,
            stall_1_in: one_in,
            stall,
            max_faults: budget,
        }
    }
}

/// Wraps a kernel and injects faults around its `run()`.
pub struct ChaosKernel<K: Kernel> {
    inner: K,
    cfg: ChaosConfig,
    rng: u64,
    faults: u32,
}

impl<K: Kernel> ChaosKernel<K> {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: K, cfg: ChaosConfig) -> Self {
        ChaosKernel {
            inner,
            rng: cfg.seed.max(1),
            cfg,
            faults: 0,
        }
    }

    fn draw(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn budget_left(&self) -> bool {
        self.cfg.max_faults == 0 || self.faults < self.cfg.max_faults
    }
}

impl<K: Kernel> Kernel for ChaosKernel<K> {
    fn ports(&self) -> PortSpec {
        self.inner.ports()
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        if self.cfg.panic_1_in != 0 && self.budget_left() {
            let fire = self.draw() % self.cfg.panic_1_in as u64 == 0;
            if fire {
                self.faults += 1;
                panic!("ChaosKernel injected panic (seed {})", self.cfg.seed);
            }
        }
        if self.cfg.stall_1_in != 0 && self.budget_left() {
            let fire = self.draw() % self.cfg.stall_1_in as u64 == 0;
            if fire {
                self.faults += 1;
                std::thread::sleep(self.cfg.stall);
            }
        }
        self.inner.run(ctx)
    }

    fn name(&self) -> String {
        format!("chaos[{}]", self.inner.name())
    }

    /// A restarted replica does not re-inject faults: restart policies see
    /// a clean instance, mirroring transient-fault recovery.
    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        self.inner.clone_replica()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    struct Nop;
    impl Kernel for Nop {
        fn ports(&self) -> PortSpec {
            PortSpec::new()
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Proceed
        }
    }

    #[test]
    fn panic_schedule_is_deterministic() {
        let fire_pattern = |seed| {
            let mut k = ChaosKernel::new(Nop, ChaosConfig::panics(seed, 3, 0));
            let ctx = Context::for_test(vec![], vec![]);
            (0..32)
                .map(|_| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| k.run(&ctx))).is_err()
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(fire_pattern(9), fire_pattern(9));
        assert!(fire_pattern(9).iter().any(|&p| p));
        assert_ne!(fire_pattern(9), fire_pattern(10));
    }

    #[test]
    fn budget_limits_faults() {
        let mut k = ChaosKernel::new(Nop, ChaosConfig::panics(1, 1, 2));
        let ctx = Context::for_test(vec![], vec![]);
        let fired = (0..10)
            .filter(|_| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| k.run(&ctx))).is_err()
            })
            .count();
        assert_eq!(fired, 2);
    }

    #[test]
    fn stall_config_sleeps() {
        let mut k = ChaosKernel::new(Nop, ChaosConfig::stalls(5, 1, Duration::from_millis(20), 1));
        let ctx = Context::for_test(vec![], vec![]);
        let t0 = std::time::Instant::now();
        let _ = k.run(&ctx);
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }
}
