//! Zero-copy byte-chunk streaming — the "Read File, Distribute" kernel of
//! the paper's text-search topology (Figure 8).
//!
//! §5: "the file read exists as an independent kernel only momentarily as a
//! notional data source since the run-time utilizes zero copy, and the file
//! is directly read into the in-bound queues of each match kernel." Here
//! the corpus lives once in an `Arc<Vec<u8>>`; what streams are
//! [`ByteChunk`] descriptors (offsets into the shared buffer), so match
//! kernels scan the original bytes in place.
//!
//! Chunks carry the overlap/ownership metadata of
//! `raft_algos::split_chunks`-style scanning: `min_end` tells the scanner
//! which matches this chunk owns (a match is reported by the chunk where it
//! *ends*), so parallel replicas never double-count or miss boundary
//! matches.
//!
//! [`ByteChunkSource`] itself is stateful (it carries the read cursor) and
//! so never fuses; the fusable byte path is downstream — scan stages built
//! from [`SliceMap`](crate::transforms::SliceMap) /
//! [`Map`](crate::transforms::Map) over `ByteChunk` descriptors are
//! stateless per-chunk transforms, so the fusion pass collapses a
//! `scan -> transform -> …` tail into one batch-executed kernel while the
//! corpus bytes are still read zero-copy through the shared `Arc`.

use std::sync::Arc;

use raftlib::prelude::*;

/// A zero-copy view of part of a shared byte buffer.
#[derive(Debug, Clone)]
pub struct ByteChunk {
    data: Arc<Vec<u8>>,
    /// Chunk start in the shared buffer (includes the overlap prefix).
    pub start: usize,
    /// Chunk end (exclusive).
    pub end: usize,
    /// Report only matches whose chunk-relative end offset is `> min_end`.
    pub min_end: usize,
}

impl Default for ByteChunk {
    fn default() -> Self {
        ByteChunk {
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
            min_end: 0,
        }
    }
}

impl ByteChunk {
    /// The chunk's bytes (no copy).
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Offset of this chunk's first byte in the whole stream.
    pub fn base(&self) -> u64 {
        self.start as u64
    }

    /// Chunk length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Streams a shared corpus as fixed-size chunks with `overlap` bytes of
/// look-back (Figure 8's first kernel).
pub struct ByteChunkSource {
    data: Arc<Vec<u8>>,
    chunk_size: usize,
    overlap: usize,
    pos: usize,
    /// Chunk descriptors emitted per `run()` quantum; the whole batch is
    /// written into reserved ring slots and published at once.
    batch: usize,
}

impl ByteChunkSource {
    /// Chunk `data` into `chunk_size`-byte logical pieces with `overlap`
    /// bytes of look-back (use `matcher.overlap()`).
    pub fn new(data: Arc<Vec<u8>>, chunk_size: usize, overlap: usize) -> Self {
        ByteChunkSource {
            data,
            chunk_size: chunk_size.max(1),
            overlap,
            pos: 0,
            batch: 16,
        }
    }

    /// Set the number of chunk descriptors emitted per scheduling quantum.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }
}

impl Kernel for ByteChunkSource {
    fn ports(&self) -> PortSpec {
        PortSpec::new().output::<ByteChunk>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        if self.pos >= self.data.len() || ctx.stop_requested() {
            return KStatus::Stop;
        }
        // Reserve slots for one quantum of chunk descriptors and build them
        // in place; downstream scanners read the corpus bytes zero-copy and
        // the descriptors themselves are published batch-at-a-time.
        let remaining = (self.data.len() - self.pos).div_ceil(self.chunk_size);
        let n = remaining.min(self.batch);
        let mut out = ctx.output::<ByteChunk>("out");
        let mut slice = match out.reserve(n) {
            Ok(s) => s,
            Err(_) => return KStatus::Stop,
        };
        // reserve clamps to the ring's maximum capacity; emit only as many
        // descriptors as slots were granted.
        let n = n.min(slice.remaining());
        for _ in 0..n {
            let logical_end = (self.pos + self.chunk_size).min(self.data.len());
            let start = self.pos.saturating_sub(self.overlap);
            slice.push(ByteChunk {
                data: self.data.clone(),
                start,
                end: logical_end,
                min_end: self.pos - start,
            });
            self.pos = logical_end;
        }
        drop(slice);
        if self.pos >= self.data.len() {
            return KStatus::Stop;
        }
        KStatus::Proceed
    }

    fn name(&self) -> String {
        "filereader".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containers::write_each;

    #[test]
    fn chunks_tile_the_buffer() {
        let data = Arc::new((0..1000u32).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
        let mut map = RaftMap::new();
        let src = map.add(ByteChunkSource::new(data.clone(), 64, 7));
        let (we, handle) = write_each::<ByteChunk>();
        let dst = map.add(we);
        map.link(src, "out", dst, "in").unwrap();
        map.exe().unwrap();
        let chunks = handle.lock().unwrap();
        let mut covered = 0usize;
        for c in chunks.iter() {
            assert_eq!(c.start + c.min_end, covered, "logical regions must tile");
            assert!(c.min_end <= 7);
            covered = c.end;
            // zero copy: same allocation
            assert!(Arc::ptr_eq(&c.data, &data));
        }
        assert_eq!(covered, 1000);
    }

    #[test]
    fn slice_views_match_source() {
        let data = Arc::new(b"hello world".to_vec());
        let mut map = RaftMap::new();
        let src = map.add(ByteChunkSource::new(data, 4, 0));
        let (we, handle) = write_each::<ByteChunk>();
        let dst = map.add(we);
        map.link(src, "out", dst, "in").unwrap();
        map.exe().unwrap();
        let chunks = handle.lock().unwrap();
        let joined: Vec<u8> = chunks.iter().flat_map(|c| c.as_slice().to_vec()).collect();
        assert_eq!(joined, b"hello world");
    }

    #[test]
    fn empty_buffer_stops_immediately() {
        let mut map = RaftMap::new();
        let src = map.add(ByteChunkSource::new(Arc::new(Vec::new()), 64, 3));
        let (we, handle) = write_each::<ByteChunk>();
        let dst = map.add(we);
        map.link(src, "out", dst, "in").unwrap();
        map.exe().unwrap();
        assert!(handle.lock().unwrap().is_empty());
    }
}
