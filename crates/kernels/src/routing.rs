//! Stream routing kernels: duplicate, join, truncate.

use raftlib::prelude::*;

/// Duplicates every input item onto two output streams ("0" and "1").
/// Requires `T: Clone` — one copy per extra consumer is the price of
/// fan-out without shared ownership.
pub struct Tee<T: Send + Clone + 'static> {
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Send + Clone + 'static> Default for Tee<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Clone + 'static> Tee<T> {
    /// New tee kernel.
    pub fn new() -> Self {
        Tee {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Send + Clone + 'static> Kernel for Tee<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new()
            .input::<T>("in")
            .output::<T>("0")
            .output::<T>("1")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<T>("in");
        match input.pop() {
            Ok(v) => {
                drop(input);
                let mut a = ctx.output::<T>("0");
                let ok_a = a.push(v.clone()).is_ok();
                drop(a);
                let mut b = ctx.output::<T>("1");
                let ok_b = b.push(v).is_ok();
                if !ok_a && !ok_b {
                    return KStatus::Stop; // both consumers gone
                }
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "tee".to_string()
    }

    // Pure fan-out: each item is duplicated independently of history.
    fn is_stateless(&self) -> bool {
        true
    }
}

/// Joins two streams element-wise into pairs, stopping with the shorter
/// one — the stream analog of `Iterator::zip`.
pub struct Zip<A: Send + Clone + 'static, B: Send + Clone + 'static> {
    _marker: std::marker::PhantomData<fn(A, B)>,
}

impl<A: Send + Clone + 'static, B: Send + Clone + 'static> Default for Zip<A, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Send + Clone + 'static, B: Send + Clone + 'static> Zip<A, B> {
    /// New zip kernel.
    pub fn new() -> Self {
        Zip {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<A: Send + Clone + 'static, B: Send + Clone + 'static> Kernel for Zip<A, B> {
    fn ports(&self) -> PortSpec {
        PortSpec::new()
            .input::<A>("a")
            .input::<B>("b")
            .output::<(A, B)>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut a = ctx.input::<A>("a");
        let mut b = ctx.input::<B>("b");
        match (a.pop(), b.pop()) {
            (Ok(x), Ok(y)) => {
                drop((a, b));
                let mut out = ctx.output::<(A, B)>("out");
                if out.push((x, y)).is_err() {
                    return KStatus::Stop;
                }
                KStatus::Proceed
            }
            _ => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "zip".to_string()
    }

    // Pure element-wise join: pairing depends only on stream positions,
    // not remembered values. (Reordering its inputs would still change the
    // pairs, which is why zip's streams stay ordered by default.)
    fn is_stateless(&self) -> bool {
        true
    }
}

/// Forwards the first `n` items, then closes its output (and thereby tells
/// the upstream kernels to stop via push failure).
pub struct Take<T: Send + Clone + 'static> {
    remaining: u64,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Send + Clone + 'static> Take<T> {
    /// Forward `n` items then stop.
    pub fn new(n: u64) -> Self {
        Take {
            remaining: n,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Send + Clone + 'static> Kernel for Take<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<T>("in").output::<T>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        if self.remaining == 0 {
            return KStatus::Stop;
        }
        let mut input = ctx.input::<T>("in");
        match input.pop() {
            Ok(v) => {
                drop(input);
                let mut out = ctx.output::<T>("out");
                if out.push(v).is_err() {
                    return KStatus::Stop;
                }
                self.remaining -= 1;
                if self.remaining == 0 {
                    KStatus::Stop
                } else {
                    KStatus::Proceed
                }
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "take".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containers::write_each;
    use crate::generate::Generate;

    #[test]
    fn tee_duplicates_to_both_outputs() {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..100u32));
        let tee = map.add(Tee::<u32>::new());
        let (wa, out_a) = write_each::<u32>();
        let (wb, out_b) = write_each::<u32>();
        let da = map.add(wa);
        let db = map.add(wb);
        map.link(src, "out", tee, "in").unwrap();
        map.link(tee, "0", da, "in").unwrap();
        map.link(tee, "1", db, "in").unwrap();
        map.exe().unwrap();
        let expect: Vec<u32> = (0..100).collect();
        assert_eq!(*out_a.lock().unwrap(), expect);
        assert_eq!(*out_b.lock().unwrap(), expect);
    }

    #[test]
    fn zip_pairs_streams() {
        let mut map = RaftMap::new();
        let a = map.add(Generate::new(0..50u32));
        let b = map.add(Generate::new((0..100u32).map(|x| x as f64))); // longer
        let zip = map.add(Zip::<u32, f64>::new());
        let (we, out) = write_each::<(u32, f64)>();
        let dst = map.add(we);
        map.link(a, "out", zip, "a").unwrap();
        map.link(b, "out", zip, "b").unwrap();
        map.link(zip, "out", dst, "in").unwrap();
        map.exe().unwrap();
        let got = out.lock().unwrap();
        // stops with the shorter stream
        assert_eq!(got.len(), 50);
        assert_eq!(got[10], (10, 10.0));
    }

    #[test]
    fn take_truncates_infinite_stream() {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0u64..)); // infinite
        let take = map.add(Take::<u64>::new(25));
        let (we, out) = write_each::<u64>();
        let dst = map.add(we);
        map.link(src, "out", take, "in").unwrap();
        map.link(take, "out", dst, "in").unwrap();
        map.exe().unwrap();
        assert_eq!(*out.lock().unwrap(), (0..25).collect::<Vec<u64>>());
    }

    #[test]
    fn take_zero_forwards_nothing() {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..10u64));
        let take = map.add(Take::<u64>::new(0));
        let (we, out) = write_each::<u64>();
        let dst = map.add(we);
        map.link(src, "out", take, "in").unwrap();
        map.link(take, "out", dst, "in").unwrap();
        map.exe().unwrap();
        assert!(out.lock().unwrap().is_empty());
    }
}
