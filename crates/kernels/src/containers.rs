//! Standard-container integration — the paper's Figure 5 and Figure 6.
//!
//! `read_each` feeds a stream from any iterator (the paper reads a
//! `std::vector` range); `write_each` collects a stream into a `Vec` whose
//! handle the caller keeps (the paper's `std::back_inserter`); `for_each`
//! shares an array (`Arc<[T]>`) and streams index ranges over it with zero
//! element copies, "using its memory space directly as a queue for
//! downstream compute kernels" (Figure 6).

use std::sync::{Arc, Mutex};

use raftlib::prelude::*;

/// Handle to the output container of a [`WriteEach`] kernel; read it after
/// `exe()` returns.
pub type CollectHandle<T> = Arc<Mutex<Vec<T>>>;

/// Stream the items of an iterator — `read_each(v.begin(), v.end())`.
pub struct ReadEach<I: Iterator> {
    iter: I,
    batch: usize,
}

/// Build a [`ReadEach`] from anything iterable.
pub fn read_each<I>(iter: impl IntoIterator<IntoIter = I>) -> ReadEach<I>
where
    I: Iterator + Send + 'static,
    I::Item: Send + Clone + 'static,
{
    ReadEach {
        iter: iter.into_iter(),
        batch: 64,
    }
}

impl<I> Kernel for ReadEach<I>
where
    I: Iterator + Send + 'static,
    I::Item: Send + Clone + 'static,
{
    fn ports(&self) -> PortSpec {
        PortSpec::new().output::<I::Item>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        if ctx.stop_requested() {
            return KStatus::Stop;
        }
        let mut out = ctx.output::<I::Item>("out");
        for _ in 0..self.batch {
            match self.iter.next() {
                Some(v) => {
                    if out.push(v).is_err() {
                        return KStatus::Stop;
                    }
                }
                None => return KStatus::Stop,
            }
        }
        KStatus::Proceed
    }

    fn name(&self) -> String {
        "read_each".to_string()
    }
}

/// Collect a stream into a `Vec` — `write_each(std::back_inserter(o))`.
pub struct WriteEach<T: Send + Clone + 'static> {
    out: CollectHandle<T>,
}

/// Build a [`WriteEach`] plus the handle holding its output.
pub fn write_each<T: Send + Clone + 'static>() -> (WriteEach<T>, CollectHandle<T>) {
    let out: CollectHandle<T> = Arc::new(Mutex::new(Vec::new()));
    (WriteEach { out: out.clone() }, out)
}

impl<T: Send + Clone + 'static> Kernel for WriteEach<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<T>("in")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<T>("in");
        let mut local = Vec::new();
        match input.pop_range(256, &mut local) {
            Ok(_) => {
                drop(input);
                self.out.lock().unwrap().append(&mut local);
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "write_each".to_string()
    }
}

/// A zero-copy slice of a shared array: the element payload never moves,
/// only `(Arc, range)` descriptors stream between kernels.
#[derive(Debug)]
pub struct ArraySlice<T: Send + Sync + 'static> {
    data: Arc<[T]>,
    /// Start index within the shared array — the paper: "provides an index
    /// to indicate position within the array for the start position".
    pub start: usize,
    /// End index (exclusive).
    pub end: usize,
}

// Manual impl: cloning copies the `(Arc, range)` descriptor only, so it
// must not require `T: Clone` (a derive would).
impl<T: Send + Sync + 'static> Clone for ArraySlice<T> {
    fn clone(&self) -> Self {
        ArraySlice {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.end,
        }
    }
}

impl<T: Send + Sync + 'static> Default for ArraySlice<T> {
    fn default() -> Self {
        ArraySlice {
            data: Arc::from(Vec::new().into_boxed_slice()),
            start: 0,
            end: 0,
        }
    }
}

impl<T: Send + Sync + 'static> ArraySlice<T> {
    /// View the slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data[self.start..self.end]
    }

    /// Length of this slice.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Zero-copy chunked array source (Figure 6): shares the array and emits
/// [`ArraySlice`] descriptors of `chunk` elements each. "When this kernel
/// is executed, it appears as a kernel only momentarily, essentially
/// providing a data source for the downstream compute kernels."
pub struct ForEach<T: Send + Sync + 'static> {
    data: Arc<[T]>,
    chunk: usize,
    pos: usize,
}

/// Build a [`ForEach`] over `data` with `chunk`-element slices.
pub fn for_each<T: Send + Sync + 'static>(data: impl Into<Arc<[T]>>, chunk: usize) -> ForEach<T> {
    ForEach {
        data: data.into(),
        chunk: chunk.max(1),
        pos: 0,
    }
}

impl<T: Send + Sync + 'static> Kernel for ForEach<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().output::<ArraySlice<T>>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        if self.pos >= self.data.len() {
            return KStatus::Stop;
        }
        let end = (self.pos + self.chunk).min(self.data.len());
        let slice = ArraySlice {
            data: self.data.clone(),
            start: self.pos,
            end,
        };
        let mut out = ctx.output::<ArraySlice<T>>("out");
        if out.push(slice).is_err() {
            return KStatus::Stop;
        }
        self.pos = end;
        KStatus::Proceed
    }

    fn name(&self) -> String {
        "for_each".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 5 end-to-end: container -> stream -> container.
    #[test]
    fn read_each_write_each_roundtrip() {
        let v: Vec<u32> = (0..1000).collect();
        let mut map = RaftMap::new();
        let src = map.add(read_each(v.clone()));
        let (we, handle) = write_each::<u32>();
        let dst = map.add(we);
        map.link(src, "out", dst, "in").unwrap();
        map.exe().unwrap();
        assert_eq!(*handle.lock().unwrap(), v);
    }

    #[test]
    fn for_each_slices_cover_array_without_copy() {
        let data: Vec<u64> = (0..100).collect();
        let mut map = RaftMap::new();
        let src = map.add(for_each(data, 7));
        let (we, handle) = write_each::<ArraySlice<u64>>();
        let dst = map.add(we);
        map.link(src, "out", dst, "in").unwrap();
        map.exe().unwrap();
        let slices = handle.lock().unwrap();
        // slices tile [0, 100) in order
        let mut pos = 0;
        for s in slices.iter() {
            assert_eq!(s.start, pos);
            assert!(s.len() <= 7);
            assert_eq!(s.as_slice()[0], pos as u64);
            pos = s.end;
        }
        assert_eq!(pos, 100);
        // zero copy: all slices share one allocation
        let first = &slices[0];
        for s in slices.iter() {
            assert!(Arc::ptr_eq(&first.data, &s.data));
        }
    }

    #[test]
    fn array_slice_default_is_empty() {
        let s: ArraySlice<u8> = ArraySlice::default();
        assert!(s.is_empty());
        assert_eq!(s.as_slice(), &[] as &[u8]);
    }
}
