//! Windowing kernels — the sliding-window access pattern §3 calls out:
//! "The stream access pattern is often that of a sliding window, which
//! should be accommodated efficiently. RaftLib accommodates this through a
//! peek_range function."
//!
//! [`SlidingWindow`] is exactly that: it *peeks* `width` elements without
//! consuming, emits a window, then advances by `stride` — no element is
//! copied more often than the window overlap requires, and the underlying
//! ring grows automatically if `width` exceeds its capacity (the read-side
//! resize trigger).

use raftlib::prelude::*;

/// Emits `Vec<T>` windows of `width` elements advancing by `stride`
/// (`stride < width` ⇒ overlapping windows). The final partial window is
/// dropped, matching the usual streaming semantics.
pub struct SlidingWindow<T: Send + Clone + 'static> {
    width: usize,
    stride: usize,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Send + Clone + 'static> SlidingWindow<T> {
    /// New sliding window; panics if `width` or `stride` is zero.
    pub fn new(width: usize, stride: usize) -> Self {
        assert!(width > 0 && stride > 0, "width and stride must be positive");
        SlidingWindow {
            width,
            stride,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Send + Clone + 'static> Kernel for SlidingWindow<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<T>("in").output::<Vec<T>>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<T>("in");
        // peek_range blocks until `width` elements are visible (growing the
        // ring if needed) or the stream ends short.
        let window: Vec<T> = match input.peek_range(self.width) {
            Ok(w) => w.iter().cloned().collect(),
            Err(_) => return KStatus::Stop,
        };
        input.advance(self.stride);
        drop(input);
        let mut out = ctx.output::<Vec<T>>("out");
        if out.push(window).is_err() {
            return KStatus::Stop;
        }
        KStatus::Proceed
    }

    fn name(&self) -> String {
        format!("window[{}/{}]", self.width, self.stride)
    }
}

/// Groups the stream into non-overlapping `Vec<T>` batches of `n` items
/// (final partial batch included).
pub struct Batch<T: Send + Clone + 'static> {
    n: usize,
    buf: Vec<T>,
}

impl<T: Send + Clone + 'static> Batch<T> {
    /// New batcher; panics on `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "batch size must be positive");
        Batch {
            n,
            buf: Vec::with_capacity(n),
        }
    }
}

impl<T: Send + Clone + 'static> Kernel for Batch<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<T>("in").output::<Vec<T>>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<T>("in");
        match input.pop() {
            Ok(v) => {
                drop(input);
                self.buf.push(v);
                if self.buf.len() == self.n {
                    let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(self.n));
                    let mut out = ctx.output::<Vec<T>>("out");
                    if out.push(batch).is_err() {
                        return KStatus::Stop;
                    }
                }
                KStatus::Proceed
            }
            Err(_) => {
                if !self.buf.is_empty() {
                    let batch = std::mem::take(&mut self.buf);
                    let mut out = ctx.output::<Vec<T>>("out");
                    let _ = out.push(batch);
                }
                KStatus::Stop
            }
        }
    }

    fn name(&self) -> String {
        format!("batch[{}]", self.n)
    }
}

/// Inverse of [`Batch`]: flattens `Vec<T>` batches back into single items.
pub struct Flatten<T: Send + Clone + 'static> {
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Send + Clone + 'static> Default for Flatten<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Clone + 'static> Flatten<T> {
    /// New flattener.
    pub fn new() -> Self {
        Flatten {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Send + Clone + 'static> Kernel for Flatten<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<Vec<T>>("in").output::<T>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<Vec<T>>("in");
        match input.pop() {
            Ok(batch) => {
                drop(input);
                let mut out = ctx.output::<T>("out");
                for v in batch {
                    if out.push(v).is_err() {
                        return KStatus::Stop;
                    }
                }
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "flatten".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containers::write_each;
    use crate::generate::Generate;

    #[test]
    fn overlapping_windows() {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..10u32));
        let win = map.add(SlidingWindow::<u32>::new(3, 1));
        let (we, out) = write_each::<Vec<u32>>();
        let dst = map.add(we);
        map.link(src, "out", win, "in").unwrap();
        map.link(win, "out", dst, "in").unwrap();
        map.exe().unwrap();
        let got = out.lock().unwrap();
        assert_eq!(got.len(), 8); // windows starting at 0..=7
        assert_eq!(got[0], vec![0, 1, 2]);
        assert_eq!(got[7], vec![7, 8, 9]);
    }

    #[test]
    fn tumbling_windows() {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..9u32));
        let win = map.add(SlidingWindow::<u32>::new(3, 3));
        let (we, out) = write_each::<Vec<u32>>();
        let dst = map.add(we);
        map.link(src, "out", win, "in").unwrap();
        map.link(win, "out", dst, "in").unwrap();
        map.exe().unwrap();
        assert_eq!(
            *out.lock().unwrap(),
            vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]]
        );
    }

    #[test]
    fn window_wider_than_initial_capacity_grows_ring() {
        let cfg = MapConfig {
            fifo: FifoConfig {
                initial_capacity: 4,
                max_capacity: 1 << 10,
                min_capacity: 4,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut map = RaftMap::with_config(cfg);
        let src = map.add(Generate::new(0..64u32));
        let win = map.add(SlidingWindow::<u32>::new(32, 32)); // wider than cap 4
        let (we, out) = write_each::<Vec<u32>>();
        let dst = map.add(we);
        map.link(src, "out", win, "in").unwrap();
        map.link(win, "out", dst, "in").unwrap();
        map.exe().unwrap();
        let got = out.lock().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].len(), 32);
        assert_eq!(got[1][31], 63);
    }

    #[test]
    fn batch_and_flatten_roundtrip() {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..100u32));
        let batch = map.add(Batch::<u32>::new(7));
        let flat = map.add(Flatten::<u32>::new());
        let (we, out) = write_each::<u32>();
        let dst = map.add(we);
        map.link(src, "out", batch, "in").unwrap();
        map.link(batch, "out", flat, "in").unwrap();
        map.link(flat, "out", dst, "in").unwrap();
        map.exe().unwrap();
        assert_eq!(*out.lock().unwrap(), (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn batch_emits_final_partial() {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..10u32));
        let batch = map.add(Batch::<u32>::new(4));
        let (we, out) = write_each::<Vec<u32>>();
        let dst = map.add(we);
        map.link(src, "out", batch, "in").unwrap();
        map.link(batch, "out", dst, "in").unwrap();
        map.exe().unwrap();
        let got = out.lock().unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[2], vec![8, 9]); // partial tail
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        SlidingWindow::<u32>::new(0, 1);
    }
}
