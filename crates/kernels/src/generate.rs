//! Bounded stream sources.

use raftlib::prelude::*;

/// Source kernel producing the items of an iterator on its single output
/// port `"out"` — the paper's `generate` kernel (Figure 3) generalized to
/// any iterator.
///
/// Replicable only when the iterator is `Clone` *and* replication is
/// explicitly requested via [`Generate::replicable`]: blindly replicating a
/// source would duplicate the data, which is rarely what an application
/// means (the paper replicates compute kernels, not sources).
pub struct Generate<I: Iterator> {
    iter: I,
    /// Items per `run()` quantum (amortizes scheduling overhead).
    batch: usize,
    replicable: bool,
    template: Option<I>,
}

impl<I> Generate<I>
where
    I: Iterator + Send + 'static,
    I::Item: Send + Clone + 'static,
{
    /// Source over `iter`, one item per `run()` call.
    pub fn new(iter: impl IntoIterator<IntoIter = I>) -> Self {
        Generate {
            iter: iter.into_iter(),
            batch: 64,
            replicable: false,
            template: None,
        }
    }

    /// Set the number of items emitted per scheduling quantum.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }
}

impl<I> Generate<I>
where
    I: Iterator + Clone + Send + 'static,
    I::Item: Send + Clone + 'static,
{
    /// Allow the auto-parallelizer to replicate this source; every replica
    /// produces the full sequence.
    pub fn replicable(mut self) -> Self {
        self.template = Some(self.iter.clone());
        self.replicable = true;
        self
    }
}

impl<I> Kernel for Generate<I>
where
    I: Iterator + Send + 'static,
    I::Item: Send + Clone + 'static,
{
    fn ports(&self) -> PortSpec {
        PortSpec::new().output::<I::Item>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        if ctx.stop_requested() {
            return KStatus::Stop;
        }
        // Write the iterator's next batch straight into reserved ring
        // slots: no intermediate Vec, and the whole batch is published
        // under a single queue synchronization when the slice drops.
        let mut out = ctx.output::<I::Item>("out");
        let mut slice = match out.reserve(self.batch) {
            Ok(s) => s,
            Err(_) => return KStatus::Stop,
        };
        // reserve clamps the request to the ring's maximum capacity, so
        // fill however many slots were actually granted.
        let want = slice.remaining();
        let mut wrote = 0;
        while wrote < want {
            match self.iter.next() {
                Some(v) => {
                    slice.push(v);
                    wrote += 1;
                }
                None => break,
            }
        }
        drop(slice);
        if wrote < want {
            return KStatus::Stop;
        }
        KStatus::Proceed
    }

    fn name(&self) -> String {
        "generate".to_string()
    }

    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        // Only Clone iterators registered a template; without one the
        // source stays sequential.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_single_output() {
        let g = Generate::new(0..10u32);
        let spec = g.ports();
        assert!(spec.inputs.is_empty());
        assert_eq!(spec.outputs.len(), 1);
        assert_eq!(spec.outputs[0].name, "out");
    }

    #[test]
    fn batch_clamps_to_one() {
        let g = Generate::new(0..10u32).with_batch(0);
        assert_eq!(g.batch, 1);
    }

    #[test]
    fn end_to_end_produces_all_items() {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..1000u64));
        let sink = map.add(raftlib::lambda_sink(|_v: u64| {}));
        map.link(src, "out", sink, "0").unwrap();
        let report = map.exe().unwrap();
        assert_eq!(report.edges[0].stats.pushed, 1000);
        assert_eq!(report.edges[0].stats.popped, 1000);
    }
}
