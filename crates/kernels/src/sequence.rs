//! Out-of-order processing with downstream re-ordering.
//!
//! §4.1 of the paper distinguishes three stream disciplines: in-order
//! processing, out-of-order processing, and "process the data out of order
//! and re-order at some later time. RaftLib accommodates all of the
//! above". The first two map to `link`/`link_unordered`; this module
//! supplies the third:
//!
//! * [`Stamp`] — wraps each item with a monotonically increasing sequence
//!   number before the parallel region;
//! * [`Resequence`] — after the parallel region, buffers out-of-order
//!   arrivals and releases items strictly by sequence number.
//!
//! The parallel stage in between operates on `Seq<T>` pairs (its transform
//! must preserve the sequence number — [`map_seq`] builds such a kernel
//! from a plain `T -> U` function).

use std::collections::BTreeMap;

use raftlib::prelude::*;

/// A sequence-stamped item.
pub type Seq<T> = (u64, T);

/// Stamps each item with its position in the stream.
pub struct Stamp<T: Send + Clone + 'static> {
    next: u64,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Send + Clone + 'static> Default for Stamp<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Clone + 'static> Stamp<T> {
    /// New stamper starting at sequence 0.
    pub fn new() -> Self {
        Stamp {
            next: 0,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Send + Clone + 'static> Kernel for Stamp<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<T>("in").output::<Seq<T>>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<T>("in");
        match input.pop() {
            Ok(v) => {
                drop(input);
                let seq = self.next;
                self.next += 1;
                let mut out = ctx.output::<Seq<T>>("out");
                if out.push((seq, v)).is_err() {
                    return KStatus::Stop;
                }
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "stamp".to_string()
    }
}

/// Releases stamped items in sequence order, buffering gaps.
///
/// The reorder buffer is unbounded in principle; in practice its size is
/// bounded by the parallel region's width × queue depths. The final report
/// exposes the high-water mark via [`Resequence::high_water`]... (readable
/// only before `exe()` moves the kernel; use the buffered count in tests
/// through output ordering instead).
pub struct Resequence<T: Send + Clone + 'static> {
    next: u64,
    pending: BTreeMap<u64, T>,
    high_water: usize,
}

impl<T: Send + Clone + 'static> Default for Resequence<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Clone + 'static> Resequence<T> {
    /// New resequencer expecting sequence numbers from 0.
    pub fn new() -> Self {
        Resequence {
            next: 0,
            pending: BTreeMap::new(),
            high_water: 0,
        }
    }

    /// Largest number of items ever buffered while waiting for a gap.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    fn drain_ready(&mut self, out: &mut OutPort<'_, T>) -> Result<(), PortClosed> {
        while let Some(v) = self.pending.remove(&self.next) {
            out.push(v)?;
            self.next += 1;
        }
        Ok(())
    }
}

impl<T: Send + Clone + 'static> Kernel for Resequence<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<Seq<T>>("in").output::<T>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<Seq<T>>("in");
        match input.pop() {
            Ok((seq, v)) => {
                drop(input);
                debug_assert!(
                    seq >= self.next,
                    "duplicate or regressed sequence number {seq} (expected >= {})",
                    self.next
                );
                self.pending.insert(seq, v);
                self.high_water = self.high_water.max(self.pending.len());
                let mut out = ctx.output::<T>("out");
                if self.drain_ready(&mut out).is_err() {
                    return KStatus::Stop;
                }
                KStatus::Proceed
            }
            Err(_) => {
                // Upstream done: flush whatever is buffered, in order (any
                // residual gap means lost items upstream — release what we
                // have deterministically).
                let mut out = ctx.output::<T>("out");
                let pending = std::mem::take(&mut self.pending);
                for (_, v) in pending {
                    if out.push(v).is_err() {
                        break;
                    }
                }
                KStatus::Stop
            }
        }
    }

    fn name(&self) -> String {
        "resequence".to_string()
    }
}

/// A replicable kernel applying `f` to the payload while preserving the
/// sequence stamp — the transform to put *between* [`Stamp`] and
/// [`Resequence`].
pub fn map_seq<A, B, F>(
    f: F,
) -> crate::transforms::Map<Seq<A>, Seq<B>, impl FnMut(Seq<A>) -> Seq<B> + Clone + Send + 'static>
where
    A: Send + Clone + 'static,
    B: Send + Clone + 'static,
    F: FnMut(A) -> B + Clone + Send + 'static,
{
    let mut f = f;
    crate::transforms::Map::new(move |(seq, a): Seq<A>| (seq, f(a)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containers::write_each;
    use crate::generate::Generate;

    /// The headline property: a replicated (out-of-order) parallel region
    /// between Stamp and Resequence still yields *in-order* output.
    #[test]
    fn replicated_region_reordered_downstream() {
        const N: u64 = 30_000;
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..N));
        let stamp = map.add(Stamp::<u64>::new());
        let work = map.add(map_seq(|x: u64| x * 3 + 1));
        let reseq = map.add(Resequence::<u64>::new());
        let (we, out) = write_each::<u64>();
        let dst = map.add(we);
        map.link(src, "out", stamp, "in").unwrap();
        // the parallel region: unordered links, replicated 4 ways
        map.link_unordered(stamp, "out", work, "in").unwrap();
        map.link_unordered(work, "out", reseq, "in").unwrap();
        map.prefer_width(work, 4);
        map.link(reseq, "out", dst, "in").unwrap();
        let report = map.exe().unwrap();
        assert_eq!(report.replicated.len(), 1, "work stage must replicate");
        let got = out.lock().unwrap();
        // exact order restored
        assert_eq!(*got, (0..N).map(|x| x * 3 + 1).collect::<Vec<u64>>());
    }

    #[test]
    fn stamp_then_resequence_is_identity() {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..500u32));
        let stamp = map.add(Stamp::<u32>::new());
        let reseq = map.add(Resequence::<u32>::new());
        let (we, out) = write_each::<u32>();
        let dst = map.add(we);
        map.link(src, "out", stamp, "in").unwrap();
        map.link(stamp, "out", reseq, "in").unwrap();
        map.link(reseq, "out", dst, "in").unwrap();
        map.exe().unwrap();
        assert_eq!(*out.lock().unwrap(), (0..500).collect::<Vec<u32>>());
    }

    #[test]
    fn resequence_handles_adversarial_order() {
        // Drive the kernel directly with a hand-shuffled sequence.
        use raft_buffer::{fifo_with, FifoConfig};
        let (_fi, mut p_in, c_in) = fifo_with::<Seq<u32>>(FifoConfig::starting_at(64));
        let (_fo, p_out, mut c_out) = fifo_with::<u32>(FifoConfig::starting_at(64));
        // worst case: strictly reversed arrival
        for seq in (0..32u64).rev() {
            p_in.try_push((seq, seq as u32)).unwrap();
        }
        p_in.close();
        let fifo_in: std::sync::Arc<dyn raft_buffer::fifo::Monitorable> =
            std::sync::Arc::new(c_in.fifo());
        let ctx = Context::for_test(
            vec![("in".to_string(), Box::new(c_in) as _, fifo_in)],
            vec![("out".to_string(), Box::new(p_out) as _)],
        );
        let mut k = Resequence::<u32>::new();
        while k.run(&ctx) == KStatus::Proceed {}
        let hw = k.high_water();
        drop(ctx);
        let mut got = Vec::new();
        while let Ok(v) = c_out.try_pop() {
            got.push(v);
        }
        assert_eq!(got, (0..32).collect::<Vec<u32>>());
        assert_eq!(hw, 32, "reversed order buffers everything");
    }
}
