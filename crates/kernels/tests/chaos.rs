//! Chaos suite: deterministic fault injection against supervised maps.
//!
//! Runs only with `--features raft_failpoints`. The CI chaos job executes
//! this suite under three pinned seeds (`RAFT_CHAOS_SEED`); every firing
//! decision is drawn from the seed, so a failure reproduces exactly with
//! `RAFT_CHAOS_SEED=<n> cargo test -p raft-kernels --features
//! raft_failpoints --test chaos`.
#![cfg(feature = "raft_failpoints")]

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use raft_buffer::failpoints::{self, FailAction};
use raft_kernels::{write_each, ChaosConfig, ChaosKernel, Generate};
use raftlib::prelude::*;

/// The failpoint registry is process-global; chaos tests serialize on this
/// so one test's armed sites never fire inside another's map.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_guard() -> MutexGuard<'static, ()> {
    let guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    failpoints::reset();
    guard
}

fn chaos_seed() -> u64 {
    std::env::var("RAFT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Fault handling must be scheduler-independent: every chaos scenario runs
/// under the threaded, polling-pool, and work-stealing schedulers.
fn for_each_scheduler(body: impl Fn(SchedulerKind)) {
    for (label, sched) in [
        ("thread-per-kernel", SchedulerKind::ThreadPerKernel),
        ("pool", SchedulerKind::Pool { workers: 2 }),
        (
            "stealing",
            SchedulerKind::Stealing {
                workers: 2,
                pin: false,
            },
        ),
    ] {
        // Each iteration starts from a clean registry so one scheduler's
        // exhausted failpoint budgets never leak into the next.
        failpoints::reset();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(sched)));
        if let Err(panic) = result {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic");
            panic!("[scheduler = {label}] {msg}");
        }
    }
}

/// A ChaosKernel-injected panic under a Restart policy: the stage comes
/// back on its live ports and the stream arrives complete and in order.
#[test]
fn chaos_panic_absorbed_by_restart() {
    let _guard = chaos_guard();
    for_each_scheduler(|sched| {
        let mut map = RaftMap::new();
        map.config_mut().scheduler = sched;
        let src = map.add(Generate::new(0..800u64));
        let chaotic = map.add(ChaosKernel::new(
            lambda_map(|v: u64| v),
            ChaosConfig::panics(chaos_seed(), 4, 2),
        ));
        let (we, handle) = write_each::<u64>();
        let dst = map.add(we);
        map.link(src, "out", chaotic, "0").unwrap();
        map.link(chaotic, "0", dst, "in").unwrap();
        map.supervise(chaotic, SupervisorPolicy::restart(4));

        let report = map.exe().expect("restart absorbs injected panics");
        let outcome = report
            .kernels
            .iter()
            .find(|k| k.name.starts_with("chaos["))
            .expect("chaos kernel in report")
            .outcome;
        assert!(
            matches!(
                outcome,
                KernelOutcome::Completed | KernelOutcome::Restarted(_)
            ),
            "unexpected outcome {outcome:?}"
        );
        let got = std::sync::Arc::try_unwrap(handle)
            .unwrap()
            .into_inner()
            .unwrap();
        assert_eq!(got, (0..800).collect::<Vec<u64>>());
    });
}

/// A hopeless stage (panics every invocation) under Skip: the rest of the
/// pipeline drains and the run is reported per kernel.
#[test]
fn chaos_hopeless_stage_skipped() {
    let _guard = chaos_guard();
    for_each_scheduler(|sched| {
        let mut map = RaftMap::new();
        map.config_mut().scheduler = sched;
        let src = map.add(Generate::new(0..100u64));
        let chaotic = map.add(ChaosKernel::new(
            lambda_map(|v: u64| v),
            ChaosConfig::panics(chaos_seed(), 1, 0), // every run, unlimited
        ));
        let (we, handle) = write_each::<u64>();
        let dst = map.add(we);
        map.link(src, "out", chaotic, "0").unwrap();
        map.link(chaotic, "0", dst, "in").unwrap();
        map.supervise(chaotic, SupervisorPolicy::Skip);

        let report = map.exe().expect("skip keeps the run alive");
        let outcome = report
            .kernels
            .iter()
            .find(|k| k.name.starts_with("chaos["))
            .unwrap()
            .outcome;
        assert_eq!(outcome, KernelOutcome::Skipped);
        let got = std::sync::Arc::try_unwrap(handle)
            .unwrap()
            .into_inner()
            .unwrap();
        assert!(got.is_empty());
    });
}

/// Panics injected at the scheduler's own step site — before any kernel
/// code runs — take the policy path like any kernel panic; with Restart on
/// every stage the stream still arrives complete.
#[test]
fn scheduler_step_failpoint_is_policy_handled() {
    let _guard = chaos_guard();
    for_each_scheduler(|sched| {
        failpoints::set_seed(chaos_seed());
        failpoints::arm("core::scheduler::step", FailAction::Panic, 50, 2);

        let mut map = RaftMap::new();
        map.config_mut().scheduler = sched;
        let src = map.add(Generate::new(0..2_000u64));
        let (we, handle) = write_each::<u64>();
        let dst = map.add(we);
        map.link(src, "out", dst, "in").unwrap();
        map.supervise(src, SupervisorPolicy::restart(5));
        map.supervise(dst, SupervisorPolicy::restart(5));

        let result = map.exe();
        let hits = failpoints::hits("core::scheduler::step");
        failpoints::reset();
        result.expect("step-site panics are absorbed by restart policies");
        assert!(hits > 0, "step failpoint site was never consulted");
        let got = std::sync::Arc::try_unwrap(handle)
            .unwrap()
            .into_inner()
            .unwrap();
        assert_eq!(got, (0..2_000).collect::<Vec<u64>>());
    });
}

/// A crash injected right after the journal records a pop (the
/// `buffer::journal::append` site): the entry is retained, the scheduler
/// rewinds the transaction, and the restarted kernel re-pops it from the
/// replay window — the stream arrives byte-identical with one rewind per
/// injected crash. `one_in = 1` makes the firing schedule deterministic
/// regardless of seed: the first `budget` live pops crash (replay serves
/// don't consult the site, so each crash hits a fresh element).
#[test]
fn journal_append_crash_is_replayed_exactly_once() {
    let _guard = chaos_guard();
    for_each_scheduler(|sched| {
        failpoints::set_seed(chaos_seed());
        failpoints::arm("buffer::journal::append", FailAction::Panic, 1, 3);

        let mut map = RaftMap::new();
        map.config_mut().scheduler = sched;
        let src = map.add(Generate::new(0..800u64));
        let stage = map.add(lambda_map(|v: u64| v));
        let (we, handle) = write_each::<u64>();
        let dst = map.add(we);
        let journaled = FifoConfig {
            journal: Some(JournalConfig::default()),
            ..FifoConfig::default()
        };
        map.link_with(src, "out", stage, "0", journaled).unwrap();
        map.link(stage, "0", dst, "in").unwrap();
        map.supervise(stage, SupervisorPolicy::restart(5));

        let report = map.exe();
        let hits = failpoints::hits("buffer::journal::append");
        failpoints::reset();
        let report = report.expect("journal-site crashes are absorbed by restart");
        assert!(hits > 0, "append failpoint site was never consulted");
        assert_eq!(
            report.total_rewinds(),
            3,
            "each injected crash is exactly one rewind"
        );
        assert!(
            report.total_replayed() >= 3,
            "rewound elements must be replayed"
        );
        let got = std::sync::Arc::try_unwrap(handle)
            .unwrap()
            .into_inner()
            .unwrap();
        assert_eq!(
            got,
            (0..800).collect::<Vec<u64>>(),
            "recovery must be byte-identical"
        );
    });
}

/// A stall injected at the acknowledgement site (`buffer::journal::ack`,
/// consulted by the scheduler's post-run commit, outside the unwind
/// guard): commits slow down but nothing is lost and nothing rewinds.
#[test]
fn journal_ack_stall_is_harmless() {
    let _guard = chaos_guard();
    for_each_scheduler(|sched| {
        failpoints::set_seed(chaos_seed());
        failpoints::arm(
            "buffer::journal::ack",
            FailAction::Stall(Duration::from_millis(5)),
            100,
            4,
        );

        let mut map = RaftMap::new();
        map.config_mut().scheduler = sched;
        let src = map.add(Generate::new(0..800u64));
        let stage = map.add(lambda_map(|v: u64| v));
        let (we, handle) = write_each::<u64>();
        let dst = map.add(we);
        let journaled = FifoConfig {
            journal: Some(JournalConfig::default()),
            ..FifoConfig::default()
        };
        map.link_with(src, "out", stage, "0", journaled).unwrap();
        map.link(stage, "0", dst, "in").unwrap();
        map.supervise(stage, SupervisorPolicy::restart(2));

        let report = map.exe();
        let hits = failpoints::hits("buffer::journal::ack");
        failpoints::reset();
        let report = report.expect("ack stalls only delay commits");
        assert!(hits > 0, "ack failpoint site was never consulted");
        assert_eq!(report.total_rewinds(), 0, "stalls are not crashes");
        let got = std::sync::Arc::try_unwrap(handle)
            .unwrap()
            .into_inner()
            .unwrap();
        assert_eq!(got, (0..800).collect::<Vec<u64>>());
    });
}

/// A stall injected at the drain-escalation site (`buffer::fifo::drain`)
/// while a StopHandle winds down a live graph: the ladder is slowed, not
/// wedged — `exe()` still returns cleanly with the drain recorded.
#[test]
fn drain_ladder_survives_injected_stall() {
    let _guard = chaos_guard();
    failpoints::set_seed(chaos_seed());
    failpoints::arm(
        "buffer::fifo::drain",
        FailAction::Stall(Duration::from_millis(10)),
        1,
        8,
    );

    let mut map = RaftMap::new();
    let mut i = 0u64;
    let src = map.add(lambda_source(move || {
        i += 1;
        Some(i) // endless: only the drain ladder can stop this graph
    }));
    let (we, handle) = write_each::<u64>();
    let dst = map.add(we);
    map.link(src, "0", dst, "in").unwrap();

    let stop = map.stop_handle();
    let controller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        stop.drain();
    });
    let report = map.exe();
    let hits = failpoints::hits("buffer::fifo::drain");
    failpoints::reset();
    controller.join().unwrap();
    let report = report.expect("a stalled drain escalation still completes");
    assert!(hits > 0, "drain failpoint site was never consulted");
    assert!(
        report.drain_events.iter().any(|ev| ev.level >= 1),
        "drain ladder never fired: {:?}",
        report.drain_events
    );
    let got = std::sync::Arc::try_unwrap(handle)
        .unwrap()
        .into_inner()
        .unwrap();
    let prefix: Vec<u64> = (1..=got.len() as u64).collect();
    assert_eq!(got, prefix, "drain must deliver an uninterrupted prefix");
}

/// A stall injected at the step site trips the deadline watchdog.
#[test]
fn injected_stall_trips_watchdog() {
    let _guard = chaos_guard();
    for_each_scheduler(|sched| {
        failpoints::set_seed(chaos_seed());
        failpoints::arm(
            "core::scheduler::step",
            FailAction::Stall(Duration::from_millis(150)),
            1, // first step stalls
            1,
        );

        let mut map = RaftMap::new();
        map.config_mut().scheduler = sched;
        let src = map.add(Generate::new(0..50_000u64));
        let (we, handle) = write_each::<u64>();
        let dst = map.add(we);
        map.link(src, "out", dst, "in").unwrap();
        map.config_mut().monitor =
            MonitorConfig::default().with_run_budget(Duration::from_millis(30));

        let result = map.exe();
        failpoints::reset();
        let report = result.expect("a stall is not a failure");
        assert!(
            report
                .watchdog_events
                .iter()
                .any(|ev| matches!(ev.kind, WatchdogKind::RunBudget { .. })),
            "expected a RunBudget firing, got {:?}",
            report.watchdog_events
        );
        drop(handle);
    });
}
