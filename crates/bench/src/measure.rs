//! Measurement utilities: repeated timing, summary statistics, table
//! printing.

use std::time::{Duration, Instant};

/// Summary of a sample of measurements.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: Duration,
    /// 5th percentile (the paper's Figure 4 green line).
    pub p5: Duration,
    /// 95th percentile (the paper's Figure 4 red line).
    pub p95: Duration,
    /// Minimum observed.
    pub min: Duration,
    /// Maximum observed.
    pub max: Duration,
    /// Sample count.
    pub n: usize,
}

/// Run `f` `reps` times and summarize the wall-clock durations.
pub fn sample(reps: usize, mut f: impl FnMut()) -> Summary {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed());
    }
    summarize(&mut times)
}

/// Summarize a set of durations (sorts in place).
pub fn summarize(times: &mut [Duration]) -> Summary {
    assert!(!times.is_empty());
    times.sort_unstable();
    let n = times.len();
    let total: Duration = times.iter().sum();
    let pick = |q: f64| times[(((n - 1) as f64) * q).round() as usize];
    Summary {
        mean: total / n as u32,
        p5: pick(0.05),
        p95: pick(0.95),
        min: times[0],
        max: times[n - 1],
        n,
    }
}

/// Throughput in GB/s for `bytes` processed in `dt`.
pub fn gbps(bytes: usize, dt: Duration) -> f64 {
    (bytes as f64 / 1e9) / dt.as_secs_f64()
}

/// Render seconds compactly for table cells.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let mut times: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = summarize(&mut times);
        assert_eq!(s.n, 100);
        assert_eq!(s.min, Duration::from_millis(1));
        assert_eq!(s.max, Duration::from_millis(100));
        assert_eq!(s.p5, Duration::from_millis(6)); // index round(99*0.05)=5
        assert_eq!(s.p95, Duration::from_millis(95));
        assert_eq!(s.mean, Duration::from_micros(50_500));
    }

    #[test]
    fn single_sample() {
        let s = sample(1, || std::thread::sleep(Duration::from_millis(1)));
        assert!(s.mean >= Duration::from_millis(1));
        assert_eq!(s.p5, s.p95);
    }

    #[test]
    fn gbps_math() {
        let g = gbps(2_000_000_000, Duration::from_secs(2));
        assert!((g - 1.0).abs() < 1e-12);
    }
}
