//! The two comparator systems of Figure 10, re-implemented.
//!
//! The paper compares RaftLib against (a) GNU grep parallelized by GNU
//! Parallel and (b) a Scala Boyer-Moore application on Apache Spark.
//! Neither runs here, so each is substituted by a from-scratch engine with
//! the same *structure* (see DESIGN.md §4):
//!
//! * [`grep_parallel`] — an extremely fast single-threaded scanner
//!   ([`raft_algos::MemMem`], grep's skip-loop design) dispatched over
//!   coarse jobs the way GNU Parallel does: the input is split into one job
//!   per worker, workers run independently, and all output funnels back
//!   through a single collector;
//! * [`SparkLike`] — a miniature batch-task data-parallel engine: a driver
//!   splits the corpus into many partitions, tasks go through a shared
//!   queue, workers execute Boyer-Moore per partition and ship results back
//!   to the driver — Spark's execution shape without the JVM.

use std::sync::{Arc, Mutex};
use std::thread;

use raft_algos::{split_chunks, BoyerMoore, Match, Matcher, MemMem};

/// Result of one comparator run.
#[derive(Debug, Clone)]
pub struct SearchRun {
    /// All matches found (sorted by offset).
    pub matches: Vec<Match>,
    /// Workers used.
    pub workers: u32,
}

/// "GNU grep + GNU Parallel": split the corpus into `workers` jobs, scan
/// each with the grep-class scanner on its own thread, merge through one
/// collector lock (GNU Parallel's single output pipe).
pub fn grep_parallel(corpus: &Arc<Vec<u8>>, pattern: &[u8], workers: u32) -> SearchRun {
    let scanner = Arc::new(MemMem::new(pattern));
    let chunks = split_chunks(corpus.len(), workers as usize, scanner.overlap());
    let collector: Arc<Mutex<Vec<Match>>> = Arc::new(Mutex::new(Vec::new()));
    let mut joins = Vec::new();
    for c in chunks {
        let corpus = corpus.clone();
        let scanner = scanner.clone();
        let collector = collector.clone();
        // One "job" per chunk, like `parallel --pipepart grep`.
        joins.push(thread::spawn(move || {
            let mut local = Vec::new();
            scanner.find_into(
                &corpus[c.start..c.end],
                c.start as u64,
                c.min_end,
                &mut local,
            );
            // the single merged output stream
            collector.lock().unwrap().extend(local);
        }));
    }
    for j in joins {
        j.join().expect("grep job");
    }
    let mut matches = std::mem::take(&mut *collector.lock().unwrap());
    matches.sort_unstable();
    SearchRun { matches, workers }
}

/// Miniature Spark: driver, partitions, a shared task queue, `workers`
/// executor threads running Boyer-Moore, results collected at the driver.
pub struct SparkLike {
    /// Partitions per job (Spark default parallelism is O(100) tasks).
    pub partitions: usize,
}

impl Default for SparkLike {
    fn default() -> Self {
        SparkLike { partitions: 128 }
    }
}

impl SparkLike {
    /// Run the search job.
    pub fn run(&self, corpus: &Arc<Vec<u8>>, pattern: &[u8], workers: u32) -> SearchRun {
        let matcher = Arc::new(BoyerMoore::new(pattern));
        let tasks: Arc<Mutex<Vec<raft_algos::Chunk>>> = Arc::new(Mutex::new(split_chunks(
            corpus.len(),
            self.partitions,
            matcher.overlap(),
        )));
        let results: Arc<Mutex<Vec<Match>>> = Arc::new(Mutex::new(Vec::new()));
        let mut joins = Vec::new();
        for _ in 0..workers.max(1) {
            let corpus = corpus.clone();
            let matcher = matcher.clone();
            let tasks = tasks.clone();
            let results = results.clone();
            joins.push(thread::spawn(move || {
                loop {
                    // task fetch from the driver's queue
                    let task = tasks.lock().unwrap().pop();
                    let Some(c) = task else { break };
                    let mut local = Vec::new();
                    matcher.find_into(
                        &corpus[c.start..c.end],
                        c.start as u64,
                        c.min_end,
                        &mut local,
                    );
                    // shuffle/collect back to the driver
                    results.lock().unwrap().extend(local);
                }
            }));
        }
        for j in joins {
            j.join().expect("executor");
        }
        let mut matches = std::mem::take(&mut *results.lock().unwrap());
        matches.sort_unstable();
        SearchRun { matches, workers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raft_algos::corpus::{generate, CorpusSpec};

    fn corpus() -> (Arc<Vec<u8>>, Vec<u8>, usize) {
        let spec = CorpusSpec {
            size: 512 * 1024,
            matches_per_mb: 100.0,
            ..Default::default()
        };
        let c = generate(&spec);
        (Arc::new(c.data), c.needle, c.planted.len())
    }

    #[test]
    fn grep_parallel_counts_exactly() {
        let (data, needle, expected) = corpus();
        for workers in [1u32, 2, 4] {
            let run = grep_parallel(&data, &needle, workers);
            assert_eq!(run.matches.len(), expected, "workers={workers}");
        }
    }

    #[test]
    fn spark_like_counts_exactly() {
        let (data, needle, expected) = corpus();
        let engine = SparkLike::default();
        for workers in [1u32, 3] {
            let run = engine.run(&data, &needle, workers);
            assert_eq!(run.matches.len(), expected, "workers={workers}");
        }
    }

    #[test]
    fn engines_agree_with_each_other() {
        let (data, needle, _) = corpus();
        let a = grep_parallel(&data, &needle, 2);
        let b = SparkLike::default().run(&data, &needle, 2);
        assert_eq!(a.matches, b.matches);
    }

    #[test]
    fn single_partition_spark() {
        let (data, needle, expected) = corpus();
        let run = SparkLike { partitions: 1 }.run(&data, &needle, 4);
        assert_eq!(run.matches.len(), expected);
    }
}
