//! §5's algorithm-swap experiment: "Manually changing the algorithm RaftLib
//! used to Boyer-Moore-Horspool, the performance improved drastically ...
//! The change in performance when swapping algorithms indicates that the
//! algorithm itself (Aho-Corasick) was the bottleneck."
//!
//! The search kernel is an `AlgoSet` of {Aho-Corasick, Horspool} behind one
//! port signature (§4.2's synonymous kernel grouping). We scan the corpus
//! once with each fixed algorithm, then once swapping AC → BMH at the
//! halfway point, and report throughput for all three runs.
//!
//! ```sh
//! cargo run -p raft-bench --release --bin algo_swap [corpus_mb]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use raft_algos::corpus::{generate, CorpusSpec};
use raft_algos::{AhoCorasick, Horspool, Matcher};
use raft_bench::measure::gbps;
use raft_kernels::{ByteChunk, ByteChunkSource, Map};
use raftlib::prelude::*;

/// Search kernel over an injected matcher, counting bytes it scanned into a
/// shared counter (progress instrumentation for the swap trigger).
fn search_kernel(matcher: Arc<dyn Matcher>, scanned: Arc<AtomicU64>) -> impl Kernel {
    Map::new(move |chunk: ByteChunk| {
        let mut found = Vec::new();
        matcher.find_into(chunk.as_slice(), chunk.base(), chunk.min_end, &mut found);
        scanned.fetch_add(chunk.len() as u64, Ordering::Relaxed);
        found.len() as u64
    })
}

struct RunResult {
    secs: f64,
    matches: u64,
}

fn run(data: &Arc<Vec<u8>>, needle: &[u8], swap_at_half: bool, start_algo: usize) -> RunResult {
    let scanned = Arc::new(AtomicU64::new(0));
    let ac: Box<dyn Kernel> = Box::new(search_kernel(
        Arc::new(AhoCorasick::new(&[needle])),
        scanned.clone(),
    ));
    let bmh: Box<dyn Kernel> = Box::new(search_kernel(
        Arc::new(Horspool::new(needle)),
        scanned.clone(),
    ));
    let set = AlgoSet::new("search", vec![ac, bmh]);
    let switch = set.switch();
    switch.select(start_algo);

    let overlap = Horspool::new(needle)
        .overlap()
        .max(AhoCorasick::new(&[needle]).overlap());
    let mut map = RaftMap::new();
    let reader = map.add(ByteChunkSource::new(data.clone(), 1 << 20, overlap));
    let search = map.add(set);
    let (sum, matches) = raft_kernels::Fold::new(0u64, |acc: &mut u64, v: u64| *acc += v);
    let sink = map.add(sum);
    map.link(reader, "out", search, "in").expect("link");
    map.link(search, "out", sink, "in").expect("link");

    // Swap controller: when half the corpus has been scanned, switch to BMH.
    let total = data.len() as u64;
    let controller = swap_at_half.then(|| {
        let scanned = scanned.clone();
        std::thread::spawn(move || loop {
            if scanned.load(Ordering::Relaxed) >= total / 2 {
                switch.select(1); // BMH
                return;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        })
    });

    let t0 = Instant::now();
    map.exe().expect("run");
    let secs = t0.elapsed().as_secs_f64();
    if let Some(c) = controller {
        let _ = c.join();
    }
    let total_matches = *matches.lock().unwrap();
    RunResult {
        secs,
        matches: total_matches,
    }
}

fn main() {
    let corpus_mb: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(raft_bench::corpus_mb_default());
    eprintln!("generating {corpus_mb} MB corpus ...");
    let c = generate(&CorpusSpec {
        size: corpus_mb << 20,
        matches_per_mb: 10.0,
        ..Default::default()
    });
    let expected = c.planted.len() as u64;
    let data = Arc::new(c.data);
    let bytes = data.len();

    println!("§5 algorithm swap (corpus {corpus_mb} MB, single search kernel):");
    println!("{:-<64}", "");
    let mut rows = Vec::new();
    for (label, swap, start) in [
        ("Aho-Corasick only", false, 0),
        ("swap AC->BMH at 50%", true, 0),
        ("Horspool only", false, 1),
    ] {
        let r = run(&data, &c.needle, swap, start);
        assert_eq!(r.matches, expected, "{label} miscounted");
        println!(
            "{:<22} {:>8.3} s   {:>8.3} GB/s   matches={} ok",
            label,
            r.secs,
            gbps(bytes, std::time::Duration::from_secs_f64(r.secs)),
            r.matches
        );
        rows.push((label, r.secs));
    }
    println!("{:-<64}", "");
    let ac = rows[0].1;
    let swapped = rows[1].1;
    let bmh = rows[2].1;
    println!(
        "speedup swapping mid-run: {:.2}x over AC-only; full BMH: {:.2}x \
         (the AC automaton was the bottleneck, as in the paper)",
        ac / swapped,
        ac / bmh
    );
}
