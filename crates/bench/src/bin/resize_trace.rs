//  Config structs are assembled field-by-field in tests/benches for clarity.
#![allow(clippy::field_reassign_with_default)]
//! §4's dynamic queue resizing, traced.
//!
//! A bursty source (fast bursts separated by idle gaps — the paper's
//! "behavior that differs from the steady state") feeds a fixed-rate
//! consumer through a deliberately tiny queue. The monitor grows the queue
//! when the writer stalls ≥ 3δ and shrinks it again during quiet phases;
//! this harness dumps the resize log and the occupancy histogram the
//! monitor collected.
//!
//! ```sh
//! cargo run -p raft-bench --release --bin resize_trace
//! ```

use raft_kernels::{Count, Generate, Map};
use raftlib::prelude::*;

fn main() {
    const BURSTS: u64 = 12;
    const BURST_LEN: u64 = 4_000;

    let mut cfg = MapConfig::default();
    cfg.fifo = FifoConfig {
        initial_capacity: 4,
        max_capacity: 1 << 14,
        min_capacity: 4,
        ..Default::default()
    };
    cfg.monitor.delta = std::time::Duration::from_micros(100);
    cfg.monitor.shrink_after_ticks = 40; // shrink during the idle gaps
    let delta = cfg.monitor.delta;

    let mut map = RaftMap::with_config(cfg);
    // Bursty source: BURST_LEN items at full speed, then a 15 ms gap.
    let items = (0..BURSTS).flat_map(|b| (0..BURST_LEN).map(move |i| (b, i)));
    let src = map.add(
        Generate::new(items.map(|(b, i)| {
            if i == 0 && b > 0 {
                std::thread::sleep(std::time::Duration::from_millis(15));
            }
            b * BURST_LEN + i
        }))
        .with_batch(512),
    );
    // Consumer with a small fixed per-item cost.
    let work = map.add(Map::new(|x: u64| {
        std::hint::black_box((0..40).fold(x, |a, b| a.wrapping_add(b * x)))
    }));
    let (count, n) = Count::<u64>::new();
    let sink = map.add(count);
    map.link(src, "out", work, "in").expect("link");
    map.link(work, "out", sink, "in").expect("link");

    let report = map.exe().expect("run");
    assert_eq!(
        n.load(std::sync::atomic::Ordering::Relaxed),
        BURSTS * BURST_LEN
    );

    println!(
        "resize trace: {} bursts x {} items, δ = {:?}, elapsed {:?}",
        BURSTS, BURST_LEN, delta, report.elapsed
    );
    println!("{:-<72}", "");
    println!(
        "{:>10}  {:<34} {:>7} {:>7}  reason",
        "t", "edge", "from", "to"
    );
    println!("{:-<72}", "");
    for ev in &report.resize_events {
        println!(
            "{:>10.3?}  {:<34} {:>7} {:>7}  {:?}",
            ev.at, ev.edge_name, ev.old_capacity, ev.new_capacity, ev.reason
        );
    }
    println!("{:-<72}", "");
    let grows = report
        .resize_events
        .iter()
        .filter(|e| e.new_capacity > e.old_capacity)
        .count();
    let shrinks = report.resize_events.len() - grows;
    println!("{grows} grows, {shrinks} shrinks\n");

    for e in &report.edges {
        println!(
            "edge {:<40} final capacity {:>6}, mean occupancy {:>8.1}",
            e.name, e.stats.capacity, e.stats.mean_occupancy
        );
        // log2 occupancy histogram, rendered as bars
        let total: u64 = e.stats.occupancy_hist.iter().sum();
        if total == 0 {
            continue;
        }
        for (i, &count) in e.stats.occupancy_hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let label = if i == 0 {
                "0".to_string()
            } else {
                format!("{}..{}", 1usize << (i - 1), (1usize << i) - 1)
            };
            let bar = "#".repeat(((count as f64 / total as f64) * 50.0).ceil() as usize);
            println!("  occ {label:>12}: {bar} {count}");
        }
    }
}
