//! Table 1 — Summary of Benchmarking Hardware.
//!
//! Prints the paper's row and the detected equivalent for this host, so
//! every other harness's numbers can be read in context.
//!
//! ```sh
//! cargo run -p raft-bench --bin table1
//! ```

fn read_file(path: &str) -> Option<String> {
    std::fs::read_to_string(path).ok()
}

fn cpu_model() -> String {
    read_file("/proc/cpuinfo")
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .map(|l| l.split(':').nth(1).unwrap_or("?").trim().to_string())
        })
        .unwrap_or_else(|| "unknown CPU".to_string())
}

fn total_ram_gb() -> f64 {
    read_file("/proc/meminfo")
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("MemTotal")).map(|l| {
                let kb: f64 = l
                    .split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0);
                kb / 1024.0 / 1024.0
            })
        })
        .unwrap_or(0.0)
}

fn os_version() -> String {
    read_file("/proc/sys/kernel/osrelease")
        .map(|s| format!("Linux {}", s.trim()))
        .unwrap_or_else(|| std::env::consts::OS.to_string())
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("Table 1: Summary of Benchmarking Hardware");
    println!("{:-<78}", "");
    println!(
        "{:<34} {:>6} {:>9}  OS Version",
        "Processor", "Cores", "RAM"
    );
    println!("{:-<78}", "");
    println!(
        "{:<34} {:>6} {:>8}  Linux 2.6.32",
        "Intel Xeon E5-2650 (paper)", 16, "62 GB"
    );
    println!(
        "{:<34} {:>6} {:>5.0} GB  {}",
        cpu_model(),
        cores,
        total_ram_gb(),
        os_version()
    );
    println!("{:-<78}", "");
    println!(
        "note: measured series in the other harnesses use this host's {} core(s);\n\
         modeled series extrapolate to the paper's 16 with raft-model::scaling.",
        cores
    );
}
