//! Figure 10 — exact string-match throughput (GB/s) vs. utilized cores for
//! four systems: GNU grep + GNU Parallel, Apache Spark Boyer-Moore, RaftLib
//! Aho-Corasick, RaftLib Boyer-Moore-Horspool.
//!
//! Two series per system:
//!
//! * **measured** — real execution on this host with 1..=N worker threads
//!   (N = detected cores, override with the second argument); every run's
//!   match count is verified against the corpus ground truth;
//! * **modeled** — the paper's own flow-model methodology (§4.1, refs
//!   \[8,10\]): this host's measured single-core service rate pushed through
//!   `raft_model::scaling` to the paper's 16 cores, reproducing the
//!   figure's *shape* (who wins, crossovers, saturation) regardless of how
//!   many physical cores this machine has.
//!
//! ```sh
//! cargo run -p raft-bench --release --bin fig10_text_search [corpus_mb] [max_cores]
//! ```

use std::sync::Arc;
use std::time::Instant;

use raft_algos::corpus::{generate, CorpusSpec};
use raft_bench::comparators::{grep_parallel, SparkLike};
use raft_bench::measure::gbps;
use raft_bench::pipelines::{raftlib_search, search_matcher};
use raft_bench::{core_sweep, corpus_mb_default};
use raft_model::scaling::figure10;

fn main() {
    let corpus_mb: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(corpus_mb_default);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1);
    let max_cores: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(host_cores.max(4));

    eprintln!("generating {corpus_mb} MB corpus ...");
    let spec = CorpusSpec {
        size: corpus_mb << 20,
        matches_per_mb: 10.0,
        ..Default::default()
    };
    let corpus = generate(&spec);
    let expected = corpus.planted.len();
    let needle = corpus.needle.clone();
    let data = Arc::new(corpus.data);
    let bytes = data.len();
    eprintln!(
        "corpus ready: {bytes} bytes, {expected} planted matches, needle {:?}",
        String::from_utf8_lossy(&needle)
    );
    eprintln!("host cores: {host_cores}; sweeping 1..={max_cores} workers\n");

    let sweep = core_sweep(max_cores);
    let chunk = 1 << 20;

    println!("Figure 10 (measured on this host, {corpus_mb} MB corpus, GB/s):");
    println!("{:-<70}", "");
    println!(
        "{:>7} | {:>13} {:>13} {:>13} {:>13}",
        "cores", "grep+par", "spark(BM)", "raft(AC)", "raft(BMH)"
    );
    println!("{:-<70}", "");

    // single-core rates captured for the modeled series
    let mut single = [0.0f64; 4];

    for &k in &sweep {
        // (a) grep + GNU Parallel
        let t0 = Instant::now();
        let run = grep_parallel(&data, &needle, k);
        let g_grep = gbps(bytes, t0.elapsed());
        assert_eq!(run.matches.len(), expected, "grep_parallel miscounted");

        // (b) Spark-like Boyer-Moore
        let engine = SparkLike::default();
        let t0 = Instant::now();
        let run = engine.run(&data, &needle, k);
        let g_spark = gbps(bytes, t0.elapsed());
        assert_eq!(run.matches.len(), expected, "spark-like miscounted");

        // (c) RaftLib + Aho-Corasick
        let t0 = Instant::now();
        let (n, _) = raftlib_search(&data, search_matcher("ac", &needle), k, chunk);
        let g_ac = gbps(bytes, t0.elapsed());
        assert_eq!(n as usize, expected, "raft AC miscounted");

        // (d) RaftLib + Boyer-Moore-Horspool
        let t0 = Instant::now();
        let (n, _) = raftlib_search(&data, search_matcher("bmh", &needle), k, chunk);
        let g_bmh = gbps(bytes, t0.elapsed());
        assert_eq!(n as usize, expected, "raft BMH miscounted");

        if k == 1 {
            single = [g_grep, g_spark, g_ac, g_bmh];
        }
        println!(
            "{:>7} | {:>13.3} {:>13.3} {:>13.3} {:>13.3}",
            k, g_grep, g_spark, g_ac, g_bmh
        );
    }
    println!("{:-<70}", "");
    println!("all match counts verified against ground truth ({expected})\n");

    // ---- modeled series: this host's single-core rates, the paper's    ----
    // ---- scaling shapes, 1..16 cores                                   ----
    let models = [
        ("grep+par", figure10::grep_parallel(single[0])),
        ("spark(BM)", figure10::spark_boyer_moore(single[1])),
        ("raft(AC)", figure10::raftlib_aho_corasick(single[2])),
        ("raft(BMH)", figure10::raftlib_horspool(single[3])),
    ];
    println!("Figure 10 (modeled to 16 cores from measured single-core rates, GB/s):");
    println!("{:-<70}", "");
    println!(
        "{:>7} | {:>13} {:>13} {:>13} {:>13}",
        "cores", models[0].0, models[1].0, models[2].0, models[3].0
    );
    println!("{:-<70}", "");
    for k in 1..=16u32 {
        println!(
            "{:>7} | {:>13.3} {:>13.3} {:>13.3} {:>13.3}",
            k,
            models[0].1.throughput(k),
            models[1].1.throughput(k),
            models[2].1.throughput(k),
            models[3].1.throughput(k),
        );
    }
    println!("{:-<70}", "");

    // ---- the original figure, from the paper's own reported rates ---------
    let paper = [
        (
            "grep+par",
            figure10::grep_parallel(figure10::paper_rates::GREP),
        ),
        (
            "spark(BM)",
            figure10::spark_boyer_moore(figure10::paper_rates::SPARK),
        ),
        (
            "raft(AC)",
            figure10::raftlib_aho_corasick(figure10::paper_rates::RAFT_AC),
        ),
        (
            "raft(BMH)",
            figure10::raftlib_horspool(figure10::paper_rates::RAFT_BMH),
        ),
    ];
    println!("\nFigure 10 (paper's reported single-core rates, modeled, GB/s):");
    println!("{:-<70}", "");
    for k in [1u32, 2, 4, 8, 10, 12, 16] {
        println!(
            "{:>7} | {:>13.3} {:>13.3} {:>13.3} {:>13.3}",
            k,
            paper[0].1.throughput(k),
            paper[1].1.throughput(k),
            paper[2].1.throughput(k),
            paper[3].1.throughput(k),
        );
    }
    println!("{:-<70}", "");
    println!(
        "paper's reading holds: grep wins at 1 core ({:.2} GB/s), BMH saturates the\n\
         memory system near 10 cores (~{:.1} GB/s), Spark ~{:.1}, AC ~{:.1} at 16.",
        paper[0].1.throughput(1),
        paper[3].1.throughput(10),
        paper[1].1.throughput(16),
        paper[2].1.throughput(16),
    );
}
