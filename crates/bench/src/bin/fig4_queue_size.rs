//! Figure 4 — matrix-multiply execution time vs. per-queue buffer size.
//!
//! The paper streams a matrix-multiply application while sweeping the
//! (equal) size of every queue, plotting mean execution time with 5th/95th
//! percentile bands: undersized queues serialize the pipeline, and past
//! ~8 MB the time creeps up again and the variance widens (cache and
//! paging pressure).
//!
//! ```sh
//! cargo run -p raft-bench --release --bin fig4_queue_size [reps] [n_matrices] [dim]
//! ```
//!
//! Environment: `FIG4_REPS`, `FIG4_N`, `FIG4_DIM` override likewise.

use raft_bench::measure::{fmt_secs, sample};
use raft_bench::pipelines::matmul_pipeline;

fn arg_or(n: usize, env: &str, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .or_else(|| std::env::var(env).ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let reps = arg_or(1, "FIG4_REPS", 9);
    let n_matrices = arg_or(2, "FIG4_N", 48) as u64;
    let dim = arg_or(3, "FIG4_DIM", 96);

    // Element payload = one MatPair = 2 matrices of dim² f32.
    let pair_bytes = 2 * dim * dim * 4;
    println!("Figure 4: queue size vs execution time (matrix multiply)");
    println!(
        "workload: {n_matrices} multiplies of {dim}x{dim} f32 ({} KB per stream element), {reps} reps/point"
    , pair_bytes / 1024);
    println!("{:-<74}", "");
    println!(
        "{:>12} {:>12} | {:>10} {:>10} {:>10} {:>10}",
        "capacity", "bytes/queue", "mean s", "p5 s", "p95 s", "max s"
    );
    println!("{:-<74}", "");

    // Sweep capacities in elements; bytes = capacity × pair size. The
    // paper's x axis runs from KBs to tens of MBs.
    let mut rows = Vec::new();
    for cap in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
        let s = sample(reps, || {
            matmul_pipeline(n_matrices, dim, cap);
        });
        println!(
            "{:>12} {:>12} | {:>10} {:>10} {:>10} {:>10}",
            cap,
            cap * pair_bytes,
            fmt_secs(s.mean),
            fmt_secs(s.p5),
            fmt_secs(s.p95),
            fmt_secs(s.max),
        );
        rows.push((cap, s));
    }
    println!("{:-<74}", "");

    // Shape commentary matching the paper's reading of the figure.
    let best = rows.iter().min_by(|a, b| a.1.mean.cmp(&b.1.mean)).unwrap();
    let tiny = &rows[0];
    let huge = rows.last().unwrap();
    println!(
        "minimum at capacity {} ({} KB/queue); tiny queue ({}) is {:.2}x slower; \
         largest queue ({}) is {:.2}x the minimum",
        best.0,
        best.0 * pair_bytes / 1024,
        tiny.0,
        tiny.1.mean.as_secs_f64() / best.1.mean.as_secs_f64(),
        huge.0,
        huge.1.mean.as_secs_f64() / best.1.mean.as_secs_f64(),
    );
}
