#![warn(missing_docs)]

//! # raft-bench
//!
//! Harnesses regenerating every table and figure of the RaftLib PMAM'15
//! evaluation, plus the ablation benches DESIGN.md calls out.
//!
//! Binaries (each prints the rows/series its table or figure reports):
//!
//! | target | artifact |
//! |---|---|
//! | `table1` | Table 1 — benchmarking hardware |
//! | `fig4_queue_size` | Figure 4 — matmul execution time vs. queue size |
//! | `fig10_text_search` | Figure 10 — search throughput vs. cores, 4 systems |
//! | `algo_swap` | §5 — AC→BMH hot swap removing the bottleneck |
//! | `resize_trace` | §4 — dynamic queue resizing under bursty rates |
//!
//! Criterion benches: `fifo`, `ports`, `search`, `split_strategy`,
//! `monitor_overhead`, `sizing`.
//!
//! This library holds the shared pieces: the two comparator systems the
//! paper benchmarks against (re-implemented, see DESIGN.md §4
//! substitutions), measurement utilities, and the pipelines themselves.

pub mod comparators;
pub mod jsonout;
pub mod measure;
pub mod pipelines;

/// Default corpus size for text-search harnesses (MiB); override with the
/// first CLI argument or the `RAFT_BENCH_MB` environment variable.
pub fn corpus_mb_default() -> usize {
    std::env::var("RAFT_BENCH_MB")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Core counts to sweep; the paper uses 1–16. Measured series run the
/// sweep with real threads (documenting the host's true core count);
/// modeled series always cover 1–16.
pub fn core_sweep(max: u32) -> Vec<u32> {
    let mut v = vec![1u32];
    let mut c = 2;
    while c <= max {
        v.push(c);
        c += if c < 8 { 2 } else { 4 };
    }
    if *v.last().unwrap() != max {
        v.push(max);
    }
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_sweep_covers_endpoints() {
        assert_eq!(core_sweep(1), vec![1]);
        assert_eq!(core_sweep(16), vec![1, 2, 4, 6, 8, 12, 16]);
        assert_eq!(core_sweep(4), vec![1, 2, 4]);
        assert_eq!(core_sweep(3), vec![1, 2, 3]);
    }
}
