//! Hand-rolled JSON reports for the `--json` bench mode.
//!
//! `cargo bench -p raft-bench --bench fifo -- --json` (and `--bench ports`)
//! write `BENCH_fifo.json` / `BENCH_ports.json` at the repo root so the
//! performance trajectory of the hot path is recorded in-tree. Each report
//! carries the previous run's `results` object forward as `baseline`, which
//! is how a before/after pair ends up in one committed file: run once on the
//! old code, refactor, run again.
//!
//! No serde — the schema is a flat string→number map, so the writer is a
//! dozen lines and the "parser" for the carry-forward is balanced-brace
//! extraction.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A flat named-numbers report for one bench target.
pub struct JsonReport {
    bench: &'static str,
    results: Vec<(String, f64)>,
    notes: Vec<(String, String)>,
}

impl JsonReport {
    /// Start a report for bench target `bench` (e.g. `"fifo"`).
    pub fn new(bench: &'static str) -> Self {
        JsonReport {
            bench,
            results: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Record one named result (units belong in the key, e.g.
    /// `"pingpong_resizable_fifo_melems_per_s"`).
    pub fn push(&mut self, key: impl Into<String>, value: f64) {
        self.results.push((key.into(), value));
    }

    /// The results recorded so far (for gate modes that compare instead
    /// of writing).
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }

    /// Attach a prose annotation to a result key — investigation outcomes
    /// that should travel with the numbers (e.g. why an accepted
    /// regression is accepted). Notes live in the bench source, so they
    /// are re-emitted on every run rather than carried forward.
    pub fn note(&mut self, key: impl Into<String>, text: impl Into<String>) {
        self.notes.push((key.into(), text.into()));
    }

    /// Repo-root path of this report's output file (`BENCH_<bench>.json`).
    /// `RAFT_BENCH_DIR` overrides the directory (for CI and sandboxed
    /// runs that execute the harness from elsewhere).
    pub fn path(&self) -> PathBuf {
        let file = format!("BENCH_{}.json", self.bench);
        match std::env::var_os("RAFT_BENCH_DIR") {
            Some(dir) => PathBuf::from(dir).join(file),
            // crates/bench/ → repo root is two levels up.
            None => Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(file),
        }
    }

    /// Write the report, demoting any existing file's `results` to
    /// `baseline`. Returns the path written.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        let baseline = std::fs::read_to_string(&path)
            .ok()
            .and_then(|old| extract_object(&old, "results"));
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"bench\": \"{}\",", self.bench);
        out.push_str("  \"schema\": 1,\n");
        out.push_str("  \"results\": {\n");
        for (i, (k, v)) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(out, "    \"{k}\": {v:.3}{comma}");
        }
        out.push_str("  },\n");
        if !self.notes.is_empty() {
            out.push_str("  \"notes\": {\n");
            for (i, (k, v)) in self.notes.iter().enumerate() {
                let comma = if i + 1 == self.notes.len() { "" } else { "," };
                let _ = writeln!(out, "    \"{k}\": \"{}\"{comma}", v.replace('"', "'"));
            }
            out.push_str("  },\n");
        }
        match baseline {
            Some(b) => {
                let _ = writeln!(out, "  \"baseline\": {b}");
            }
            None => out.push_str("  \"baseline\": null\n"),
        }
        out.push_str("}\n");
        std::fs::write(&path, out)?;
        Ok(path)
    }
}

/// Parse the flat `"key": number` pairs out of a report's `results`
/// object. Tolerant of the writer's own formatting only — this is the
/// inverse of [`JsonReport::write`], not a JSON parser.
pub fn parse_results(src: &str) -> Vec<(String, f64)> {
    let Some(obj) = extract_object(src, "results") else {
        return Vec::new();
    };
    obj.lines()
        .filter_map(|line| {
            let (k, v) = line.trim().split_once(':')?;
            let k = k.trim().trim_matches('"');
            let v: f64 = v.trim().trim_end_matches(',').parse().ok()?;
            (!k.is_empty()).then(|| (k.to_string(), v))
        })
        .collect()
}

/// Compare fresh results against a committed reference: every key present
/// in both must not have regressed by more than `tolerance` (0.10 = 10%).
/// Returns one human-readable violation per regressed key; keys only on
/// one side are ignored (new benches are not regressions).
///
/// This is the FIFO regression gate: the committed `BENCH_fifo.json` is
/// the reference, a fresh `--assert-fifo` run is the candidate, and a
/// non-empty return fails the bench process.
pub fn compare_results(
    fresh: &[(String, f64)],
    reference: &[(String, f64)],
    tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    for (key, new) in fresh {
        let Some((_, old)) = reference.iter().find(|(k, _)| k == key) else {
            continue;
        };
        if *old > 0.0 && *new < *old * (1.0 - tolerance) {
            violations.push(format!(
                "{key}: {new:.1} vs reference {old:.1} ({:+.1}%, tolerance -{:.0}%)",
                (new / old - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    violations
}

/// Extract the balanced `{ ... }` object following `"key":` in `src`.
/// Good enough for this schema: values are numbers, no nested strings
/// containing braces.
fn extract_object(src: &str, key: &str) -> Option<String> {
    let at = src.find(&format!("\"{key}\""))?;
    let open = at + src[at..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in src[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(src[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Wall-clock throughput measurement for the `--json` mode: calls `f`
/// (which performs `elems_per_call` element transfers) until `min_time`
/// has elapsed, after a `warm` warm-up, and returns millions of elements
/// per second.
pub fn measure_melems_per_s(
    elems_per_call: u64,
    warm: std::time::Duration,
    min_time: std::time::Duration,
    mut f: impl FnMut(),
) -> f64 {
    let t0 = std::time::Instant::now();
    while t0.elapsed() < warm {
        f();
    }
    let t0 = std::time::Instant::now();
    let mut calls = 0u64;
    while t0.elapsed() < min_time {
        f();
        calls += 1;
    }
    let dt = t0.elapsed();
    let elems = (calls * elems_per_call) as f64;
    elems / dt.as_secs_f64() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_object_finds_results() {
        let src = r#"{ "bench": "x", "results": { "a": 1.0, "b": 2.5 }, "baseline": null }"#;
        let got = extract_object(src, "results").unwrap();
        assert_eq!(got, r#"{ "a": 1.0, "b": 2.5 }"#);
    }

    #[test]
    fn extract_object_missing_key_is_none() {
        assert!(extract_object("{}", "results").is_none());
    }

    #[test]
    fn parse_results_roundtrips_writer_format() {
        let src = "{\n  \"bench\": \"fifo\",\n  \"results\": {\n    \"a_melems\": 276.901,\n    \"b_melems\": 89.837\n  },\n  \"baseline\": null\n}\n";
        let got = parse_results(src);
        assert_eq!(
            got,
            vec![
                ("a_melems".to_string(), 276.901),
                ("b_melems".to_string(), 89.837)
            ]
        );
    }

    #[test]
    fn compare_results_flags_only_regressions_beyond_tolerance() {
        let reference = vec![
            ("steady".to_string(), 100.0),
            ("regressed".to_string(), 100.0),
            ("improved".to_string(), 100.0),
            ("gone".to_string(), 100.0),
        ];
        let fresh = vec![
            ("steady".to_string(), 91.0),    // -9%: inside 10% tolerance
            ("regressed".to_string(), 80.0), // -20%: flagged
            ("improved".to_string(), 150.0),
            ("brand_new".to_string(), 5.0), // no reference: ignored
        ];
        let v = compare_results(&fresh, &reference, 0.10);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].starts_with("regressed:"), "{v:?}");
    }

    #[test]
    fn notes_are_written_and_results_still_parse() {
        let mut r = JsonReport::new("notes_test");
        r.push("k_melems", 1.5);
        r.note("k_melems", "an \"annotated\" result");
        std::env::set_var("RAFT_BENCH_DIR", std::env::temp_dir());
        let path = r.write().unwrap();
        std::env::remove_var("RAFT_BENCH_DIR");
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("\"notes\""));
        assert!(text.contains("an 'annotated' result"));
        assert_eq!(parse_results(&text), vec![("k_melems".to_string(), 1.5)]);
    }
}
