//! Hand-rolled JSON reports for the `--json` bench mode.
//!
//! `cargo bench -p raft-bench --bench fifo -- --json` (and `--bench ports`)
//! write `BENCH_fifo.json` / `BENCH_ports.json` at the repo root so the
//! performance trajectory of the hot path is recorded in-tree. Each report
//! carries the previous run's `results` object forward as `baseline`, which
//! is how a before/after pair ends up in one committed file: run once on the
//! old code, refactor, run again.
//!
//! No serde — the schema is a flat string→number map, so the writer is a
//! dozen lines and the "parser" for the carry-forward is balanced-brace
//! extraction.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A flat named-numbers report for one bench target.
pub struct JsonReport {
    bench: &'static str,
    results: Vec<(String, f64)>,
}

impl JsonReport {
    /// Start a report for bench target `bench` (e.g. `"fifo"`).
    pub fn new(bench: &'static str) -> Self {
        JsonReport {
            bench,
            results: Vec::new(),
        }
    }

    /// Record one named result (units belong in the key, e.g.
    /// `"pingpong_resizable_fifo_melems_per_s"`).
    pub fn push(&mut self, key: impl Into<String>, value: f64) {
        self.results.push((key.into(), value));
    }

    /// Repo-root path of this report's output file (`BENCH_<bench>.json`).
    /// `RAFT_BENCH_DIR` overrides the directory (for CI and sandboxed
    /// runs that execute the harness from elsewhere).
    pub fn path(&self) -> PathBuf {
        let file = format!("BENCH_{}.json", self.bench);
        match std::env::var_os("RAFT_BENCH_DIR") {
            Some(dir) => PathBuf::from(dir).join(file),
            // crates/bench/ → repo root is two levels up.
            None => Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(file),
        }
    }

    /// Write the report, demoting any existing file's `results` to
    /// `baseline`. Returns the path written.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        let baseline = std::fs::read_to_string(&path)
            .ok()
            .and_then(|old| extract_object(&old, "results"));
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"bench\": \"{}\",", self.bench);
        out.push_str("  \"schema\": 1,\n");
        out.push_str("  \"results\": {\n");
        for (i, (k, v)) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(out, "    \"{k}\": {v:.3}{comma}");
        }
        out.push_str("  },\n");
        match baseline {
            Some(b) => {
                let _ = writeln!(out, "  \"baseline\": {b}");
            }
            None => out.push_str("  \"baseline\": null\n"),
        }
        out.push_str("}\n");
        std::fs::write(&path, out)?;
        Ok(path)
    }
}

/// Extract the balanced `{ ... }` object following `"key":` in `src`.
/// Good enough for this schema: values are numbers, no nested strings
/// containing braces.
fn extract_object(src: &str, key: &str) -> Option<String> {
    let at = src.find(&format!("\"{key}\""))?;
    let open = at + src[at..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in src[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(src[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Wall-clock throughput measurement for the `--json` mode: calls `f`
/// (which performs `elems_per_call` element transfers) until `min_time`
/// has elapsed, after a `warm` warm-up, and returns millions of elements
/// per second.
pub fn measure_melems_per_s(
    elems_per_call: u64,
    warm: std::time::Duration,
    min_time: std::time::Duration,
    mut f: impl FnMut(),
) -> f64 {
    let t0 = std::time::Instant::now();
    while t0.elapsed() < warm {
        f();
    }
    let t0 = std::time::Instant::now();
    let mut calls = 0u64;
    while t0.elapsed() < min_time {
        f();
        calls += 1;
    }
    let dt = t0.elapsed();
    let elems = (calls * elems_per_call) as f64;
    elems / dt.as_secs_f64() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_object_finds_results() {
        let src = r#"{ "bench": "x", "results": { "a": 1.0, "b": 2.5 }, "baseline": null }"#;
        let got = extract_object(src, "results").unwrap();
        assert_eq!(got, r#"{ "a": 1.0, "b": 2.5 }"#);
    }

    #[test]
    fn extract_object_missing_key_is_none() {
        assert!(extract_object("{}", "results").is_none());
    }
}
