//! The RaftLib-side pipelines the harnesses execute.

use std::sync::Arc;

use raft_algos::matmul::{MatPair, Matrix};
use raft_algos::{AhoCorasick, Horspool, Match, Matcher};
use raft_kernels::{ByteChunk, ByteChunkSource};
use raft_kernels::{Count, Fold, Generate, Map, SliceMap};
use raftlib::prelude::*;

/// Figure 8/9 topology: filereader → search×width → reduce. Returns
/// `(match count, execution report)`.
pub fn raftlib_search(
    corpus: &Arc<Vec<u8>>,
    matcher: Arc<dyn Matcher>,
    width: u32,
    chunk_size: usize,
) -> (u64, ExeReport) {
    let overlap = matcher.overlap();
    // Keep chunk descriptor queues modest; payloads are zero-copy.
    let cfg = MapConfig {
        fifo: FifoConfig::starting_at(16),
        ..Default::default()
    };
    let mut map = RaftMap::with_config(cfg);
    let filereader = map.add(ByteChunkSource::new(corpus.clone(), chunk_size, overlap));
    // Chunk descriptors are scanned by reference straight from the input
    // ring (SliceMap's pop_slice view) — no per-descriptor pop, and the
    // queue protocol is paid once per batch of chunks.
    let search = map.add(
        SliceMap::new(move |chunk: &ByteChunk| {
            let mut found: Vec<Match> = Vec::new();
            matcher.find_into(chunk.as_slice(), chunk.base(), chunk.min_end, &mut found);
            found.len() as u64
        })
        .with_batch(8),
    );
    let (fold, total) = Fold::new(0u64, |acc: &mut u64, v: u64| *acc += v);
    let sink = map.add(fold);
    map.link_unordered(filereader, "out", search, "in")
        .expect("link search");
    map.link_unordered(search, "out", sink, "in")
        .expect("link fold");
    map.prefer_width(search, width);
    let report = map.exe().expect("raftlib search run");
    let n = *total.lock().unwrap();
    (n, report)
}

/// Build the searcher for Figure 10's RaftLib series.
pub fn search_matcher(kind: &str, needle: &[u8]) -> Arc<dyn Matcher> {
    match kind {
        "ac" => Arc::new(AhoCorasick::new(&[needle])),
        "bmh" => Arc::new(Horspool::new(needle)),
        other => panic!("unknown matcher {other:?}"),
    }
}

/// Items pushed through the `ports` depth-series pipeline.
pub const DEPTH_ITEMS: u64 = 100_000;

/// Batch size the fused depth series runs with; recorded in the JSON
/// report so the file is self-describing.
pub const DEPTH_FUSION_BATCH: usize = 512;

/// The `ports` depth-series pipeline: `Generate → Map×depth → Count`, all
/// queues fixed at 1024 elements, monitor off — the per-hop overhead
/// microbenchmark. `fusion` selects whether the map chain is collapsed by
/// the fusion pass, so fused and unfused runs are measured in the same
/// process on the same build. Returns the end-to-end wall time.
pub fn depth_pipeline(depth: usize, fusion: bool, batch: usize) -> std::time::Duration {
    let cfg = MapConfig {
        monitor: MonitorConfig::disabled(),
        fifo: FifoConfig::fixed(1024),
        ..Default::default()
    };
    let mut map = RaftMap::with_config(cfg);
    let src = map.add(Generate::new(0..DEPTH_ITEMS).with_batch(512));
    let mut prev = src;
    for _ in 0..depth {
        let stage = map.add(Map::new(|x: u64| x.wrapping_add(1)));
        map.connect(prev, stage).expect("link stage");
        prev = stage;
    }
    let (count, n) = Count::<u64>::new();
    let sink = map.add(count);
    map.connect(prev, sink).expect("link sink");
    let report = map
        .exe_opts(ExeOpts {
            fusion: Some(fusion),
            fusion_batch: Some(batch),
            deadline: None,
        })
        .expect("depth pipeline run");
    assert_eq!(n.load(std::sync::atomic::Ordering::Relaxed), DEPTH_ITEMS);
    if fusion && depth >= 2 {
        assert_eq!(
            report.fused.len(),
            1,
            "depth {depth}: map chain should fuse"
        );
    }
    report.elapsed
}

/// One row of the depth series: `(depth, unfused Melem/s, fused Melem/s)`.
pub type DepthRow = (usize, f64, f64);

/// The depth series behind `BENCH_ports.json`: measures every depth both
/// unfused and fused (best of three after a warm-up run), writes the
/// report, and returns `(path, rows)`.
pub fn ports_json_series() -> std::io::Result<(std::path::PathBuf, Vec<DepthRow>)> {
    let mut report = crate::jsonout::JsonReport::new("ports");
    report.push("fusion_batch", DEPTH_FUSION_BATCH as f64);
    let mut rows = Vec::new();
    for depth in [0usize, 1, 2, 4] {
        let rate = |fused: bool| {
            let _ = depth_pipeline(depth, fused, DEPTH_FUSION_BATCH); // warm-up
            let best = (0..3)
                .map(|_| depth_pipeline(depth, fused, DEPTH_FUSION_BATCH))
                .min()
                .expect("at least one run");
            DEPTH_ITEMS as f64 / best.as_secs_f64() / 1e6
        };
        let unfused = rate(false);
        let fused = rate(true);
        report.push(format!("pipeline_depth_{depth}_melems_per_s"), unfused);
        report.push(format!("pipeline_depth_{depth}_fused_melems_per_s"), fused);
        rows.push((depth, unfused, fused));
    }
    let path = report.write()?;
    Ok((path, rows))
}

/// CI gate for the fusion pass: at every depth ≥ 2 (the depths where a
/// fusable chain exists) the fused series must not lose to the unfused
/// one measured in the same run.
pub fn assert_fusion_wins(rows: &[(usize, f64, f64)]) -> Result<(), String> {
    for &(depth, unfused, fused) in rows {
        if depth >= 2 && fused < unfused {
            return Err(format!(
                "fusion regressed at depth {depth}: fused {fused:.3} < unfused {unfused:.3} Melem/s"
            ));
        }
    }
    Ok(())
}

/// Items pushed through the supervision/journal overhead pipeline.
pub const SUPERVISION_ITEMS: u64 = 2_000_000;

/// The supervision-ablation pipeline: `lambda_source → lambda_sink`, one
/// stream. `supervised` arms Restart policies (policy bookkeeping in the
/// step loop), `watchdog` arms the deadline/stall scans, and `journaled`
/// puts an exactly-once replay journal on the link — the fault-free cost
/// of the recovery contract (per-pop clone + record, per-run commit).
/// Returns the elements observed by the sink.
pub fn supervision_pipeline(supervised: bool, watchdog: bool, journaled: bool) -> u64 {
    let mut map = RaftMap::new();
    let mut i = 0u64;
    let src = map.add(lambda_source(move || {
        i += 1;
        (i <= SUPERVISION_ITEMS).then_some(i)
    }));
    let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sink_counter = counter.clone();
    let dst = map.add(lambda_sink(move |_v: u64| {
        sink_counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }));
    if journaled {
        let cfg = FifoConfig {
            journal: Some(JournalConfig::default()),
            ..FifoConfig::default()
        };
        map.link_with(src, "0", dst, "0", cfg).unwrap();
    } else {
        map.link(src, "0", dst, "0").unwrap();
    }
    if supervised {
        map.supervise(src, SupervisorPolicy::restart(3));
        map.supervise(dst, SupervisorPolicy::restart(3));
    }
    if watchdog {
        map.config_mut().monitor = MonitorConfig::default()
            .with_run_budget(std::time::Duration::from_secs(10))
            .with_stall_timeout(std::time::Duration::from_secs(10));
    }
    map.exe().unwrap();
    counter.load(std::sync::atomic::Ordering::Relaxed)
}

/// One timed supervision-pipeline execution, as Melems/s.
pub fn supervision_rate(supervised: bool, watchdog: bool, journaled: bool) -> f64 {
    let t0 = std::time::Instant::now();
    assert_eq!(
        supervision_pipeline(supervised, watchdog, journaled),
        SUPERVISION_ITEMS
    );
    SUPERVISION_ITEMS as f64 / t0.elapsed().as_secs_f64() / 1e6
}

/// Best-of-N rates of the four supervision variants, in Melems/s:
/// `(baseline, supervised, watchdog, journaled)`.
pub type SupervisionRates = (f64, f64, f64, f64);

/// The series behind `BENCH_supervision.json`: interleaved best-of-N rates
/// (peak rate is far more stable than a mean across whole-map executions,
/// which carry thread-spawn and scheduler noise) plus derived overhead
/// percentages. Returns `(path, rates)`.
pub fn supervision_json_series() -> std::io::Result<(std::path::PathBuf, SupervisionRates)> {
    // (supervised, watchdog, journaled) per variant.
    const VARIANTS: [(bool, bool, bool); 4] = [
        (false, false, false),
        (true, false, false),
        (true, true, false),
        (true, false, true),
    ];
    // warm-up round for allocator/monitor caches
    for &(s, w, j) in &VARIANTS {
        let _ = supervision_rate(s, w, j);
    }
    let mut best = [0.0f64; 4];
    for _ in 0..8 {
        for (idx, &(s, w, j)) in VARIANTS.iter().enumerate() {
            best[idx] = best[idx].max(supervision_rate(s, w, j));
        }
    }
    let [baseline, supervised, watchdog, journaled] = best;

    let mut report = crate::jsonout::JsonReport::new("supervision");
    report.push("pipeline_baseline_melems_per_s", baseline);
    report.push("pipeline_supervised_melems_per_s", supervised);
    report.push("pipeline_watchdog_melems_per_s", watchdog);
    report.push("pipeline_journaled_melems_per_s", journaled);
    report.push(
        "supervised_overhead_percent",
        (baseline - supervised) / baseline * 100.0,
    );
    report.push(
        "watchdog_overhead_percent",
        (baseline - watchdog) / baseline * 100.0,
    );
    report.push(
        "journaled_overhead_percent",
        (supervised - journaled) / supervised * 100.0,
    );
    let path = report.write()?;
    Ok((path, (baseline, supervised, watchdog, journaled)))
}

/// CI gate for the recovery contract's fault-free cost: journaling every
/// link must stay within 5% of the same supervised pipeline without a
/// journal, measured in the same process.
pub fn assert_journal_overhead(rates: &SupervisionRates) -> Result<(), String> {
    let (_, supervised, _, journaled) = *rates;
    let overhead = (supervised - journaled) / supervised * 100.0;
    if overhead >= 5.0 {
        return Err(format!(
            "journal fault-free overhead {overhead:.2}% >= 5% budget \
             (supervised {supervised:.3} vs journaled {journaled:.3} Melem/s)"
        ));
    }
    Ok(())
}

/// Figure 4 pipeline: generate matrix pairs → multiply → count, all queues
/// fixed to `capacity` elements (resizing disabled: the experiment measures
/// the effect of the static size). Returns the wall time.
pub fn matmul_pipeline(n_matrices: u64, dim: usize, capacity: usize) -> std::time::Duration {
    let cfg = MapConfig {
        fifo: FifoConfig::fixed(capacity),
        monitor: MonitorConfig::disabled(),
        ..Default::default()
    };
    let mut map = RaftMap::with_config(cfg);
    let src = map
        .add(Generate::new((0..n_matrices).map(move |i| MatPair::generate(dim, i))).with_batch(4));
    let mul = map.add(Map::new(move |p: MatPair| p.run(64)));
    let (count, _n) = Count::<Matrix>::new();
    let sink = map.add(count);
    map.link(src, "out", mul, "in").expect("link mul");
    map.link(mul, "out", sink, "in").expect("link sink");
    let report = map.exe().expect("matmul run");
    report.elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use raft_algos::corpus::{generate, CorpusSpec};

    #[test]
    fn raftlib_search_exact_counts_both_algorithms() {
        let spec = CorpusSpec {
            size: 256 * 1024,
            matches_per_mb: 150.0,
            ..Default::default()
        };
        let c = generate(&spec);
        let expected = c.planted.len() as u64;
        let data = Arc::new(c.data);
        for kind in ["ac", "bmh"] {
            for width in [1u32, 2] {
                let matcher = search_matcher(kind, &c.needle);
                let (n, report) = raftlib_search(&data, matcher, width, 32 * 1024);
                assert_eq!(n, expected, "kind={kind} width={width}");
                if width > 1 {
                    assert_eq!(report.replicated.len(), 1);
                }
            }
        }
    }

    #[test]
    fn matmul_pipeline_runs() {
        let dt = matmul_pipeline(8, 16, 4);
        assert!(dt.as_nanos() > 0);
    }

    #[test]
    fn depth_pipeline_runs_fused_and_unfused() {
        // the fused run's internal assertions check the chain actually
        // collapsed and the count still lands
        assert!(depth_pipeline(2, false, 512).as_nanos() > 0);
        assert!(depth_pipeline(2, true, 512).as_nanos() > 0);
        assert!(depth_pipeline(0, true, 512).as_nanos() > 0);
    }

    #[test]
    fn assert_fusion_wins_flags_regressions() {
        assert!(assert_fusion_wins(&[(2, 1.0, 5.0), (4, 1.0, 9.0)]).is_ok());
        // depth < 2 has no fusable chain; never gated
        assert!(assert_fusion_wins(&[(0, 5.0, 4.0)]).is_ok());
        assert!(assert_fusion_wins(&[(2, 5.0, 4.0)]).is_err());
    }
}
