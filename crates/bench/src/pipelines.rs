//! The RaftLib-side pipelines the harnesses execute.

use std::sync::Arc;

use raft_algos::matmul::{MatPair, Matrix};
use raft_algos::{AhoCorasick, Horspool, Match, Matcher};
use raft_kernels::{ByteChunk, ByteChunkSource};
use raft_kernels::{Count, Fold, Generate, Map, SliceMap};
use raftlib::prelude::*;

/// Figure 8/9 topology: filereader → search×width → reduce. Returns
/// `(match count, execution report)`.
pub fn raftlib_search(
    corpus: &Arc<Vec<u8>>,
    matcher: Arc<dyn Matcher>,
    width: u32,
    chunk_size: usize,
) -> (u64, ExeReport) {
    let overlap = matcher.overlap();
    // Keep chunk descriptor queues modest; payloads are zero-copy.
    let cfg = MapConfig {
        fifo: FifoConfig::starting_at(16),
        ..Default::default()
    };
    let mut map = RaftMap::with_config(cfg);
    let filereader = map.add(ByteChunkSource::new(corpus.clone(), chunk_size, overlap));
    // Chunk descriptors are scanned by reference straight from the input
    // ring (SliceMap's pop_slice view) — no per-descriptor pop, and the
    // queue protocol is paid once per batch of chunks.
    let search = map.add(
        SliceMap::new(move |chunk: &ByteChunk| {
            let mut found: Vec<Match> = Vec::new();
            matcher.find_into(chunk.as_slice(), chunk.base(), chunk.min_end, &mut found);
            found.len() as u64
        })
        .with_batch(8),
    );
    let (fold, total) = Fold::new(0u64, |acc: &mut u64, v: u64| *acc += v);
    let sink = map.add(fold);
    map.link_unordered(filereader, "out", search, "in")
        .expect("link search");
    map.link_unordered(search, "out", sink, "in")
        .expect("link fold");
    map.prefer_width(search, width);
    let report = map.exe().expect("raftlib search run");
    let n = *total.lock().unwrap();
    (n, report)
}

/// Build the searcher for Figure 10's RaftLib series.
pub fn search_matcher(kind: &str, needle: &[u8]) -> Arc<dyn Matcher> {
    match kind {
        "ac" => Arc::new(AhoCorasick::new(&[needle])),
        "bmh" => Arc::new(Horspool::new(needle)),
        other => panic!("unknown matcher {other:?}"),
    }
}

/// Figure 4 pipeline: generate matrix pairs → multiply → count, all queues
/// fixed to `capacity` elements (resizing disabled: the experiment measures
/// the effect of the static size). Returns the wall time.
pub fn matmul_pipeline(n_matrices: u64, dim: usize, capacity: usize) -> std::time::Duration {
    let cfg = MapConfig {
        fifo: FifoConfig::fixed(capacity),
        monitor: MonitorConfig::disabled(),
        ..Default::default()
    };
    let mut map = RaftMap::with_config(cfg);
    let src = map
        .add(Generate::new((0..n_matrices).map(move |i| MatPair::generate(dim, i))).with_batch(4));
    let mul = map.add(Map::new(move |p: MatPair| p.run(64)));
    let (count, _n) = Count::<Matrix>::new();
    let sink = map.add(count);
    map.link(src, "out", mul, "in").expect("link mul");
    map.link(mul, "out", sink, "in").expect("link sink");
    let report = map.exe().expect("matmul run");
    report.elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use raft_algos::corpus::{generate, CorpusSpec};

    #[test]
    fn raftlib_search_exact_counts_both_algorithms() {
        let spec = CorpusSpec {
            size: 256 * 1024,
            matches_per_mb: 150.0,
            ..Default::default()
        };
        let c = generate(&spec);
        let expected = c.planted.len() as u64;
        let data = Arc::new(c.data);
        for kind in ["ac", "bmh"] {
            for width in [1u32, 2] {
                let matcher = search_matcher(kind, &c.needle);
                let (n, report) = raftlib_search(&data, matcher, width, 32 * 1024);
                assert_eq!(n, expected, "kind={kind} width={width}");
                if width > 1 {
                    assert_eq!(report.replicated.len(), 1);
                }
            }
        }
    }

    #[test]
    fn matmul_pipeline_runs() {
        let dt = matmul_pipeline(8, 16, 4);
        assert!(dt.as_nanos() > 0);
    }
}
