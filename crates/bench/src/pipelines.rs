//! The RaftLib-side pipelines the harnesses execute.

use std::sync::Arc;

use raft_algos::matmul::{MatPair, Matrix};
use raft_algos::{AhoCorasick, Horspool, Match, Matcher};
use raft_kernels::{ByteChunk, ByteChunkSource};
use raft_kernels::{Count, Fold, Generate, Map, SliceMap};
use raftlib::prelude::*;

/// Figure 8/9 topology: filereader → search×width → reduce. Returns
/// `(match count, execution report)`.
pub fn raftlib_search(
    corpus: &Arc<Vec<u8>>,
    matcher: Arc<dyn Matcher>,
    width: u32,
    chunk_size: usize,
) -> (u64, ExeReport) {
    let overlap = matcher.overlap();
    // Keep chunk descriptor queues modest; payloads are zero-copy.
    let cfg = MapConfig {
        fifo: FifoConfig::starting_at(16),
        ..Default::default()
    };
    let mut map = RaftMap::with_config(cfg);
    let filereader = map.add(ByteChunkSource::new(corpus.clone(), chunk_size, overlap));
    // Chunk descriptors are scanned by reference straight from the input
    // ring (SliceMap's pop_slice view) — no per-descriptor pop, and the
    // queue protocol is paid once per batch of chunks.
    let search = map.add(
        SliceMap::new(move |chunk: &ByteChunk| {
            let mut found: Vec<Match> = Vec::new();
            matcher.find_into(chunk.as_slice(), chunk.base(), chunk.min_end, &mut found);
            found.len() as u64
        })
        .with_batch(8),
    );
    let (fold, total) = Fold::new(0u64, |acc: &mut u64, v: u64| *acc += v);
    let sink = map.add(fold);
    map.link_unordered(filereader, "out", search, "in")
        .expect("link search");
    map.link_unordered(search, "out", sink, "in")
        .expect("link fold");
    map.prefer_width(search, width);
    let report = map.exe().expect("raftlib search run");
    let n = *total.lock().unwrap();
    (n, report)
}

/// Build the searcher for Figure 10's RaftLib series.
pub fn search_matcher(kind: &str, needle: &[u8]) -> Arc<dyn Matcher> {
    match kind {
        "ac" => Arc::new(AhoCorasick::new(&[needle])),
        "bmh" => Arc::new(Horspool::new(needle)),
        other => panic!("unknown matcher {other:?}"),
    }
}

/// Items pushed through the `ports` depth-series pipeline.
pub const DEPTH_ITEMS: u64 = 100_000;

/// Batch size the fused depth series runs with; recorded in the JSON
/// report so the file is self-describing.
pub const DEPTH_FUSION_BATCH: usize = 512;

/// The `ports` depth-series pipeline: `Generate → Map×depth → Count`, all
/// queues fixed at 1024 elements, monitor off — the per-hop overhead
/// microbenchmark. `fusion` selects whether the map chain is collapsed by
/// the fusion pass, so fused and unfused runs are measured in the same
/// process on the same build. Returns the end-to-end wall time.
pub fn depth_pipeline(depth: usize, fusion: bool, batch: usize) -> std::time::Duration {
    let cfg = MapConfig {
        monitor: MonitorConfig::disabled(),
        fifo: FifoConfig::fixed(1024),
        ..Default::default()
    };
    let mut map = RaftMap::with_config(cfg);
    let src = map.add(Generate::new(0..DEPTH_ITEMS).with_batch(512));
    let mut prev = src;
    for _ in 0..depth {
        let stage = map.add(Map::new(|x: u64| x.wrapping_add(1)));
        map.connect(prev, stage).expect("link stage");
        prev = stage;
    }
    let (count, n) = Count::<u64>::new();
    let sink = map.add(count);
    map.connect(prev, sink).expect("link sink");
    let report = map
        .exe_opts(ExeOpts {
            fusion: Some(fusion),
            fusion_batch: Some(batch),
            deadline: None,
        })
        .expect("depth pipeline run");
    assert_eq!(n.load(std::sync::atomic::Ordering::Relaxed), DEPTH_ITEMS);
    if fusion && depth >= 2 {
        assert_eq!(
            report.fused.len(),
            1,
            "depth {depth}: map chain should fuse"
        );
    }
    report.elapsed
}

/// One row of the depth series: `(depth, unfused Melem/s, fused Melem/s)`.
pub type DepthRow = (usize, f64, f64);

/// The depth series behind `BENCH_ports.json`: measures every depth both
/// unfused and fused (best of three after a warm-up run), writes the
/// report, and returns `(path, rows)`.
pub fn ports_json_series() -> std::io::Result<(std::path::PathBuf, Vec<DepthRow>)> {
    let mut report = crate::jsonout::JsonReport::new("ports");
    report.push("fusion_batch", DEPTH_FUSION_BATCH as f64);
    let mut rows = Vec::new();
    for depth in [0usize, 1, 2, 4] {
        let rate = |fused: bool| {
            let _ = depth_pipeline(depth, fused, DEPTH_FUSION_BATCH); // warm-up
            let best = (0..3)
                .map(|_| depth_pipeline(depth, fused, DEPTH_FUSION_BATCH))
                .min()
                .expect("at least one run");
            DEPTH_ITEMS as f64 / best.as_secs_f64() / 1e6
        };
        let unfused = rate(false);
        let fused = rate(true);
        report.push(format!("pipeline_depth_{depth}_melems_per_s"), unfused);
        report.push(format!("pipeline_depth_{depth}_fused_melems_per_s"), fused);
        rows.push((depth, unfused, fused));
    }
    let path = report.write()?;
    Ok((path, rows))
}

/// CI gate for the fusion pass: at every depth ≥ 2 (the depths where a
/// fusable chain exists) the fused series must not lose to the unfused
/// one measured in the same run.
pub fn assert_fusion_wins(rows: &[(usize, f64, f64)]) -> Result<(), String> {
    for &(depth, unfused, fused) in rows {
        if depth >= 2 && fused < unfused {
            return Err(format!(
                "fusion regressed at depth {depth}: fused {fused:.3} < unfused {unfused:.3} Melem/s"
            ));
        }
    }
    Ok(())
}

/// Items pushed through the supervision/journal overhead pipeline.
pub const SUPERVISION_ITEMS: u64 = 2_000_000;

/// The supervision-ablation pipeline: `lambda_source → lambda_sink`, one
/// stream. `supervised` arms Restart policies (policy bookkeeping in the
/// step loop), `watchdog` arms the deadline/stall scans, and `journaled`
/// puts an exactly-once replay journal on the link — the fault-free cost
/// of the recovery contract (per-pop clone + record, per-run commit).
/// Returns the elements observed by the sink.
pub fn supervision_pipeline(supervised: bool, watchdog: bool, journaled: bool) -> u64 {
    let mut map = RaftMap::new();
    let mut i = 0u64;
    let src = map.add(lambda_source(move || {
        i += 1;
        (i <= SUPERVISION_ITEMS).then_some(i)
    }));
    let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sink_counter = counter.clone();
    let dst = map.add(lambda_sink(move |_v: u64| {
        sink_counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }));
    if journaled {
        let cfg = FifoConfig {
            journal: Some(JournalConfig::default()),
            ..FifoConfig::default()
        };
        map.link_with(src, "0", dst, "0", cfg).unwrap();
    } else {
        map.link(src, "0", dst, "0").unwrap();
    }
    if supervised {
        map.supervise(src, SupervisorPolicy::restart(3));
        map.supervise(dst, SupervisorPolicy::restart(3));
    }
    if watchdog {
        map.config_mut().monitor = MonitorConfig::default()
            .with_run_budget(std::time::Duration::from_secs(10))
            .with_stall_timeout(std::time::Duration::from_secs(10));
    }
    map.exe().unwrap();
    counter.load(std::sync::atomic::Ordering::Relaxed)
}

/// One timed supervision-pipeline execution, as Melems/s.
pub fn supervision_rate(supervised: bool, watchdog: bool, journaled: bool) -> f64 {
    let t0 = std::time::Instant::now();
    assert_eq!(
        supervision_pipeline(supervised, watchdog, journaled),
        SUPERVISION_ITEMS
    );
    SUPERVISION_ITEMS as f64 / t0.elapsed().as_secs_f64() / 1e6
}

/// Best-of-N rates of the four supervision variants, in Melems/s:
/// `(baseline, supervised, watchdog, journaled)`.
pub type SupervisionRates = (f64, f64, f64, f64);

/// The series behind `BENCH_supervision.json`: interleaved best-of-N rates
/// (peak rate is far more stable than a mean across whole-map executions,
/// which carry thread-spawn and scheduler noise) plus derived overhead
/// percentages. `include_proc` adds the cross-process series — supervised
/// worker process vs bare fork — and is only valid from a binary that
/// understands `RAFT_BENCH_PROC_WORKER` (the supervision bench). Returns
/// `(path, rates, proc_rates)`.
pub fn supervision_json_series(
    include_proc: bool,
) -> std::io::Result<(std::path::PathBuf, SupervisionRates, ProcRates)> {
    // (supervised, watchdog, journaled) per variant.
    const VARIANTS: [(bool, bool, bool); 4] = [
        (false, false, false),
        (true, false, false),
        (true, true, false),
        (true, false, true),
    ];
    // warm-up round for allocator/monitor caches
    for &(s, w, j) in &VARIANTS {
        let _ = supervision_rate(s, w, j);
    }
    let mut best = [0.0f64; 4];
    for _ in 0..8 {
        for (idx, &(s, w, j)) in VARIANTS.iter().enumerate() {
            best[idx] = best[idx].max(supervision_rate(s, w, j));
        }
    }
    let [baseline, supervised, watchdog, journaled] = best;

    let mut report = crate::jsonout::JsonReport::new("supervision");
    report.push("pipeline_baseline_melems_per_s", baseline);
    report.push("pipeline_supervised_melems_per_s", supervised);
    report.push("pipeline_watchdog_melems_per_s", watchdog);
    report.push("pipeline_journaled_melems_per_s", journaled);
    report.push(
        "supervised_overhead_percent",
        (baseline - supervised) / baseline * 100.0,
    );
    report.push(
        "watchdog_overhead_percent",
        (baseline - watchdog) / baseline * 100.0,
    );
    report.push(
        "journaled_overhead_percent",
        (supervised - journaled) / supervised * 100.0,
    );
    let proc_rates = if include_proc { proc_series() } else { None };
    if let Some((bare, proc_supervised)) = proc_rates {
        report.push("proc_bare_fork_melems_per_s", bare);
        report.push("proc_supervised_melems_per_s", proc_supervised);
        report.push(
            "proc_supervisor_overhead_percent",
            (bare - proc_supervised) / bare * 100.0,
        );
    }
    let path = report.write()?;
    Ok((
        path,
        (baseline, supervised, watchdog, journaled),
        proc_rates,
    ))
}

/// Items streamed to the worker process in the proc-supervision series.
pub const PROC_ITEMS: u64 = 1_000_000;

/// Worker half of the proc series (this bench binary, re-executed with
/// `RAFT_BENCH_PROC_WORKER=<ring_fd>`): drain u64s from the inherited shm
/// ring until the producer closes. The supervised variant also sets
/// `RAFT_BENCH_PROC_BEAT=1`, which makes the worker honour the heartbeat
/// contract. Beat granularity is the worker's choice — the watcher only
/// needs progress at least once per wedge interval — so the hot path
/// batches one beat per [`PROC_BEAT_EVERY`] pops (a beat is a fetch_add,
/// a `SeqCst` fence, and an RMW on the shared header line; per-element it
/// would dominate an 8-byte payload) and beats on every empty poll, where
/// a stall is what the watcher actually needs to distinguish from a wedge.
pub fn proc_drain_worker(ring_fd: i32, beat: bool) {
    use raft_buffer::shm::ShmRing;
    use raft_buffer::TryPopError;
    const PROC_BEAT_EVERY: u32 = 1024;
    let mut ring = ShmRing::<u64>::attach_consumer(ring_fd).expect("attach ring");
    let seg = ring.segment_shared();
    let mut sink = 0u64;
    let mut since_beat = 0u32;
    loop {
        match ring.try_pop() {
            Ok(v) => {
                sink = sink.wrapping_add(v);
                since_beat += 1;
                if beat && since_beat >= PROC_BEAT_EVERY {
                    seg.heartbeat().beat();
                    since_beat = 0;
                }
            }
            Err(TryPopError::Empty) => {
                if beat {
                    seg.heartbeat().beat();
                    since_beat = 0;
                }
                std::thread::yield_now();
            }
            Err(TryPopError::Closed) => break,
        }
    }
    if beat {
        seg.heartbeat().beat(); // final beat: wakes a parked watcher promptly
    }
    std::hint::black_box(sink);
}

/// One timed parent→worker-process stream, as Melems/s: push
/// [`PROC_ITEMS`] u64s through an shm ring to a re-exec'd worker.
/// `supervised` runs the worker under [`ProcSupervisor`] (watcher thread,
/// heartbeat protocol, role bookkeeping); bare mode is a plain
/// `Command::spawn`. The clock covers spawn + streaming until the worker
/// drains the last element; the reap is left outside it because its
/// latencies are fixed constants of a different shape (bare `wait()`
/// returns on exit, the watcher notices within one park slice) that would
/// drown the per-element cost this series exists to bound.
pub fn proc_rate(supervised: bool) -> f64 {
    use raft_buffer::shm::ShmRing;
    use raftlib::{ProcPolicy, ProcSupervisor, SegmentLink, WorkerSpec};
    use std::process::Command;
    use std::sync::atomic::Ordering::Acquire;

    let (mut producer, fd) = ShmRing::<u64>::create_producer(1024).expect("create ring");
    let seg_probe = producer.segment_shared();
    let drained = |seg: &raft_buffer::ShmSegment| {
        while seg.tail().load(Acquire) != seg.head().load(Acquire) {
            std::thread::yield_now();
        }
    };
    let exe = std::env::current_exe().expect("current exe");
    if supervised {
        let seg = producer.segment_shared();
        let factory = move |_attempt: u32| {
            let mut cmd = Command::new(&exe);
            cmd.env("RAFT_BENCH_PROC_WORKER", fd.to_string())
                .env("RAFT_BENCH_PROC_BEAT", "1");
            cmd
        };
        let t0 = std::time::Instant::now();
        let mut sup = ProcSupervisor::new();
        sup.spawn(
            WorkerSpec::new("bench-worker", factory)
                .policy(ProcPolicy::restart(3))
                .wedge_timeout(std::time::Duration::from_secs(10))
                .link(SegmentLink::new(seg.clone(), false))
                .heartbeat_on(seg),
        )
        .expect("spawn supervised worker");
        for i in 0..PROC_ITEMS {
            let _ = producer.push(i);
        }
        drained(&seg_probe);
        let rate = PROC_ITEMS as f64 / t0.elapsed().as_secs_f64() / 1e6;
        drop(producer); // close flag + futex notify: worker exits
        let reports = sup.join(std::time::Duration::from_secs(60));
        assert_eq!(
            reports[0].outcome,
            raftlib::KernelOutcome::Completed,
            "supervised bench worker did not complete"
        );
        rate
    } else {
        let t0 = std::time::Instant::now();
        let mut child = Command::new(&exe)
            .env("RAFT_BENCH_PROC_WORKER", fd.to_string())
            .spawn()
            .expect("spawn bare worker");
        for i in 0..PROC_ITEMS {
            let _ = producer.push(i);
        }
        drained(&seg_probe);
        let rate = PROC_ITEMS as f64 / t0.elapsed().as_secs_f64() / 1e6;
        drop(producer);
        assert!(child.wait().expect("wait worker").success());
        rate
    }
}

/// Best-of-N rates `(bare fork, supervised)` of the proc series, in
/// Melems/s. `None` on platforms without `memfd_create`. Only valid when
/// the current binary understands `RAFT_BENCH_PROC_WORKER` (the
/// supervision bench does).
pub type ProcRates = Option<(f64, f64)>;

fn proc_series() -> ProcRates {
    use raft_buffer::shm::ShmSegment;
    if !ShmSegment::memfd_supported() {
        return None;
    }
    // warm-up round for page faults and the exec cache
    let _ = proc_rate(false);
    let _ = proc_rate(true);
    let mut best = (0.0f64, 0.0f64);
    for _ in 0..5 {
        best.0 = best.0.max(proc_rate(false));
        best.1 = best.1.max(proc_rate(true));
    }
    Some(best)
}

/// CI gate for the process supervisor's fault-free cost: a supervised
/// worker process must stream within 5% of a bare `fork`/`wait` of the
/// same worker, measured interleaved in the same run.
pub fn assert_proc_overhead(rates: &ProcRates) -> Result<(), String> {
    let Some((bare, supervised)) = *rates else {
        return Ok(()); // no memfd: nothing measured, nothing gated
    };
    let overhead = (bare - supervised) / bare * 100.0;
    if overhead >= 5.0 {
        return Err(format!(
            "proc supervisor fault-free overhead {overhead:.2}% >= 5% budget \
             (bare fork {bare:.3} vs supervised {supervised:.3} Melem/s)"
        ));
    }
    Ok(())
}

/// CI gate for the recovery contract's fault-free cost: journaling every
/// link must stay within 5% of the same supervised pipeline without a
/// journal, measured in the same process.
pub fn assert_journal_overhead(rates: &SupervisionRates) -> Result<(), String> {
    let (_, supervised, _, journaled) = *rates;
    let overhead = (supervised - journaled) / supervised * 100.0;
    if overhead >= 5.0 {
        return Err(format!(
            "journal fault-free overhead {overhead:.2}% >= 5% budget \
             (supervised {supervised:.3} vs journaled {journaled:.3} Melem/s)"
        ));
    }
    Ok(())
}

/// Figure 4 pipeline: generate matrix pairs → multiply → count, all queues
/// fixed to `capacity` elements (resizing disabled: the experiment measures
/// the effect of the static size). Returns the wall time.
pub fn matmul_pipeline(n_matrices: u64, dim: usize, capacity: usize) -> std::time::Duration {
    let cfg = MapConfig {
        fifo: FifoConfig::fixed(capacity),
        monitor: MonitorConfig::disabled(),
        ..Default::default()
    };
    let mut map = RaftMap::with_config(cfg);
    let src = map
        .add(Generate::new((0..n_matrices).map(move |i| MatPair::generate(dim, i))).with_batch(4));
    let mul = map.add(Map::new(move |p: MatPair| p.run(64)));
    let (count, _n) = Count::<Matrix>::new();
    let sink = map.add(count);
    map.link(src, "out", mul, "in").expect("link mul");
    map.link(mul, "out", sink, "in").expect("link sink");
    let report = map.exe().expect("matmul run");
    report.elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use raft_algos::corpus::{generate, CorpusSpec};

    #[test]
    fn raftlib_search_exact_counts_both_algorithms() {
        let spec = CorpusSpec {
            size: 256 * 1024,
            matches_per_mb: 150.0,
            ..Default::default()
        };
        let c = generate(&spec);
        let expected = c.planted.len() as u64;
        let data = Arc::new(c.data);
        for kind in ["ac", "bmh"] {
            for width in [1u32, 2] {
                let matcher = search_matcher(kind, &c.needle);
                let (n, report) = raftlib_search(&data, matcher, width, 32 * 1024);
                assert_eq!(n, expected, "kind={kind} width={width}");
                if width > 1 {
                    assert_eq!(report.replicated.len(), 1);
                }
            }
        }
    }

    #[test]
    fn matmul_pipeline_runs() {
        let dt = matmul_pipeline(8, 16, 4);
        assert!(dt.as_nanos() > 0);
    }

    #[test]
    fn depth_pipeline_runs_fused_and_unfused() {
        // the fused run's internal assertions check the chain actually
        // collapsed and the count still lands
        assert!(depth_pipeline(2, false, 512).as_nanos() > 0);
        assert!(depth_pipeline(2, true, 512).as_nanos() > 0);
        assert!(depth_pipeline(0, true, 512).as_nanos() > 0);
    }

    #[test]
    fn assert_fusion_wins_flags_regressions() {
        assert!(assert_fusion_wins(&[(2, 1.0, 5.0), (4, 1.0, 9.0)]).is_ok());
        // depth < 2 has no fusable chain; never gated
        assert!(assert_fusion_wins(&[(0, 5.0, 4.0)]).is_ok());
        assert!(assert_fusion_wins(&[(2, 5.0, 4.0)]).is_err());
    }
}
