//  Config structs are assembled field-by-field in tests/benches for clarity.
#![allow(clippy::field_reassign_with_default)]
//! Per-item overhead of the full runtime path: kernel `run()` dispatch +
//! typed port access + FIFO hop, measured end-to-end through small
//! pipelines of increasing depth.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use raft_bench::jsonout::JsonReport;
use raft_kernels::{Count, Generate, Map};
use raftlib::prelude::*;

const ITEMS: u64 = 100_000;

fn pipeline(depth: usize) -> std::time::Duration {
    let mut cfg = MapConfig::default();
    cfg.monitor = MonitorConfig::disabled();
    cfg.fifo = FifoConfig::fixed(1024);
    let mut map = RaftMap::with_config(cfg);
    let src = map.add(Generate::new(0..ITEMS).with_batch(512));
    let mut prev = src;
    for _ in 0..depth {
        let stage = map.add(Map::new(|x: u64| x.wrapping_add(1)));
        map.connect(prev, stage).unwrap();
        prev = stage;
    }
    let (count, n) = Count::<u64>::new();
    let sink = map.add(count);
    map.connect(prev, sink).unwrap();
    let report = map.exe().unwrap();
    assert_eq!(n.load(std::sync::atomic::Ordering::Relaxed), ITEMS);
    report.elapsed
}

fn bench_ports(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_depth");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ITEMS));
    for depth in [0usize, 1, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| pipeline(d));
        });
    }
    g.finish();
}

/// `--json` mode: run each pipeline depth a few times, keep the best
/// (least-noisy) end-to-end rate, and record `BENCH_ports.json` at the
/// repo root (previous results carried forward as `baseline`).
fn json_mode() {
    let mut report = JsonReport::new("ports");
    for depth in [0usize, 1, 2, 4] {
        // warm-up run, then keep the fastest of a few measured runs
        let _ = pipeline(depth);
        let best = (0..3)
            .map(|_| pipeline(depth))
            .min()
            .expect("at least one run");
        let rate = ITEMS as f64 / best.as_secs_f64() / 1e6;
        report.push(format!("pipeline_depth_{depth}_melems_per_s"), rate);
    }
    let path = report.write().expect("write BENCH_ports.json");
    println!("wrote {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_ports
}

fn main() {
    // `--json` bypasses criterion (which rejects unknown flags) and does a
    // plain wall-clock run; anything else goes through criterion as usual.
    if std::env::args().any(|a| a == "--json") {
        json_mode();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
