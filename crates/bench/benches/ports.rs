//! Per-item overhead of the full runtime path: kernel `run()` dispatch +
//! typed port access + FIFO hop, measured end-to-end through small
//! pipelines of increasing depth — each depth both unfused (one FIFO hop
//! per stage) and fused (the map chain collapsed into one batch-executed
//! kernel by the fusion pass).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use raft_bench::pipelines::{
    assert_fusion_wins, depth_pipeline, ports_json_series, DEPTH_FUSION_BATCH, DEPTH_ITEMS,
};

fn bench_ports(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_depth");
    g.sample_size(10);
    g.throughput(Throughput::Elements(DEPTH_ITEMS));
    for depth in [0usize, 1, 2, 4] {
        g.bench_with_input(BenchmarkId::new("unfused", depth), &depth, |b, &d| {
            b.iter(|| depth_pipeline(d, false, DEPTH_FUSION_BATCH));
        });
        g.bench_with_input(BenchmarkId::new("fused", depth), &depth, |b, &d| {
            b.iter(|| depth_pipeline(d, true, DEPTH_FUSION_BATCH));
        });
    }
    g.finish();
}

/// `--json` mode: run the depth series (fused and unfused), record
/// `BENCH_ports.json` at the repo root (previous results carried forward
/// as `baseline`). With `--assert-fusion`, exit nonzero if the fused
/// series loses to the unfused one at any depth ≥ 2 — the CI gate on the
/// fusion pass.
fn json_mode(assert_fusion: bool) {
    let (path, rows) = ports_json_series().expect("write BENCH_ports.json");
    for &(depth, unfused, fused) in &rows {
        println!("depth {depth}: unfused {unfused:.3} Melem/s, fused {fused:.3} Melem/s");
    }
    println!("wrote {}", path.display());
    if assert_fusion {
        if let Err(msg) = assert_fusion_wins(&rows) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
        println!("fusion gate passed: fused >= unfused at every depth >= 2");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_ports
}

fn main() {
    // `--json` bypasses criterion (which rejects unknown flags) and does a
    // plain wall-clock run; anything else goes through criterion as usual.
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--json") {
        json_mode(args.iter().any(|a| a == "--assert-fusion"));
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
