//! Ablation: the two buffer-sizing options of §4 — branch-and-bound search
//! vs. analytic (M/M/1/K) modeling.
//!
//! Branch-and-bound evaluates a real (here: simulated) execution per probe;
//! the analytic route needs only the measured arrival/service rates. The
//! bench measures both the wall cost of choosing a size and reports (via
//! assertions) that both land in the same neighbourhood on a Figure-4-like
//! cost bowl.

use criterion::{criterion_group, criterion_main, Criterion};
use raft_model::queues::MM1K;
use raft_model::sizing::{analytic_mm1k, branch_and_bound};

/// Figure-4-shaped cost (seconds) for a queue of `cap` elements, derived
/// from an M/M/1/K blocking model plus a linear cache penalty: blocking
/// serializes the pipeline; size costs cache.
fn simulated_exec_time(cap: usize) -> f64 {
    let q = MM1K::new(90.0, 100.0, cap.min(1 << 20) as u32);
    let base = 10.0;
    let blocking_penalty = 40.0 * q.blocking_probability();
    let cache_penalty = 1e-5 * cap as f64;
    base + blocking_penalty + cache_penalty
}

fn bench_sizing(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer_sizing");

    g.bench_function("branch_and_bound", |b| {
        b.iter(|| {
            let r = branch_and_bound(1, 1 << 16, simulated_exec_time);
            assert!(r.capacity >= 16, "picked a blocking-heavy size: {r:?}");
            r
        });
    });

    g.bench_function("analytic_mm1k", |b| {
        b.iter(|| {
            let k = analytic_mm1k(90.0, 100.0, 1e-3, 1 << 16);
            assert!(k >= 16);
            k
        });
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sizing
}
criterion_main!(benches);
