//! Ablation: split distribution strategy (§4.1) — round-robin vs.
//! least-utilized — under *skewed* replica service times.
//!
//! With identical replicas the strategies tie; the paper's least-utilized
//! ("queue utilization used to direct data flow to less utilized servers")
//! pays off when one replica is slower: round-robin keeps feeding the slow
//! replica at the same rate and its queue backs up.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use raft_kernels::{Count, Generate};
use raftlib::prelude::*;

const ITEMS: u64 = 600;

/// Replicable kernel whose Nth replica is `skew`× slower than the others
/// (replica index assigned from a shared counter at clone time).
struct SkewedWorker {
    replica: usize,
    next_replica: Arc<AtomicUsize>,
    skew: u64,
}

impl SkewedWorker {
    fn new(skew: u64) -> Self {
        SkewedWorker {
            replica: 0,
            next_replica: Arc::new(AtomicUsize::new(1)),
            skew,
        }
    }
}

impl Kernel for SkewedWorker {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<u64>("in").output::<u64>("out")
    }
    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<u64>("in");
        match input.pop() {
            Ok(v) => {
                drop(input);
                // replica 0 is the slow one; skew must exceed the per-item
                // framework overhead for the strategies to differentiate
                let spins = if self.replica == 0 {
                    60 * self.skew
                } else {
                    60
                };
                // black_box inside the fold: without it LLVM collapses the
                // sum to a closed form and the "slow" replica is not slow.
                let r = (0..spins).fold(v, |a, b| a.wrapping_add(std::hint::black_box(b)));
                let mut out = ctx.output::<u64>("out");
                if out.push(r).is_err() {
                    return KStatus::Stop;
                }
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }
    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        Some(Box::new(SkewedWorker {
            replica: self.next_replica.fetch_add(1, Ordering::Relaxed),
            next_replica: self.next_replica.clone(),
            skew: self.skew,
        }))
    }
}

fn run(strategy: SplitStrategy, skew: u64) -> std::time::Duration {
    let mut cfg = MapConfig::default();
    cfg.parallel.strategy = strategy;
    cfg.fifo = FifoConfig::fixed(64);
    cfg.monitor = MonitorConfig::disabled();
    let mut map = RaftMap::with_config(cfg);
    let src = map.add(Generate::new(0..ITEMS).with_batch(64));
    let work = map.add(SkewedWorker::new(skew));
    let (count, n) = Count::<u64>::new();
    let sink = map.add(count);
    map.link_unordered(src, "out", work, "in").unwrap();
    map.link_unordered(work, "out", sink, "in").unwrap();
    map.prefer_width(work, 3);
    let report = map.exe().unwrap();
    assert_eq!(n.load(Ordering::Relaxed), ITEMS);
    report.elapsed
}

fn bench_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("split_strategy");
    g.sample_size(10);
    g.sampling_mode(criterion::SamplingMode::Flat);
    g.throughput(Throughput::Elements(ITEMS));
    for skew in [1u64, 1_000, 5_000] {
        g.bench_with_input(BenchmarkId::new("round_robin", skew), &skew, |b, &s| {
            b.iter(|| run(SplitStrategy::RoundRobin, s))
        });
        g.bench_with_input(BenchmarkId::new("least_utilized", skew), &skew, |b, &s| {
            b.iter(|| run(SplitStrategy::LeastUtilized, s))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(6))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_split
}
criterion_main!(benches);
