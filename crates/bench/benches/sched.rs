//! Scheduler comparison: event-driven work stealing against the polling
//! pools and thread-per-kernel.
//!
//! Two workloads stress the two things a scheduler can get wrong:
//!
//! * `pingpong` — source → forward → sink over capacity-clamped FIFOs, so
//!   every element blocks a producer or consumer and the run is dominated
//!   by wake latency. An event-driven scheduler wakes the peer task in
//!   O(1) off the FIFO's waker slot; a polling pool rediscovers readiness
//!   on its next occupancy sweep.
//! * `text_search` — the paper's grep workload as a 12-kernel graph
//!   (generate → 8-way split → 8 searchers → reduce → sink) executed by
//!   only 4 workers, so the scheduler constantly multiplexes more kernels
//!   than threads.
//!
//! `--json` mode also measures *idle burn*: process CPU time consumed
//! while a trickle-fed pipeline mostly waits. Polling pools pay their
//! sweep + sleep loop even when nothing is runnable; the stealing
//! scheduler parks workers on a condvar until a waker fires.

use criterion::{criterion_group, Criterion, Throughput};
use raft_algos::corpus::{generate, CorpusSpec};
use raft_algos::{Matcher, MemMem};
use raft_bench::jsonout::JsonReport;
use raft_kernels::Generate;
use raftlib::prelude::*;
use raftlib::{Reduce, Split};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fewer workers than text-search kernels (12) — the multiplexing regime.
const WORKERS: usize = 4;
const SEARCH_WIDTH: usize = 8;
const PINGPONG_ELEMS: u64 = 100_000;

fn schedulers() -> Vec<(&'static str, SchedulerKind)> {
    vec![
        ("thread_per_kernel", SchedulerKind::ThreadPerKernel),
        ("pool", SchedulerKind::Pool { workers: WORKERS }),
        ("chained", SchedulerKind::Chained { workers: WORKERS }),
        (
            "stealing",
            SchedulerKind::Stealing {
                workers: WORKERS,
                pin: false,
            },
        ),
    ]
}

/// source → forward → sink across FIFOs clamped to 8 slots: throughput is
/// set by how fast the scheduler can bounce block/wake pairs.
fn run_pingpong(sched: SchedulerKind) -> u64 {
    let mut map = RaftMap::new();
    map.config_mut().scheduler = sched;
    map.config_mut().fifo = FifoConfig {
        initial_capacity: 8,
        max_capacity: 8,
        min_capacity: 8,
        ..Default::default()
    };
    let mut i = 0u64;
    let src = map.add(lambda_source(move || {
        i += 1;
        (i <= PINGPONG_ELEMS).then_some(i)
    }));
    let fwd = map.add(lambda_map(|v: u64| v));
    let counter = Arc::new(AtomicU64::new(0));
    let sink_counter = counter.clone();
    let dst = map.add(lambda_sink(move |_v: u64| {
        sink_counter.fetch_add(1, Ordering::Relaxed);
    }));
    map.link(src, "0", fwd, "0").unwrap();
    map.link(fwd, "0", dst, "0").unwrap();
    map.exe().unwrap();
    counter.load(Ordering::Relaxed)
}

/// Pre-chunked corpus shared across iterations (`Arc` slices, no copies).
struct SearchFixture {
    chunks: Vec<Arc<Vec<u8>>>,
    needle: Vec<u8>,
    expected: usize,
}

fn search_fixture() -> SearchFixture {
    let corpus = generate(&CorpusSpec {
        size: 4 << 20,
        matches_per_mb: 40.0,
        ..Default::default()
    });
    let needle = corpus.needle.clone();
    // 4 KiB chunks: enough per-item work to be a real search, small enough
    // that scheduling overhead is visible. Matches split on chunk
    // boundaries are not recounted — the expected total is recomputed over
    // the chunks, not taken from the corpus plan.
    let chunks: Vec<Arc<Vec<u8>>> = corpus
        .data
        .chunks(4096)
        .map(|c| Arc::new(c.to_vec()))
        .collect();
    let m = MemMem::new(&needle);
    let expected = chunks.iter().map(|c| m.count(c)).sum();
    SearchFixture {
        chunks,
        needle,
        expected,
    }
}

/// generate → split(8) → 8 × memmem searchers → reduce → summing sink:
/// 12 kernels multiplexed onto `WORKERS` threads. Returns total matches.
fn run_text_search(sched: SchedulerKind, fix: &SearchFixture) -> usize {
    let mut map = RaftMap::new();
    map.config_mut().scheduler = sched;
    let src = map.add(Generate::new(fix.chunks.clone()));
    let split = map.add(Split::<Arc<Vec<u8>>>::new(
        SEARCH_WIDTH,
        SplitStrategy::RoundRobin,
    ));
    map.link(src, "out", split, "in").unwrap();
    let reduce = map.add(Reduce::<usize>::new(SEARCH_WIDTH));
    for lane in 0..SEARCH_WIDTH {
        let m = MemMem::new(&fix.needle);
        let searcher = map.add(lambda_map(move |chunk: Arc<Vec<u8>>| m.count(&chunk)));
        map.link(split, &lane.to_string(), searcher, "0").unwrap();
        map.link(searcher, "0", reduce, &lane.to_string()).unwrap();
    }
    let total = Arc::new(AtomicUsize::new(0));
    let sink_total = total.clone();
    let dst = map.add(lambda_sink(move |n: usize| {
        sink_total.fetch_add(n, Ordering::Relaxed);
    }));
    map.link(reduce, "out", dst, "0").unwrap();
    map.exe().unwrap();
    total.load(Ordering::Relaxed)
}

fn bench_sched(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_pingpong");
    g.throughput(Throughput::Elements(PINGPONG_ELEMS));
    g.sample_size(10);
    for (name, sched) in schedulers() {
        g.bench_function(name, |b| {
            b.iter(|| assert_eq!(run_pingpong(sched), PINGPONG_ELEMS));
        });
    }
    g.finish();

    let fix = search_fixture();
    let bytes: u64 = fix.chunks.iter().map(|c| c.len() as u64).sum();
    let mut g = c.benchmark_group("sched_text_search");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);
    for (name, sched) in schedulers() {
        g.bench_function(name, |b| {
            b.iter(|| assert_eq!(run_text_search(sched, &fix), fix.expected));
        });
    }
    g.finish();
}

/// Process CPU time (utime + stime, all threads) from `/proc/self/stat`,
/// in jiffies. Returns 0 where procfs is unavailable.
fn process_cpu_jiffies() -> u64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return 0;
    };
    // Skip past the parenthesised comm (may itself contain spaces), then
    // utime/stime are the 12th/13th of the remaining fields.
    let Some(rest) = stat.rsplit(')').next() else {
        return 0;
    };
    let mut fields = rest.split_whitespace();
    let utime: u64 = fields.nth(11).and_then(|f| f.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.next().and_then(|f| f.parse().ok()).unwrap_or(0);
    utime + stime
}

/// CPU milliseconds burned executing a mostly-idle pipeline: a trickle
/// source feeds one element every 2 ms through three forwarding stages, so
/// the graph spends ~99% of the run with nothing runnable. The run is long
/// (~600 ms wall) so the 10 ms jiffy granularity of `/proc/self/stat`
/// resolves the difference.
fn idle_burn_cpu_ms(sched: SchedulerKind) -> f64 {
    let mut map = RaftMap::new();
    map.config_mut().scheduler = sched;
    let mut i = 0u64;
    let src = map.add(lambda_source(move || {
        std::thread::sleep(Duration::from_millis(2));
        i += 1;
        (i <= 300).then_some(i)
    }));
    let a = map.add(lambda_map(|v: u64| v));
    let b = map.add(lambda_map(|v: u64| v));
    let c = map.add(lambda_map(|v: u64| v));
    let dst = map.add(lambda_sink(|_v: u64| {}));
    map.link(src, "0", a, "0").unwrap();
    map.link(a, "0", b, "0").unwrap();
    map.link(b, "0", c, "0").unwrap();
    map.link(c, "0", dst, "0").unwrap();
    let before = process_cpu_jiffies();
    map.exe().unwrap();
    let after = process_cpu_jiffies();
    // USER_HZ is 100 on every Linux configuration we target.
    (after.saturating_sub(before)) as f64 * 10.0
}

/// One timed execution of each workload, as a rate.
fn pingpong_rate(sched: SchedulerKind) -> f64 {
    let t0 = std::time::Instant::now();
    assert_eq!(run_pingpong(sched), PINGPONG_ELEMS);
    PINGPONG_ELEMS as f64 / t0.elapsed().as_secs_f64() / 1e6
}

fn search_rate(sched: SchedulerKind, fix: &SearchFixture) -> f64 {
    let bytes: u64 = fix.chunks.iter().map(|c| c.len() as u64).sum();
    let t0 = std::time::Instant::now();
    assert_eq!(run_text_search(sched, fix), fix.expected);
    bytes as f64 / t0.elapsed().as_secs_f64() / 1e6
}

/// `--json` mode: interleaved best-of-N rates per scheduler plus the idle
/// burn, recorded at the repo root as `BENCH_sched.json`.
fn json_mode() {
    let mut report = JsonReport::new("sched");
    let fix = search_fixture();

    // Warm-up round for allocator and thread-spawn caches.
    for (_, sched) in schedulers() {
        let _ = pingpong_rate(sched);
        let _ = search_rate(sched, &fix);
    }

    let n = schedulers().len();
    let mut ping_best = vec![0.0f64; n];
    let mut search_best = vec![0.0f64; n];
    for _ in 0..8 {
        for (idx, (_, sched)) in schedulers().into_iter().enumerate() {
            ping_best[idx] = ping_best[idx].max(pingpong_rate(sched));
            search_best[idx] = search_best[idx].max(search_rate(sched, &fix));
        }
    }
    for (idx, (name, _)) in schedulers().into_iter().enumerate() {
        report.push(format!("pingpong_{name}_melems_per_s"), ping_best[idx]);
        report.push(format!("text_search_{name}_mb_per_s"), search_best[idx]);
    }
    // stealing vs the polling pool — the acceptance ratio for the
    // event-driven scheduler (schedulers() order: index 1 pool, 3 stealing).
    report.push(
        "text_search_stealing_vs_pool_speedup",
        search_best[3] / search_best[1],
    );
    report.push(
        "pingpong_stealing_vs_pool_speedup",
        ping_best[3] / ping_best[1],
    );

    // Idle burn: best (lowest) of 3 runs each, pool vs stealing.
    let mut pool_ms = f64::INFINITY;
    let mut steal_ms = f64::INFINITY;
    for _ in 0..3 {
        pool_ms = pool_ms.min(idle_burn_cpu_ms(SchedulerKind::Pool { workers: WORKERS }));
        steal_ms = steal_ms.min(idle_burn_cpu_ms(SchedulerKind::Stealing {
            workers: WORKERS,
            pin: false,
        }));
    }
    report.push("idle_burn_pool_cpu_ms", pool_ms);
    report.push("idle_burn_stealing_cpu_ms", steal_ms);

    let path = report.write().expect("write BENCH_sched.json");
    println!("wrote {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sched
}

fn main() {
    if std::env::args().any(|a| a == "--json") {
        json_mode();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
