//  Config structs are assembled field-by-field in tests/benches for clarity.
#![allow(clippy::field_reassign_with_default)]
//! Ablation: monitoring overhead vs. δ.
//!
//! The paper's monitor samples every queue each δ = 10 µs and stresses that
//! the collection "is optimized to reduce overhead" (TimeTrial lineage).
//! This bench runs a saturated pipeline with δ ∈ {10 µs, 100 µs, 1 ms} and
//! with the monitor disabled, so the cost of observation is measured
//! directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use raft_kernels::{Count, Generate, Map};
use raftlib::prelude::*;

const ITEMS: u64 = 100_000;

fn run(monitor: MonitorConfig) -> std::time::Duration {
    let mut cfg = MapConfig::default();
    cfg.monitor = monitor;
    cfg.fifo = FifoConfig::starting_at(256);
    let mut map = RaftMap::with_config(cfg);
    let src = map.add(Generate::new(0..ITEMS).with_batch(512));
    let work = map.add(Map::new(|x: u64| x.wrapping_mul(2654435761)));
    let (count, n) = Count::<u64>::new();
    let sink = map.add(count);
    map.link(src, "out", work, "in").unwrap();
    map.link(work, "out", sink, "in").unwrap();
    let report = map.exe().unwrap();
    assert_eq!(n.load(std::sync::atomic::Ordering::Relaxed), ITEMS);
    report.elapsed
}

fn bench_monitor(c: &mut Criterion) {
    let mut g = c.benchmark_group("monitor_overhead");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ITEMS));

    g.bench_function("disabled", |b| {
        b.iter(|| run(MonitorConfig::disabled()));
    });
    for delta_us in [10u64, 100, 1000] {
        g.bench_with_input(
            BenchmarkId::new("delta_us", delta_us),
            &delta_us,
            |b, &d| {
                b.iter(|| {
                    run(MonitorConfig {
                        delta: std::time::Duration::from_micros(d),
                        ..Default::default()
                    })
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_monitor
}
criterion_main!(benches);
