//! Ablation: fixed lock-free SPSC vs. the resizable FIFO.
//!
//! The resizable ring pays a shared `RwLock` acquisition per operation to
//! make the monitor's dynamic resizing possible (§4). This bench prices
//! that flexibility: same workload over `BoundedSpsc` (fixed) and `Fifo`
//! (resizable), single-threaded ping-pong and cross-thread streaming.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use raft_buffer::{fifo_with, BoundedSpsc, FifoConfig};

const BATCH: u64 = 10_000;

fn bench_fifo(c: &mut Criterion) {
    let mut g = c.benchmark_group("fifo_pingpong");
    g.throughput(Throughput::Elements(BATCH));

    g.bench_function(BenchmarkId::new("bounded_spsc", BATCH), |b| {
        let (mut p, mut cns) = BoundedSpsc::<u64>::new(1024);
        b.iter(|| {
            for i in 0..BATCH {
                while p.try_push(i).is_err() {
                    let _ = cns.try_pop();
                }
                if i % 4 == 0 {
                    let _ = cns.try_pop();
                }
            }
            while cns.try_pop().is_ok() {}
        });
    });

    g.bench_function(BenchmarkId::new("resizable_fifo", BATCH), |b| {
        let (_f, mut p, mut cns) = fifo_with::<u64>(FifoConfig::fixed(1024));
        b.iter(|| {
            for i in 0..BATCH {
                while p.try_push(i).is_err() {
                    let _ = cns.try_pop();
                }
                if i % 4 == 0 {
                    let _ = cns.try_pop();
                }
            }
            while cns.try_pop().is_ok() {}
        });
    });

    g.finish();

    let mut g = c.benchmark_group("fifo_cross_thread");
    g.throughput(Throughput::Elements(BATCH * 10));
    g.sample_size(10);

    g.bench_function("bounded_spsc", |b| {
        b.iter(|| {
            let (mut p, mut cns) = BoundedSpsc::<u64>::new(1024);
            let t = std::thread::spawn(move || {
                for i in 0..BATCH * 10 {
                    p.push(i).unwrap();
                }
            });
            let mut n = 0u64;
            while cns.pop().is_ok() {
                n += 1;
            }
            t.join().unwrap();
            assert_eq!(n, BATCH * 10);
        });
    });

    g.bench_function("resizable_fifo", |b| {
        b.iter(|| {
            let (_f, mut p, mut cns) = fifo_with::<u64>(FifoConfig::fixed(1024));
            let t = std::thread::spawn(move || {
                for i in 0..BATCH * 10 {
                    p.push(i).unwrap();
                }
            });
            let mut n = 0u64;
            while cns.pop().is_ok() {
                n += 1;
            }
            t.join().unwrap();
            assert_eq!(n, BATCH * 10);
        });
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fifo
}
criterion_main!(benches);
