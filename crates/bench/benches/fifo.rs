//! Ablation: fixed lock-free SPSC vs. the resizable FIFO.
//!
//! The resizable ring pays a shared `RwLock` acquisition per operation to
//! make the monitor's dynamic resizing possible (§4). This bench prices
//! that flexibility: same workload over `BoundedSpsc` (fixed) and `Fifo`
//! (resizable), single-threaded ping-pong and cross-thread streaming.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use raft_bench::jsonout::{compare_results, measure_melems_per_s, parse_results, JsonReport};
use raft_buffer::arena::{Descriptor, ShmArena};
use raft_buffer::shm::{ShmRing, ShmSegment};
use raft_buffer::{fifo_with, BoundedSpsc, FifoConfig};
use std::io::{Read as _, Write as _};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BATCH: u64 = 10_000;
/// Payload size for the shm-vs-TCP series (the ISSUE's 4 KiB point).
const PAYLOAD_4K: usize = 4096;
/// Payload size for the descriptor-vs-inline series.
const PAYLOAD_1K: usize = 1024;

fn bench_fifo(c: &mut Criterion) {
    let mut g = c.benchmark_group("fifo_pingpong");
    g.throughput(Throughput::Elements(BATCH));

    g.bench_function(BenchmarkId::new("bounded_spsc", BATCH), |b| {
        let (mut p, mut cns) = BoundedSpsc::<u64>::new(1024);
        b.iter(|| {
            for i in 0..BATCH {
                while p.try_push(i).is_err() {
                    let _ = cns.try_pop();
                }
                if i % 4 == 0 {
                    let _ = cns.try_pop();
                }
            }
            while cns.try_pop().is_ok() {}
        });
    });

    g.bench_function(BenchmarkId::new("resizable_fifo", BATCH), |b| {
        let (_f, mut p, mut cns) = fifo_with::<u64>(FifoConfig::fixed(1024));
        b.iter(|| {
            for i in 0..BATCH {
                while p.try_push(i).is_err() {
                    let _ = cns.try_pop();
                }
                if i % 4 == 0 {
                    let _ = cns.try_pop();
                }
            }
            while cns.try_pop().is_ok() {}
        });
    });

    g.finish();

    let mut g = c.benchmark_group("fifo_cross_thread");
    g.throughput(Throughput::Elements(BATCH * 10));
    g.sample_size(10);

    g.bench_function("bounded_spsc", |b| {
        b.iter(|| {
            let (mut p, mut cns) = BoundedSpsc::<u64>::new(1024);
            let t = std::thread::spawn(move || {
                for i in 0..BATCH * 10 {
                    p.push(i).unwrap();
                }
            });
            let mut n = 0u64;
            while cns.pop().is_ok() {
                n += 1;
            }
            t.join().unwrap();
            assert_eq!(n, BATCH * 10);
        });
    });

    g.bench_function("resizable_fifo", |b| {
        b.iter(|| {
            let (_f, mut p, mut cns) = fifo_with::<u64>(FifoConfig::fixed(1024));
            let t = std::thread::spawn(move || {
                for i in 0..BATCH * 10 {
                    p.push(i).unwrap();
                }
            });
            let mut n = 0u64;
            while cns.pop().is_ok() {
                n += 1;
            }
            t.join().unwrap();
            assert_eq!(n, BATCH * 10);
        });
    });

    g.finish();
}

// --- cross-process workers (this binary, re-executed) ----------------------

/// Spawn this bench binary as a worker with the given mode + args.
fn spawn_worker(mode: &str, args: &[String]) -> Child {
    Command::new(std::env::current_exe().expect("current exe"))
        .arg(mode)
        .args(args)
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn bench worker")
}

/// `--xchild-u64 <ring_fd>`: drain u64s from an inherited shm ring until
/// the producer closes.
fn xchild_u64(ring_fd: i32) {
    let mut ring = ShmRing::<u64>::attach_consumer(ring_fd).expect("attach ring");
    let mut sink = 0u64;
    while let Ok(v) = ring.pop() {
        sink = sink.wrapping_add(v);
    }
    std::hint::black_box(sink);
}

/// `--xchild-desc <ring_fd> <arena_fd>`: resolve each descriptor in the
/// inherited arena, touch the payload, recycle the slot.
fn xchild_desc(ring_fd: i32, arena_fd: i32) {
    let mut ring = ShmRing::<Descriptor>::attach_consumer(ring_fd).expect("attach ring");
    let mut rx = ShmArena::attach_rx(arena_fd).expect("attach arena");
    let mut sink = 0u64;
    while let Ok(d) = ring.pop() {
        if let Ok(bytes) = rx.resolve(&d) {
            // Touch first and last byte: proves the mapping is readable
            // without paying a full scan (the transport is what's priced).
            sink = sink.wrapping_add(bytes[0] as u64 + bytes[bytes.len() - 1] as u64);
        }
        let _ = rx.free(d);
    }
    std::hint::black_box(sink);
}

/// `--xchild-tcp <addr>`: connect to the parent and drain frames to EOF.
fn xchild_tcp(addr: &str) {
    let mut sock = std::net::TcpStream::connect(addr).expect("connect");
    sock.set_nodelay(true).ok();
    let mut buf = vec![0u8; PAYLOAD_4K];
    let mut sink = 0u64;
    loop {
        match sock.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => sink = sink.wrapping_add(buf[0] as u64 + n as u64),
        }
    }
    std::hint::black_box(sink);
}

// --- cross-process measurements ---------------------------------------------

/// Throughput of raw u64 elements into a child process through the
/// shm-backed SPSC ring (blocking push; parks on the cross-process futex
/// when the child falls behind).
fn measure_xprocess_shm_u64(min_time: Duration) -> f64 {
    let (mut p, fd) = ShmRing::<u64>::create_producer(4096).expect("ring");
    let child = spawn_worker("--xchild-u64", &[fd.to_string()]);
    // Warm: fault the pages and fill the pipe.
    for i in 0..BATCH {
        let _ = p.push(i);
    }
    let t0 = std::time::Instant::now();
    let mut n = 0u64;
    while t0.elapsed() < min_time {
        for i in 0..BATCH {
            if p.push(i).is_err() {
                panic!("worker died mid-bench");
            }
        }
        n += BATCH;
    }
    let dt = t0.elapsed();
    drop(p); // close + final futex notify: child drains and exits
    wait_worker(child);
    n as f64 / dt.as_secs_f64() / 1e6
}

/// Throughput of `payload`-byte chunks into a child process, passed as
/// 16-byte arena descriptors through the shm ring. Returns payloads/s.
fn measure_xprocess_shm_desc(payload: usize, min_time: Duration) -> f64 {
    let (mut ring, ring_fd) = ShmRing::<Descriptor>::create_producer(1024).expect("ring");
    let (mut tx, arena_fd) = ShmArena::create_tx(2048, payload).expect("arena");
    let child = spawn_worker(
        "--xchild-desc",
        &[ring_fd.to_string(), arena_fd.to_string()],
    );
    let chunk = vec![0xa5u8; payload];
    let ship = |tx: &mut raft_buffer::arena::ArenaTx,
                ring: &mut raft_buffer::shm::ShmRingProducer<Descriptor>|
     -> bool {
        let d = loop {
            match tx.push_bytes(&chunk) {
                Some(d) => break d,
                None => std::thread::yield_now(), // all slots in flight
            }
        };
        ring.push(d).is_ok()
    };
    for _ in 0..1000 {
        assert!(ship(&mut tx, &mut ring));
    }
    let t0 = std::time::Instant::now();
    let mut n = 0u64;
    while t0.elapsed() < min_time {
        for _ in 0..1000 {
            if !ship(&mut tx, &mut ring) {
                panic!("worker died mid-bench");
            }
        }
        n += 1000;
    }
    let dt = t0.elapsed();
    drop(ring);
    wait_worker(child);
    drop(tx);
    n as f64 / dt.as_secs_f64()
}

/// Throughput of 4 KiB frames into a child process over loopback TCP —
/// the wire alternative the shm link is priced against. Returns
/// payloads/s.
fn measure_xprocess_tcp(payload: usize, min_time: Duration) -> f64 {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    let child = spawn_worker("--xchild-tcp", &[addr]);
    let (mut sock, _) = listener.accept().expect("accept");
    sock.set_nodelay(true).ok();
    let chunk = vec![0xa5u8; payload];
    for _ in 0..1000 {
        sock.write_all(&chunk).expect("warm write");
    }
    let t0 = std::time::Instant::now();
    let mut n = 0u64;
    while t0.elapsed() < min_time {
        for _ in 0..1000 {
            sock.write_all(&chunk).expect("write");
        }
        n += 1000;
    }
    let dt = t0.elapsed();
    drop(sock); // EOF: child exits
    wait_worker(child);
    n as f64 / dt.as_secs_f64()
}

/// In-process comparison at `PAYLOAD_1K`: the same bytes crossing a ring
/// as an inline `[u8; 1024]` element copy vs as an arena descriptor.
/// Returns `(inline_payloads_per_s, desc_payloads_per_s)`.
fn measure_desc_vs_inline(min_time: Duration) -> (f64, f64) {
    // Inline: each push copies the full kilobyte into the ring slot and
    // each pop copies it back out.
    let (mut p, mut c) = ShmRing::<[u8; PAYLOAD_1K]>::pair(256);
    let consumer = std::thread::spawn(move || {
        let mut sink = 0u64;
        while let Ok(v) = c.pop() {
            sink = sink.wrapping_add(v[0] as u64 + v[PAYLOAD_1K - 1] as u64);
        }
        std::hint::black_box(sink);
    });
    let chunk = [0xa5u8; PAYLOAD_1K];
    let t0 = std::time::Instant::now();
    let mut n = 0u64;
    while t0.elapsed() < min_time {
        for _ in 0..1000 {
            p.push(chunk).expect("push inline");
        }
        n += 1000;
    }
    let inline_rate = n as f64 / t0.elapsed().as_secs_f64();
    drop(p);
    consumer.join().unwrap();

    // Descriptor: the kilobyte is written once into the arena; 16 bytes
    // cross the ring; the consumer reads the payload in place.
    let (mut ring, mut ring_c) = ShmRing::<Descriptor>::pair(256);
    let (mut tx, mut rx) = ShmArena::pair(512, PAYLOAD_1K);
    let consumer = std::thread::spawn(move || {
        let mut sink = 0u64;
        while let Ok(d) = ring_c.pop() {
            if let Ok(bytes) = rx.resolve(&d) {
                sink = sink.wrapping_add(bytes[0] as u64 + bytes[bytes.len() - 1] as u64);
            }
            let _ = rx.free(d);
        }
        std::hint::black_box(sink);
    });
    let t0 = std::time::Instant::now();
    let mut n = 0u64;
    while t0.elapsed() < min_time {
        for _ in 0..1000 {
            let d = loop {
                match tx.push_bytes(&chunk) {
                    Some(d) => break d,
                    None => std::thread::yield_now(),
                }
            };
            ring.push(d).expect("push desc");
        }
        n += 1000;
    }
    let desc_rate = n as f64 / t0.elapsed().as_secs_f64();
    drop(ring);
    consumer.join().unwrap();
    (inline_rate, desc_rate)
}

fn wait_worker(mut child: Child) {
    // Supervision: a wedged worker fails the bench rather than hanging it.
    let t0 = std::time::Instant::now();
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "bench worker failed: {status:?}");
                return;
            }
            None if t0.elapsed() > Duration::from_secs(30) => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("bench worker exceeded 30s watchdog");
            }
            None => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Run every measurement and assemble the report. Used by `--json`
/// (writes the file) and `--assert-fifo` (compares against the committed
/// reference without writing).
fn measure_all() -> JsonReport {
    let warm = Duration::from_millis(300);
    let min_time = Duration::from_secs(2);
    let mut report = JsonReport::new("fifo");

    let (mut p, mut cns) = BoundedSpsc::<u64>::new(1024);
    let rate = measure_melems_per_s(BATCH, warm, min_time, || {
        for i in 0..BATCH {
            while p.try_push(i).is_err() {
                let _ = cns.try_pop();
            }
            if i % 4 == 0 {
                let _ = cns.try_pop();
            }
        }
        while cns.try_pop().is_ok() {}
    });
    report.push("pingpong_bounded_spsc_melems_per_s", rate);

    let (_f, mut p, mut cns) = fifo_with::<u64>(FifoConfig::fixed(1024));
    let rate = measure_melems_per_s(BATCH, warm, min_time, || {
        for i in 0..BATCH {
            while p.try_push(i).is_err() {
                let _ = cns.try_pop();
            }
            if i % 4 == 0 {
                let _ = cns.try_pop();
            }
        }
        while cns.try_pop().is_ok() {}
    });
    report.push("pingpong_resizable_fifo_melems_per_s", rate);

    let rate = measure_melems_per_s(BATCH * 10, warm, min_time, || {
        let (mut p, mut cns) = BoundedSpsc::<u64>::new(1024);
        let t = std::thread::spawn(move || {
            for i in 0..BATCH * 10 {
                p.push(i).unwrap();
            }
        });
        let mut n = 0u64;
        while cns.pop().is_ok() {
            n += 1;
        }
        t.join().unwrap();
        assert_eq!(n, BATCH * 10);
    });
    report.push("xthread_bounded_spsc_melems_per_s", rate);

    let rate = measure_melems_per_s(BATCH * 10, warm, min_time, || {
        let (_f, mut p, mut cns) = fifo_with::<u64>(FifoConfig::fixed(1024));
        let t = std::thread::spawn(move || {
            for i in 0..BATCH * 10 {
                p.push(i).unwrap();
            }
        });
        let mut n = 0u64;
        while cns.pop().is_ok() {
            n += 1;
        }
        t.join().unwrap();
        assert_eq!(n, BATCH * 10);
    });
    report.push("xthread_resizable_fifo_melems_per_s", rate);

    // Investigated: the 369 → 277 Melem/s drop landed with the
    // cached-index overhaul. The ping-pong pattern (pop 1 of every 4
    // pushes) keeps the ring permanently full, so the producer's stale
    // head-cache looks full on almost every push and the op pays the
    // refresh *plus* the failed first attempt — the cached scheme's
    // worst case (seed's uncached ring re-measures ~1.4x faster on this
    // pattern, on this machine). Accepted: the same scheme took the
    // production resizable Fifo from 17.7 to ~90 on the identical
    // workload, and streaming (xthread) patterns keep their win.
    report.note(
        "pingpong_bounded_spsc_melems_per_s",
        "full-ring pingpong is the cached-index worst case: every push refreshes \
         head_cache and retries; accepted cost of the scheme that 5x'd the resizable \
         Fifo (see DESIGN 3)",
    );

    // --- shared-memory link family ------------------------------------------
    if ShmSegment::memfd_supported() {
        let rate = measure_xprocess_shm_u64(min_time);
        report.push("xprocess_shm_bounded_spsc_melems_per_s", rate);

        let shm4k = measure_xprocess_shm_desc(PAYLOAD_4K, min_time);
        report.push("xprocess_shm_4k_desc_kpayloads_per_s", shm4k / 1e3);
        let tcp4k = measure_xprocess_tcp(PAYLOAD_4K, min_time);
        report.push("xprocess_tcp_4k_kpayloads_per_s", tcp4k / 1e3);
        report.push("shm_over_tcp_4k_ratio", shm4k / tcp4k);

        let (inline_rate, desc_rate) = measure_desc_vs_inline(min_time);
        report.push("inline_1k_kpayloads_per_s", inline_rate / 1e3);
        report.push("desc_1k_kpayloads_per_s", desc_rate / 1e3);
        report.push("desc_over_inline_1k_ratio", desc_rate / inline_rate);
        report.note(
            "xprocess_shm_4k_desc_kpayloads_per_s",
            "4 KiB payloads cross the process boundary as 16-byte arena descriptors; \
             the payload bytes are written once and read in place by the peer",
        );
    } else {
        report.note(
            "xprocess_shm_bounded_spsc_melems_per_s",
            "skipped: memfd_create unavailable on this platform",
        );
    }
    report
}

/// `--json` mode: run everything and record it at the repo root as
/// `BENCH_fifo.json` (previous results are carried forward as
/// `baseline`).
fn json_mode() {
    let report = measure_all();
    let path = report.write().expect("write BENCH_fifo.json");
    println!("wrote {}", path.display());
}

/// `--assert-fifo` mode: the FIFO regression gate. Measures fresh,
/// compares against the committed `BENCH_fifo.json` (override the path
/// with `RAFT_BENCH_REF`), and fails the process on any series that
/// regressed more than 10% — plus the shm link's two absolute promises:
/// shm beats loopback TCP by ≥ 5x on 4 KiB payloads, and the descriptor
/// path beats the inline copy at 1 KiB.
fn assert_fifo_mode() {
    let ref_path = std::env::var_os("RAFT_BENCH_REF")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| JsonReport::new("fifo").path());
    let reference = match std::fs::read_to_string(&ref_path) {
        Ok(src) => parse_results(&src),
        Err(e) => {
            println!(
                "no reference at {} ({e}); gate passes vacuously",
                ref_path.display()
            );
            return;
        }
    };
    let report = measure_all();
    let fresh = report.results().to_vec();
    // Only the FIFO element-throughput series gate on the reference: the
    // TCP denominator and the derived ratios are noisy (scheduling, two
    // noisy measurements divided) and are asserted absolutely below
    // instead of differentially.
    let gated: Vec<(String, f64)> = fresh
        .iter()
        .filter(|(k, _)| k.ends_with("_melems_per_s"))
        .cloned()
        .collect();
    let mut failures = compare_results(&gated, &reference, 0.10);

    let get = |key: &str| fresh.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
    if let Some(ratio) = get("shm_over_tcp_4k_ratio") {
        if ratio < 5.0 {
            failures.push(format!("shm_over_tcp_4k_ratio: {ratio:.1} < required 5.0"));
        }
    }
    if let Some(ratio) = get("desc_over_inline_1k_ratio") {
        if ratio < 1.0 {
            failures.push(format!(
                "desc_over_inline_1k_ratio: {ratio:.2} < required 1.0"
            ));
        }
    }

    if failures.is_empty() {
        println!(
            "fifo gate: {} series ok vs {}",
            fresh.len(),
            ref_path.display()
        );
    } else {
        eprintln!("fifo gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fifo
}

fn main() {
    // Worker modes: this binary re-executed as the consumer process of a
    // cross-process measurement. Must be handled before criterion sees
    // the args.
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--xchild-u64") => return xchild_u64(args[2].parse().expect("ring fd")),
        Some("--xchild-desc") => {
            return xchild_desc(
                args[2].parse().expect("ring fd"),
                args[3].parse().expect("arena fd"),
            )
        }
        Some("--xchild-tcp") => return xchild_tcp(&args[2]),
        _ => {}
    }
    // `--json` / `--assert-fifo` bypass criterion (which rejects unknown
    // flags) and do plain wall-clock runs; anything else goes through
    // criterion as usual.
    if args.iter().any(|a| a == "--json") {
        json_mode();
        return;
    }
    if args.iter().any(|a| a == "--assert-fifo") {
        assert_fifo_mode();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
