//! Ablation: fixed lock-free SPSC vs. the resizable FIFO.
//!
//! The resizable ring pays a shared `RwLock` acquisition per operation to
//! make the monitor's dynamic resizing possible (§4). This bench prices
//! that flexibility: same workload over `BoundedSpsc` (fixed) and `Fifo`
//! (resizable), single-threaded ping-pong and cross-thread streaming.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use raft_bench::jsonout::{measure_melems_per_s, JsonReport};
use raft_buffer::{fifo_with, BoundedSpsc, FifoConfig};
use std::time::Duration;

const BATCH: u64 = 10_000;

fn bench_fifo(c: &mut Criterion) {
    let mut g = c.benchmark_group("fifo_pingpong");
    g.throughput(Throughput::Elements(BATCH));

    g.bench_function(BenchmarkId::new("bounded_spsc", BATCH), |b| {
        let (mut p, mut cns) = BoundedSpsc::<u64>::new(1024);
        b.iter(|| {
            for i in 0..BATCH {
                while p.try_push(i).is_err() {
                    let _ = cns.try_pop();
                }
                if i % 4 == 0 {
                    let _ = cns.try_pop();
                }
            }
            while cns.try_pop().is_ok() {}
        });
    });

    g.bench_function(BenchmarkId::new("resizable_fifo", BATCH), |b| {
        let (_f, mut p, mut cns) = fifo_with::<u64>(FifoConfig::fixed(1024));
        b.iter(|| {
            for i in 0..BATCH {
                while p.try_push(i).is_err() {
                    let _ = cns.try_pop();
                }
                if i % 4 == 0 {
                    let _ = cns.try_pop();
                }
            }
            while cns.try_pop().is_ok() {}
        });
    });

    g.finish();

    let mut g = c.benchmark_group("fifo_cross_thread");
    g.throughput(Throughput::Elements(BATCH * 10));
    g.sample_size(10);

    g.bench_function("bounded_spsc", |b| {
        b.iter(|| {
            let (mut p, mut cns) = BoundedSpsc::<u64>::new(1024);
            let t = std::thread::spawn(move || {
                for i in 0..BATCH * 10 {
                    p.push(i).unwrap();
                }
            });
            let mut n = 0u64;
            while cns.pop().is_ok() {
                n += 1;
            }
            t.join().unwrap();
            assert_eq!(n, BATCH * 10);
        });
    });

    g.bench_function("resizable_fifo", |b| {
        b.iter(|| {
            let (_f, mut p, mut cns) = fifo_with::<u64>(FifoConfig::fixed(1024));
            let t = std::thread::spawn(move || {
                for i in 0..BATCH * 10 {
                    p.push(i).unwrap();
                }
            });
            let mut n = 0u64;
            while cns.pop().is_ok() {
                n += 1;
            }
            t.join().unwrap();
            assert_eq!(n, BATCH * 10);
        });
    });

    g.finish();
}

/// `--json` mode: same workloads as the criterion groups, hand-timed, and
/// recorded at the repo root as `BENCH_fifo.json` (previous results are
/// carried forward as `baseline`).
fn json_mode() {
    let warm = Duration::from_millis(300);
    let min_time = Duration::from_secs(2);
    let mut report = JsonReport::new("fifo");

    let (mut p, mut cns) = BoundedSpsc::<u64>::new(1024);
    let rate = measure_melems_per_s(BATCH, warm, min_time, || {
        for i in 0..BATCH {
            while p.try_push(i).is_err() {
                let _ = cns.try_pop();
            }
            if i % 4 == 0 {
                let _ = cns.try_pop();
            }
        }
        while cns.try_pop().is_ok() {}
    });
    report.push("pingpong_bounded_spsc_melems_per_s", rate);

    let (_f, mut p, mut cns) = fifo_with::<u64>(FifoConfig::fixed(1024));
    let rate = measure_melems_per_s(BATCH, warm, min_time, || {
        for i in 0..BATCH {
            while p.try_push(i).is_err() {
                let _ = cns.try_pop();
            }
            if i % 4 == 0 {
                let _ = cns.try_pop();
            }
        }
        while cns.try_pop().is_ok() {}
    });
    report.push("pingpong_resizable_fifo_melems_per_s", rate);

    let rate = measure_melems_per_s(BATCH * 10, warm, min_time, || {
        let (mut p, mut cns) = BoundedSpsc::<u64>::new(1024);
        let t = std::thread::spawn(move || {
            for i in 0..BATCH * 10 {
                p.push(i).unwrap();
            }
        });
        let mut n = 0u64;
        while cns.pop().is_ok() {
            n += 1;
        }
        t.join().unwrap();
        assert_eq!(n, BATCH * 10);
    });
    report.push("xthread_bounded_spsc_melems_per_s", rate);

    let rate = measure_melems_per_s(BATCH * 10, warm, min_time, || {
        let (_f, mut p, mut cns) = fifo_with::<u64>(FifoConfig::fixed(1024));
        let t = std::thread::spawn(move || {
            for i in 0..BATCH * 10 {
                p.push(i).unwrap();
            }
        });
        let mut n = 0u64;
        while cns.pop().is_ok() {
            n += 1;
        }
        t.join().unwrap();
        assert_eq!(n, BATCH * 10);
    });
    report.push("xthread_resizable_fifo_melems_per_s", rate);

    let path = report.write().expect("write BENCH_fifo.json");
    println!("wrote {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fifo
}

fn main() {
    // `--json` bypasses criterion (which rejects unknown flags) and does a
    // plain wall-clock run; anything else goes through criterion as usual.
    if std::env::args().any(|a| a == "--json") {
        json_mode();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
