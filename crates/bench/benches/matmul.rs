//! Matrix-multiply kernel: blocked vs naive (the Figure 4 workload's
//! compute core), plus the streamed pipeline cost around it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use raft_algos::matmul::{multiply_blocked, multiply_naive, Matrix};
use raft_bench::pipelines::matmul_pipeline;

fn bench_matmul(c: &mut Criterion) {
    let n = 128usize;
    let a = Matrix::random(n, 1);
    let b = Matrix::random(n, 2);
    let flops = (2 * n * n * n) as u64;

    let mut g = c.benchmark_group("matmul_kernel");
    g.throughput(Throughput::Elements(flops));
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("naive", n), |bch| {
        bch.iter(|| multiply_naive(&a, &b))
    });
    for block in [16usize, 64] {
        g.bench_with_input(BenchmarkId::new("blocked", block), &block, |bch, &blk| {
            bch.iter(|| multiply_blocked(&a, &b, blk))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("matmul_pipeline");
    g.sample_size(10);
    g.bench_function("streamed_16x_96", |bch| {
        bch.iter(|| matmul_pipeline(16, 96, 8))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul
}
criterion_main!(benches);
