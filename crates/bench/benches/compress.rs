//! LZ link-compression codec throughput and ratio (§4.2 future work):
//! compress/decompress MB/s on the synthetic text corpus and on random
//! bytes, plus the frame wrapper's raw-fallback overhead.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use raft_algos::corpus::{generate, CorpusSpec};
use raft_net::compress::{compress, compress_frame, decompress};

fn bench_compress(c: &mut Criterion) {
    let text = generate(&CorpusSpec {
        size: 1 << 20,
        ..Default::default()
    })
    .data;
    let random: Vec<u8> = {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        (0..1 << 20).map(|_| rng.gen()).collect()
    };

    let lz_text = compress(&text);
    eprintln!(
        "corpus compression ratio: {:.2}x ({} -> {} bytes)",
        text.len() as f64 / lz_text.len() as f64,
        text.len(),
        lz_text.len()
    );

    let mut g = c.benchmark_group("lz_codec");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("compress_text_1mb", |b| b.iter(|| compress(&text)));
    g.bench_function("compress_random_1mb", |b| b.iter(|| compress(&random)));
    g.bench_function("decompress_text_1mb", |b| {
        b.iter(|| decompress(&lz_text, text.len()).unwrap())
    });
    g.bench_function("frame_wrapper_random_fallback", |b| {
        let payload = bytes::Bytes::from(random.clone());
        b.iter(|| compress_frame(&payload));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10);
    targets = bench_compress
}
criterion_main!(benches);
