//! TCP stream-link throughput, with and without per-frame compression
//! (§4.2's future-work feature) — on compressible (text) and
//! incompressible (random) element streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use raft_kernels::{Count, Generate};
use raft_net::tcp_bridge;
use raftlib::prelude::*;

const ITEMS: usize = 2_000;

fn run(compressed: bool, payloads: Vec<Vec<u8>>) {
    let (tcp_out, tcp_in) = tcp_bridge::<Vec<u8>>().unwrap();
    let tcp_out = if compressed {
        tcp_out.compressed()
    } else {
        tcp_out
    };
    let n_items = payloads.len() as u64;
    let sender = std::thread::spawn(move || {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(payloads));
        let out = map.add(tcp_out);
        map.link(src, "out", out, "in").unwrap();
        map.exe().unwrap();
    });
    let mut map = RaftMap::new();
    let src = map.add(tcp_in);
    let (count, n) = Count::<Vec<u8>>::new();
    let sink = map.add(count);
    map.link(src, "out", sink, "in").unwrap();
    map.exe().unwrap();
    sender.join().unwrap();
    assert_eq!(n.load(std::sync::atomic::Ordering::Relaxed), n_items);
}

fn text_payloads() -> Vec<Vec<u8>> {
    (0..ITEMS)
        .map(|i| {
            format!(
                "stream element number {} with plenty of repeated text text text",
                i % 13
            )
            .into_bytes()
        })
        .collect()
}

fn random_payloads() -> Vec<Vec<u8>> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(5);
    (0..ITEMS)
        .map(|_| (0..72).map(|_| rng.gen::<u8>()).collect())
        .collect()
}

fn bench_tcp(c: &mut Criterion) {
    let bytes: usize = text_payloads().iter().map(Vec::len).sum();
    let mut g = c.benchmark_group("tcp_link");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes as u64));
    for (label, compressed) in [("raw", false), ("compressed", true)] {
        g.bench_with_input(BenchmarkId::new("text", label), &compressed, |b, &z| {
            b.iter(|| run(z, text_payloads()));
        });
        g.bench_with_input(BenchmarkId::new("random", label), &compressed, |b, &z| {
            b.iter(|| run(z, random_payloads()));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_tcp
}
criterion_main!(benches);
