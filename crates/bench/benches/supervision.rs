//! Ablation: cost of the supervision layer on the fault-free hot path.
//!
//! The supervision work (restart policies, per-step `entered` telemetry,
//! the deadline/stall watchdog riding the monitor thread) must be free
//! when nothing fails — the budget is <2% against the plain pipeline.
//! Three variants of the same source→sink stream:
//!
//! * `baseline` — default config: Abort policy, watchdog disarmed;
//! * `supervised` — Restart policy on every kernel (policy bookkeeping in
//!   the step loop) with the watchdog still disarmed;
//! * `watchdog` — Restart policies *and* both watchdogs armed with
//!   generous budgets, so the monitor runs the health scan each tick.

use criterion::{criterion_group, Criterion, Throughput};
use raft_bench::jsonout::JsonReport;
use raftlib::prelude::*;
use std::time::Duration;

const ELEMS: u64 = 4_000_000;

/// One full map execution: ELEMS u64s from a lambda source into a
/// counting sink. Returns the count to keep the work observable.
fn run_pipeline(supervised: bool, watchdog: bool) -> u64 {
    let mut map = RaftMap::new();
    let mut i = 0u64;
    let src = map.add(lambda_source(move || {
        i += 1;
        (i <= ELEMS).then_some(i)
    }));
    let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sink_counter = counter.clone();
    let dst = map.add(lambda_sink(move |_v: u64| {
        sink_counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }));
    map.link(src, "0", dst, "0").unwrap();
    if supervised {
        map.supervise(src, SupervisorPolicy::restart(3));
        map.supervise(dst, SupervisorPolicy::restart(3));
    }
    if watchdog {
        map.config_mut().monitor = MonitorConfig::default()
            .with_run_budget(Duration::from_secs(10))
            .with_stall_timeout(Duration::from_secs(10));
    }
    map.exe().unwrap();
    counter.load(std::sync::atomic::Ordering::Relaxed)
}

fn bench_supervision(c: &mut Criterion) {
    let mut g = c.benchmark_group("supervision_overhead");
    g.throughput(Throughput::Elements(ELEMS));
    g.sample_size(10);

    g.bench_function("baseline", |b| {
        b.iter(|| assert_eq!(run_pipeline(false, false), ELEMS));
    });
    g.bench_function("supervised", |b| {
        b.iter(|| assert_eq!(run_pipeline(true, false), ELEMS));
    });
    g.bench_function("watchdog", |b| {
        b.iter(|| assert_eq!(run_pipeline(true, true), ELEMS));
    });

    g.finish();
}

/// One timed execution, as Melems/s.
fn rate_once(supervised: bool, watchdog: bool) -> f64 {
    let t0 = std::time::Instant::now();
    assert_eq!(run_pipeline(supervised, watchdog), ELEMS);
    ELEMS as f64 / t0.elapsed().as_secs_f64() / 1e6
}

/// `--json` mode: interleaved best-of-N rates (peak rate is far more
/// stable than a mean across whole-map executions, which carry thread
/// spawn and scheduler noise) plus the derived overhead percentages,
/// recorded at the repo root as `BENCH_supervision.json`.
fn json_mode() {
    let mut report = JsonReport::new("supervision");

    // warm-up round for allocator/monitor caches
    for &(s, w) in &[(false, false), (true, false), (true, true)] {
        let _ = rate_once(s, w);
    }

    let mut best = [0.0f64; 3];
    for _ in 0..8 {
        for (idx, &(s, w)) in [(false, false), (true, false), (true, true)]
            .iter()
            .enumerate()
        {
            best[idx] = best[idx].max(rate_once(s, w));
        }
    }
    let [baseline, supervised, watchdog] = best;

    report.push("pipeline_baseline_melems_per_s", baseline);
    report.push("pipeline_supervised_melems_per_s", supervised);
    report.push("pipeline_watchdog_melems_per_s", watchdog);
    report.push(
        "supervised_overhead_percent",
        (baseline - supervised) / baseline * 100.0,
    );
    report.push(
        "watchdog_overhead_percent",
        (baseline - watchdog) / baseline * 100.0,
    );

    let path = report.write().expect("write BENCH_supervision.json");
    println!("wrote {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_supervision
}

fn main() {
    if std::env::args().any(|a| a == "--json") {
        json_mode();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
