//! Ablation: cost of the supervision layer on the fault-free hot path.
//!
//! The supervision work (restart policies, per-step `entered` telemetry,
//! the deadline/stall watchdog riding the monitor thread) must be free
//! when nothing fails — the budget is <2% against the plain pipeline —
//! and the exactly-once link journal must stay within 5% of the same
//! supervised pipeline (the `--assert-journal` CI gate). Four variants of
//! the same source→sink stream:
//!
//! * `baseline` — default config: Abort policy, watchdog disarmed;
//! * `supervised` — Restart policy on every kernel (policy bookkeeping in
//!   the step loop) with the watchdog still disarmed;
//! * `watchdog` — Restart policies *and* both watchdogs armed with
//!   generous budgets, so the monitor runs the health scan each tick;
//! * `journaled` — Restart policies plus a replay journal on the link
//!   (per-pop record, per-run commit: the recovery contract's dead weight).
//!
//! The measured pipeline lives in `raft_bench::pipelines` so the offline
//! harness runs exactly this code.

use criterion::{criterion_group, Criterion, Throughput};
use raft_bench::pipelines::{
    assert_journal_overhead, assert_proc_overhead, proc_drain_worker, supervision_json_series,
    supervision_pipeline, SUPERVISION_ITEMS,
};

fn bench_supervision(c: &mut Criterion) {
    let mut g = c.benchmark_group("supervision_overhead");
    g.throughput(Throughput::Elements(SUPERVISION_ITEMS));
    g.sample_size(10);

    g.bench_function("baseline", |b| {
        b.iter(|| assert_eq!(supervision_pipeline(false, false, false), SUPERVISION_ITEMS));
    });
    g.bench_function("supervised", |b| {
        b.iter(|| assert_eq!(supervision_pipeline(true, false, false), SUPERVISION_ITEMS));
    });
    g.bench_function("watchdog", |b| {
        b.iter(|| assert_eq!(supervision_pipeline(true, true, false), SUPERVISION_ITEMS));
    });
    g.bench_function("journaled", |b| {
        b.iter(|| assert_eq!(supervision_pipeline(true, false, true), SUPERVISION_ITEMS));
    });

    g.finish();
}

/// `--json` mode: the interleaved best-of-N series recorded at the repo
/// root as `BENCH_supervision.json`; `--assert-journal` additionally gates
/// the journal's fault-free overhead at 5%, `--assert-proc` gates the
/// process supervisor's fault-free overhead against a bare fork at 5%.
fn json_mode(gate_journal: bool, gate_proc: bool) {
    let (path, rates, proc_rates) =
        supervision_json_series(true).expect("write BENCH_supervision.json");
    println!("wrote {}", path.display());
    if gate_journal {
        if let Err(msg) = assert_journal_overhead(&rates) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
    if gate_proc {
        if let Err(msg) = assert_proc_overhead(&proc_rates) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_supervision
}

fn main() {
    // Worker mode first: the proc series re-executes this binary with the
    // ring fd in the environment; it must never fall through to criterion.
    if let Ok(fd) = std::env::var("RAFT_BENCH_PROC_WORKER") {
        let beat = std::env::var("RAFT_BENCH_PROC_BEAT").is_ok();
        proc_drain_worker(fd.parse().expect("worker ring fd"), beat);
        return;
    }
    if std::env::args().any(|a| a == "--json") {
        json_mode(
            std::env::args().any(|a| a == "--assert-journal"),
            std::env::args().any(|a| a == "--assert-proc"),
        );
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
