//! Raw single-core service rates of the four search algorithms (GB/s) —
//! the inputs to Figure 10's flow model, measured in isolation from any
//! pipeline machinery.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use raft_algos::corpus::{generate, CorpusSpec};
use raft_algos::{AhoCorasick, BoyerMoore, Horspool, Matcher, MemMem};

const MB: usize = 8;

fn bench_search(c: &mut Criterion) {
    let corpus = generate(&CorpusSpec {
        size: MB << 20,
        matches_per_mb: 10.0,
        ..Default::default()
    });
    let expected = corpus.planted.len();
    let hay = corpus.data;
    let needle = corpus.needle.clone();

    let mut g = c.benchmark_group("search_algorithms");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(hay.len() as u64));

    let matchers: Vec<(&str, Box<dyn Matcher>)> = vec![
        ("aho_corasick", Box::new(AhoCorasick::new(&[&needle]))),
        ("boyer_moore", Box::new(BoyerMoore::new(&needle))),
        ("horspool", Box::new(Horspool::new(&needle))),
        ("memmem_grep_class", Box::new(MemMem::new(&needle))),
    ];
    for (name, m) in matchers {
        g.bench_function(name, |b| {
            b.iter(|| {
                let n = m.count(&hay);
                assert_eq!(n, expected);
            });
        });
    }
    g.finish();

    // Automaton construction cost (AC pays it, the shift tables are ~free).
    let mut g = c.benchmark_group("matcher_construction");
    g.bench_function("aho_corasick_100_patterns", |b| {
        let patterns: Vec<String> = (0..100).map(|i| format!("pattern{i:04}")).collect();
        b.iter(|| AhoCorasick::new(&patterns));
    });
    g.bench_function("horspool", |b| {
        b.iter(|| Horspool::new(&needle));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_search
}
criterion_main!(benches);
