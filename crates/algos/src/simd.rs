//! Runtime-dispatched SIMD byte primitives.
//!
//! The scanners in this crate spend most of their cycles answering one
//! question: *where is the next occurrence of byte `b`?* This module
//! answers it with the widest instruction set the running CPU actually
//! has, picked once at startup:
//!
//! | tier | width | selected when |
//! |---|---|---|
//! | `Avx2` | 32 bytes/step | `is_x86_feature_detected!("avx2")` |
//! | `Sse2` | 16 bytes/step | x86-64 (SSE2 is baseline) |
//! | `Scalar` | 1 byte/step | everything else |
//!
//! Dispatch is *runtime*, not compile-time: the same binary runs the AVX2
//! loop on machines that have it and falls back elsewhere. Every tier
//! computes byte-identical results — the SIMD paths only accelerate the
//! *search*, never change what is found — and the tests force each tier in
//! turn to prove it.
//!
//! Set `RAFT_SIMD=scalar|sse2|avx2` to force a tier (clamped to what the
//! CPU supports); useful for A/B benchmarks and for CI legs that must
//! exercise the fallback loops.

use std::sync::OnceLock;

/// Instruction-set tier selected for byte scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable scalar loop; always available.
    Scalar,
    /// 16-byte SSE2 loop (baseline on x86-64).
    Sse2,
    /// 32-byte AVX2 loop.
    Avx2,
}

impl SimdTier {
    /// Lowercase name, matching the `RAFT_SIMD` values.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
        }
    }
}

/// Widest tier the running CPU supports.
fn detected_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdTier::Avx2;
        }
        SimdTier::Sse2
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdTier::Scalar
    }
}

fn resolve_tier() -> SimdTier {
    let detected = detected_tier();
    let forced = match std::env::var("RAFT_SIMD").ok().as_deref() {
        Some("scalar") => Some(SimdTier::Scalar),
        Some("sse2") => Some(SimdTier::Sse2),
        Some("avx2") => Some(SimdTier::Avx2),
        _ => None,
    };
    match forced {
        // A forced tier is clamped to what the CPU can actually run.
        Some(t) => t.min(detected),
        None => detected,
    }
}

/// The tier all scans in this process use. Detected once (honouring
/// `RAFT_SIMD`) and cached.
pub fn active_tier() -> SimdTier {
    static TIER: OnceLock<SimdTier> = OnceLock::new();
    *TIER.get_or_init(resolve_tier)
}

/// Offset of the first occurrence of `needle` in `hay`.
pub fn find_byte(hay: &[u8], needle: u8) -> Option<usize> {
    find_byte_tier(hay, needle, active_tier())
}

/// Offset of the first occurrence of `needle` at position `>= from`.
/// Returns `None` when `from` is out of range.
pub fn find_byte_from(hay: &[u8], from: usize, needle: u8) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    find_byte(&hay[from..], needle).map(|p| from + p)
}

/// Number of occurrences of `needle` in `hay`.
pub fn count_byte(hay: &[u8], needle: u8) -> usize {
    count_byte_tier(hay, needle, active_tier())
}

fn find_byte_tier(hay: &[u8], needle: u8, tier: SimdTier) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    {
        match tier {
            // SAFETY: `active_tier()`/the tests only select Avx2 after
            // runtime detection confirmed the CPU supports it.
            SimdTier::Avx2 => return unsafe { x86::find_byte_avx2(hay, needle) },
            // SAFETY: SSE2 is part of the x86-64 baseline.
            SimdTier::Sse2 => return unsafe { x86::find_byte_sse2(hay, needle) },
            SimdTier::Scalar => {}
        }
    }
    let _ = tier;
    find_byte_scalar(hay, needle)
}

fn count_byte_tier(hay: &[u8], needle: u8, tier: SimdTier) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        match tier {
            // SAFETY: `active_tier()`/the tests only select Avx2 after
            // runtime detection confirmed the CPU supports it.
            SimdTier::Avx2 => return unsafe { x86::count_byte_avx2(hay, needle) },
            // SAFETY: SSE2 is part of the x86-64 baseline.
            SimdTier::Sse2 => return unsafe { x86::count_byte_sse2(hay, needle) },
            SimdTier::Scalar => {}
        }
    }
    let _ = tier;
    count_byte_scalar(hay, needle)
}

fn find_byte_scalar(hay: &[u8], needle: u8) -> Option<usize> {
    hay.iter().position(|&b| b == needle)
}

fn count_byte_scalar(hay: &[u8], needle: u8) -> usize {
    hay.iter().filter(|&&b| b == needle).count()
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The vector loops. Each processes full vector-width blocks with
    //! unaligned loads + byte-equality compare + movemask, then hands the
    //! tail to the scalar loop. `#[target_feature]` makes the functions
    //! `unsafe fn`s: callers must have verified the feature at runtime.

    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn find_byte_avx2(hay: &[u8], needle: u8) -> Option<usize> {
        let n = hay.len();
        let ptr = hay.as_ptr();
        // SAFETY: every load reads 32 bytes at `ptr + i` with
        // `i + 32 <= n`, staying inside `hay`; loadu has no alignment
        // requirement; AVX2 availability is the caller's obligation.
        unsafe {
            let needle_v = _mm256_set1_epi8(needle as i8);
            let mut i = 0usize;
            while i + 32 <= n {
                let chunk = _mm256_loadu_si256(ptr.add(i).cast());
                let eq = _mm256_cmpeq_epi8(chunk, needle_v);
                let mask = _mm256_movemask_epi8(eq) as u32;
                if mask != 0 {
                    return Some(i + mask.trailing_zeros() as usize);
                }
                i += 32;
            }
            super::find_byte_scalar(&hay[i..], needle).map(|p| i + p)
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn find_byte_sse2(hay: &[u8], needle: u8) -> Option<usize> {
        let n = hay.len();
        let ptr = hay.as_ptr();
        // SAFETY: every load reads 16 bytes at `ptr + i` with
        // `i + 16 <= n`, staying inside `hay`; loadu has no alignment
        // requirement; SSE2 is baseline on x86-64.
        unsafe {
            let needle_v = _mm_set1_epi8(needle as i8);
            let mut i = 0usize;
            while i + 16 <= n {
                let chunk = _mm_loadu_si128(ptr.add(i).cast());
                let eq = _mm_cmpeq_epi8(chunk, needle_v);
                let mask = _mm_movemask_epi8(eq) as u32;
                if mask != 0 {
                    return Some(i + mask.trailing_zeros() as usize);
                }
                i += 16;
            }
            super::find_byte_scalar(&hay[i..], needle).map(|p| i + p)
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn count_byte_avx2(hay: &[u8], needle: u8) -> usize {
        let n = hay.len();
        let ptr = hay.as_ptr();
        // SAFETY: in-bounds unaligned 32-byte loads as in
        // `find_byte_avx2`; AVX2 availability is the caller's obligation.
        unsafe {
            let needle_v = _mm256_set1_epi8(needle as i8);
            let mut total = 0usize;
            let mut i = 0usize;
            while i + 32 <= n {
                let chunk = _mm256_loadu_si256(ptr.add(i).cast());
                let eq = _mm256_cmpeq_epi8(chunk, needle_v);
                let mask = _mm256_movemask_epi8(eq) as u32;
                total += mask.count_ones() as usize;
                i += 32;
            }
            total + super::count_byte_scalar(&hay[i..], needle)
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn count_byte_sse2(hay: &[u8], needle: u8) -> usize {
        let n = hay.len();
        let ptr = hay.as_ptr();
        // SAFETY: in-bounds unaligned 16-byte loads as in
        // `find_byte_sse2`; SSE2 is baseline on x86-64.
        unsafe {
            let needle_v = _mm_set1_epi8(needle as i8);
            let mut total = 0usize;
            let mut i = 0usize;
            while i + 16 <= n {
                let chunk = _mm_loadu_si128(ptr.add(i).cast());
                let eq = _mm_cmpeq_epi8(chunk, needle_v);
                let mask = _mm_movemask_epi8(eq) as u32;
                total += mask.count_ones() as usize;
                i += 16;
            }
            total + super::count_byte_scalar(&hay[i..], needle)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every tier the current CPU can actually run.
    fn runnable_tiers() -> Vec<SimdTier> {
        [SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2]
            .into_iter()
            .filter(|&t| t <= detected_tier())
            .collect()
    }

    fn cases() -> Vec<(Vec<u8>, u8)> {
        let mut cases = vec![
            (Vec::new(), b'x'),
            (b"a".to_vec(), b'a'),
            (b"a".to_vec(), b'b'),
            (vec![0u8; 100], 0),
            (vec![7u8; 1000], 9),
        ];
        // Needle planted at every offset around the vector-width
        // boundaries (15/16/17, 31/32/33, tails).
        for len in [15usize, 16, 17, 31, 32, 33, 63, 64, 65, 100, 257] {
            for pos in [0usize, 1, len / 2, len - 1] {
                let mut hay = vec![b'.'; len];
                hay[pos] = b'#';
                cases.push((hay, b'#'));
            }
            // multiple occurrences
            let hay: Vec<u8> = (0..len)
                .map(|i| if i % 3 == 0 { b'#' } else { b'.' })
                .collect();
            cases.push((hay, b'#'));
            // absent
            cases.push((vec![b'.'; len], b'#'));
        }
        cases
    }

    #[test]
    fn all_tiers_agree_on_find_byte() {
        for (hay, needle) in cases() {
            let want = find_byte_scalar(&hay, needle);
            for tier in runnable_tiers() {
                assert_eq!(
                    find_byte_tier(&hay, needle, tier),
                    want,
                    "tier {:?} diverged on len {} needle {}",
                    tier,
                    hay.len(),
                    needle
                );
            }
        }
    }

    #[test]
    fn all_tiers_agree_on_count_byte() {
        for (hay, needle) in cases() {
            let want = count_byte_scalar(&hay, needle);
            for tier in runnable_tiers() {
                assert_eq!(
                    count_byte_tier(&hay, needle, tier),
                    want,
                    "tier {:?} diverged on len {} needle {}",
                    tier,
                    hay.len(),
                    needle
                );
            }
        }
    }

    #[test]
    fn find_byte_from_offsets_are_absolute() {
        let hay = b"....#....#....";
        assert_eq!(find_byte_from(hay, 0, b'#'), Some(4));
        assert_eq!(find_byte_from(hay, 4, b'#'), Some(4));
        assert_eq!(find_byte_from(hay, 5, b'#'), Some(9));
        assert_eq!(find_byte_from(hay, 10, b'#'), None);
        assert_eq!(find_byte_from(hay, hay.len(), b'#'), None);
        assert_eq!(find_byte_from(hay, hay.len() + 5, b'#'), None);
    }

    #[test]
    fn active_tier_is_runnable() {
        assert!(active_tier() <= detected_tier());
    }

    #[test]
    fn tier_names_round_trip() {
        assert_eq!(SimdTier::Scalar.name(), "scalar");
        assert_eq!(SimdTier::Sse2.name(), "sse2");
        assert_eq!(SimdTier::Avx2.name(), "avx2");
    }
}
