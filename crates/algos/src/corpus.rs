//! Synthetic text corpus generation.
//!
//! The paper searched a 30 GB cut of the Stack Overflow post-history dump
//! held on a RAM disk (§5). That dataset is not available here, so the
//! Figure 10 harness generates an English-like corpus instead:
//!
//! * words drawn from a vocabulary with Zipf-distributed frequencies
//!   (natural-language statistics — this is what the skip-loop searchers'
//!   sublinearity depends on);
//! * a needle pattern *planted* at a configurable density, so match counts
//!   are known in advance and every system's output can be verified;
//! * fully seeded: the same parameters always produce the same bytes.
//!
//! The substitution preserves what the experiment measures: exact-match
//! scanning cost as a function of text statistics and match density, with
//! the corpus resident in memory (the paper's RAM-disk condition).

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Total size in bytes (approximate: rounded up to whole words).
    pub size: usize,
    /// Vocabulary size for the Zipf word model.
    pub vocab: usize,
    /// Zipf exponent (1.0 ≈ natural language).
    pub zipf_s: f64,
    /// The needle to plant.
    pub needle: Vec<u8>,
    /// Approximate matches per megabyte of corpus.
    pub matches_per_mb: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            size: 1 << 20,
            vocab: 10_000,
            zipf_s: 1.05,
            needle: b"xq7vektor".to_vec(),
            matches_per_mb: 10.0,
            seed: 0xC0FFEE,
        }
    }
}

/// A generated corpus plus ground truth about planted needles.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The text.
    pub data: Vec<u8>,
    /// Offsets at which the needle was planted (sorted). The generator
    /// guarantees the needle appears *only* at these offsets.
    pub planted: Vec<usize>,
    /// The needle that was planted.
    pub needle: Vec<u8>,
}

/// Zipf sampler over ranks `1..=n` via rejection (Devroye); exactness is
/// irrelevant here, shape is what matters.
struct Zipf {
    n: f64,
    s: f64,
    h_x1: f64,
    h_n: f64,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let n = n as f64;
        let h = |x: f64, s: f64| -> f64 {
            if (s - 1.0).abs() < 1e-9 {
                (x).ln()
            } else {
                (x.powf(1.0 - s) - 1.0) / (1.0 - s)
            }
        };
        Zipf {
            n,
            s,
            h_x1: h(1.5, s) - 1.0,
            h_n: h(n + 0.5, s),
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - self.s)).powf(1.0 / (1.0 - self.s))
        }
    }
}

impl Distribution<usize> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        loop {
            let u = self.h_x1 + rng.gen::<f64>() * (self.h_n - self.h_x1);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n);
            // Acceptance test simplified: accept k with probability
            // proportional to k^-s / envelope; cheap approximation.
            let ratio = (k / x).powf(self.s);
            if rng.gen::<f64>() < ratio.min(1.0) {
                return k as usize;
            }
        }
    }
}

/// Deterministic vocabulary: word `i` is a lowercase base-26 rendering of
/// `i` with length growing slowly (3..=9 chars).
fn word(i: usize, buf: &mut Vec<u8>) {
    buf.clear();
    let len = 3 + (i % 7);
    let mut x = i as u64 * 2654435761 % (1 << 31);
    for _ in 0..len {
        buf.push(b'a' + (x % 26) as u8);
        x = x.wrapping_mul(48271) % 0x7FFFFFFF;
    }
}

/// Generate a corpus per `spec`. See module docs for guarantees.
pub fn generate(spec: &CorpusSpec) -> Corpus {
    assert!(!spec.needle.is_empty(), "needle must be non-empty");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let zipf = Zipf::new(spec.vocab.max(2), spec.zipf_s);
    let mut data = Vec::with_capacity(spec.size + 64);
    let mut wordbuf = Vec::with_capacity(16);

    // Plant points: Poisson-ish spacing from the target density.
    let n_matches = ((spec.size as f64 / (1024.0 * 1024.0)) * spec.matches_per_mb).round() as usize;
    let mut plant_at: Vec<usize> = (0..n_matches)
        .map(|_| rng.gen_range(0..spec.size.max(1)))
        .collect();
    plant_at.sort_unstable();
    plant_at.dedup();

    let mut planted = Vec::with_capacity(plant_at.len());
    let mut next_plant = 0usize;
    while data.len() < spec.size {
        if next_plant < plant_at.len() && data.len() >= plant_at[next_plant] {
            planted.push(data.len());
            data.extend_from_slice(&spec.needle);
            data.push(b' ');
            next_plant += 1;
            continue;
        }
        let rank = zipf.sample(&mut rng);
        word(rank, &mut wordbuf);
        data.extend_from_slice(&wordbuf);
        // occasional punctuation/newlines for realism
        match rng.gen_range(0u32..100) {
            0..=2 => data.extend_from_slice(b".\n"),
            3..=5 => data.extend_from_slice(b", "),
            _ => data.push(b' '),
        }
    }
    // Any remaining plant points past the end are planted by appending.
    while next_plant < plant_at.len() {
        planted.push(data.len());
        data.extend_from_slice(&spec.needle);
        data.push(b' ');
        next_plant += 1;
    }

    // Guarantee the needle occurs only where planted: the vocabulary is
    // lowercase-only, so any needle containing a non-lowercase byte (like
    // the default's digit) cannot occur by accident. For pure-lowercase
    // needles, scrub accidental occurrences with a byte that (a) does not
    // appear in the needle, so scrubbing cannot mint new occurrences, and
    // (b) lands outside every planted occurrence, so ground truth survives.
    let scrub = (b'0'..=b'9')
        .chain(b'A'..=b'Z')
        .find(|b| !spec.needle.contains(b))
        .unwrap_or(1u8);
    let m = spec.needle.len();
    let accidental = find_accidental(&data, &spec.needle, &planted);
    for pos in accidental {
        let inside_planted = |i: usize| {
            let p = planted.partition_point(|&p| p <= i);
            p > 0 && i < planted[p - 1] + m
        };
        let target = (pos..pos + m)
            .find(|&i| !inside_planted(i))
            .expect("accidental occurrence fully covered by planted ones");
        data[target] = scrub;
    }
    debug_assert!(find_accidental(&data, &spec.needle, &planted).is_empty());

    Corpus {
        data,
        planted,
        needle: spec.needle.clone(),
    }
}

/// Find occurrences of `needle` not in `planted` (used by `generate` to
/// scrub, and by tests to verify).
fn find_accidental(data: &[u8], needle: &[u8], planted: &[usize]) -> Vec<usize> {
    let mut acc = Vec::new();
    let mut i = 0;
    while i + needle.len() <= data.len() {
        if &data[i..i + needle.len()] == needle {
            if planted.binary_search(&i).is_err() {
                acc.push(i);
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let spec = CorpusSpec {
            size: 64 * 1024,
            ..Default::default()
        };
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.data, b.data);
        assert_eq!(a.planted, b.planted);
    }

    #[test]
    fn planted_offsets_are_real_matches() {
        let spec = CorpusSpec {
            size: 256 * 1024,
            matches_per_mb: 100.0,
            ..Default::default()
        };
        let c = generate(&spec);
        assert!(!c.planted.is_empty(), "expected some planted matches");
        for &off in &c.planted {
            assert_eq!(
                &c.data[off..off + c.needle.len()],
                &c.needle[..],
                "planted offset {off} does not contain the needle"
            );
        }
    }

    #[test]
    fn no_accidental_matches() {
        let spec = CorpusSpec {
            size: 512 * 1024,
            needle: b"thequick".to_vec(), // lowercase: collision-prone
            matches_per_mb: 50.0,
            ..Default::default()
        };
        let c = generate(&spec);
        let accidental = find_accidental(&c.data, &c.needle, &c.planted);
        assert!(
            accidental.is_empty(),
            "accidental needle occurrences at {accidental:?}"
        );
    }

    #[test]
    fn size_approximate() {
        let spec = CorpusSpec {
            size: 100_000,
            ..Default::default()
        };
        let c = generate(&spec);
        assert!(c.data.len() >= 100_000);
        assert!(c.data.len() < 101_000);
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(1000, 1.05);
        let mut rng = StdRng::seed_from_u64(1);
        let mut lows = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            if z.sample(&mut rng) <= 10 {
                lows += 1;
            }
        }
        // top-10 ranks should dominate noticeably under Zipf
        assert!(lows > N / 5, "only {lows}/{N} samples in top-10 ranks");
    }

    #[test]
    fn ascii_only() {
        let c = generate(&CorpusSpec {
            size: 32 * 1024,
            ..Default::default()
        });
        assert!(c.data.iter().all(|b| b.is_ascii()));
    }
}
