//! Brute-force matcher — the testing oracle every optimized matcher is
//! checked against.

use crate::{Match, Matcher};

/// O(n·m) sliding comparison over one or more patterns. Never used on the
//  hot path; exists so property tests have an obviously-correct reference.
#[derive(Debug, Clone)]
pub struct Naive {
    patterns: Vec<Vec<u8>>,
    max_len: usize,
}

impl Naive {
    /// Build from any set of patterns. Empty patterns are rejected.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        let patterns: Vec<Vec<u8>> = patterns.iter().map(|p| p.as_ref().to_vec()).collect();
        assert!(
            patterns.iter().all(|p| !p.is_empty()),
            "empty patterns are not searchable"
        );
        let max_len = patterns.iter().map(Vec::len).max().unwrap_or(0);
        Naive { patterns, max_len }
    }
}

impl Matcher for Naive {
    fn max_pattern_len(&self) -> usize {
        self.max_len
    }

    fn find_into(&self, hay: &[u8], base: u64, min_end: usize, out: &mut Vec<Match>) {
        if let [pat] = self.patterns.as_slice() {
            // Single-pattern: leap between occurrences of the pattern's
            // first byte (vectorized) instead of probing every start.
            // Candidates arrive in ascending start order, so the output is
            // identical to the generic loop below.
            let m = pat.len();
            if hay.len() < m {
                return;
            }
            let mut from = 0usize;
            while let Some(start) =
                crate::simd::find_byte_from(&hay[..hay.len() - m + 1], from, pat[0])
            {
                if start + m > min_end && hay[start..start + m] == pat[..] {
                    out.push(Match {
                        offset: base + start as u64,
                        pattern: 0,
                    });
                }
                from = start + 1;
            }
            return;
        }
        // Multi-pattern: the deliberately plain loop property tests treat
        // as ground truth.
        for start in 0..hay.len() {
            for (pi, pat) in self.patterns.iter().enumerate() {
                if start + pat.len() > min_end && hay[start..].starts_with(pat) {
                    out.push(Match {
                        offset: base + start as u64,
                        pattern: pi as u32,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_overlapping_occurrences() {
        let m = Naive::new(&["aa"]);
        let found = m.find_all(b"aaaa");
        assert_eq!(
            found.iter().map(|m| m.offset).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn multi_pattern_reports_indices() {
        let m = Naive::new(&["ab", "ba"]);
        let found = m.find_all(b"abab");
        assert_eq!(found.len(), 3);
        assert!(found.contains(&Match {
            offset: 0,
            pattern: 0
        }));
        assert!(found.contains(&Match {
            offset: 1,
            pattern: 1
        }));
        assert!(found.contains(&Match {
            offset: 2,
            pattern: 0
        }));
    }

    #[test]
    fn respects_min_end() {
        let m = Naive::new(&["ab"]);
        let mut out = Vec::new();
        // min_end = 2: the match ending exactly at 2 is suppressed (owned by
        // the previous chunk), the one ending at 4 is reported.
        m.find_into(b"abab", 100, 2, &mut out);
        assert_eq!(
            out,
            vec![Match {
                offset: 102,
                pattern: 0
            }]
        );
    }

    #[test]
    #[should_panic(expected = "empty patterns")]
    fn rejects_empty_pattern() {
        Naive::new(&[""]);
    }

    /// The vectorized single-pattern path must report exactly what the
    /// generic loop reports. Adding a second pattern that cannot occur
    /// forces the generic loop, so the two configurations are comparable.
    #[test]
    fn single_pattern_path_agrees_with_generic_loop() {
        let absent = [0xFEu8, 0xFD];
        let mut state = 0x243f6a8885a308d3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for pat in [&b"ab"[..], b"aaa", b"ba", b"b"] {
            for len in [0usize, 1, 16, 17, 32, 33, 64, 65, 300] {
                let hay: Vec<u8> = (0..len).map(|_| b"ab"[(next() % 2) as usize]).collect();
                let fast = Naive::new(&[pat]);
                let generic = Naive::new(&[pat, &absent[..]]);
                for min_end in [0usize, 1, len / 2] {
                    let mut got = Vec::new();
                    let mut want = Vec::new();
                    fast.find_into(&hay, 3, min_end, &mut got);
                    generic.find_into(&hay, 3, min_end, &mut want);
                    assert_eq!(got, want, "len={} pat={:?} min_end={}", len, pat, min_end);
                }
            }
        }
    }
}
