//! Grep-class single-pattern scanner.
//!
//! Stands in for GNU grep's core loop in the Figure 10 comparison: a
//! `memchr`-style skip loop on the pattern's rarest byte, followed by a
//! Horspool verification window. GNU grep's 20-years-optimized scanner hits
//! ~1.2 GB/s single-threaded on the paper's machine; this design has the
//! same structure (byte-skip + window verify) and the same property the
//! figure illustrates — extremely fast on one core, parallelized only
//! coarsely by the chunk dispatcher that models GNU Parallel.

use crate::{Match, Matcher};

/// Frequency rank of each byte in "typical" ASCII text, used to pick the
/// rarest pattern byte for the skip loop. Lower = rarer. Derived from
/// English letter frequencies; exact values only affect speed, not
/// correctness.
const RARITY: [u8; 256] = {
    let mut r = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        // Default: rare (control bytes, high bit set).
        r[i] = 10;
        i += 1;
    }
    // Common ASCII: letters, digits, space, punctuation.
    r[b' ' as usize] = 255;
    r[b'e' as usize] = 250;
    r[b't' as usize] = 245;
    r[b'a' as usize] = 240;
    r[b'o' as usize] = 235;
    r[b'i' as usize] = 230;
    r[b'n' as usize] = 225;
    r[b's' as usize] = 220;
    r[b'r' as usize] = 215;
    r[b'h' as usize] = 210;
    r[b'l' as usize] = 205;
    r[b'd' as usize] = 200;
    r[b'u' as usize] = 190;
    r[b'c' as usize] = 185;
    r[b'm' as usize] = 180;
    r[b'w' as usize] = 170;
    r[b'f' as usize] = 165;
    r[b'g' as usize] = 160;
    r[b'y' as usize] = 155;
    r[b'p' as usize] = 150;
    r[b'b' as usize] = 140;
    r[b'v' as usize] = 120;
    r[b'k' as usize] = 110;
    r[b'0' as usize] = 100;
    r[b'1' as usize] = 100;
    r[b'2' as usize] = 95;
    r[b'e' as usize - 32] = 90; // 'E'
    r[b'x' as usize] = 60;
    r[b'j' as usize] = 50;
    r[b'q' as usize] = 45;
    r[b'z' as usize] = 40;
    r
};

/// Single-pattern scanner: skip loop on the rarest byte + full verify.
#[derive(Debug, Clone)]
pub struct MemMem {
    pattern: Vec<u8>,
    /// Index of the rarest byte within the pattern.
    rare_idx: usize,
    /// The rarest byte itself.
    rare_byte: u8,
    /// Horspool shift table for the verification fallback.
    shift: [usize; 256],
}

impl MemMem {
    /// Build a scanner for `pattern`. Panics on an empty pattern.
    pub fn new(pattern: impl AsRef<[u8]>) -> Self {
        let pattern = pattern.as_ref().to_vec();
        assert!(!pattern.is_empty(), "empty patterns are not searchable");
        let m = pattern.len();
        let rare_idx = pattern
            .iter()
            .enumerate()
            .min_by_key(|(_, &b)| RARITY[b as usize])
            .map(|(i, _)| i)
            .unwrap();
        let rare_byte = pattern[rare_idx];
        let mut shift = [m; 256];
        for (i, &b) in pattern[..m - 1].iter().enumerate() {
            shift[b as usize] = m - 1 - i;
        }
        MemMem {
            pattern,
            rare_idx,
            rare_byte,
            shift,
        }
    }

    /// The pattern being searched.
    pub fn pattern(&self) -> &[u8] {
        &self.pattern
    }

    /// First match at or after `from`, if any (grep-style early exit).
    pub fn find_first(&self, hay: &[u8], from: usize) -> Option<usize> {
        let m = self.pattern.len();
        let n = hay.len();
        if n < m {
            return None;
        }
        let mut i = from;
        while i + m <= n {
            match self.scan_one(hay, i) {
                ScanStep::Match(pos) => return Some(pos),
                ScanStep::Continue(next) => i = next,
                ScanStep::Done => break,
            }
        }
        None
    }

    /// One skip-loop step from window position `i`; shared by
    /// `find_first` and `find_into`.
    #[inline]
    fn scan_one(&self, hay: &[u8], i: usize) -> ScanStep {
        let m = self.pattern.len();
        let n = hay.len();
        // Skip loop: hunt for the rare byte at its expected offset.
        let mut i = i;
        loop {
            if i + m > n {
                return ScanStep::Done;
            }
            let probe = i + self.rare_idx;
            if hay[probe] == self.rare_byte {
                break;
            }
            // Horspool shift keyed on the window's last byte.
            i += self.shift[hay[i + m - 1] as usize];
        }
        if hay[i..i + m] == self.pattern[..] {
            ScanStep::Match(i)
        } else {
            ScanStep::Continue(i + self.shift[hay[i + m - 1] as usize])
        }
    }
}

enum ScanStep {
    Match(usize),
    Continue(usize),
    Done,
}

impl Matcher for MemMem {
    fn max_pattern_len(&self) -> usize {
        self.pattern.len()
    }

    fn find_into(&self, hay: &[u8], base: u64, min_end: usize, out: &mut Vec<Match>) {
        let m = self.pattern.len();
        let n = hay.len();
        if n < m {
            return;
        }
        // First window whose end (i + m) can exceed min_end.
        let mut i = min_end.saturating_sub(m - 1);
        while i + m <= n {
            match self.scan_one(hay, i) {
                ScanStep::Match(pos) => {
                    out.push(Match {
                        offset: base + pos as u64,
                        pattern: 0,
                    });
                    i = pos + 1;
                }
                ScanStep::Continue(next) => i = next,
                ScanStep::Done => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::Naive;

    #[test]
    fn agrees_with_naive() {
        for (hay, pat) in [
            (&b"the quick brown fox jumps over the lazy dog"[..], &b"the"[..]),
            (b"aaaaaa", b"aa"),
            (b"zzzzzz", b"zz"),
            (b"abcabcabc", b"cab"),
            (b"no match here", b"xyz"),
            (b"q", b"q"),
            (b"", b"x"),
            (b"needle at the very end needle", b"needle"),
        ] {
            let mm = MemMem::new(pat);
            let n = Naive::new(&[pat]);
            assert_eq!(
                mm.find_all(hay),
                n.find_all(hay),
                "hay={:?} pat={:?}",
                std::str::from_utf8(hay),
                std::str::from_utf8(pat)
            );
        }
    }

    #[test]
    fn picks_rare_byte() {
        let mm = MemMem::new("eeeqeee");
        assert_eq!(mm.rare_byte, b'q');
        assert_eq!(mm.rare_idx, 3);
    }

    #[test]
    fn find_first_early_exit() {
        let mm = MemMem::new("xy");
        assert_eq!(mm.find_first(b"aaxyaa xy", 0), Some(2));
        assert_eq!(mm.find_first(b"aaxyaa xy", 3), Some(7));
        assert_eq!(mm.find_first(b"aabbcc", 0), None);
    }

    #[test]
    fn overlapping_matches() {
        let mm = MemMem::new("qq");
        let offs: Vec<u64> = mm.find_all(b"qqqq").iter().map(|m| m.offset).collect();
        assert_eq!(offs, vec![0, 1, 2]);
    }
}
