//! Grep-class single-pattern scanner.
//!
//! Stands in for GNU grep's core loop in the Figure 10 comparison: a
//! `memchr`-style skip on the pattern's rarest byte, followed by a full
//! verification window. The skip is a vectorized byte hunt
//! ([`crate::simd::find_byte_from`], AVX2/SSE2/scalar picked at runtime):
//! the scanner leaps straight to the next place the rare byte occurs at its
//! expected offset, processing 32 haystack bytes per instruction between
//! candidates. GNU grep's 20-years-optimized scanner hits ~1.2 GB/s
//! single-threaded on the paper's machine; this design has the same
//! structure (byte-skip + window verify) and the same property the figure
//! illustrates — extremely fast on one core, parallelized only coarsely by
//! the chunk dispatcher that models GNU Parallel.

use crate::{Match, Matcher};

/// Frequency rank of each byte in "typical" ASCII text, used to pick the
/// rarest pattern byte for the skip loop. Lower = rarer. Derived from
/// English letter frequencies; exact values only affect speed, not
/// correctness.
const RARITY: [u8; 256] = {
    let mut r = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        // Default: rare (control bytes, high bit set).
        r[i] = 10;
        i += 1;
    }
    // Common ASCII: letters, digits, space, punctuation.
    r[b' ' as usize] = 255;
    r[b'e' as usize] = 250;
    r[b't' as usize] = 245;
    r[b'a' as usize] = 240;
    r[b'o' as usize] = 235;
    r[b'i' as usize] = 230;
    r[b'n' as usize] = 225;
    r[b's' as usize] = 220;
    r[b'r' as usize] = 215;
    r[b'h' as usize] = 210;
    r[b'l' as usize] = 205;
    r[b'd' as usize] = 200;
    r[b'u' as usize] = 190;
    r[b'c' as usize] = 185;
    r[b'm' as usize] = 180;
    r[b'w' as usize] = 170;
    r[b'f' as usize] = 165;
    r[b'g' as usize] = 160;
    r[b'y' as usize] = 155;
    r[b'p' as usize] = 150;
    r[b'b' as usize] = 140;
    r[b'v' as usize] = 120;
    r[b'k' as usize] = 110;
    r[b'0' as usize] = 100;
    r[b'1' as usize] = 100;
    r[b'2' as usize] = 95;
    r[b'e' as usize - 32] = 90; // 'E'
    r[b'x' as usize] = 60;
    r[b'j' as usize] = 50;
    r[b'q' as usize] = 45;
    r[b'z' as usize] = 40;
    r
};

/// Single-pattern scanner: skip loop on the rarest byte + full verify.
#[derive(Debug, Clone)]
pub struct MemMem {
    pattern: Vec<u8>,
    /// Index of the rarest byte within the pattern.
    rare_idx: usize,
    /// The rarest byte itself.
    rare_byte: u8,
}

impl MemMem {
    /// Build a scanner for `pattern`. Panics on an empty pattern.
    pub fn new(pattern: impl AsRef<[u8]>) -> Self {
        let pattern = pattern.as_ref().to_vec();
        assert!(!pattern.is_empty(), "empty patterns are not searchable");
        let rare_idx = pattern
            .iter()
            .enumerate()
            .min_by_key(|(_, &b)| RARITY[b as usize])
            .map(|(i, _)| i)
            .unwrap();
        let rare_byte = pattern[rare_idx];
        MemMem {
            pattern,
            rare_idx,
            rare_byte,
        }
    }

    /// The pattern being searched.
    pub fn pattern(&self) -> &[u8] {
        &self.pattern
    }

    /// First match at or after `from`, if any (grep-style early exit).
    pub fn find_first(&self, hay: &[u8], from: usize) -> Option<usize> {
        let m = self.pattern.len();
        let n = hay.len();
        if n < m {
            return None;
        }
        let mut i = from;
        while i + m <= n {
            match self.scan_one(hay, i) {
                ScanStep::Match(pos) => return Some(pos),
                ScanStep::Continue(next) => i = next,
                ScanStep::Done => break,
            }
        }
        None
    }

    /// One skip step from window position `i`; shared by `find_first` and
    /// `find_into`. Every true match at `start` has `rare_byte` at
    /// `start + rare_idx`, so leaping to the next occurrence of the rare
    /// byte (vectorized) can never skip one; a failed verify resumes one
    /// past the candidate, which keeps overlapping matches intact.
    #[inline]
    fn scan_one(&self, hay: &[u8], i: usize) -> ScanStep {
        let m = self.pattern.len();
        let n = hay.len();
        if i + m > n {
            return ScanStep::Done;
        }
        // The last valid window starts at n - m, so its rare byte sits at
        // n - m + rare_idx; cap the hunt there — a hit past it could not
        // belong to any in-bounds window.
        let search_end = n - m + self.rare_idx + 1;
        match crate::simd::find_byte_from(&hay[..search_end], i + self.rare_idx, self.rare_byte) {
            Some(probe) => {
                let start = probe - self.rare_idx;
                if hay[start..start + m] == self.pattern[..] {
                    ScanStep::Match(start)
                } else {
                    ScanStep::Continue(start + 1)
                }
            }
            None => ScanStep::Done,
        }
    }
}

enum ScanStep {
    Match(usize),
    Continue(usize),
    Done,
}

impl Matcher for MemMem {
    fn max_pattern_len(&self) -> usize {
        self.pattern.len()
    }

    fn find_into(&self, hay: &[u8], base: u64, min_end: usize, out: &mut Vec<Match>) {
        let m = self.pattern.len();
        let n = hay.len();
        if n < m {
            return;
        }
        // First window whose end (i + m) can exceed min_end.
        let mut i = min_end.saturating_sub(m - 1);
        while i + m <= n {
            match self.scan_one(hay, i) {
                ScanStep::Match(pos) => {
                    out.push(Match {
                        offset: base + pos as u64,
                        pattern: 0,
                    });
                    i = pos + 1;
                }
                ScanStep::Continue(next) => i = next,
                ScanStep::Done => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::Naive;

    #[test]
    fn agrees_with_naive() {
        for (hay, pat) in [
            (
                &b"the quick brown fox jumps over the lazy dog"[..],
                &b"the"[..],
            ),
            (b"aaaaaa", b"aa"),
            (b"zzzzzz", b"zz"),
            (b"abcabcabc", b"cab"),
            (b"no match here", b"xyz"),
            (b"q", b"q"),
            (b"", b"x"),
            (b"needle at the very end needle", b"needle"),
        ] {
            let mm = MemMem::new(pat);
            let n = Naive::new(&[pat]);
            assert_eq!(
                mm.find_all(hay),
                n.find_all(hay),
                "hay={:?} pat={:?}",
                std::str::from_utf8(hay),
                std::str::from_utf8(pat)
            );
        }
    }

    #[test]
    fn picks_rare_byte() {
        let mm = MemMem::new("eeeqeee");
        assert_eq!(mm.rare_byte, b'q');
        assert_eq!(mm.rare_idx, 3);
    }

    #[test]
    fn find_first_early_exit() {
        let mm = MemMem::new("xy");
        assert_eq!(mm.find_first(b"aaxyaa xy", 0), Some(2));
        assert_eq!(mm.find_first(b"aaxyaa xy", 3), Some(7));
        assert_eq!(mm.find_first(b"aabbcc", 0), None);
    }

    #[test]
    fn overlapping_matches() {
        let mm = MemMem::new("qq");
        let offs: Vec<u64> = mm.find_all(b"qqqq").iter().map(|m| m.offset).collect();
        assert_eq!(offs, vec![0, 1, 2]);
    }

    /// Long haystacks with matches planted around the 16/32-byte vector
    /// boundaries the skip loop processes per step.
    #[test]
    fn agrees_with_naive_across_vector_boundaries() {
        // Deterministic pseudo-random filler over a tiny alphabet so false
        // candidates (rare byte present, full window absent) are common.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for pat in [&b"qz"[..], b"abcq", b"qqq", b"a"] {
            for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 500] {
                let mut hay: Vec<u8> = (0..len).map(|_| b"abq"[(next() % 3) as usize]).collect();
                // plant an occurrence butting against the end
                if len >= pat.len() {
                    let at = len - pat.len();
                    hay[at..].copy_from_slice(pat);
                }
                let mm = MemMem::new(pat);
                let n = Naive::new(&[pat]);
                assert_eq!(
                    mm.find_all(&hay),
                    n.find_all(&hay),
                    "len={} pat={:?}",
                    len,
                    std::str::from_utf8(pat)
                );
            }
        }
    }

    /// Chunk-ownership (`min_end`) semantics survive the vectorized skip.
    #[test]
    fn min_end_agrees_with_naive() {
        let hay = b"ababab ababab";
        let mm = MemMem::new("abab");
        let n = Naive::new(&[&b"abab"[..]]);
        for min_end in 0..hay.len() + 2 {
            let mut got = Vec::new();
            let mut want = Vec::new();
            mm.find_into(hay, 7, min_end, &mut got);
            n.find_into(hay, 7, min_end, &mut want);
            assert_eq!(got, want, "min_end={min_end}");
        }
    }
}
