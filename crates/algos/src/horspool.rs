//! Boyer-Moore-Horspool single-pattern matcher (Horspool, 1980).
//!
//! The paper's fastest RaftLib search kernel: once the Aho-Corasick
//! bottleneck was swapped for Horspool, the text-search pipeline scaled
//! linearly to ~10 cores and ~8 GB/s (§5). Horspool simplifies Boyer-Moore
//! to a single bad-character shift table indexed by the haystack byte
//! aligned with the *last* pattern position, giving sublinear average-case
//! scanning with a tiny, cache-resident table.

use crate::{Match, Matcher};

/// Precomputed Horspool searcher for one pattern.
#[derive(Debug, Clone)]
pub struct Horspool {
    pattern: Vec<u8>,
    /// shift[b] = distance to slide the window when the byte under the last
    /// pattern position is `b`.
    shift: [usize; 256],
}

impl Horspool {
    /// Build the shift table for `pattern`. Panics on an empty pattern.
    pub fn new(pattern: impl AsRef<[u8]>) -> Self {
        let pattern = pattern.as_ref().to_vec();
        assert!(!pattern.is_empty(), "empty patterns are not searchable");
        let m = pattern.len();
        let mut shift = [m; 256];
        for (i, &b) in pattern[..m - 1].iter().enumerate() {
            shift[b as usize] = m - 1 - i;
        }
        Horspool { pattern, shift }
    }

    /// The pattern being searched.
    pub fn pattern(&self) -> &[u8] {
        &self.pattern
    }
}

impl Matcher for Horspool {
    fn max_pattern_len(&self) -> usize {
        self.pattern.len()
    }

    fn find_into(&self, hay: &[u8], base: u64, min_end: usize, out: &mut Vec<Match>) {
        let m = self.pattern.len();
        let n = hay.len();
        if n < m {
            return;
        }
        let last = m - 1;
        let last_byte = self.pattern[last];
        // First window whose end (i + m) can exceed min_end.
        let mut i = min_end.saturating_sub(m - 1);
        while i + m <= n {
            let c = hay[i + last];
            if c == last_byte && hay[i..i + m] == self.pattern[..] {
                out.push(Match {
                    offset: base + i as u64,
                    pattern: 0,
                });
            }
            i += self.shift[c as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::Naive;

    #[test]
    fn agrees_with_naive_on_basics() {
        for (hay, pat) in [
            (&b"hello world hello"[..], &b"hello"[..]),
            (b"aaaaaa", b"aa"),
            (b"abcabcabc", b"cab"),
            (b"no match here", b"xyz"),
            (b"x", b"x"),
            (b"", b"x"),
            (b"ab", b"abc"),
        ] {
            let h = Horspool::new(pat);
            let n = Naive::new(&[pat]);
            assert_eq!(h.find_all(hay), n.find_all(hay), "hay={hay:?} pat={pat:?}");
        }
    }

    #[test]
    fn single_byte_pattern() {
        let h = Horspool::new("a");
        assert_eq!(
            h.find_all(b"banana")
                .iter()
                .map(|m| m.offset)
                .collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
    }

    #[test]
    fn match_at_end() {
        let h = Horspool::new("end");
        assert_eq!(h.find_all(b"the end").len(), 1);
        assert_eq!(h.find_all(b"the end")[0].offset, 4);
    }

    #[test]
    fn base_offset_applied() {
        let h = Horspool::new("ab");
        let mut out = Vec::new();
        h.find_into(b"ab", 1000, 0, &mut out);
        assert_eq!(out[0].offset, 1000);
    }

    #[test]
    fn min_end_ownership() {
        let h = Horspool::new("ab");
        let mut out = Vec::new();
        // min_end = 1: match at 0 ends at 2 > 1, so it is ours (it crosses
        // the chunk boundary); match at 2 also reported.
        h.find_into(b"abab", 0, 1, &mut out);
        assert_eq!(out.iter().map(|m| m.offset).collect::<Vec<_>>(), vec![0, 2]);
        // min_end = 2: match ending exactly at 2 belongs to the previous chunk.
        out.clear();
        h.find_into(b"abab", 0, 2, &mut out);
        assert_eq!(out.iter().map(|m| m.offset).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn repeated_byte_pattern_shift_is_safe() {
        // all-same-byte patterns exercise the m-1-i table entries
        let h = Horspool::new("aaa");
        let found = h.find_all(b"aaaaa");
        assert_eq!(
            found.iter().map(|m| m.offset).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }
}
