//! Dense matrix multiply — the workload behind the paper's Figure 4.
//!
//! The queue-sizing experiment streams matrix blocks through a
//! source → multiply → sink pipeline and measures total execution time as a
//! function of the per-queue buffer size. The multiply itself is a simple
//! cache-blocked kernel; what Figure 4 measures is the *queueing* behaviour
//! around it, so fidelity of the pipeline matters more than GEMM peak.

/// A square row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    /// Dimension (rows == cols == n).
    pub n: usize,
    /// Row-major data, length `n * n`.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Matrix with every element computed by `f(row, col)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        Matrix { n, data }
    }

    /// Deterministic pseudo-random matrix (splitmix-style hash of indices).
    pub fn random(n: usize, seed: u64) -> Self {
        Matrix::from_fn(n, |i, j| {
            let mut x = seed
                .wrapping_add((i as u64) << 32)
                .wrapping_add(j as u64)
                .wrapping_mul(0x9E3779B97F4A7C15);
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58476D1CE4E5B9);
            x ^= x >> 27;
            // map to [-1, 1)
            ((x >> 11) as f32 / (1u64 << 53) as f32) * 2.0 - 1.0
        })
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.n + j]
    }

    /// Size of the payload in bytes (what a stream queue slot carries).
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// Naive triple loop — the testing oracle.
pub fn multiply_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.n, b.n, "dimension mismatch");
    let n = a.n;
    let mut c = Matrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += a.get(i, k) * b.get(k, j);
            }
            c.data[i * n + j] = acc;
        }
    }
    c
}

/// Cache-blocked multiply with the i-k-j loop order (unit-stride inner
/// loop). `block` is the tile edge; 64 is a good default for f32.
pub fn multiply_blocked(a: &Matrix, b: &Matrix, block: usize) -> Matrix {
    assert_eq!(a.n, b.n, "dimension mismatch");
    let n = a.n;
    let block = block.max(1);
    let mut c = Matrix::zeros(n);
    for ii in (0..n).step_by(block) {
        for kk in (0..n).step_by(block) {
            for jj in (0..n).step_by(block) {
                let i_end = (ii + block).min(n);
                let k_end = (kk + block).min(n);
                let j_end = (jj + block).min(n);
                for i in ii..i_end {
                    for k in kk..k_end {
                        let aik = a.data[i * n + k];
                        let (crow, brow) = (&mut c.data[i * n..], &b.data[k * n..]);
                        for j in jj..j_end {
                            crow[j] += aik * brow[j];
                        }
                    }
                }
            }
        }
    }
    c
}

/// A unit of pipeline work for the Figure 4 experiment: multiply `a * b`.
#[derive(Debug, Clone, Default)]
pub struct MatPair {
    /// Left operand.
    pub a: Matrix,
    /// Right operand.
    pub b: Matrix,
}

impl MatPair {
    /// Deterministic pair for stream index `idx`.
    pub fn generate(n: usize, idx: u64) -> Self {
        MatPair {
            a: Matrix::random(n, idx * 2 + 1),
            b: Matrix::random(n, idx * 2 + 2),
        }
    }

    /// Execute the multiply.
    pub fn run(&self, block: usize) -> Matrix {
        multiply_blocked(&self.a, &self.b, block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(x: &Matrix, y: &Matrix) -> bool {
        x.n == y.n
            && x.data
                .iter()
                .zip(&y.data)
                .all(|(a, b)| (a - b).abs() <= 1e-3 * (1.0 + a.abs().max(b.abs())))
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::random(16, 42);
        let i = Matrix::identity(16);
        assert!(close(&multiply_naive(&a, &i), &a));
        assert!(close(&multiply_blocked(&a, &i, 4), &a));
    }

    #[test]
    fn blocked_matches_naive() {
        for n in [1usize, 2, 7, 16, 33] {
            for block in [1usize, 4, 8, 64] {
                let a = Matrix::random(n, 1);
                let b = Matrix::random(n, 2);
                let naive = multiply_naive(&a, &b);
                let blocked = multiply_blocked(&a, &b, block);
                assert!(close(&naive, &blocked), "n={n} block={block}");
            }
        }
    }

    #[test]
    fn random_is_deterministic() {
        assert_eq!(Matrix::random(8, 7), Matrix::random(8, 7));
        assert_ne!(Matrix::random(8, 7), Matrix::random(8, 8));
    }

    #[test]
    fn byte_size() {
        assert_eq!(Matrix::zeros(10).byte_size(), 400);
    }

    #[test]
    fn pair_roundtrip() {
        let p = MatPair::generate(8, 3);
        let c = p.run(4);
        assert!(close(&c, &multiply_naive(&p.a, &p.b)));
    }

    #[test]
    fn zero_dim_matrix() {
        let a = Matrix::zeros(0);
        let b = Matrix::zeros(0);
        let c = multiply_blocked(&a, &b, 8);
        assert_eq!(c.n, 0);
    }
}
