//! Rabin-Karp multi-pattern matcher (rolling hash).
//!
//! Not in the paper's Figure 10 line-up, but the standard third point in
//! the exact-matching design space: Aho-Corasick pays per-byte automaton
//! work, Boyer-Moore skips, Rabin-Karp *hashes* — O(n) expected with a tiny
//! constant for same-length pattern sets, and the natural choice when
//! patterns are numerous and equal-length. Included for the ablation
//! benches and as another `AlgoSet` alternative.
//!
//! Restriction: all patterns must share one length (the classic
//! single-window formulation); [`RabinKarp::new`] enforces it.

use std::collections::HashMap;

use crate::{Match, Matcher};

const BASE: u64 = 257;

/// Multi-pattern rolling-hash matcher over equal-length patterns.
#[derive(Debug, Clone)]
pub struct RabinKarp {
    /// hash -> pattern indices with that hash (collision chain).
    table: HashMap<u64, Vec<u32>>,
    patterns: Vec<Vec<u8>>,
    len: usize,
    /// BASE^(len-1), for removing the outgoing byte.
    pow: u64,
}

impl RabinKarp {
    /// Compile a set of equal-length patterns. Panics if the set is empty,
    /// any pattern is empty, or lengths differ.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        assert!(!patterns.is_empty(), "need at least one pattern");
        let patterns: Vec<Vec<u8>> = patterns.iter().map(|p| p.as_ref().to_vec()).collect();
        let len = patterns[0].len();
        assert!(len > 0, "empty patterns are not searchable");
        assert!(
            patterns.iter().all(|p| p.len() == len),
            "Rabin-Karp requires equal-length patterns"
        );
        let mut table: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, p) in patterns.iter().enumerate() {
            table.entry(Self::hash(p)).or_default().push(i as u32);
        }
        let mut pow = 1u64;
        for _ in 1..len {
            pow = pow.wrapping_mul(BASE);
        }
        RabinKarp {
            table,
            patterns,
            len,
            pow,
        }
    }

    fn hash(window: &[u8]) -> u64 {
        window
            .iter()
            .fold(0u64, |h, &b| h.wrapping_mul(BASE).wrapping_add(b as u64))
    }

    /// Number of patterns compiled in.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }
}

impl Matcher for RabinKarp {
    fn max_pattern_len(&self) -> usize {
        self.len
    }

    fn find_into(&self, hay: &[u8], base: u64, min_end: usize, out: &mut Vec<Match>) {
        let m = self.len;
        let n = hay.len();
        if n < m {
            return;
        }
        let start = min_end.saturating_sub(m - 1);
        let mut h = Self::hash(&hay[start..start + m]);
        let mut i = start;
        loop {
            if let Some(cands) = self.table.get(&h) {
                for &pi in cands {
                    if hay[i..i + m] == self.patterns[pi as usize][..] {
                        out.push(Match {
                            offset: base + i as u64,
                            pattern: pi,
                        });
                    }
                }
            }
            if i + m >= n {
                break;
            }
            // roll: remove hay[i], append hay[i+m]
            h = h
                .wrapping_sub((hay[i] as u64).wrapping_mul(self.pow))
                .wrapping_mul(BASE)
                .wrapping_add(hay[i + m] as u64);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::Naive;

    fn check<P: AsRef<[u8]>>(hay: &[u8], pats: &[P]) {
        let rk = RabinKarp::new(pats);
        let nv = Naive::new(pats);
        let mut a = rk.find_all(hay);
        let mut b = nv.find_all(hay);
        a.sort();
        b.sort();
        assert_eq!(a, b, "hay={:?}", String::from_utf8_lossy(hay));
    }

    #[test]
    fn agrees_with_naive_single() {
        check(b"hello world hello", &["hello"]);
        check(b"aaaaaa", &["aa"]);
        check(b"abcabcabc", &["cab"]);
        check(b"no match here", &["xyz"]);
        check(b"x", &["x"]);
    }

    #[test]
    fn agrees_with_naive_multi() {
        check(b"ushers rush crush", &["sher", "rush", "hers"]);
        check(b"aabbaabb", &["aabb", "abba", "bbaa"]);
    }

    #[test]
    fn hash_collisions_are_verified() {
        // Craft patterns likely to collide modulo wrapping arithmetic: even
        // if hashes collide, the verify step must reject non-matches.
        let pats: Vec<Vec<u8>> = (0..64u8).map(|i| vec![i, 255 - i, i ^ 0x55]).collect();
        let hay: Vec<u8> = (0..255u8).cycle().take(4000).collect();
        check(&hay, &pats);
    }

    #[test]
    fn short_haystack() {
        let rk = RabinKarp::new(&["abc"]);
        assert!(rk.find_all(b"ab").is_empty());
        assert!(rk.find_all(b"").is_empty());
    }

    #[test]
    fn min_end_semantics_match_trait() {
        let rk = RabinKarp::new(&["ab"]);
        let mut out = Vec::new();
        rk.find_into(b"abab", 0, 2, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].offset, 2);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn unequal_lengths_rejected() {
        RabinKarp::new(&["ab", "abc"]);
    }

    #[test]
    fn chunked_scan_equals_monolithic() {
        use crate::split_chunks;
        let hay: Vec<u8> = b"abcaabbccabcabc".repeat(40);
        let rk = RabinKarp::new(&["abc", "bca"]);
        let mut whole = rk.find_all(&hay);
        whole.sort();
        let mut chunked = Vec::new();
        for c in split_chunks(hay.len(), 5, rk.overlap()) {
            rk.find_into(
                &hay[c.start..c.end],
                c.start as u64,
                c.min_end,
                &mut chunked,
            );
        }
        chunked.sort();
        assert_eq!(whole, chunked);
    }
}
