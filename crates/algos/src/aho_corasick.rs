//! Aho-Corasick multi-pattern automaton (Aho & Corasick, 1975).
//!
//! The paper's first RaftLib search kernel (§5): excellent for multiple
//! simultaneous patterns, but — as the paper's Figure 10 shows — its
//! byte-at-a-time automaton walk makes it the pipeline bottleneck compared
//! to the skip-loop searchers. We reproduce that property faithfully: this
//! implementation visits every haystack byte exactly once.
//!
//! Construction follows the textbook goto/fail/output scheme, then flattens
//! into a dense next-state table (256 entries per state) for branch-free
//! scanning — the standard "DFA" form.

use crate::{Match, Matcher};

/// Marker for "no state".
const NONE: u32 = u32::MAX;

/// A compiled multi-pattern automaton.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// Dense transition table: `next[state * 256 + byte]`.
    next: Vec<u32>,
    /// For each state, the list of pattern indices ending there.
    outputs: Vec<Vec<u32>>,
    /// Original pattern lengths (to compute match start offsets).
    pattern_lens: Vec<usize>,
    max_len: usize,
}

impl AhoCorasick {
    /// Compile an automaton over `patterns`. Panics if any pattern is empty
    /// or the set is empty.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        assert!(!patterns.is_empty(), "need at least one pattern");
        let patterns: Vec<&[u8]> = patterns.iter().map(|p| p.as_ref()).collect();
        assert!(
            patterns.iter().all(|p| !p.is_empty()),
            "empty patterns are not searchable"
        );

        // --- Phase 1: trie (goto function) ---------------------------------
        // states stored as sparse child maps during construction
        let mut children: Vec<Vec<(u8, u32)>> = vec![Vec::new()];
        let mut outputs: Vec<Vec<u32>> = vec![Vec::new()];
        for (pi, pat) in patterns.iter().enumerate() {
            let mut state = 0u32;
            for &b in *pat {
                state = match children[state as usize].iter().find(|(c, _)| *c == b) {
                    Some((_, s)) => *s,
                    None => {
                        let s = children.len() as u32;
                        children.push(Vec::new());
                        outputs.push(Vec::new());
                        children[state as usize].push((b, s));
                        s
                    }
                };
            }
            outputs[state as usize].push(pi as u32);
        }
        let n_states = children.len();

        // --- Phase 2: fail links (BFS) --------------------------------------
        let mut fail = vec![0u32; n_states];
        let mut queue = std::collections::VecDeque::new();
        for &(_, s) in &children[0] {
            fail[s as usize] = 0;
            queue.push_back(s);
        }
        while let Some(u) = queue.pop_front() {
            // Clone the child list to appease the borrow checker; sizes are
            // tiny (≤ alphabet).
            let kids = children[u as usize].clone();
            for (b, v) in kids {
                // Walk fail links until a state with a b-child (or root).
                let mut f = fail[u as usize];
                let fnext = loop {
                    if let Some((_, s)) = children[f as usize].iter().find(|(c, _)| *c == b) {
                        break *s;
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = fail[f as usize];
                };
                fail[v as usize] = fnext;
                // Merge outputs along the fail chain (suffix matches).
                let merged: Vec<u32> = outputs[fnext as usize].clone();
                outputs[v as usize].extend(merged);
                queue.push_back(v);
            }
        }

        // --- Phase 3: flatten to dense DFA ----------------------------------
        let mut next = vec![NONE; n_states * 256];
        // Root: missing transitions loop to root.
        next[..256].fill(0);
        for &(b, s) in &children[0] {
            next[b as usize] = s;
        }
        // BFS again so fail targets are already dense when we copy them.
        let mut queue = std::collections::VecDeque::new();
        for &(_, s) in &children[0] {
            queue.push_back(s);
        }
        let mut visited = vec![false; n_states];
        visited[0] = true;
        while let Some(u) = queue.pop_front() {
            if visited[u as usize] {
                continue;
            }
            visited[u as usize] = true;
            let base = u as usize * 256;
            let fbase = fail[u as usize] as usize * 256;
            for b in 0..256usize {
                next[base + b] = next[fbase + b];
            }
            for &(b, s) in &children[u as usize] {
                next[base + b as usize] = s;
                queue.push_back(s);
            }
        }

        let pattern_lens: Vec<usize> = patterns.iter().map(|p| p.len()).collect();
        let max_len = *pattern_lens.iter().max().unwrap();
        AhoCorasick {
            next,
            outputs,
            pattern_lens,
            max_len,
        }
    }

    /// Number of automaton states.
    pub fn state_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of patterns compiled in.
    pub fn pattern_count(&self) -> usize {
        self.pattern_lens.len()
    }
}

impl Matcher for AhoCorasick {
    fn max_pattern_len(&self) -> usize {
        self.max_len
    }

    fn find_into(&self, hay: &[u8], base: u64, min_end: usize, out: &mut Vec<Match>) {
        let mut state = 0u32;
        // Scan from the beginning of the chunk so the automaton is warm when
        // we reach the logical region; suppress matches whose END falls in
        // the overlap prefix (the previous chunk owned those).
        for (i, &b) in hay.iter().enumerate() {
            state = self.next[state as usize * 256 + b as usize];
            let outs = &self.outputs[state as usize];
            if !outs.is_empty() && i + 1 > min_end {
                for &pi in outs {
                    let len = self.pattern_lens[pi as usize];
                    out.push(Match {
                        offset: base + (i + 1 - len) as u64,
                        pattern: pi,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::Naive;

    fn check<P: AsRef<[u8]>>(hay: &[u8], pats: &[P]) {
        let ac = AhoCorasick::new(pats);
        let nv = Naive::new(pats);
        let mut a = ac.find_all(hay);
        let mut n = nv.find_all(hay);
        a.sort();
        n.sort();
        assert_eq!(a, n, "hay={:?}", String::from_utf8_lossy(hay));
    }

    #[test]
    fn classic_example() {
        // The canonical example from the 1975 paper.
        check(b"ushers", &["he", "she", "his", "hers"]);
        let ac = AhoCorasick::new(&["he", "she", "his", "hers"]);
        let mut found = ac.find_all(b"ushers");
        found.sort();
        assert_eq!(
            found,
            vec![
                Match {
                    offset: 1,
                    pattern: 1
                }, // she
                Match {
                    offset: 2,
                    pattern: 0
                }, // he
                Match {
                    offset: 2,
                    pattern: 3
                }, // hers
            ]
        );
    }

    #[test]
    fn single_pattern_degenerates_correctly() {
        check(b"abababab", &["abab"]);
        check(b"aaaa", &["aa"]);
    }

    #[test]
    fn nested_patterns() {
        check(b"aabaabaaab", &["a", "aa", "aab"]);
    }

    #[test]
    fn patterns_sharing_prefixes_and_suffixes() {
        check(
            b"the cathedral cat sat on the catapult",
            &["cat", "catapult", "at", "hedral"],
        );
    }

    #[test]
    fn no_match() {
        let ac = AhoCorasick::new(&["qqq"]);
        assert!(ac.find_all(b"aaaaaa").is_empty());
    }

    #[test]
    fn min_end_suppresses_prefix_matches() {
        let ac = AhoCorasick::new(&["ab"]);
        let mut out = Vec::new();
        // min_end = 2: the occurrence ending at 2 is the previous chunk's.
        ac.find_into(b"abab", 0, 2, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].offset, 2);
    }

    #[test]
    fn match_crossing_chunk_boundary_is_ours() {
        // A match that starts inside the overlap prefix but ends after it
        // belongs to this chunk — the previous chunk never saw its tail.
        let ac = AhoCorasick::new(&["xyz"]);
        let mut out = Vec::new();
        ac.find_into(b"axyzb", 0, 2, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].offset, 1);
    }

    #[test]
    fn binary_patterns() {
        let pats: Vec<Vec<u8>> = vec![vec![0u8, 255, 0], vec![255, 255]];
        let hay = [0u8, 255, 0, 255, 255, 0, 255, 0];
        check(&hay, &pats);
    }

    #[test]
    fn state_count_reasonable() {
        let ac = AhoCorasick::new(&["abc", "abd"]);
        // root + a + ab + abc + abd = 5
        assert_eq!(ac.state_count(), 5);
        assert_eq!(ac.pattern_count(), 2);
    }
}
