//! Full Boyer-Moore single-pattern matcher (bad character + good suffix).
//!
//! The paper's Apache Spark comparator ran "a text matching application
//! implemented using the Boyer-Moore algorithm implemented in Scala" (§5);
//! our mini batch-task engine runs this implementation for the Figure 10
//! "Spark" series.

use crate::{Match, Matcher};

/// Precomputed Boyer-Moore searcher for one pattern.
#[derive(Debug, Clone)]
pub struct BoyerMoore {
    pattern: Vec<u8>,
    /// Rightmost position of each byte in the pattern (bad-character rule).
    bad_char: [isize; 256],
    /// Good-suffix shift table.
    good_suffix: Vec<usize>,
}

impl BoyerMoore {
    /// Build the shift tables for `pattern`. Panics on an empty pattern.
    pub fn new(pattern: impl AsRef<[u8]>) -> Self {
        let pattern = pattern.as_ref().to_vec();
        assert!(!pattern.is_empty(), "empty patterns are not searchable");
        let m = pattern.len();

        let mut bad_char = [-1isize; 256];
        for (i, &b) in pattern.iter().enumerate() {
            bad_char[b as usize] = i as isize;
        }

        // Good-suffix preprocessing via the classic border-position method
        // (Knuth-Morris-Pratt-style borders of the reversed pattern).
        let mut shift = vec![0usize; m + 1];
        let mut border = vec![0usize; m + 1];
        // Case 1: matching suffix occurs elsewhere in the pattern.
        let mut i = m;
        let mut j = m + 1;
        border[i] = j;
        while i > 0 {
            while j <= m && pattern[i - 1] != pattern[j - 1] {
                if shift[j] == 0 {
                    shift[j] = j - i;
                }
                j = border[j];
            }
            i -= 1;
            j -= 1;
            border[i] = j;
        }
        // Case 2: only a prefix of the pattern matches a suffix of the
        // matching suffix. (Index form mirrors the textbook presentation.)
        j = border[0];
        #[allow(clippy::needless_range_loop)]
        for i in 0..=m {
            if shift[i] == 0 {
                shift[i] = j;
            }
            if i == j {
                j = border[j];
            }
        }

        BoyerMoore {
            pattern,
            bad_char,
            good_suffix: shift,
        }
    }

    /// The pattern being searched.
    pub fn pattern(&self) -> &[u8] {
        &self.pattern
    }
}

impl Matcher for BoyerMoore {
    fn max_pattern_len(&self) -> usize {
        self.pattern.len()
    }

    fn find_into(&self, hay: &[u8], base: u64, min_end: usize, out: &mut Vec<Match>) {
        let m = self.pattern.len();
        let n = hay.len();
        if n < m {
            return;
        }
        // First window whose end (s + m) can exceed min_end.
        let mut s = min_end.saturating_sub(m - 1);
        while s + m <= n {
            let mut j = m as isize - 1;
            while j >= 0 && self.pattern[j as usize] == hay[s + j as usize] {
                j -= 1;
            }
            if j < 0 {
                out.push(Match {
                    offset: base + s as u64,
                    pattern: 0,
                });
                s += self.good_suffix[0];
            } else {
                let bc = self.bad_char[hay[s + j as usize] as usize];
                let bad_shift = (j - bc).max(1) as usize;
                let good_shift = self.good_suffix[j as usize + 1];
                s += bad_shift.max(good_shift);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::Naive;

    #[test]
    fn agrees_with_naive_on_basics() {
        for (hay, pat) in [
            (&b"hello world hello"[..], &b"hello"[..]),
            (b"aaaaaa", b"aa"),
            (b"abcabcabc", b"cab"),
            (b"GCATCGCAGAGAGTATACAGTACG", b"GCAGAGAG"),
            (b"no match here", b"xyz"),
            (b"x", b"x"),
            (b"", b"x"),
            (b"ababab", b"abab"),
        ] {
            let bm = BoyerMoore::new(pat);
            let n = Naive::new(&[pat]);
            assert_eq!(
                bm.find_all(hay),
                n.find_all(hay),
                "hay={:?} pat={:?}",
                std::str::from_utf8(hay),
                std::str::from_utf8(pat)
            );
        }
    }

    #[test]
    fn overlapping_matches_found() {
        let bm = BoyerMoore::new("abab");
        let offs: Vec<u64> = bm.find_all(b"abababab").iter().map(|m| m.offset).collect();
        assert_eq!(offs, vec![0, 2, 4]);
    }

    #[test]
    fn good_suffix_table_is_never_zero() {
        for pat in ["a", "ab", "aa", "abcab", "aaaa", "abacabad"] {
            let bm = BoyerMoore::new(pat);
            assert!(
                bm.good_suffix.iter().all(|&s| s > 0),
                "pattern {pat:?} produced a zero shift: {:?}",
                bm.good_suffix
            );
        }
    }

    #[test]
    fn min_end_respected() {
        let bm = BoyerMoore::new("aa");
        let mut out = Vec::new();
        // min_end = 2: matches ending at >2, i.e. starting at 1 and 2.
        bm.find_into(b"aaaa", 0, 2, &mut out);
        assert_eq!(out.iter().map(|m| m.offset).collect::<Vec<_>>(), vec![1, 2]);
    }
}
