#![warn(missing_docs)]

//! # raft-algos
//!
//! From-scratch implementations of every algorithm the RaftLib PMAM'15
//! evaluation exercises:
//!
//! * exact string matching — [`aho_corasick::AhoCorasick`] (multi-pattern
//!   automaton; the paper's first RaftLib search kernel),
//!   [`horspool::Horspool`] (Boyer-Moore-Horspool; the paper's fast
//!   single-pattern kernel), [`boyer_moore::BoyerMoore`] (full Boyer-Moore;
//!   what the paper's Apache Spark comparator ran), and
//!   [`memmem::MemMem`] (a grep-class scanner: memchr skip loop + BMH,
//!   standing in for GNU grep's core loop), all behind the common
//!   [`Matcher`] trait with a [`naive`] oracle for testing, plus
//!   [`rabin_karp::RabinKarp`] (rolling hash) for the multi-pattern
//!   ablation;
//! * [`matmul`] — blocked dense matrix multiply, the workload behind the
//!   paper's Figure 4 queue-sizing experiment;
//! * [`corpus`] — seeded synthetic text generation (Zipf-weighted word
//!   model with planted pattern occurrences), substituting for the paper's
//!   30 GB Stack Overflow post-history dump.
//!
//! The byte scanners dispatch their inner skip loops through [`simd`] —
//! runtime-selected AVX2 / SSE2 / scalar tiers (`RAFT_SIMD` forces one for
//! A/B runs). Every tier returns byte-identical matches; only the speed of
//! the hunt differs.

pub mod aho_corasick;
pub mod boyer_moore;
pub mod corpus;
pub mod horspool;
pub mod matmul;
pub mod memmem;
pub mod naive;
pub mod rabin_karp;
pub mod simd;

pub use aho_corasick::AhoCorasick;
pub use boyer_moore::BoyerMoore;
pub use horspool::Horspool;
pub use memmem::MemMem;
pub use rabin_karp::RabinKarp;
pub use simd::SimdTier;

/// A match: byte offset (within the logical, possibly chunked, stream) where
/// a pattern occurrence starts, plus which pattern matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Match {
    /// Byte offset of the first byte of the occurrence.
    pub offset: u64,
    /// Index of the pattern that matched (always 0 for single-pattern
    /// matchers).
    pub pattern: u32,
}

/// Common interface for exact string matchers, designed for streaming use:
/// the haystack arrives in chunks and `base` carries the chunk's offset in
/// the overall stream.
///
/// Chunked scanning must overlap consecutive chunks by
/// [`Matcher::overlap`] bytes of *look-back* so occurrences straddling a
/// boundary are not missed; [`split_chunks`] produces such a chunking.
/// Ownership of a match is decided by its **end** position: a chunk reports
/// a match only if its chunk-relative exclusive end offset is `> min_end`.
/// Matches ending inside the overlap prefix ended inside the previous
/// chunk's logical region and were reported there; matches that merely
/// *start* in the prefix but end in our logical region are ours (the
/// previous chunk physically could not see their tail).
pub trait Matcher: Send + Sync {
    /// Length of the longest pattern, in bytes.
    fn max_pattern_len(&self) -> usize;

    /// Bytes of overlap required between consecutive chunks:
    /// `max_pattern_len() - 1`.
    fn overlap(&self) -> usize {
        self.max_pattern_len().saturating_sub(1)
    }

    /// Find all occurrences in `hay` whose exclusive end offset (relative
    /// to the chunk) is `> min_end`, appending `base + start` to `out`.
    fn find_into(&self, hay: &[u8], base: u64, min_end: usize, out: &mut Vec<Match>);

    /// Convenience: all matches in a standalone haystack.
    fn find_all(&self, hay: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        self.find_into(hay, 0, 0, &mut out);
        out
    }

    /// Convenience: count matches in a standalone haystack.
    fn count(&self, hay: &[u8]) -> usize {
        self.find_all(hay).len()
    }
}

/// Chunk descriptor produced by [`split_chunks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Start of the chunk in the haystack, *including* the overlap prefix.
    pub start: usize,
    /// End of the chunk (exclusive).
    pub end: usize,
    /// Report only matches whose chunk-relative exclusive end offset is
    /// `> min_end` (0 for the first chunk, the overlap amount afterwards).
    pub min_end: usize,
}

/// Split `len` bytes into `n` chunks with `overlap` bytes of look-back so a
/// chunked scan finds exactly the matches a monolithic scan would.
pub fn split_chunks(len: usize, n: usize, overlap: usize) -> Vec<Chunk> {
    let n = n.max(1);
    if len == 0 {
        return vec![];
    }
    let stride = len.div_ceil(n);
    let mut chunks = Vec::with_capacity(n);
    let mut pos = 0usize;
    while pos < len {
        let logical_end = (pos + stride).min(len);
        let start = pos.saturating_sub(overlap);
        chunks.push(Chunk {
            start,
            end: logical_end,
            min_end: pos - start,
        });
        pos = logical_end;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_chunks_cover_everything_once() {
        for len in [0usize, 1, 10, 100, 1023] {
            for n in [1usize, 2, 3, 7] {
                for overlap in [0usize, 3, 9] {
                    let chunks = split_chunks(len, n, overlap);
                    if len == 0 {
                        assert!(chunks.is_empty());
                        continue;
                    }
                    // logical (reported) regions tile [0, len)
                    let mut covered = 0usize;
                    for c in &chunks {
                        assert_eq!(c.start + c.min_end, covered);
                        assert!(c.end <= len);
                        covered = c.end;
                    }
                    assert_eq!(covered, len);
                    // overlap prefix is at most `overlap` bytes
                    for c in &chunks {
                        assert!(c.min_end <= overlap);
                    }
                }
            }
        }
    }

    #[test]
    fn match_ordering() {
        let a = Match {
            offset: 1,
            pattern: 0,
        };
        let b = Match {
            offset: 2,
            pattern: 0,
        };
        assert!(a < b);
    }
}
