//! Property tests: every optimized matcher agrees with the brute-force
//! oracle on arbitrary inputs, and chunked scanning (the streaming mode the
//! RaftLib pipelines use) finds exactly the matches a monolithic scan does.

use proptest::prelude::*;
use raft_algos::naive::Naive;
use raft_algos::{split_chunks, AhoCorasick, BoyerMoore, Horspool, Match, Matcher, MemMem};

/// Small alphabet so collisions and overlaps actually happen.
fn small_text() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..300)
}

fn small_pattern() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 1..8)
}

fn wide_text() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..300)
}

fn wide_pattern() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..10)
}

fn sorted(mut v: Vec<Match>) -> Vec<Match> {
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn horspool_agrees_with_naive(hay in small_text(), pat in small_pattern()) {
        let h = Horspool::new(&pat);
        let n = Naive::new(&[&pat]);
        prop_assert_eq!(h.find_all(&hay), n.find_all(&hay));
    }

    #[test]
    fn horspool_agrees_on_binary(hay in wide_text(), pat in wide_pattern()) {
        let h = Horspool::new(&pat);
        let n = Naive::new(&[&pat]);
        prop_assert_eq!(h.find_all(&hay), n.find_all(&hay));
    }

    #[test]
    fn boyer_moore_agrees_with_naive(hay in small_text(), pat in small_pattern()) {
        let b = BoyerMoore::new(&pat);
        let n = Naive::new(&[&pat]);
        prop_assert_eq!(b.find_all(&hay), n.find_all(&hay));
    }

    #[test]
    fn boyer_moore_agrees_on_binary(hay in wide_text(), pat in wide_pattern()) {
        let b = BoyerMoore::new(&pat);
        let n = Naive::new(&[&pat]);
        prop_assert_eq!(b.find_all(&hay), n.find_all(&hay));
    }

    #[test]
    fn memmem_agrees_with_naive(hay in small_text(), pat in small_pattern()) {
        let m = MemMem::new(&pat);
        let n = Naive::new(&[&pat]);
        prop_assert_eq!(m.find_all(&hay), n.find_all(&hay));
    }

    #[test]
    fn memmem_agrees_on_binary(hay in wide_text(), pat in wide_pattern()) {
        let m = MemMem::new(&pat);
        let n = Naive::new(&[&pat]);
        prop_assert_eq!(m.find_all(&hay), n.find_all(&hay));
    }

    #[test]
    fn aho_corasick_agrees_with_naive(
        hay in small_text(),
        pats in proptest::collection::vec(small_pattern(), 1..5),
    ) {
        let ac = AhoCorasick::new(&pats);
        let n = Naive::new(&pats);
        prop_assert_eq!(sorted(ac.find_all(&hay)), sorted(n.find_all(&hay)));
    }

    #[test]
    fn aho_corasick_agrees_on_binary(
        hay in wide_text(),
        pats in proptest::collection::vec(wide_pattern(), 1..5),
    ) {
        let ac = AhoCorasick::new(&pats);
        let n = Naive::new(&pats);
        prop_assert_eq!(sorted(ac.find_all(&hay)), sorted(n.find_all(&hay)));
    }

    /// Chunked scanning == monolithic scanning, for every matcher and any
    /// chunk count. This is the invariant the parallel search pipelines
    /// (Figure 10) rely on.
    #[test]
    fn chunked_equals_monolithic(
        hay in small_text(),
        pat in small_pattern(),
        n_chunks in 1usize..8,
    ) {
        let matchers: Vec<Box<dyn Matcher>> = vec![
            Box::new(Horspool::new(&pat)),
            Box::new(BoyerMoore::new(&pat)),
            Box::new(MemMem::new(&pat)),
            Box::new(AhoCorasick::new(&[&pat])),
            Box::new(Naive::new(&[&pat])),
        ];
        for m in &matchers {
            let whole = sorted(m.find_all(&hay));
            let chunks = split_chunks(hay.len(), n_chunks, m.overlap());
            let mut chunked = Vec::new();
            for c in &chunks {
                m.find_into(&hay[c.start..c.end], c.start as u64, c.min_end, &mut chunked);
            }
            prop_assert_eq!(
                whole, sorted(chunked),
                "chunked scan diverged: n_chunks={} pat={:?}", n_chunks, &pat
            );
        }
    }

    /// Multi-pattern chunked AC also equals monolithic.
    #[test]
    fn chunked_aho_corasick_multi(
        hay in small_text(),
        pats in proptest::collection::vec(small_pattern(), 1..4),
        n_chunks in 1usize..6,
    ) {
        let ac = AhoCorasick::new(&pats);
        let whole = sorted(ac.find_all(&hay));
        let chunks = split_chunks(hay.len(), n_chunks, ac.overlap());
        let mut chunked = Vec::new();
        for c in &chunks {
            ac.find_into(&hay[c.start..c.end], c.start as u64, c.min_end, &mut chunked);
        }
        prop_assert_eq!(whole, sorted(chunked));
    }
}
