//! Integration tests binding corpus generation to the matchers: on a
//! corpus with planted ground truth, every matcher finds exactly the
//! planted occurrences, whole or chunked, at every tested size.

use raft_algos::corpus::{generate, CorpusSpec};
use raft_algos::{split_chunks, AhoCorasick, BoyerMoore, Horspool, Matcher, MemMem, RabinKarp};

fn matchers(needle: &[u8]) -> Vec<(&'static str, Box<dyn Matcher>)> {
    vec![
        ("aho_corasick", Box::new(AhoCorasick::new(&[needle]))),
        ("boyer_moore", Box::new(BoyerMoore::new(needle))),
        ("horspool", Box::new(Horspool::new(needle))),
        ("memmem", Box::new(MemMem::new(needle))),
        ("rabin_karp", Box::new(RabinKarp::new(&[needle]))),
    ]
}

#[test]
fn all_matchers_find_exactly_the_planted_occurrences() {
    for (size, density) in [(64 * 1024, 200.0), (512 * 1024, 40.0), (2 << 20, 5.0)] {
        let c = generate(&CorpusSpec {
            size,
            matches_per_mb: density,
            ..Default::default()
        });
        let expected: Vec<u64> = c.planted.iter().map(|&p| p as u64).collect();
        for (name, m) in matchers(&c.needle) {
            let found: Vec<u64> = m.find_all(&c.data).iter().map(|f| f.offset).collect();
            assert_eq!(
                found, expected,
                "{name} diverged from ground truth at size {size}"
            );
        }
    }
}

#[test]
fn chunked_parallel_scan_matches_ground_truth() {
    let c = generate(&CorpusSpec {
        size: 1 << 20,
        matches_per_mb: 64.0,
        ..Default::default()
    });
    let expected: Vec<u64> = c.planted.iter().map(|&p| p as u64).collect();
    for (name, m) in matchers(&c.needle) {
        for n_chunks in [2usize, 7, 32] {
            let mut found = Vec::new();
            for ch in split_chunks(c.data.len(), n_chunks, m.overlap()) {
                m.find_into(
                    &c.data[ch.start..ch.end],
                    ch.start as u64,
                    ch.min_end,
                    &mut found,
                );
            }
            found.sort_unstable();
            let offs: Vec<u64> = found.iter().map(|f| f.offset).collect();
            assert_eq!(offs, expected, "{name} with {n_chunks} chunks");
        }
    }
}

#[test]
fn lowercase_needle_forces_scrubbing_and_stays_exact() {
    // A common word as needle: the generator must scrub accidental hits so
    // ground truth stays exact.
    let c = generate(&CorpusSpec {
        size: 1 << 20,
        needle: b"stream".to_vec(),
        matches_per_mb: 20.0,
        ..Default::default()
    });
    let m = Horspool::new(&c.needle);
    assert_eq!(m.count(&c.data), c.planted.len());
}

#[test]
fn multi_pattern_matchers_agree() {
    // AC and RK both handle multiple patterns; check they agree on a corpus
    // with two planted-ish needles (only one is planted; the other occurs
    // naturally or not at all — agreement is what matters).
    let c = generate(&CorpusSpec {
        size: 512 * 1024,
        matches_per_mb: 50.0,
        ..Default::default()
    });
    let pats: Vec<&[u8]> = vec![&c.needle, b"zzzzzzzzz"]; // same length not required for AC
    let ac = AhoCorasick::new(&pats);
    let mut a = ac.find_all(&c.data);
    a.sort();
    // Rabin-Karp needs equal lengths; compare single-pattern results instead.
    let rk = RabinKarp::new(&[&c.needle]);
    let mut r = rk.find_all(&c.data);
    r.sort();
    let ac_single: Vec<u64> = a
        .iter()
        .filter(|m| m.pattern == 0)
        .map(|m| m.offset)
        .collect();
    let rk_offs: Vec<u64> = r.iter().map(|m| m.offset).collect();
    assert_eq!(ac_single, rk_offs);
}
