//! Discrete-event simulation of streaming queueing networks.
//!
//! The paper leans on analytic queueing results (M/M/1 family, flow models)
//! but notes their assumptions — product form, steady state — often break
//! in real streaming systems (§3). This simulator is the ground truth the
//! analytic machinery is validated against: a tandem/branching network of
//! service stations with finite buffers and blocking-after-service, driven
//! by an event calendar.
//!
//! Used by tests to confirm:
//! * M/M/1 and M/M/1/K closed forms (occupancy, blocking) match simulation;
//! * the flow model's throughput prediction matches simulated saturation
//!   throughput for pipelines with replicated stages.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Service-time distribution of a station.
#[derive(Debug, Clone, Copy)]
pub enum ServiceDist {
    /// Exponential with the given rate (mean 1/rate).
    Exp(f64),
    /// Deterministic service time.
    Det(f64),
    /// Uniform on `[lo, hi]`.
    Uniform(f64, f64),
}

impl ServiceDist {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            ServiceDist::Exp(rate) => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -u.ln() / rate
            }
            ServiceDist::Det(t) => t,
            ServiceDist::Uniform(lo, hi) => rng.gen_range(lo..=hi),
        }
    }

    /// Mean service time.
    pub fn mean(&self) -> f64 {
        match *self {
            ServiceDist::Exp(rate) => 1.0 / rate,
            ServiceDist::Det(t) => t,
            ServiceDist::Uniform(lo, hi) => (lo + hi) / 2.0,
        }
    }
}

/// One station (≈ one kernel): `servers` parallel replicas sharing an
/// input buffer of `buffer` slots (including in-service items).
#[derive(Debug, Clone)]
pub struct Station {
    /// Display name.
    pub name: String,
    /// Service time distribution of one replica.
    pub service: ServiceDist,
    /// Parallel replica count.
    pub servers: u32,
    /// Input buffer capacity (`usize::MAX` = unbounded).
    pub buffer: usize,
    /// Index of the downstream station, or `None` for a sink edge.
    pub next: Option<usize>,
}

/// Network description: stations chained by their `next` indices; station 0
/// receives external arrivals.
#[derive(Debug, Clone)]
pub struct Network {
    /// The stations.
    pub stations: Vec<Station>,
    /// External Poisson arrival rate into station 0.
    pub arrival_rate: f64,
}

/// Simulation output.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Items that left the network.
    pub departures: u64,
    /// Items turned away at station 0 (arrival found the buffer full).
    pub drops: u64,
    /// Simulated time horizon.
    pub horizon: f64,
    /// Departure throughput (items per simulated second).
    pub throughput: f64,
    /// Time-averaged number in system per station.
    pub mean_in_system: Vec<f64>,
    /// Fraction of arrivals to station 0 that were blocked/dropped.
    pub blocking_probability: f64,
}

#[derive(Debug, PartialEq)]
enum Event {
    Arrival,
    Departure { station: usize },
}

/// Ordered event calendar entry.
struct Entry {
    at: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .partial_cmp(&other.at)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.seq.cmp(&other.seq))
    }
}

/// State of one station during simulation.
struct StationState {
    /// Items in the station (queued + in service).
    in_system: usize,
    /// Busy replicas.
    busy: u32,
    /// Integral of in_system over time (for time averages).
    area: f64,
    last_change: f64,
}

/// Simulate `net` for `horizon` simulated seconds (seeded, deterministic).
///
/// Blocking model: an item finishing service at station *i* moves to
/// station `next[i]` only if that buffer has room; otherwise it *waits in
/// place*, holding its server (blocking-after-service — what a full
/// downstream FIFO does to a streaming kernel). External arrivals finding
/// station 0 full are dropped and counted.
pub fn simulate(net: &Network, horizon: f64, seed: u64) -> SimReport {
    assert!(!net.stations.is_empty());
    assert!(net.arrival_rate > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = net.stations.len();
    let mut state: Vec<StationState> = (0..n)
        .map(|_| StationState {
            in_system: 0,
            busy: 0,
            area: 0.0,
            last_change: 0.0,
        })
        .collect();
    // Items blocked after service at station i, waiting for room downstream.
    let mut blocked_after_service = vec![0u32; n];

    let mut cal: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |cal: &mut BinaryHeap<Reverse<Entry>>, seq: &mut u64, at: f64, event: Event| {
        *seq += 1;
        cal.push(Reverse(Entry {
            at,
            seq: *seq,
            event,
        }));
    };

    // first arrival
    let dt = ServiceDist::Exp(net.arrival_rate).sample(&mut rng);
    push(&mut cal, &mut seq, dt, Event::Arrival);

    let mut arrivals = 0u64;
    let mut drops = 0u64;
    let mut departures = 0u64;

    // Advance a station's time-average integral.
    macro_rules! touch {
        ($i:expr, $now:expr) => {{
            let s = &mut state[$i];
            s.area += s.in_system as f64 * ($now - s.last_change);
            s.last_change = $now;
        }};
    }

    // Try to begin service at station i if a server and an unserved item
    // are available.
    macro_rules! try_start {
        ($i:expr, $now:expr, $cal:expr, $seq:expr, $rng:expr) => {{
            let st = &net.stations[$i];
            let unserved = state[$i].in_system as i64
                - state[$i].busy as i64
                - blocked_after_service[$i] as i64;
            if unserved > 0 && state[$i].busy + blocked_after_service[$i] < st.servers {
                state[$i].busy += 1;
                let t = st.service.sample($rng);
                push($cal, $seq, $now + t, Event::Departure { station: $i });
            }
        }};
    }

    while let Some(Reverse(Entry { at: now, event, .. })) = cal.pop() {
        if now > horizon {
            break;
        }
        match event {
            Event::Arrival => {
                arrivals += 1;
                // schedule next external arrival
                let dt = ServiceDist::Exp(net.arrival_rate).sample(&mut rng);
                push(&mut cal, &mut seq, now + dt, Event::Arrival);
                let s0 = &net.stations[0];
                if state[0].in_system >= s0.buffer {
                    drops += 1;
                } else {
                    touch!(0, now);
                    state[0].in_system += 1;
                    try_start!(0, now, &mut cal, &mut seq, &mut rng);
                }
            }
            Event::Departure { station: i } => {
                // Service completed at i; try to hand off downstream.
                match net.stations[i].next {
                    Some(j) if state[j].in_system >= net.stations[j].buffer => {
                        // Downstream full: block in place, keep the server.
                        state[i].busy -= 1;
                        blocked_after_service[i] += 1;
                        // Re-check on the next departure from j (handled
                        // below when j drains).
                    }
                    Some(j) => {
                        touch!(i, now);
                        touch!(j, now);
                        state[i].in_system -= 1;
                        state[i].busy -= 1;
                        state[j].in_system += 1;
                        try_start!(j, now, &mut cal, &mut seq, &mut rng);
                        try_start!(i, now, &mut cal, &mut seq, &mut rng);
                        // i drained one slot: unblock an upstream blocker.
                        unblock_feeders(
                            net,
                            &mut state,
                            &mut blocked_after_service,
                            i,
                            now,
                            &mut cal,
                            &mut seq,
                            &mut rng,
                            &mut departures,
                        );
                    }
                    None => {
                        touch!(i, now);
                        state[i].in_system -= 1;
                        state[i].busy -= 1;
                        departures += 1;
                        try_start!(i, now, &mut cal, &mut seq, &mut rng);
                        unblock_feeders(
                            net,
                            &mut state,
                            &mut blocked_after_service,
                            i,
                            now,
                            &mut cal,
                            &mut seq,
                            &mut rng,
                            &mut departures,
                        );
                    }
                }
            }
        }
    }

    let mean_in_system = state
        .iter()
        .map(|s| {
            let mut area = s.area;
            area += s.in_system as f64 * (horizon - s.last_change);
            area / horizon
        })
        .collect();
    SimReport {
        departures,
        drops,
        horizon,
        throughput: departures as f64 / horizon,
        mean_in_system,
        blocking_probability: if arrivals == 0 {
            0.0
        } else {
            drops as f64 / arrivals as f64
        },
    }
}

/// After station `drained` freed a buffer slot, move one blocked-after-
/// service item from any upstream feeder into it (cascading upstream).
#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn unblock_feeders(
    net: &Network,
    state: &mut [StationState],
    blocked: &mut [u32],
    drained: usize,
    now: f64,
    cal: &mut BinaryHeap<Reverse<Entry>>,
    seq: &mut u64,
    rng: &mut StdRng,
    departures: &mut u64,
) {
    // Find a feeder of `drained` holding a blocked item.
    for i in 0..net.stations.len() {
        if net.stations[i].next == Some(drained)
            && blocked[i] > 0
            && state[drained].in_system < net.stations[drained].buffer
        {
            blocked[i] -= 1;
            // advance time-average integrals
            let s = &mut state[i];
            s.area += s.in_system as f64 * (now - s.last_change);
            s.last_change = now;
            let d = &mut state[drained];
            d.area += d.in_system as f64 * (now - d.last_change);
            d.last_change = now;

            state[i].in_system -= 1;
            state[drained].in_system += 1;
            // the freed server at i can start the next item
            let st = &net.stations[i];
            let unserved = state[i].in_system as i64 - state[i].busy as i64 - blocked[i] as i64;
            if unserved > 0 && state[i].busy + blocked[i] < st.servers {
                state[i].busy += 1;
                let t = st.service.sample(rng);
                *seq += 1;
                cal.push(Reverse(Entry {
                    at: now + t,
                    seq: *seq,
                    event: Event::Departure { station: i },
                }));
            }
            // start service at drained for the newly arrived item
            let st = &net.stations[drained];
            let unserved = state[drained].in_system as i64
                - state[drained].busy as i64
                - blocked[drained] as i64;
            if unserved > 0 && state[drained].busy + blocked[drained] < st.servers {
                state[drained].busy += 1;
                let t = st.service.sample(rng);
                *seq += 1;
                cal.push(Reverse(Entry {
                    at: now + t,
                    seq: *seq,
                    event: Event::Departure { station: drained },
                }));
            }
            // the upstream slot freed at i may itself unblock i's feeders
            unblock_feeders(net, state, blocked, i, now, cal, seq, rng, departures);
            return;
        }
    }
}

/// Convenience: a single M/M/c/K station fed at `lambda`.
pub fn single_station(lambda: f64, service: ServiceDist, servers: u32, buffer: usize) -> Network {
    Network {
        stations: vec![Station {
            name: "station".into(),
            service,
            servers,
            buffer,
            next: None,
        }],
        arrival_rate: lambda,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::{MM1, MM1K};

    const HORIZON: f64 = 20_000.0;

    #[test]
    fn mm1_occupancy_matches_theory() {
        // λ=5, μ=10 → L = 1.0
        let net = single_station(5.0, ServiceDist::Exp(10.0), 1, usize::MAX);
        let sim = simulate(&net, HORIZON, 42);
        let theory = MM1::new(5.0, 10.0).mean_in_system();
        assert!(
            (sim.mean_in_system[0] - theory).abs() < 0.1,
            "sim {} vs theory {theory}",
            sim.mean_in_system[0]
        );
        // throughput ≈ λ (stable queue)
        assert!((sim.throughput - 5.0).abs() < 0.15, "{}", sim.throughput);
    }

    #[test]
    fn mm1k_blocking_matches_theory() {
        // λ=9, μ=10, K=4: appreciable blocking
        let net = single_station(9.0, ServiceDist::Exp(10.0), 1, 4);
        let sim = simulate(&net, HORIZON, 7);
        let theory = MM1K::new(9.0, 10.0, 4).blocking_probability();
        assert!(
            (sim.blocking_probability - theory).abs() < 0.02,
            "sim {} vs theory {theory}",
            sim.blocking_probability
        );
    }

    #[test]
    fn md1_queue_shorter_than_mm1() {
        let exp = simulate(
            &single_station(8.0, ServiceDist::Exp(10.0), 1, usize::MAX),
            HORIZON,
            1,
        );
        let det = simulate(
            &single_station(8.0, ServiceDist::Det(0.1), 1, usize::MAX),
            HORIZON,
            1,
        );
        assert!(
            det.mean_in_system[0] < exp.mean_in_system[0],
            "deterministic service must queue less: {} vs {}",
            det.mean_in_system[0],
            exp.mean_in_system[0]
        );
    }

    #[test]
    fn tandem_throughput_limited_by_bottleneck() {
        // stage0 fast (μ=50), stage1 slow (μ=8), fed at λ=20:
        // flow model predicts throughput 8.
        let net = Network {
            stations: vec![
                Station {
                    name: "fast".into(),
                    service: ServiceDist::Exp(50.0),
                    servers: 1,
                    buffer: 16,
                    next: Some(1),
                },
                Station {
                    name: "slow".into(),
                    service: ServiceDist::Exp(8.0),
                    servers: 1,
                    buffer: 16,
                    next: None,
                },
            ],
            arrival_rate: 20.0,
        };
        let sim = simulate(&net, HORIZON, 3);
        assert!(
            (sim.throughput - 8.0).abs() < 0.4,
            "bottleneck rate 8, simulated {}",
            sim.throughput
        );
    }

    #[test]
    fn replication_lifts_bottleneck_as_flow_model_predicts() {
        use crate::flow::{FlowGraph, FlowKernel};
        // slow stage replicated 3x: flow model predicts min(λ, 3μ)
        let lambda = 20.0;
        let mu = 8.0;
        let servers = 3;
        let net = Network {
            stations: vec![Station {
                name: "work".into(),
                service: ServiceDist::Exp(mu),
                servers,
                buffer: 64,
                next: None,
            }],
            arrival_rate: lambda,
        };
        let sim = simulate(&net, HORIZON, 9);

        let mut g = FlowGraph::new();
        let src = g.add_kernel(FlowKernel::new("src", f64::INFINITY, 1.0));
        let work = g.add_kernel(FlowKernel::new("work", mu, 1.0).with_replicas(servers));
        g.add_edge(src, work);
        g.set_source_rate(src, lambda);
        let predicted = g.analyze().throughput;

        assert!(
            (sim.throughput - predicted).abs() / predicted < 0.06,
            "flow model {predicted} vs sim {}",
            sim.throughput
        );
    }

    #[test]
    fn tiny_buffer_throttles_throughput() {
        // Same rates, buffer 1 vs buffer 64: the tiny buffer loses
        // throughput to blocking — Figure 4's left side.
        let mk = |buffer| Network {
            stations: vec![
                Station {
                    name: "a".into(),
                    service: ServiceDist::Exp(12.0),
                    servers: 1,
                    buffer: 64,
                    next: Some(1),
                },
                Station {
                    name: "b".into(),
                    service: ServiceDist::Exp(12.0),
                    servers: 1,
                    buffer,
                    next: None,
                },
            ],
            arrival_rate: 10.0,
        };
        let tiny = simulate(&mk(1), HORIZON, 5);
        let roomy = simulate(&mk(64), HORIZON, 5);
        assert!(
            tiny.throughput < roomy.throughput * 0.97,
            "tiny {} vs roomy {}",
            tiny.throughput,
            roomy.throughput
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let net = single_station(5.0, ServiceDist::Exp(10.0), 1, 8);
        let a = simulate(&net, 1000.0, 11);
        let b = simulate(&net, 1000.0, 11);
        assert_eq!(a.departures, b.departures);
        assert_eq!(a.drops, b.drops);
    }

    #[test]
    fn uniform_service_mean() {
        let d = ServiceDist::Uniform(0.5, 1.5);
        assert!((d.mean() - 1.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(0);
        let avg: f64 = (0..10_000).map(|_| d.sample(&mut rng)).sum::<f64>() / 10_000.0;
        assert!((avg - 1.0).abs() < 0.02);
    }
}
