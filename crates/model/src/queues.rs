//! Single-queue analytic models.
//!
//! The paper (§3) models every stream as a queue and notes that "queueing
//! models are often the fastest way to estimate an approximate queue size".
//! These are the standard closed forms (Lavenberg \[31\] is the paper's
//! citation for the queueing-network view):
//!
//! * [`MM1`] — Poisson arrivals, exponential service, infinite buffer;
//! * [`MD1`] — Poisson arrivals, deterministic service (a good model for
//!   compute kernels with fixed per-item work);
//! * [`MM1K`] — M/M/1 with a finite buffer of K slots; its blocking
//!   probability is what the analytic buffer-sizing in
//!   [`crate::sizing`] inverts.

/// M/M/1 queue: arrival rate λ, service rate μ, infinite buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MM1 {
    /// Arrival rate λ (items/sec).
    pub lambda: f64,
    /// Service rate μ (items/sec).
    pub mu: f64,
}

impl MM1 {
    /// Construct; panics unless rates are positive.
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(lambda > 0.0 && mu > 0.0, "rates must be positive");
        MM1 { lambda, mu }
    }

    /// Utilization ρ = λ/μ.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// `true` iff the queue is stable (ρ < 1).
    pub fn is_stable(&self) -> bool {
        self.rho() < 1.0
    }

    /// Mean number in system, L = ρ/(1-ρ). Infinite if unstable.
    pub fn mean_in_system(&self) -> f64 {
        let rho = self.rho();
        if rho >= 1.0 {
            f64::INFINITY
        } else {
            rho / (1.0 - rho)
        }
    }

    /// Mean queue length (excluding the item in service), Lq = ρ²/(1-ρ).
    pub fn mean_queue_len(&self) -> f64 {
        let rho = self.rho();
        if rho >= 1.0 {
            f64::INFINITY
        } else {
            rho * rho / (1.0 - rho)
        }
    }

    /// Mean time in system, W = 1/(μ-λ).
    pub fn mean_wait(&self) -> f64 {
        if self.is_stable() {
            1.0 / (self.mu - self.lambda)
        } else {
            f64::INFINITY
        }
    }

    /// P(N = n) = (1-ρ)ρⁿ.
    pub fn p_n(&self, n: u32) -> f64 {
        let rho = self.rho();
        if rho >= 1.0 {
            0.0
        } else {
            (1.0 - rho) * rho.powi(n as i32)
        }
    }

    /// P(N > n) = ρⁿ⁺¹ — tail used to size a buffer for a target overflow
    /// probability.
    pub fn p_exceeds(&self, n: u32) -> f64 {
        let rho = self.rho();
        if rho >= 1.0 {
            1.0
        } else {
            rho.powi(n as i32 + 1)
        }
    }
}

/// M/D/1 queue: Poisson arrivals, deterministic service time 1/μ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MD1 {
    /// Arrival rate λ (items/sec).
    pub lambda: f64,
    /// Service rate μ (items/sec).
    pub mu: f64,
}

impl MD1 {
    /// Construct; panics unless rates are positive.
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(lambda > 0.0 && mu > 0.0, "rates must be positive");
        MD1 { lambda, mu }
    }

    /// Utilization ρ = λ/μ.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Mean queue length Lq = ρ²/(2(1-ρ)) — half the M/M/1 value
    /// (Pollaczek–Khinchine with zero service variance).
    pub fn mean_queue_len(&self) -> f64 {
        let rho = self.rho();
        if rho >= 1.0 {
            f64::INFINITY
        } else {
            rho * rho / (2.0 * (1.0 - rho))
        }
    }

    /// Mean number in system L = Lq + ρ.
    pub fn mean_in_system(&self) -> f64 {
        self.mean_queue_len() + self.rho()
    }

    /// Mean time in system W = L/λ (Little's law).
    pub fn mean_wait(&self) -> f64 {
        self.mean_in_system() / self.lambda
    }
}

/// M/M/1/K queue: finite buffer holding at most K items (including the one
/// in service). Arrivals finding the buffer full are *blocked* — in a
/// streaming system, this is the upstream kernel stalling on a full FIFO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MM1K {
    /// Arrival rate λ (items/sec).
    pub lambda: f64,
    /// Service rate μ (items/sec).
    pub mu: f64,
    /// Buffer capacity K (items, including in-service).
    pub k: u32,
}

impl MM1K {
    /// Construct; panics unless rates are positive and `k >= 1`.
    pub fn new(lambda: f64, mu: f64, k: u32) -> Self {
        assert!(lambda > 0.0 && mu > 0.0, "rates must be positive");
        assert!(k >= 1, "buffer must hold at least one item");
        MM1K { lambda, mu, k }
    }

    /// Offered load ρ = λ/μ (may exceed 1; the finite buffer keeps the
    /// system stable regardless).
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// P(N = n) for n in 0..=K.
    pub fn p_n(&self, n: u32) -> f64 {
        if n > self.k {
            return 0.0;
        }
        let rho = self.rho();
        let kp1 = self.k as i32 + 1;
        if (rho - 1.0).abs() < 1e-12 {
            1.0 / (self.k as f64 + 1.0)
        } else if rho > 1.0 {
            // The textbook form (1-ρ)ρⁿ/(1-ρ^(K+1)) overflows to ∞/∞ = NaN
            // for ρ > 1 with large K. Scale numerator and denominator by
            // ρ^-(K+1): both stay finite because ρ^-(K+1) → 0.
            (1.0 - rho) * rho.powi(n as i32 - kp1) / (rho.powi(-kp1) - 1.0)
        } else {
            (1.0 - rho) * rho.powi(n as i32) / (1.0 - rho.powi(kp1))
        }
    }

    /// Blocking probability P(N = K): fraction of arrivals that find the
    /// buffer full and stall the producer.
    pub fn blocking_probability(&self) -> f64 {
        self.p_n(self.k)
    }

    /// Effective throughput λ(1 - P_block).
    pub fn throughput(&self) -> f64 {
        self.lambda * (1.0 - self.blocking_probability())
    }

    /// Mean number in system.
    pub fn mean_in_system(&self) -> f64 {
        (0..=self.k).map(|n| n as f64 * self.p_n(n)).sum()
    }
}

/// Smallest power-of-two capacity K such that an M/M/1/K queue with the
/// given rates blocks with probability at most `target`.
///
/// Powers of two because that is what the runtime's FIFO allocator and
/// resize policy actually use. Returns `None` when no finite buffer can
/// reach the target: non-positive or non-finite inputs, or λ ≥ μ (an
/// overloaded queue blocks at rate ≥ (ρ-1)/ρ no matter how big the buffer).
pub fn min_capacity_for_blocking(lambda: f64, mu: f64, target: f64) -> Option<u32> {
    if !(lambda > 0.0 && mu > 0.0 && target > 0.0 && target < 1.0) {
        return None;
    }
    if !lambda.is_finite() || !mu.is_finite() || lambda >= mu {
        return None;
    }
    let mut k = 1u32;
    // 2^26 slots is far beyond any FIFO this runtime would allocate; treat
    // needing more as "no practical buffer" rather than looping further.
    while k <= 1 << 26 {
        if MM1K::new(lambda, mu, k).blocking_probability() <= target {
            return Some(k);
        }
        k <<= 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_closed_forms() {
        let q = MM1::new(5.0, 10.0); // rho = 0.5
        assert!((q.rho() - 0.5).abs() < 1e-12);
        assert!(q.is_stable());
        assert!((q.mean_in_system() - 1.0).abs() < 1e-12); // 0.5/0.5
        assert!((q.mean_queue_len() - 0.5).abs() < 1e-12); // 0.25/0.5
        assert!((q.mean_wait() - 0.2).abs() < 1e-12); // 1/5
    }

    #[test]
    fn mm1_distribution_sums_to_one() {
        let q = MM1::new(3.0, 7.0);
        let total: f64 = (0..200).map(|n| q.p_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mm1_tail_matches_distribution() {
        let q = MM1::new(4.0, 9.0);
        let tail_direct = q.p_exceeds(5);
        let tail_sum: f64 = (6..400).map(|n| q.p_n(n)).sum();
        assert!((tail_direct - tail_sum).abs() < 1e-9);
    }

    #[test]
    fn mm1_unstable() {
        let q = MM1::new(10.0, 5.0);
        assert!(!q.is_stable());
        assert!(q.mean_in_system().is_infinite());
        assert!(q.mean_wait().is_infinite());
    }

    #[test]
    fn md1_is_half_mm1_queue() {
        let lambda = 6.0;
        let mu = 10.0;
        let md1 = MD1::new(lambda, mu);
        let mm1 = MM1::new(lambda, mu);
        assert!((md1.mean_queue_len() - mm1.mean_queue_len() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn md1_littles_law_consistency() {
        let q = MD1::new(2.0, 5.0);
        assert!((q.mean_wait() * q.lambda - q.mean_in_system()).abs() < 1e-12);
    }

    #[test]
    fn mm1k_distribution_sums_to_one() {
        for rho_pair in [(3.0, 6.0), (6.0, 3.0), (5.0, 5.0)] {
            let q = MM1K::new(rho_pair.0, rho_pair.1, 8);
            let total: f64 = (0..=8).map(|n| q.p_n(n)).sum();
            assert!((total - 1.0).abs() < 1e-9, "rho={}", q.rho());
        }
    }

    #[test]
    fn mm1k_blocking_decreases_with_k() {
        let mut last = 1.0;
        for k in [1u32, 2, 4, 8, 16, 32] {
            let q = MM1K::new(8.0, 10.0, k);
            let b = q.blocking_probability();
            assert!(b < last, "blocking must fall as buffer grows");
            last = b;
        }
    }

    #[test]
    fn mm1k_converges_to_mm1() {
        // For rho < 1 and large K, M/M/1/K ≈ M/M/1.
        let q_inf = MM1::new(5.0, 10.0);
        let q_fin = MM1K::new(5.0, 10.0, 64);
        assert!((q_fin.mean_in_system() - q_inf.mean_in_system()).abs() < 1e-6);
        assert!(q_fin.blocking_probability() < 1e-9);
    }

    #[test]
    fn mm1k_overloaded_still_finite() {
        let q = MM1K::new(20.0, 10.0, 4);
        let b = q.blocking_probability();
        assert!(b > 0.4, "overloaded queue should block a lot, got {b}");
        assert!(q.throughput() <= q.mu * 1.0001);
        assert!(q.mean_in_system() <= 4.0);
    }

    #[test]
    fn mm1k_rho_equal_one_uniform() {
        let q = MM1K::new(5.0, 5.0, 4);
        for n in 0..=4 {
            assert!((q.p_n(n) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn mm1k_throughput_le_service_rate() {
        for (l, m, k) in [(50.0, 10.0, 2), (9.0, 10.0, 3), (10.0, 1.0, 1)] {
            let q = MM1K::new(l, m, k);
            assert!(q.throughput() <= m + 1e-9);
            assert!(q.throughput() <= l + 1e-9);
        }
    }

    #[test]
    fn mm1k_overloaded_large_k_stays_finite() {
        // The naive (1-ρ)ρⁿ/(1-ρ^(K+1)) form yields NaN here (∞/∞).
        let q = MM1K::new(20.0, 10.0, 1 << 22);
        let b = q.blocking_probability();
        assert!(b.is_finite(), "blocking must be finite, got {b}");
        // For ρ > 1 and K → ∞, P_block → (ρ-1)/ρ = 0.5.
        assert!((b - 0.5).abs() < 1e-6, "expected ≈0.5, got {b}");
        let total: f64 = [0, 1, (1 << 22) - 1, 1 << 22]
            .iter()
            .map(|&n| q.p_n(n))
            .sum();
        assert!(total.is_finite());
    }

    #[test]
    fn min_capacity_finds_power_of_two() {
        let k = min_capacity_for_blocking(5.0, 10.0, 0.01).expect("stable queue");
        assert!(k.is_power_of_two());
        assert!(MM1K::new(5.0, 10.0, k).blocking_probability() <= 0.01);
        if k > 1 {
            assert!(MM1K::new(5.0, 10.0, k / 2).blocking_probability() > 0.01);
        }
    }

    #[test]
    fn min_capacity_rejects_overload_and_bad_args() {
        assert_eq!(min_capacity_for_blocking(10.0, 10.0, 0.01), None);
        assert_eq!(min_capacity_for_blocking(20.0, 10.0, 0.01), None);
        assert_eq!(min_capacity_for_blocking(-1.0, 10.0, 0.01), None);
        assert_eq!(min_capacity_for_blocking(5.0, 10.0, 0.0), None);
        assert_eq!(min_capacity_for_blocking(f64::NAN, 10.0, 0.01), None);
    }

    #[test]
    fn min_capacity_tightens_with_target() {
        let loose = min_capacity_for_blocking(8.0, 10.0, 0.1).unwrap();
        let tight = min_capacity_for_blocking(8.0, 10.0, 0.001).unwrap();
        assert!(tight >= loose);
    }
}
