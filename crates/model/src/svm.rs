//! Automated queueing-model reliability classification — the paper's
//! "fast automatic model selection (e.g., Beard et al., \[10\])" future-work
//! item, reproducing the approach of *Automated Reliability Classification
//! of Queueing Models for Streaming Computation using Support Vector
//! Machines* (ICPE'15).
//!
//! Idea: analytic queue models (M/M/1 etc.) are cheap but only trustworthy
//! in part of the observation space (moderate utilization, service-time
//! variability near exponential, enough samples). Train a classifier on
//! observations labeled by whether the analytic prediction was within
//! tolerance of the truth; at run time, the optimizer asks the classifier
//! before trusting a model.
//!
//! Implementation: a linear soft-margin SVM trained with the Pegasos
//! stochastic sub-gradient algorithm (Shalev-Shwartz et al.), features
//! standardized to zero mean / unit variance. [`training_set_from_des`]
//! manufactures a labeled dataset by comparing [`crate::queues::MM1`]
//! predictions against [`crate::des`] simulations across the parameter
//! space — the same methodology as the ICPE'15 paper, with the simulator
//! standing in for their measurement platform.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Observable features of one queue, as the monitor would report them.
#[derive(Debug, Clone, Copy)]
pub struct QueueObservation {
    /// Estimated utilization ρ = λ/μ.
    pub utilization: f64,
    /// Coefficient of variation of service times (1.0 = exponential).
    pub service_cv: f64,
    /// Coefficient of variation of inter-arrival times.
    pub arrival_cv: f64,
    /// log10 of the number of samples behind the estimates.
    pub log_samples: f64,
}

impl QueueObservation {
    fn features(&self) -> [f64; 4] {
        [
            self.utilization,
            self.service_cv,
            self.arrival_cv,
            self.log_samples,
        ]
    }
}

/// A trained linear SVM over [`QueueObservation`] features.
#[derive(Debug, Clone)]
pub struct ReliabilityClassifier {
    weights: [f64; 4],
    bias: f64,
    mean: [f64; 4],
    std: [f64; 4],
}

/// Training configuration (Pegasos).
#[derive(Debug, Clone, Copy)]
pub struct SvmConfig {
    /// Regularization λ (smaller = harder margin).
    pub lambda: f64,
    /// SGD epochs over the data.
    pub epochs: usize,
    /// RNG seed for sampling order.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            lambda: 1e-3,
            epochs: 60,
            seed: 17,
        }
    }
}

impl ReliabilityClassifier {
    /// Train on `(observation, reliable?)` pairs with Pegasos.
    /// Panics if fewer than 2 examples or only one class present.
    pub fn train(data: &[(QueueObservation, bool)], cfg: SvmConfig) -> Self {
        assert!(data.len() >= 2, "need at least two training examples");
        let pos = data.iter().filter(|(_, y)| *y).count();
        assert!(
            pos > 0 && pos < data.len(),
            "training data must contain both classes (got {pos}/{} positive)",
            data.len()
        );

        // Standardize features.
        let n = data.len() as f64;
        let mut mean = [0.0f64; 4];
        for (o, _) in data {
            for (m, f) in mean.iter_mut().zip(o.features()) {
                *m += f / n;
            }
        }
        let mut std = [0.0f64; 4];
        for (o, _) in data {
            for ((s, f), m) in std.iter_mut().zip(o.features()).zip(mean) {
                *s += (f - m) * (f - m) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-9);
        }
        let norm = |o: &QueueObservation| -> [f64; 4] {
            let f = o.features();
            std::array::from_fn(|i| (f[i] - mean[i]) / std[i])
        };

        // Pegasos SGD on hinge loss.
        let mut w = [0.0f64; 4];
        let mut b = 0.0f64;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut t = 1usize;
        for _ in 0..cfg.epochs {
            for _ in 0..data.len() {
                let (obs, label) = &data[rng.gen_range(0..data.len())];
                let y = if *label { 1.0 } else { -1.0 };
                let x = norm(obs);
                let eta = 1.0 / (cfg.lambda * t as f64);
                let margin = y * (dot(&w, &x) + b);
                for wi in &mut w {
                    *wi *= 1.0 - eta * cfg.lambda;
                }
                if margin < 1.0 {
                    for (wi, xi) in w.iter_mut().zip(x) {
                        *wi += eta * y * xi;
                    }
                    b += eta * y;
                }
                t += 1;
            }
        }
        ReliabilityClassifier {
            weights: w,
            bias: b,
            mean,
            std,
        }
    }

    /// Signed decision value (positive ⇒ reliable).
    pub fn decision(&self, obs: &QueueObservation) -> f64 {
        let f = obs.features();
        let x: [f64; 4] = std::array::from_fn(|i| (f[i] - self.mean[i]) / self.std[i]);
        dot(&self.weights, &x) + self.bias
    }

    /// `true` when the analytic model can be trusted for this observation.
    pub fn is_reliable(&self, obs: &QueueObservation) -> bool {
        self.decision(obs) > 0.0
    }

    /// Accuracy over a labeled set.
    pub fn accuracy(&self, data: &[(QueueObservation, bool)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .iter()
            .filter(|(o, y)| self.is_reliable(o) == *y)
            .count();
        correct as f64 / data.len() as f64
    }
}

fn dot(a: &[f64; 4], b: &[f64; 4]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Manufacture a labeled training set by comparing M/M/1 occupancy
/// predictions with DES ground truth across the (ρ, service CV) space.
/// An observation is labeled *reliable* when the analytic prediction is
/// within `tolerance` (relative) of the simulated value.
pub fn training_set_from_des(
    points: usize,
    horizon: f64,
    tolerance: f64,
    seed: u64,
) -> Vec<(QueueObservation, bool)> {
    use crate::des::{simulate, single_station, ServiceDist};
    use crate::queues::MM1;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(points);
    for i in 0..points {
        let rho: f64 = rng.gen_range(0.1..0.95);
        let mu = 10.0;
        let lambda = rho * mu;
        // Service distribution: exponential (CV 1) or deterministic (CV 0)
        // or uniform (CV between) — the analytic M/M/1 is only right for
        // CV ≈ 1.
        let (dist, cv) = match i % 3 {
            0 => (ServiceDist::Exp(mu), 1.0),
            1 => (ServiceDist::Det(1.0 / mu), 0.0),
            _ => {
                // uniform [a, b] with mean 1/mu; CV = (b-a)/(sqrt(12)*mean)
                let half = rng.gen_range(0.2..0.9) / mu;
                let (a, b) = (1.0 / mu - half, 1.0 / mu + half);
                let cv = (b - a) / (12.0f64.sqrt() * (1.0 / mu));
                (ServiceDist::Uniform(a, b), cv)
            }
        };
        let sim = simulate(
            &single_station(lambda, dist, 1, usize::MAX),
            horizon,
            seed + i as u64,
        );
        let predicted = MM1::new(lambda, mu).mean_in_system();
        let actual = sim.mean_in_system[0].max(1e-9);
        let rel_err = (predicted - actual).abs() / actual.max(predicted);
        data.push((
            QueueObservation {
                utilization: rho,
                service_cv: cv,
                arrival_cv: 1.0,
                log_samples: (sim.departures.max(1) as f64).log10(),
            },
            rel_err <= tolerance,
        ));
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy data trains to perfect accuracy.
    #[test]
    fn separable_data_learned() {
        let mut data = Vec::new();
        for i in 0..50 {
            let x = i as f64 / 50.0;
            // reliable iff utilization < 0.5
            data.push((
                QueueObservation {
                    utilization: x,
                    service_cv: 1.0,
                    arrival_cv: 1.0,
                    log_samples: 4.0,
                },
                x < 0.5,
            ));
        }
        let clf = ReliabilityClassifier::train(&data, SvmConfig::default());
        assert!(clf.accuracy(&data) >= 0.95, "{}", clf.accuracy(&data));
        assert!(clf.is_reliable(&QueueObservation {
            utilization: 0.1,
            service_cv: 1.0,
            arrival_cv: 1.0,
            log_samples: 4.0
        }));
        assert!(!clf.is_reliable(&QueueObservation {
            utilization: 0.9,
            service_cv: 1.0,
            arrival_cv: 1.0,
            log_samples: 4.0
        }));
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_rejected() {
        let data = vec![
            (
                QueueObservation {
                    utilization: 0.2,
                    service_cv: 1.0,
                    arrival_cv: 1.0,
                    log_samples: 3.0,
                },
                true,
            ),
            (
                QueueObservation {
                    utilization: 0.3,
                    service_cv: 1.0,
                    arrival_cv: 1.0,
                    log_samples: 3.0,
                },
                true,
            ),
        ];
        ReliabilityClassifier::train(&data, SvmConfig::default());
    }

    /// End-to-end ICPE'15-style experiment: label by DES-vs-analytic error,
    /// train, and verify the learned rule beats chance on held-out data and
    /// captures the expected physics (exponential service at moderate load
    /// = reliable; deterministic service at high load = unreliable).
    #[test]
    fn des_labeled_classifier_learns_the_physics() {
        let train = training_set_from_des(120, 4_000.0, 0.15, 100);
        let test = training_set_from_des(60, 4_000.0, 0.15, 900);
        let clf = ReliabilityClassifier::train(&train, SvmConfig::default());
        let acc = clf.accuracy(&test);
        assert!(acc >= 0.7, "held-out accuracy only {acc}");

        // physics spot checks — log_samples set consistently with ρ (it
        // is ~log10(λ·horizon) in the training manifold)
        let exp_moderate = QueueObservation {
            utilization: 0.4,
            service_cv: 1.0,
            arrival_cv: 1.0,
            log_samples: 4.2,
        };
        let det_high = QueueObservation {
            utilization: 0.9,
            service_cv: 0.0,
            arrival_cv: 1.0,
            log_samples: 4.55,
        };
        assert!(
            clf.decision(&exp_moderate) > clf.decision(&det_high),
            "exponential/moderate must rank above deterministic/high: {} vs {}",
            clf.decision(&exp_moderate),
            clf.decision(&det_high)
        );
    }

    #[test]
    fn training_set_has_both_labels() {
        let data = training_set_from_des(60, 3_000.0, 0.15, 5);
        let pos = data.iter().filter(|(_, y)| *y).count();
        assert!(
            pos > 0 && pos < data.len(),
            "degenerate labels: {pos}/{}",
            data.len()
        );
    }
}
