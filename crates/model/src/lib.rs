#![warn(missing_docs)]

//! # raft-model
//!
//! Analytic machinery behind RaftLib's continuous optimization (§3–4 of the
//! PMAM'15 paper):
//!
//! * [`queues`] — single-queue formulas: M/M/1, M/D/1, and the finite-buffer
//!   M/M/1/K (blocking probability drives buffer sizing);
//! * [`flow`] — the Beard & Chamberlain (MASCOTS'13) style flow model: push
//!   per-kernel service rates and selectivities through the streaming DAG to
//!   estimate steady-state application throughput;
//! * [`scaling`] — parallel-scaling predictor used for the Figure 10 modeled
//!   series: single-core rate + serial fraction + per-worker overhead +
//!   memory-bandwidth ceiling → throughput at k cores;
//! * [`sizing`] — buffer-capacity selection: branch-and-bound search over a
//!   black-box cost function, and analytic M/M/1/K sizing to hit a target
//!   blocking probability (the paper's two stated options);
//! * [`anneal`] — simulated annealing over integer parameter vectors, the
//!   search technique the paper pairs with the flow model for long-running
//!   application tuning;
//! * [`jackson`] — open product-form (Jackson) networks: traffic
//!   equations plus per-station M/M/c, the "considering each queue
//!   individually" condition §4 names for analytic buffer sizing;
//! * [`des`] — a discrete-event simulator of finite-buffer queueing
//!   networks with blocking-after-service: the ground truth the analytic
//!   formulas and the flow model are validated against;
//! * [`svm`] — the reliability classifier of Beard, Epstein & Chamberlain
//!   (ICPE'15, the paper's ref \[10\]): a linear SVM deciding whether an
//!   analytic queueing model can be trusted for a given observed queue.

pub mod anneal;
pub mod des;
pub mod flow;
pub mod jackson;
pub mod queues;
pub mod scaling;
pub mod sizing;
pub mod svm;

pub use flow::{FlowGraph, FlowReport};
pub use queues::{MD1, MM1, MM1K};
pub use scaling::SystemModel;
