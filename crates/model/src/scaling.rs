//! Parallel-scaling predictor for the Figure 10 modeled series.
//!
//! The paper's benchmark machine had 16 physical cores; this reproduction
//! may run on far fewer. The paper itself advocates model-based throughput
//! estimation for streaming systems (§4.1, refs \[8,10\]), so the harness
//! pairs every *measured* series with a *modeled* one: measure the true
//! single-core service rate of each implementation on this host, then
//! extrapolate to k cores with the standard throughput decomposition
//!
//! ```text
//! T(k) = work / ( serial + parallel/k + overhead(k) )  capped by mem_bw
//! ```
//!
//! where `serial` captures non-parallelizable dispatch (GNU Parallel's
//! job-spawning, Spark's driver), `overhead(k)` the per-worker coordination
//! cost, and `mem_bw` the memory-bandwidth ceiling the paper observed once
//! Boyer-Moore-Horspool stopped being compute-bound (§5: "the memory system
//! itself becomes the bottleneck").

/// Scaling model for one system in the Figure 10 comparison.
#[derive(Debug, Clone, Copy)]
pub struct SystemModel {
    /// Measured single-core throughput, GB/s.
    pub single_rate_gbps: f64,
    /// Fraction of each unit of work that is serialized (0.0..1.0).
    pub serial_frac: f64,
    /// Additional coordination cost per extra worker, expressed as a
    /// fraction of the single-core unit work time (linear in k).
    pub per_worker_overhead: f64,
    /// Memory-bandwidth ceiling in GB/s (aggregate across cores).
    pub mem_bw_gbps: f64,
}

impl SystemModel {
    /// Predicted throughput at `cores` workers, GB/s.
    ///
    /// Normalized: processing 1 GB takes `1/single_rate` seconds at k=1, of
    /// which `serial_frac` cannot parallelize; each worker beyond the first
    /// adds `per_worker_overhead / single_rate` seconds of coordination.
    pub fn throughput(&self, cores: u32) -> f64 {
        assert!(cores >= 1);
        let k = cores as f64;
        let unit = 1.0 / self.single_rate_gbps; // seconds per GB at k=1
        let serial = unit * self.serial_frac;
        let parallel = unit * (1.0 - self.serial_frac) / k;
        let overhead = unit * self.per_worker_overhead * (k - 1.0);
        let t = serial + parallel + overhead;
        (1.0 / t).min(self.mem_bw_gbps)
    }

    /// The whole series 1..=max_cores.
    pub fn series(&self, max_cores: u32) -> Vec<(u32, f64)> {
        (1..=max_cores).map(|c| (c, self.throughput(c))).collect()
    }

    /// Core count after which adding workers gains < `epsilon` relative
    /// improvement (the knee of the curve).
    pub fn saturation_point(&self, max_cores: u32, epsilon: f64) -> u32 {
        let mut prev = self.throughput(1);
        for c in 2..=max_cores {
            let t = self.throughput(c);
            if (t - prev) / prev < epsilon {
                return c - 1;
            }
            prev = t;
        }
        max_cores
    }
}

/// The four Figure 10 systems with the paper-calibrated shape parameters.
/// `measured_single` overrides the single-core rate with a rate measured on
/// this host (pass the paper's values to regenerate the original figure).
pub mod figure10 {
    use super::SystemModel;

    /// GNU grep parallelized by GNU Parallel: blazing single-core scanner,
    /// heavy serialized job dispatch (fork/exec, file splitting, output
    /// merging through a single pipe).
    pub fn grep_parallel(measured_single: f64) -> SystemModel {
        // The large serial fraction models what GNU Parallel cannot
        // parallelize: splitting the input into jobs and funnelling all
        // match output back through one pipe.
        SystemModel {
            single_rate_gbps: measured_single,
            serial_frac: 0.55,
            per_worker_overhead: 0.03,
            mem_bw_gbps: 30.0,
        }
    }

    /// Apache Spark running Boyer-Moore: slow per-byte scan (JVM), but an
    /// almost perfectly parallel task model — near-linear to 16 cores.
    pub fn spark_boyer_moore(measured_single: f64) -> SystemModel {
        SystemModel {
            single_rate_gbps: measured_single,
            serial_frac: 0.002,
            per_worker_overhead: 0.0004,
            mem_bw_gbps: 30.0,
        }
    }

    /// RaftLib + Aho-Corasick: compute-bound automaton walk; parallelizes
    /// well but each byte costs a dependent table load.
    pub fn raftlib_aho_corasick(measured_single: f64) -> SystemModel {
        SystemModel {
            single_rate_gbps: measured_single,
            serial_frac: 0.005,
            per_worker_overhead: 0.001,
            mem_bw_gbps: 30.0,
        }
    }

    /// RaftLib + Boyer-Moore-Horspool: sublinear scan, linear speedup until
    /// the memory system saturates (the paper: linear through ~10 cores,
    /// ~8 GB/s on the 30 GB corpus).
    pub fn raftlib_horspool(measured_single: f64) -> SystemModel {
        SystemModel {
            single_rate_gbps: measured_single,
            serial_frac: 0.005,
            per_worker_overhead: 0.0015,
            mem_bw_gbps: 8.5,
        }
    }

    /// The paper's reported single-core rates (GB/s), for regenerating the
    /// original curves without measuring.
    pub mod paper_rates {
        /// GNU grep 2.20 single-threaded (§5).
        pub const GREP: f64 = 1.2;
        /// Apache Spark Boyer-Moore (≈2.8 GB/s at 16 cores, near-linear).
        pub const SPARK: f64 = 0.19;
        /// RaftLib Aho-Corasick (tops out ≈1.5 GB/s at 16 cores).
        pub const RAFT_AC: f64 = 0.115;
        /// RaftLib Boyer-Moore-Horspool (≈8 GB/s at 10 cores, linear).
        pub const RAFT_BMH: f64 = 0.82;
    }
}

#[cfg(test)]
mod tests {
    use super::figure10::*;
    use super::*;

    #[test]
    fn single_core_is_identity() {
        let m = SystemModel {
            single_rate_gbps: 1.2,
            serial_frac: 0.3,
            per_worker_overhead: 0.05,
            mem_bw_gbps: 100.0,
        };
        assert!((m.throughput(1) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn perfect_parallel_scales_linearly() {
        let m = SystemModel {
            single_rate_gbps: 1.0,
            serial_frac: 0.0,
            per_worker_overhead: 0.0,
            mem_bw_gbps: 1e9,
        };
        for k in [1u32, 2, 4, 8, 16] {
            assert!((m.throughput(k) - k as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn amdahl_limit() {
        let m = SystemModel {
            single_rate_gbps: 1.0,
            serial_frac: 0.5,
            per_worker_overhead: 0.0,
            mem_bw_gbps: 1e9,
        };
        // speedup bounded by 1/serial_frac = 2
        assert!(m.throughput(1000) < 2.0);
        assert!(m.throughput(1000) > 1.9);
    }

    #[test]
    fn bandwidth_cap_applies() {
        let m = SystemModel {
            single_rate_gbps: 1.0,
            serial_frac: 0.0,
            per_worker_overhead: 0.0,
            mem_bw_gbps: 4.0,
        };
        assert!((m.throughput(16) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_eventually_degrades() {
        let m = SystemModel {
            single_rate_gbps: 1.0,
            serial_frac: 0.1,
            per_worker_overhead: 0.05,
            mem_bw_gbps: 1e9,
        };
        let best: f64 = (1..=64).map(|k| m.throughput(k)).fold(0.0, f64::max);
        assert!(m.throughput(64) < best, "high k should be past the knee");
    }

    /// The calibrated Figure 10 models reproduce the paper's *shape*:
    /// ordering at 16 cores, BMH crossover, grep's single-core win.
    #[test]
    fn figure10_shape_holds_with_paper_rates() {
        let grep = grep_parallel(paper_rates::GREP);
        let spark = spark_boyer_moore(paper_rates::SPARK);
        let ac = raftlib_aho_corasick(paper_rates::RAFT_AC);
        let bmh = raftlib_horspool(paper_rates::RAFT_BMH);

        // Single core: grep wins handily (paper: "handily beats all the
        // other algorithms for single core performance").
        let g1 = grep.throughput(1);
        for (name, m) in [("spark", &spark), ("ac", &ac), ("bmh", &bmh)] {
            assert!(g1 > m.throughput(1), "grep must win at 1 core vs {name}");
        }

        // 16 cores: BMH > Spark > AC ≈ comparable, grep+parallel worst or
        // near-worst (paper Figure 10).
        let at16 = |m: &SystemModel| m.throughput(16);
        assert!(at16(&bmh) > at16(&spark), "BMH wins at 16");
        assert!(at16(&spark) > at16(&ac), "Spark above AC at 16");
        assert!(
            at16(&bmh) > 6.0 && at16(&bmh) < 10.0,
            "BMH ≈ 8 GB/s at saturation, got {}",
            at16(&bmh)
        );
        assert!(
            at16(&spark) > 2.0 && at16(&spark) < 3.6,
            "Spark ≈ 2.8 GB/s, got {}",
            at16(&spark)
        );
        assert!(
            at16(&ac) > 1.0 && at16(&ac) < 2.0,
            "AC ≈ 1.5 GB/s, got {}",
            at16(&ac)
        );
        // grep+parallel stuck near ~2 GB/s (Amdahl on dispatch)
        assert!(at16(&grep) < at16(&spark) + 0.5);

        // BMH overtakes grep somewhere between 2 and 12 cores (crossover).
        let cross = (1..=16).find(|&k| bmh.throughput(k) > grep.throughput(k));
        assert!(
            matches!(cross, Some(2..=12)),
            "BMH/grep crossover at {cross:?}"
        );

        // BMH roughly linear through 10 cores (each step gains ≥ 60% of a
        // single-core rate).
        for k in 2..=10u32 {
            let gain = bmh.throughput(k) - bmh.throughput(k - 1);
            assert!(
                gain > 0.6 * paper_rates::RAFT_BMH,
                "BMH gain at {k} cores too small: {gain}"
            );
        }
    }

    #[test]
    fn series_and_saturation() {
        let bmh = raftlib_horspool(paper_rates::RAFT_BMH);
        let s = bmh.series(16);
        assert_eq!(s.len(), 16);
        assert_eq!(s[0].0, 1);
        let knee = bmh.saturation_point(16, 0.05);
        assert!(
            (8..=14).contains(&knee),
            "BMH should saturate around 10 cores, got {knee}"
        );
    }
}
