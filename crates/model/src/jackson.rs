//! Open Jackson (product-form) queueing networks.
//!
//! §4 of the paper: analytic buffer sizing is "often straightforward to
//! calculate, assuming the conditions are right for considering each queue
//! individually (e.g., the queueing network is of product form)". This
//! module supplies that machinery: solve the traffic equations for an open
//! network with probabilistic routing, then treat each station as an
//! independent M/M/c queue (Jackson's theorem) — giving per-queue
//! utilizations, occupancies, and the per-queue arrival rates the
//! [`crate::sizing`] routines need.

/// One station of the network.
#[derive(Debug, Clone)]
pub struct JacksonStation {
    /// Display name.
    pub name: String,
    /// Service rate of one server (items/sec).
    pub mu: f64,
    /// Parallel servers (replicas).
    pub servers: u32,
}

/// An open network: stations, external arrivals, and a routing matrix.
#[derive(Debug, Clone, Default)]
pub struct JacksonNetwork {
    stations: Vec<JacksonStation>,
    /// External Poisson arrival rate into each station.
    external: Vec<f64>,
    /// `routing[i][j]` = probability a job leaving i goes to j (row sums
    /// ≤ 1; the remainder leaves the network).
    routing: Vec<Vec<f64>>,
}

/// Per-station analysis results.
#[derive(Debug, Clone)]
pub struct JacksonReport {
    /// Effective arrival rate λᵢ (traffic equation solution).
    pub lambda: Vec<f64>,
    /// Utilization ρᵢ = λᵢ/(cᵢ·μᵢ).
    pub rho: Vec<f64>,
    /// Mean number in system Lᵢ (M/M/c formula).
    pub mean_in_system: Vec<f64>,
    /// `false` if any station is overloaded (ρ ≥ 1): the product-form
    /// solution does not exist and the numbers are saturation bounds.
    pub stable: bool,
}

impl JacksonNetwork {
    /// Empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a station; returns its index.
    pub fn add_station(&mut self, name: impl Into<String>, mu: f64, servers: u32) -> usize {
        assert!(mu > 0.0 && servers >= 1);
        self.stations.push(JacksonStation {
            name: name.into(),
            mu,
            servers,
        });
        self.external.push(0.0);
        for row in &mut self.routing {
            row.push(0.0);
        }
        self.routing.push(vec![0.0; self.stations.len()]);
        self.stations.len() - 1
    }

    /// Set the external arrival rate into station `i`.
    pub fn set_external(&mut self, i: usize, rate: f64) {
        assert!(rate >= 0.0);
        self.external[i] = rate;
    }

    /// Set the routing probability from `i` to `j`.
    pub fn set_route(&mut self, i: usize, j: usize, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        self.routing[i][j] = p;
        let row_sum: f64 = self.routing[i].iter().sum();
        assert!(
            row_sum <= 1.0 + 1e-9,
            "routing probabilities out of station {i} exceed 1 ({row_sum})"
        );
    }

    /// Solve the traffic equations λ = γ + λP by fixed-point iteration
    /// (a substochastic routing matrix guarantees convergence).
    fn traffic(&self) -> Vec<f64> {
        let n = self.stations.len();
        let mut lambda = self.external.clone();
        for _ in 0..10_000 {
            let mut next = self.external.clone();
            for (j, nj) in next.iter_mut().enumerate().take(n) {
                for (i, &li) in lambda.iter().enumerate() {
                    *nj += li * self.routing[i][j];
                }
            }
            let delta: f64 = lambda.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            lambda = next;
            if delta < 1e-12 {
                break;
            }
        }
        lambda
    }

    /// Analyze the network.
    pub fn analyze(&self) -> JacksonReport {
        assert!(!self.stations.is_empty(), "empty network");
        let lambda = self.traffic();
        let mut rho = Vec::with_capacity(self.stations.len());
        let mut mean = Vec::with_capacity(self.stations.len());
        let mut stable = true;
        for (s, &l) in self.stations.iter().zip(&lambda) {
            let c = s.servers as f64;
            let r = l / (c * s.mu);
            rho.push(r);
            if r >= 1.0 {
                stable = false;
                mean.push(f64::INFINITY);
                continue;
            }
            mean.push(mmc_mean_in_system(l, s.mu, s.servers));
        }
        JacksonReport {
            lambda,
            rho,
            mean_in_system: mean,
            stable,
        }
    }

    /// Recommend a buffer capacity per station: the smallest K with
    /// M/M/1/K-style blocking below `target` at each station's effective
    /// load (aggregate service rate folded into a single-server
    /// equivalent) — the per-queue-in-isolation sizing the paper sketches.
    pub fn size_buffers(&self, target_blocking: f64, max_cap: usize) -> Vec<usize> {
        let report = self.analyze();
        self.stations
            .iter()
            .zip(&report.lambda)
            .map(|(s, &l)| {
                let mu_total = s.mu * s.servers as f64;
                if l <= 0.0 {
                    1
                } else {
                    crate::sizing::analytic_mm1k(l, mu_total, target_blocking, max_cap)
                }
            })
            .collect()
    }
}

/// Mean number in system for M/M/c (Erlang-C based).
fn mmc_mean_in_system(lambda: f64, mu: f64, c: u32) -> f64 {
    let c_f = c as f64;
    let a = lambda / mu; // offered load in Erlangs
    let rho = a / c_f;
    // Erlang C: probability of waiting.
    let mut sum = 0.0;
    let mut term = 1.0; // a^k / k!
    for k in 0..c {
        if k > 0 {
            term *= a / k as f64;
        }
        sum += term;
    }
    let term_c = term * a / c_f; // a^c / c!
    let erlang_c = (term_c / (1.0 - rho)) / (sum + term_c / (1.0 - rho));
    // Lq + a
    erlang_c * rho / (1.0 - rho) + a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::MM1;

    #[test]
    fn single_station_reduces_to_mm1() {
        let mut net = JacksonNetwork::new();
        let s = net.add_station("only", 10.0, 1);
        net.set_external(s, 6.0);
        let rep = net.analyze();
        assert!(rep.stable);
        assert!((rep.lambda[0] - 6.0).abs() < 1e-9);
        let mm1 = MM1::new(6.0, 10.0);
        assert!((rep.mean_in_system[0] - mm1.mean_in_system()).abs() < 1e-9);
    }

    #[test]
    fn tandem_traffic_equations() {
        // γ -> A -> B -> out : both see λ = γ
        let mut net = JacksonNetwork::new();
        let a = net.add_station("a", 10.0, 1);
        let b = net.add_station("b", 12.0, 1);
        net.set_external(a, 5.0);
        net.set_route(a, b, 1.0);
        let rep = net.analyze();
        assert!((rep.lambda[a] - 5.0).abs() < 1e-9);
        assert!((rep.lambda[b] - 5.0).abs() < 1e-9);
        assert!((rep.rho[a] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn feedback_loop_amplifies_traffic() {
        // A job leaving A returns to A with p=0.5: λ = γ/(1-0.5) = 2γ.
        let mut net = JacksonNetwork::new();
        let a = net.add_station("a", 20.0, 1);
        net.set_external(a, 4.0);
        net.set_route(a, a, 0.5);
        let rep = net.analyze();
        assert!((rep.lambda[a] - 8.0).abs() < 1e-6, "{:?}", rep.lambda);
    }

    #[test]
    fn probabilistic_split() {
        // A routes 30% to B, 70% leaves.
        let mut net = JacksonNetwork::new();
        let a = net.add_station("a", 50.0, 1);
        let b = net.add_station("b", 50.0, 1);
        net.set_external(a, 10.0);
        net.set_route(a, b, 0.3);
        let rep = net.analyze();
        assert!((rep.lambda[b] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn multi_server_station_erlang_c() {
        // M/M/2 with a=1 (rho=0.5): L = Lq + a; Erlang C for c=2,a=1 is 1/3,
        // Lq = C·rho/(1-rho) = (1/3)(0.5/0.5) = 1/3; L = 4/3.
        let mut net = JacksonNetwork::new();
        let s = net.add_station("s", 10.0, 2);
        net.set_external(s, 10.0);
        let rep = net.analyze();
        assert!(
            (rep.mean_in_system[0] - 4.0 / 3.0).abs() < 1e-9,
            "{}",
            rep.mean_in_system[0]
        );
    }

    #[test]
    fn overloaded_station_flagged() {
        let mut net = JacksonNetwork::new();
        let s = net.add_station("s", 5.0, 1);
        net.set_external(s, 10.0);
        let rep = net.analyze();
        assert!(!rep.stable);
        assert!(rep.mean_in_system[0].is_infinite());
    }

    #[test]
    fn buffer_sizing_tracks_utilization() {
        let mut net = JacksonNetwork::new();
        let light = net.add_station("light", 100.0, 1);
        let heavy = net.add_station("heavy", 11.0, 1);
        net.set_external(light, 10.0);
        net.set_route(light, heavy, 1.0);
        let sizes = net.size_buffers(1e-4, 1 << 16);
        assert!(
            sizes[heavy] > sizes[light],
            "hot station needs more buffer: {sizes:?}"
        );
    }

    #[test]
    fn jackson_matches_des_on_tandem() {
        use crate::des::{simulate, Network, ServiceDist, Station};
        let mut net = JacksonNetwork::new();
        let a = net.add_station("a", 12.0, 1);
        let b = net.add_station("b", 15.0, 1);
        net.set_external(a, 8.0);
        net.set_route(a, b, 1.0);
        let rep = net.analyze();

        let sim_net = Network {
            stations: vec![
                Station {
                    name: "a".into(),
                    service: ServiceDist::Exp(12.0),
                    servers: 1,
                    buffer: usize::MAX,
                    next: Some(1),
                },
                Station {
                    name: "b".into(),
                    service: ServiceDist::Exp(15.0),
                    servers: 1,
                    buffer: usize::MAX,
                    next: None,
                },
            ],
            arrival_rate: 8.0,
        };
        let sim = simulate(&sim_net, 20_000.0, 21);
        for i in 0..2 {
            let rel = (rep.mean_in_system[i] - sim.mean_in_system[i]).abs() / rep.mean_in_system[i];
            assert!(
                rel < 0.08,
                "station {i}: jackson {} vs sim {}",
                rep.mean_in_system[i],
                sim.mean_in_system[i]
            );
        }
    }
}
