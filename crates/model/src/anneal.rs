//! Simulated annealing over integer parameter vectors.
//!
//! §4 of the paper: "The flow-model approximation procedure can be combined
//! with well known optimization techniques such as simulated annealing or
//! analytic decomposition \[38,39,40\] to continually optimize long-running
//! high throughput streaming applications." This module provides that
//! search: parameters are integers (replica counts, buffer-size exponents),
//! the cost function is typically a [`crate::flow::FlowGraph`] analysis or
//! a calibration run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One tunable dimension: an inclusive integer range.
#[derive(Debug, Clone, Copy)]
pub struct ParamRange {
    /// Smallest admissible value.
    pub lo: i64,
    /// Largest admissible value.
    pub hi: i64,
}

impl ParamRange {
    /// Construct; panics if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi);
        ParamRange { lo, hi }
    }

    fn clamp(&self, v: i64) -> i64 {
        v.clamp(self.lo, self.hi)
    }

    fn width(&self) -> i64 {
        self.hi - self.lo
    }
}

/// Annealing configuration.
#[derive(Debug, Clone, Copy)]
pub struct AnnealConfig {
    /// Starting temperature, in cost units.
    pub t0: f64,
    /// Multiplicative cooling factor per iteration (0 < alpha < 1).
    pub alpha: f64,
    /// Total iterations.
    pub iters: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            t0: 1.0,
            alpha: 0.995,
            iters: 2000,
            seed: 42,
        }
    }
}

/// Result of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult {
    /// Best parameter vector found.
    pub best: Vec<i64>,
    /// Its cost.
    pub best_cost: f64,
    /// Cost evaluations performed.
    pub evaluations: usize,
    /// Accepted moves (diagnostics: too low → t0 too small).
    pub accepted: usize,
}

/// Minimize `cost` over the box defined by `ranges`, starting from `init`
/// (clamped into range). Lower cost is better.
pub fn minimize(
    ranges: &[ParamRange],
    init: &[i64],
    cfg: AnnealConfig,
    mut cost: impl FnMut(&[i64]) -> f64,
) -> AnnealResult {
    assert_eq!(ranges.len(), init.len(), "dimension mismatch");
    assert!(!ranges.is_empty(), "need at least one parameter");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut cur: Vec<i64> = init.iter().zip(ranges).map(|(&v, r)| r.clamp(v)).collect();
    let mut cur_cost = cost(&cur);
    let mut best = cur.clone();
    let mut best_cost = cur_cost;
    let mut evaluations = 1usize;
    let mut accepted = 0usize;
    let mut temp = cfg.t0;

    for _ in 0..cfg.iters {
        // Propose: perturb one random dimension by a step scaled to both
        // the range width and the current temperature fraction.
        let d = rng.gen_range(0..ranges.len());
        let frac = (temp / cfg.t0).max(0.02);
        let span = ((ranges[d].width() as f64 * frac).ceil() as i64).max(1);
        let step = rng.gen_range(-span..=span);
        if step == 0 {
            temp *= cfg.alpha;
            continue;
        }
        let mut cand = cur.clone();
        cand[d] = ranges[d].clamp(cand[d] + step);
        if cand[d] == cur[d] {
            temp *= cfg.alpha;
            continue;
        }
        let c = cost(&cand);
        evaluations += 1;
        let accept = c <= cur_cost || {
            let p = ((cur_cost - c) / temp.max(1e-12)).exp();
            rng.gen::<f64>() < p
        };
        if accept {
            cur = cand;
            cur_cost = c;
            accepted += 1;
            if c < best_cost {
                best_cost = c;
                best = cur.clone();
            }
        }
        temp *= cfg.alpha;
    }

    AnnealResult {
        best,
        best_cost,
        evaluations,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_quadratic_minimum() {
        let ranges = vec![ParamRange::new(-100, 100), ParamRange::new(-100, 100)];
        let r = minimize(&ranges, &[90, -90], AnnealConfig::default(), |p| {
            let x = (p[0] - 7) as f64;
            let y = (p[1] + 13) as f64;
            x * x + y * y
        });
        assert!(r.best_cost <= 4.0, "cost {} at {:?}", r.best_cost, r.best);
        assert!((r.best[0] - 7).abs() <= 2);
        assert!((r.best[1] + 13).abs() <= 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let ranges = vec![ParamRange::new(0, 1000)];
        let run = || {
            minimize(&ranges, &[500], AnnealConfig::default(), |p| {
                ((p[0] - 321) as f64).abs()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.best, b.best);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn escapes_local_minimum() {
        // Double well: local min at x=10 (cost 5), global at x=90 (cost 0).
        let ranges = vec![ParamRange::new(0, 100)];
        let cost = |p: &[i64]| {
            let x = p[0] as f64;
            let a = (x - 10.0).abs() + 5.0;
            let b = (x - 90.0).abs();
            a.min(b)
        };
        let cfg = AnnealConfig {
            t0: 30.0,
            alpha: 0.999,
            iters: 5000,
            seed: 7,
        };
        let r = minimize(&ranges, &[10], cfg, cost);
        assert!(r.best_cost < 5.0, "stuck in local minimum: {:?}", r.best);
    }

    #[test]
    fn respects_bounds() {
        let ranges = vec![ParamRange::new(3, 9)];
        let r = minimize(&ranges, &[100], AnnealConfig::default(), |p| -(p[0] as f64));
        assert_eq!(r.best[0], 9); // pushed to the upper bound, not past
    }

    #[test]
    fn clamps_init_into_range() {
        let ranges = vec![ParamRange::new(0, 10)];
        let r = minimize(&ranges, &[-50], AnnealConfig::default(), |p| p[0] as f64);
        assert!(r.best[0] >= 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        minimize(
            &[ParamRange::new(0, 1)],
            &[0, 0],
            AnnealConfig::default(),
            |_| 0.0,
        );
    }

    /// End-to-end with the flow model: anneal replica counts to maximize
    /// throughput under a core budget — the paper's intended usage.
    #[test]
    fn anneals_replicas_against_flow_model() {
        use crate::flow::{FlowGraph, FlowKernel};
        let build = |w_search: i64, w_agg: i64| {
            let mut g = FlowGraph::new();
            let src = g.add_kernel(FlowKernel::new("reader", f64::INFINITY, 1.0));
            let search =
                g.add_kernel(FlowKernel::new("search", 100.0, 1.0).with_replicas(w_search as u32));
            let agg = g.add_kernel(FlowKernel::new("agg", 250.0, 1.0).with_replicas(w_agg as u32));
            g.add_edge(src, search);
            g.add_edge(search, agg);
            g.set_source_rate(src, 1000.0);
            g.analyze().throughput
        };
        const BUDGET: i64 = 12;
        let ranges = vec![ParamRange::new(1, 12), ParamRange::new(1, 12)];
        let r = minimize(&ranges, &[1, 1], AnnealConfig::default(), |p| {
            if p[0] + p[1] > BUDGET {
                return 1e12; // infeasible: over core budget
            }
            -build(p[0], p[1]) // maximize throughput
        });
        // Optimum: search needs ~8 replicas (800/s), agg 4 (1000/s capacity)
        // → throughput 800; anything ≥ 750 is a good solution.
        assert!(
            -r.best_cost >= 750.0,
            "throughput {} with {:?}",
            -r.best_cost,
            r.best
        );
        assert!(r.best[0] + r.best[1] <= BUDGET);
    }
}
