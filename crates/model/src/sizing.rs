//! Buffer-capacity selection.
//!
//! §4 of the paper: "two options are available for determining how large of
//! a buffer to allocate: branch and bound search or analytic modeling."
//! Both are implemented here.
//!
//! * [`branch_and_bound`] — search over power-of-two capacities against a
//!   black-box cost function (wall-clock time of a calibration run, or a
//!   simulated estimate), pruning ranges whose best possible cost exceeds
//!   the incumbent;
//! * [`analytic_mm1k`] — invert the M/M/1/K blocking probability: the
//!   smallest K whose blocking probability is below a target (the paper's
//!   product-form, per-queue-in-isolation condition);
//! * [`cap_infinite`] — the paper's "simple engineering solution ... in the
//!   form of a buffer cap" for queues that would grow without bound.

use crate::queues::MM1K;

/// Outcome of a buffer-size search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingResult {
    /// Chosen capacity (elements).
    pub capacity: usize,
    /// Cost of the chosen capacity as reported by the objective.
    pub cost: f64,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
}

/// Branch-and-bound over power-of-two capacities in `[min_cap, max_cap]`.
///
/// `objective(capacity)` returns a cost (lower = better), e.g. measured
/// execution time. The search first brackets the minimum with a coarse
/// geometric sweep, then bisects the bracket. Monotone-ish bowl-shaped
/// costs (Figure 4's shape: too-small slow, too-big slow again) converge in
/// O(log²) evaluations.
pub fn branch_and_bound(
    min_cap: usize,
    max_cap: usize,
    mut objective: impl FnMut(usize) -> f64,
) -> SizingResult {
    assert!(min_cap >= 1 && max_cap >= min_cap);
    let lo = min_cap.next_power_of_two();
    let hi = max_cap.next_power_of_two();
    // Coarse sweep over powers of two.
    let mut caps: Vec<usize> = std::iter::successors(Some(lo), |c| {
        let n = c * 2;
        (n <= hi).then_some(n)
    })
    .collect();
    if caps.is_empty() {
        caps.push(lo);
    }
    let mut evals = 0usize;
    let costs: Vec<f64> = caps
        .iter()
        .map(|&c| {
            evals += 1;
            objective(c)
        })
        .collect();
    let (best_i, mut best_cost) = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, &c)| (i, c))
        .unwrap();
    let mut best_cap = caps[best_i];

    // Bound: refine between the best point and its better neighbour by
    // probing geometric midpoints (capacities stay powers of two after
    // rounding, so at most a few extra evaluations).
    let neighbours = [best_i.wrapping_sub(1), best_i + 1];
    for &ni in &neighbours {
        if ni >= caps.len() {
            continue;
        }
        // Prune: if the neighbour is much worse than the incumbent, the
        // true minimum cannot hide between (bowl-shape bound).
        if costs[ni] > best_cost * 2.0 {
            continue;
        }
        let (a, b) = (caps[best_i.min(ni)], caps[best_i.max(ni)]);
        let mid = ((a as f64 * b as f64).sqrt()) as usize;
        let mid = mid.clamp(a, b);
        if mid != a && mid != b {
            evals += 1;
            let c = objective(mid);
            if c < best_cost {
                best_cost = c;
                best_cap = mid;
            }
        }
    }
    SizingResult {
        capacity: best_cap,
        cost: best_cost,
        evaluations: evals,
    }
}

/// Analytic sizing: smallest capacity K (within `[1, max_cap]`) such that
/// an M/M/1/K queue with the given arrival/service rates blocks with
/// probability ≤ `target_blocking`. Returns `max_cap` if unreachable
/// (overloaded queue — the paper's buffer-cap case).
pub fn analytic_mm1k(lambda: f64, mu: f64, target_blocking: f64, max_cap: usize) -> usize {
    assert!(target_blocking > 0.0 && target_blocking < 1.0);
    let max_k = max_cap.max(1) as u32;
    // Blocking probability is monotone decreasing in K: binary search.
    let blocks = |k: u32| MM1K::new(lambda, mu, k).blocking_probability();
    if blocks(max_k) > target_blocking {
        return max_cap; // cap an effectively-infinite demand
    }
    let (mut lo, mut hi) = (1u32, max_k);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if blocks(mid) <= target_blocking {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo as usize
}

/// The paper's buffer cap: clamp a requested capacity to a configured
/// ceiling, in elements, derived from a byte budget.
pub fn cap_infinite(requested: usize, byte_budget: usize, elem_size: usize) -> usize {
    let max_elems = (byte_budget / elem_size.max(1)).max(1);
    requested.min(max_elems)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic bowl-shaped cost like Figure 4: slow for tiny buffers
    /// (blocking), slowly rising for huge ones (cache/paging).
    fn fig4_cost(cap: usize) -> f64 {
        let c = cap as f64;
        200.0 / c + 0.0005 * c + 10.0
    }

    #[test]
    fn bnb_finds_the_bowl_minimum() {
        let r = branch_and_bound(1, 1 << 20, fig4_cost);
        // true continuous minimum at sqrt(200/0.0005) ≈ 632; accept the
        // nearest power-of-two-ish neighbourhood
        assert!(
            (256..=2048).contains(&r.capacity),
            "chose {} (cost {})",
            r.capacity,
            r.cost
        );
        // never more than the coarse sweep + a couple refinements
        assert!(r.evaluations <= 25);
    }

    #[test]
    fn bnb_monotone_decreasing_picks_max() {
        let r = branch_and_bound(1, 1024, |c| 1000.0 / c as f64);
        assert_eq!(r.capacity, 1024);
    }

    #[test]
    fn bnb_monotone_increasing_picks_min() {
        let r = branch_and_bound(4, 1024, |c| c as f64);
        assert_eq!(r.capacity, 4);
    }

    #[test]
    fn bnb_single_point_range() {
        let r = branch_and_bound(8, 8, |c| c as f64);
        assert_eq!(r.capacity, 8);
        assert_eq!(r.evaluations, 1);
    }

    #[test]
    fn analytic_sizing_monotone_in_target() {
        let strict = analytic_mm1k(8.0, 10.0, 1e-6, 1 << 20);
        let loose = analytic_mm1k(8.0, 10.0, 1e-2, 1 << 20);
        assert!(strict > loose, "stricter target needs more buffer");
        // verify the chosen K actually meets the target
        assert!(MM1K::new(8.0, 10.0, strict as u32).blocking_probability() <= 1e-6);
        // and K-1 does not (minimality)
        assert!(MM1K::new(8.0, 10.0, strict as u32 - 1).blocking_probability() > 1e-6);
    }

    #[test]
    fn analytic_sizing_overloaded_hits_cap() {
        // rho > 1: no finite buffer reaches small blocking; expect the cap
        let k = analytic_mm1k(20.0, 10.0, 1e-3, 4096);
        assert_eq!(k, 4096);
    }

    #[test]
    fn analytic_sizing_light_load_tiny_buffer() {
        let k = analytic_mm1k(1.0, 100.0, 1e-3, 1 << 20);
        assert!(k <= 4, "light load should need a tiny buffer, got {k}");
    }

    #[test]
    fn cap_infinite_clamps() {
        assert_eq!(cap_infinite(usize::MAX, 1 << 20, 1024), 1024);
        assert_eq!(cap_infinite(100, 1 << 20, 1024), 100);
        assert_eq!(cap_infinite(100, 0, 1024), 1); // degenerate budget
    }
}
