//! Flow model of a streaming DAG.
//!
//! Beard & Chamberlain ("Analysis of a simple approach to modeling
//! performance for streaming data applications", MASCOTS'13 — reference \[8\]
//! of the paper) estimate whole-application throughput by propagating rates
//! along the dataflow graph: each kernel forwards
//! `min(arrival rate, service capacity) × selectivity` items per second, and
//! the application's steady-state throughput is what arrives at the sinks.
//!
//! RaftLib uses this model (combined with search, §4.1) to drive replication
//! and buffer decisions during execution; here it also generates the
//! *modeled* series of the Figure 10 reproduction from measured single-core
//! service rates.

use std::collections::VecDeque;

/// One kernel in the flow graph.
#[derive(Debug, Clone)]
pub struct FlowKernel {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Items/second one replica can service. `f64::INFINITY` for
    /// effectively-free kernels (zero-copy sources, trivial sinks).
    pub service_rate: f64,
    /// Output items produced per input item consumed (text search: matches
    /// per byte ≪ 1; a splitter >1). Sources use `selectivity` as their
    /// absolute offered rate multiplier and should set it to 1.
    pub selectivity: f64,
    /// Number of parallel replicas (≥ 1).
    pub replicas: u32,
}

impl FlowKernel {
    /// Convenience constructor with one replica.
    pub fn new(name: impl Into<String>, service_rate: f64, selectivity: f64) -> Self {
        FlowKernel {
            name: name.into(),
            service_rate,
            selectivity,
            replicas: 1,
        }
    }

    /// Builder: set the replica count.
    pub fn with_replicas(mut self, replicas: u32) -> Self {
        self.replicas = replicas.max(1);
        self
    }

    /// Aggregate service capacity of all replicas.
    pub fn capacity(&self) -> f64 {
        self.service_rate * self.replicas as f64
    }
}

/// A streaming application graph for flow analysis.
#[derive(Debug, Clone, Default)]
pub struct FlowGraph {
    kernels: Vec<FlowKernel>,
    /// Edges as (src, dst) kernel indices.
    edges: Vec<(usize, usize)>,
    /// Offered (source) rate for kernels with no inbound edges.
    source_rates: Vec<Option<f64>>,
}

/// Result of a flow analysis.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Departure rate of every kernel (items/sec leaving it).
    pub departure: Vec<f64>,
    /// Utilization of every kernel: arrival rate / aggregate capacity.
    pub utilization: Vec<f64>,
    /// Sum of departure rates at sink kernels — the application throughput.
    pub throughput: f64,
    /// Index of the kernel with the highest utilization (the bottleneck).
    pub bottleneck: Option<usize>,
}

impl FlowGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a kernel, returning its index.
    pub fn add_kernel(&mut self, k: FlowKernel) -> usize {
        self.kernels.push(k);
        self.source_rates.push(None);
        self.kernels.len() - 1
    }

    /// Connect kernel `src` to kernel `dst`.
    pub fn add_edge(&mut self, src: usize, dst: usize) {
        assert!(src < self.kernels.len() && dst < self.kernels.len());
        self.edges.push((src, dst));
    }

    /// Declare the offered input rate of a source kernel (items/sec
    /// available to it, e.g. bytes/sec a file reader can deliver).
    pub fn set_source_rate(&mut self, kernel: usize, rate: f64) {
        self.source_rates[kernel] = Some(rate);
    }

    /// Kernel accessor (used when adjusting replicas between analyses).
    pub fn kernel_mut(&mut self, i: usize) -> &mut FlowKernel {
        &mut self.kernels[i]
    }

    /// Number of kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// `true` if the graph has no kernels.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Topological order; `None` if the graph has a cycle (flow analysis
    /// requires a DAG).
    fn topo_order(&self) -> Option<Vec<usize>> {
        let n = self.kernels.len();
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(s, d) in &self.edges {
            indeg[d] += 1;
            adj[s].push(d);
        }
        let mut q: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = q.pop_front() {
            order.push(u);
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    q.push_back(v);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Run the flow analysis. Panics on cyclic graphs.
    ///
    /// Arrival rate of a kernel = Σ departures of its predecessors (split
    /// edges from one kernel share its departure equally among successors).
    /// Departure = min(arrival, capacity) × selectivity. Sources use their
    /// declared offered rate as arrival.
    pub fn analyze(&self) -> FlowReport {
        let order = self.topo_order().expect("flow graph must be a DAG");
        let n = self.kernels.len();
        let mut out_count = vec![0usize; n];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(s, d) in &self.edges {
            out_count[s] += 1;
            preds[d].push(s);
        }
        let mut arrival = vec![0.0f64; n];
        let mut departure = vec![0.0f64; n];
        let mut utilization = vec![0.0f64; n];
        for &u in &order {
            let k = &self.kernels[u];
            let arr = if preds[u].is_empty() {
                self.source_rates[u].unwrap_or(f64::INFINITY)
            } else {
                preds[u]
                    .iter()
                    .map(|&p| departure[p] / out_count[p] as f64)
                    .sum()
            };
            arrival[u] = arr;
            let cap = k.capacity();
            let served = arr.min(cap);
            departure[u] = served * k.selectivity;
            utilization[u] = if cap.is_infinite() {
                0.0
            } else if cap == 0.0 {
                f64::INFINITY
            } else {
                arr / cap
            };
        }
        let throughput = (0..n)
            .filter(|&i| out_count[i] == 0)
            .map(|i| departure[i])
            .sum();
        let bottleneck = utilization
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_finite())
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i);
        FlowReport {
            departure,
            utilization,
            throughput,
            bottleneck,
        }
    }

    /// Throughput if kernel `k` ran with `replicas` copies — the "what-if"
    /// the runtime's auto-parallelizer asks before widening a kernel.
    pub fn throughput_with_replicas(&self, k: usize, replicas: u32) -> f64 {
        let mut g = self.clone();
        g.kernel_mut(k).replicas = replicas.max(1);
        g.analyze().throughput
    }

    /// Smallest replica count for kernel `k` (up to `max`) that stops it
    /// being the bottleneck, or `max` if it always is.
    pub fn replicas_to_unbottleneck(&self, k: usize, max: u32) -> u32 {
        for w in 1..=max {
            let mut g = self.clone();
            g.kernel_mut(k).replicas = w;
            let rep = g.analyze();
            if rep.bottleneck != Some(k) || rep.utilization[k] <= 1.0 {
                return w;
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// source(1000/s) -> work(500/s) -> sink(fast): throughput 500.
    #[test]
    fn simple_pipeline_bottleneck() {
        let mut g = FlowGraph::new();
        let src = g.add_kernel(FlowKernel::new("src", f64::INFINITY, 1.0));
        let work = g.add_kernel(FlowKernel::new("work", 500.0, 1.0));
        let sink = g.add_kernel(FlowKernel::new("sink", f64::INFINITY, 1.0));
        g.add_edge(src, work);
        g.add_edge(work, sink);
        g.set_source_rate(src, 1000.0);
        let rep = g.analyze();
        assert!((rep.throughput - 500.0).abs() < 1e-9);
        assert_eq!(rep.bottleneck, Some(work));
        assert!((rep.utilization[work] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn replication_removes_bottleneck() {
        let mut g = FlowGraph::new();
        let src = g.add_kernel(FlowKernel::new("src", f64::INFINITY, 1.0));
        let work = g.add_kernel(FlowKernel::new("work", 500.0, 1.0));
        let sink = g.add_kernel(FlowKernel::new("sink", f64::INFINITY, 1.0));
        g.add_edge(src, work);
        g.add_edge(work, sink);
        g.set_source_rate(src, 1000.0);
        assert!((g.throughput_with_replicas(work, 2) - 1000.0).abs() < 1e-9);
        assert_eq!(g.replicas_to_unbottleneck(work, 8), 2);
    }

    #[test]
    fn selectivity_scales_downstream_rate() {
        // search kernel: 1e6 bytes/s in, 1e-3 matches per byte out
        let mut g = FlowGraph::new();
        let src = g.add_kernel(FlowKernel::new("reader", f64::INFINITY, 1.0));
        let search = g.add_kernel(FlowKernel::new("search", 2e6, 1e-3));
        let sink = g.add_kernel(FlowKernel::new("collect", 5000.0, 1.0));
        g.add_edge(src, search);
        g.add_edge(search, sink);
        g.set_source_rate(src, 1e6);
        let rep = g.analyze();
        // 1e6 bytes/s * 1e-3 = 1000 matches/s, sink can take 5000/s
        assert!((rep.throughput - 1000.0).abs() < 1e-6);
        // sink is NOT the bottleneck
        assert_ne!(rep.bottleneck, Some(sink));
    }

    #[test]
    fn fan_out_splits_rate_evenly() {
        let mut g = FlowGraph::new();
        let src = g.add_kernel(FlowKernel::new("src", f64::INFINITY, 1.0));
        let a = g.add_kernel(FlowKernel::new("a", 100.0, 1.0));
        let b = g.add_kernel(FlowKernel::new("b", 100.0, 1.0));
        g.add_edge(src, a);
        g.add_edge(src, b);
        g.set_source_rate(src, 150.0);
        let rep = g.analyze();
        // each branch receives 75 <= 100: both pass through
        assert!((rep.throughput - 150.0).abs() < 1e-9);
        assert!((rep.utilization[a] - 0.75).abs() < 1e-9);
        assert!((rep.utilization[b] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn fan_in_sums_rates() {
        let mut g = FlowGraph::new();
        let a = g.add_kernel(FlowKernel::new("a", f64::INFINITY, 1.0));
        let b = g.add_kernel(FlowKernel::new("b", f64::INFINITY, 1.0));
        let sum = g.add_kernel(FlowKernel::new("sum", 500.0, 1.0));
        g.add_edge(a, sum);
        g.add_edge(b, sum);
        g.set_source_rate(a, 100.0);
        g.set_source_rate(b, 150.0);
        let rep = g.analyze();
        assert!((rep.throughput - 250.0).abs() < 1e-9);
        assert!((rep.utilization[sum] - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "DAG")]
    fn cycle_panics() {
        let mut g = FlowGraph::new();
        let a = g.add_kernel(FlowKernel::new("a", 1.0, 1.0));
        let b = g.add_kernel(FlowKernel::new("b", 1.0, 1.0));
        g.add_edge(a, b);
        g.add_edge(b, a);
        g.analyze();
    }

    #[test]
    fn diamond_topology() {
        // src -> {left, right} -> join
        let mut g = FlowGraph::new();
        let src = g.add_kernel(FlowKernel::new("src", f64::INFINITY, 1.0));
        let l = g.add_kernel(FlowKernel::new("l", 60.0, 1.0));
        let r = g.add_kernel(FlowKernel::new("r", 200.0, 1.0));
        let join = g.add_kernel(FlowKernel::new("join", f64::INFINITY, 1.0));
        g.add_edge(src, l);
        g.add_edge(src, r);
        g.add_edge(l, join);
        g.add_edge(r, join);
        g.set_source_rate(src, 200.0);
        let rep = g.analyze();
        // left branch limited to 60, right passes 100: join receives 160
        assert!((rep.throughput - 160.0).abs() < 1e-9);
        assert_eq!(rep.bottleneck, Some(l));
    }
}
