//! Property tests over the analytic models: invariants that must hold for
//! any parameters, not just the textbook examples.

use proptest::prelude::*;
use raft_model::anneal::{minimize, AnnealConfig, ParamRange};
use raft_model::flow::{FlowGraph, FlowKernel};
use raft_model::queues::{MD1, MM1, MM1K};
use raft_model::sizing::analytic_mm1k;
use raft_model::SystemModel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// M/M/1/K state probabilities always form a distribution.
    #[test]
    fn mm1k_distribution_normalized(
        lambda in 0.1f64..50.0,
        mu in 0.1f64..50.0,
        k in 1u32..64,
    ) {
        let q = MM1K::new(lambda, mu, k);
        let total: f64 = (0..=k).map(|n| q.p_n(n)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum {total}");
        // every probability in [0, 1]
        for n in 0..=k {
            let p = q.p_n(n);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        }
    }

    /// Blocking probability decreases monotonically with buffer size.
    #[test]
    fn mm1k_blocking_monotone(lambda in 0.1f64..20.0, mu in 0.1f64..20.0) {
        let mut last = f64::INFINITY;
        for k in [1u32, 2, 4, 8, 16, 32] {
            let b = MM1K::new(lambda, mu, k).blocking_probability();
            prop_assert!(b <= last + 1e-12, "k={k}: {b} > {last}");
            last = b;
        }
    }

    /// Throughput never exceeds either offered load or service capacity.
    #[test]
    fn mm1k_throughput_bounded(
        lambda in 0.1f64..50.0,
        mu in 0.1f64..50.0,
        k in 1u32..32,
    ) {
        let q = MM1K::new(lambda, mu, k);
        let t = q.throughput();
        prop_assert!(t <= lambda + 1e-9);
        prop_assert!(t <= mu + 1e-9);
        prop_assert!(t >= 0.0);
    }

    /// For stable queues, M/D/1 always queues no more than M/M/1.
    #[test]
    fn md1_never_worse_than_mm1(mu in 1.0f64..50.0, rho in 0.05f64..0.95) {
        let lambda = rho * mu;
        let md1 = MD1::new(lambda, mu).mean_queue_len();
        let mm1 = MM1::new(lambda, mu).mean_queue_len();
        prop_assert!(md1 <= mm1 + 1e-9);
    }

    /// The analytic buffer size always meets its blocking target, and is
    /// minimal (one slot less violates the target).
    #[test]
    fn analytic_sizing_meets_target_minimally(
        mu in 1.0f64..40.0,
        rho in 0.05f64..0.98,
        exp in 1u32..5,
    ) {
        let lambda = rho * mu;
        let target = 10f64.powi(-(exp as i32));
        let k = analytic_mm1k(lambda, mu, target, 1 << 20);
        prop_assert!(k >= 1);
        if k < 1 << 20 {
            let b = MM1K::new(lambda, mu, k as u32).blocking_probability();
            prop_assert!(b <= target + 1e-12, "k={k} blocks {b} > {target}");
            if k > 1 {
                let b1 = MM1K::new(lambda, mu, k as u32 - 1).blocking_probability();
                prop_assert!(b1 > target, "k-1={} already meets target", k - 1);
            }
        }
    }

    /// Flow-model throughput is bounded by the source rate and by every
    /// saturated kernel's capacity, and replicas never reduce throughput.
    #[test]
    fn flow_model_bounds(
        source in 1.0f64..1000.0,
        mu in 1.0f64..1000.0,
        w in 1u32..8,
    ) {
        let mut g = FlowGraph::new();
        let src = g.add_kernel(FlowKernel::new("src", f64::INFINITY, 1.0));
        let work = g.add_kernel(FlowKernel::new("work", mu, 1.0).with_replicas(w));
        let sink = g.add_kernel(FlowKernel::new("sink", f64::INFINITY, 1.0));
        g.add_edge(src, work);
        g.add_edge(work, sink);
        g.set_source_rate(src, source);
        let t = g.analyze().throughput;
        prop_assert!(t <= source + 1e-9);
        prop_assert!(t <= mu * w as f64 + 1e-9);
        // exactly min(source, w*mu) in this linear pipeline
        prop_assert!((t - source.min(mu * w as f64)).abs() < 1e-6);
        // monotone in replicas
        let t_more = g.throughput_with_replicas(work, w + 1);
        prop_assert!(t_more + 1e-9 >= t);
    }

    /// The scaling model is exact at one core and never exceeds the
    /// memory-bandwidth cap.
    #[test]
    fn scaling_model_sane(
        rate in 0.05f64..10.0,
        serial in 0.0f64..0.9,
        overhead in 0.0f64..0.1,
        bw in 0.5f64..50.0,
    ) {
        let m = SystemModel {
            single_rate_gbps: rate,
            serial_frac: serial,
            per_worker_overhead: overhead,
            mem_bw_gbps: bw,
        };
        prop_assert!((m.throughput(1) - rate.min(bw)).abs() < 1e-9);
        for k in [2u32, 4, 8, 16] {
            let t = m.throughput(k);
            prop_assert!(t <= bw + 1e-12);
            prop_assert!(t > 0.0);
        }
    }

    /// Annealing never returns something worse than the clamped start.
    #[test]
    fn annealing_never_regresses(target in -50i64..50, start in -100i64..100) {
        let ranges = vec![ParamRange::new(-50, 50)];
        let cost = |p: &[i64]| ((p[0] - target) as f64).abs();
        let start_clamped = start.clamp(-50, 50);
        let init_cost = ((start_clamped - target) as f64).abs();
        let r = minimize(&ranges, &[start], AnnealConfig {
            iters: 300,
            ..Default::default()
        }, cost);
        prop_assert!(r.best_cost <= init_cost + 1e-9);
        prop_assert!((-50..=50).contains(&r.best[0]));
    }
}
