//! Loom model checks for the lock-free SPSC ring ([`raft_buffer::spsc`]).
//!
//! These tests only compile and run under the loom cfg:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p raft-buffer --test loom_spsc --release
//! ```
//!
//! Each `loom::model` body is executed once per interleaving the C11 memory
//! model allows for its threads, so models are kept tiny (capacity 1-2,
//! 2-3 operations) — that is enough to cover every acquire/release pair in
//! the head/tail protocol, the close/drain double-check, and slot reuse on
//! wraparound.
#![cfg(loom)]

use loom::thread;
use raft_buffer::spsc::BoundedSpsc;
use raft_buffer::{Signal, TryPopError, TryPushError};

#[test]
fn push_pop_all_interleavings_preserve_order() {
    loom::model(|| {
        let (mut p, mut c) = BoundedSpsc::new(2);
        let producer = thread::spawn(move || {
            p.try_push(1u32).unwrap();
            p.try_push(2u32).unwrap();
        });
        let mut got = Vec::new();
        while got.len() < 2 {
            match c.try_pop() {
                Ok(v) => got.push(v),
                Err(TryPopError::Empty) => thread::yield_now(),
                Err(TryPopError::Closed) => panic!("closed before both elements arrived"),
            }
        }
        assert_eq!(got, vec![1, 2]);
        producer.join().unwrap();
    });
}

#[test]
fn close_delivers_only_after_drain() {
    // Exercises the double-check in try_pop: a producer that pushes and
    // immediately disconnects must never make the consumer observe Closed
    // while an element is still in flight.
    loom::model(|| {
        let (mut p, mut c) = BoundedSpsc::new(2);
        let producer = thread::spawn(move || {
            p.try_push(7u32).unwrap();
            // Dropping the producer closes the stream.
        });
        let mut got = Vec::new();
        loop {
            match c.try_pop() {
                Ok(v) => got.push(v),
                Err(TryPopError::Empty) => thread::yield_now(),
                Err(TryPopError::Closed) => break,
            }
        }
        assert_eq!(got, vec![7]);
        producer.join().unwrap();
    });
}

#[test]
fn consumer_drop_rejects_push() {
    loom::model(|| {
        let (mut p, c) = BoundedSpsc::new(1);
        let closer = thread::spawn(move || drop(c));
        // Racing with the drop: success and Closed are both acceptable.
        match p.try_push(1u32) {
            Ok(()) | Err(TryPushError::Closed(_)) => {}
            Err(TryPushError::Full(_)) => panic!("ring cannot be full yet"),
        }
        closer.join().unwrap();
        // After join the close is visible (join is a synchronization edge):
        // every further push must be rejected, even into a non-full ring.
        assert!(matches!(
            p.try_push_signal(2u32, Signal::None),
            Err(TryPushError::Closed(_))
        ));
    });
}

#[test]
fn wraparound_reuses_slots_safely() {
    // Capacity 1 forces the second element to reuse the first slot while
    // both threads are live — the hardest path for the slot protocol.
    loom::model(|| {
        let (mut p, mut c) = BoundedSpsc::new(1);
        let producer = thread::spawn(move || {
            for i in 0..2u32 {
                let mut v = i;
                loop {
                    match p.try_push(v) {
                        Ok(()) => break,
                        Err(TryPushError::Full(back)) => {
                            v = back;
                            thread::yield_now();
                        }
                        Err(TryPushError::Closed(_)) => panic!("consumer gone"),
                    }
                }
            }
        });
        let mut got = Vec::new();
        while got.len() < 2 {
            match c.try_pop() {
                Ok(v) => got.push(v),
                Err(TryPopError::Empty) => thread::yield_now(),
                Err(TryPopError::Closed) => panic!("closed early"),
            }
        }
        assert_eq!(got, vec![0, 1]);
        producer.join().unwrap();
    });
}

#[test]
fn drop_drains_in_flight_elements() {
    // Runs single-threaded inside the model so loom's instrumented cells
    // still check the drain path's cell accesses.
    loom::model(|| {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let drops = std::sync::Arc::new(AtomicUsize::new(0));
        #[derive(Debug)]
        struct D(std::sync::Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut p, c) = BoundedSpsc::new(2);
        p.try_push(D(drops.clone())).unwrap();
        p.try_push(D(drops.clone())).unwrap();
        drop(p);
        drop(c);
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    });
}
