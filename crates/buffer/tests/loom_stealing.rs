//! Loom model of the work-stealing scheduler's claim-time-disarm window —
//! the certification demanded by the exactly-once recovery work: journaled
//! replay is meaningless on a scheduler that can lose wakeups.
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p raft-buffer --test loom_stealing --release
//! ```
//!
//! The scheduler lives in `raftlib-core` (`stealing.rs`), but the protocol
//! under test is built entirely from this crate's [`WakerSlot`] plus a
//! four-state task atomic, so the model reconstructs it here in miniature,
//! mirroring `wake_task` / claim / park line for line.
//!
//! ## The bug being certified away
//!
//! `wake_task` has a readiness filter: a multi-input task is only enqueued
//! when *all* inputs have data, because enqueueing early burns a claim →
//! not-ready → re-arm → park cycle per input (O(width²) churn across a
//! reduce row). The filter's original failure path was a bare `return` —
//! and the notify that invoked `wake_task` had already *consumed* that
//! input's arm. Two producers finishing pushes on the two inputs at the
//! same moment could then each observe the *other* queue as still empty
//! (classic store-buffering), both drop their wake, and leave the task
//! IDLE forever with both inputs full: the ~10% `stealing_pipeline…` hang.
//!
//! The fix re-arms every input and re-checks once before dropping. The
//! re-arm's SeqCst fence pairs with the producers' notify fences, so the
//! "both re-checks miss" interleaving would need each fence to precede the
//! other — a cycle in the SC order. [`filter_drop_rearms_both_inputs`]
//! has loom prove exactly that; [`notify_during_running_is_never_lost`]
//! covers the second half of the window, a notify landing while the task
//! is RUNNING or mid-park.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use raft_buffer::{FifoWaker, WakerSlot};

const IDLE: usize = 0;
const QUEUED: usize = 1;
const RUNNING: usize = 2;
const NOTIFIED: usize = 3;

/// One task slot with `W` input streams: the miniature of
/// `stealing::TaskSlot` (state machine) + per-input consumer [`WakerSlot`]s
/// + occupancies standing in for the FIFOs.
struct Task<const W: usize> {
    state: AtomicUsize,
    slots: [WakerSlot; W],
    occupancy: [AtomicUsize; W],
    /// Times the task was pushed onto a run queue (deque/injector).
    enqueues: AtomicUsize,
}

impl<const W: usize> Task<W> {
    fn new() -> Self {
        Task {
            state: AtomicUsize::new(IDLE),
            slots: std::array::from_fn(|_| WakerSlot::new()),
            occupancy: std::array::from_fn(|_| AtomicUsize::new(0)),
            enqueues: AtomicUsize::new(0),
        }
    }

    /// `scheduler::inputs_ready` in miniature: all inputs non-empty.
    fn ready(&self) -> bool {
        self.occupancy.iter().all(|o| o.load(Ordering::Acquire) > 0)
    }

    /// `stealing::Core::wake_task` with the certified fix: on filter
    /// failure re-arm *all* inputs (the arm carries a SeqCst fence pairing
    /// with the producers' notify fences) and re-check once.
    fn wake_task(&self) {
        if !self.ready() {
            for s in &self.slots {
                s.arm();
            }
            if !self.ready() {
                return;
            }
        }
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            match cur {
                IDLE => {
                    match self.state.compare_exchange(
                        IDLE,
                        QUEUED,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            self.enqueues.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                        Err(c) => cur = c,
                    }
                }
                RUNNING => {
                    match self.state.compare_exchange(
                        RUNNING,
                        NOTIFIED,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return,
                        Err(c) => cur = c,
                    }
                }
                // QUEUED / NOTIFIED: a wake is already owed.
                _ => return,
            }
        }
    }

    /// Worker claim: swap to RUNNING, then disarm every input — claim-time
    /// disarm absorbs stale arms so each arm wakes at most once.
    fn claim(&self) {
        self.state.swap(RUNNING, Ordering::AcqRel);
        for s in &self.slots {
            s.disarm();
        }
    }

    /// One `run()`: drain whatever is visible on every input.
    fn run_drain(&self) -> usize {
        self.occupancy
            .iter()
            .map(|o| o.swap(0, Ordering::AcqRel))
            .sum()
    }

    /// Worker park protocol: arm all → re-check → CAS RUNNING→IDLE; a CAS
    /// loss (NOTIFIED landed mid-park) or a successful re-check re-queues
    /// instead of idling.
    fn park(&self) {
        for s in &self.slots {
            s.arm();
        }
        if self.ready() {
            self.state.store(QUEUED, Ordering::SeqCst);
            self.enqueues.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self
            .state
            .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            self.state.store(QUEUED, Ordering::SeqCst);
            self.enqueues.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The waker registered on each input slot: fires the shared `wake_task`.
/// Holds the task weakly so iterations don't leak through the
/// slot → waker → task → slot cycle.
struct TaskWaker<const W: usize>(Weak<Task<W>>);

impl<const W: usize> FifoWaker for TaskWaker<W> {
    fn wake(&self) {
        if let Some(t) = self.0.upgrade() {
            t.wake_task();
        }
    }
}

fn install_waker<const W: usize>(task: &Arc<Task<W>>) {
    let waker: Arc<dyn FifoWaker> = Arc::new(TaskWaker(Arc::downgrade(task)));
    for s in &task.slots {
        assert!(s.register(waker.clone()));
    }
}

/// The certified race: a parked two-input task (IDLE, both arms set) and
/// two producers pushing one element each. Every producer's notify runs
/// the readiness filter; with the old bare-`return` drop path, loom finds
/// the interleaving where both filters observe the *other* input as empty,
/// both wakes are dropped with both arms consumed, and the task is IDLE
/// with data on both inputs — a permanent hang, since no further push is
/// coming. The re-arm + re-check makes that terminal state unreachable.
#[test]
fn filter_drop_rearms_both_inputs() {
    loom::model(|| {
        let task = Arc::new(Task::<2>::new());
        install_waker(&task);
        // Parked: worker armed both inputs and went IDLE.
        for s in &task.slots {
            s.arm();
        }

        let producers: Vec<_> = (0..2)
            .map(|i| {
                let task = Arc::clone(&task);
                loom::thread::spawn(move || {
                    // Publish, then notify — the order every FIFO push
                    // site follows.
                    task.occupancy[i].store(1, Ordering::Release);
                    task.slots[i].notify();
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }

        // Both inputs hold data and no further notify will ever come: the
        // task must have been enqueued.
        assert_eq!(
            task.state.load(Ordering::SeqCst),
            QUEUED,
            "lost wakeup: both inputs full, task not enqueued"
        );
        assert!(task.enqueues.load(Ordering::Relaxed) >= 1);
    });
}

/// The other half of the window: a notify landing while the worker has the
/// task claimed (RUNNING) or is mid-park. The claim-time disarm, the
/// RUNNING→NOTIFIED transition, and the park protocol's arm → re-check →
/// CAS must combine so that data present at quiescence always leaves the
/// task enqueued — never IDLE over a non-empty input.
#[test]
fn notify_during_running_is_never_lost() {
    loom::model(|| {
        let task = Arc::new(Task::<1>::new());
        install_waker(&task);
        // The task was just enqueued (its arm consumed by that wake).
        task.state.store(QUEUED, Ordering::SeqCst);

        let worker = {
            let task = Arc::clone(&task);
            loom::thread::spawn(move || {
                task.claim();
                task.run_drain();
                task.park();
            })
        };
        let producer = {
            let task = Arc::clone(&task);
            loom::thread::spawn(move || {
                task.occupancy[0].fetch_add(1, Ordering::AcqRel);
                task.slots[0].notify();
            })
        };
        worker.join().unwrap();
        producer.join().unwrap();

        // If the element survived the drain, someone must have re-queued
        // the task for it (wake_task or the park re-check) — IDLE over a
        // non-empty input is the hang.
        if task.occupancy[0].load(Ordering::SeqCst) > 0 {
            assert_eq!(
                task.state.load(Ordering::SeqCst),
                QUEUED,
                "lost wakeup: data present, task not re-queued"
            );
        }
    });
}
