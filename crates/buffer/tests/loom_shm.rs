//! Loom model checks for the shared-memory ring protocol
//! ([`raft_buffer::shm`]) and its futex eventcount ([`raft_buffer::futex`]).
//!
//! These tests only compile and run under the loom cfg:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p raft-buffer --test loom_shm --release
//! ```
//!
//! The real `ShmRing` cannot be model-checked directly: its protocol words
//! are `std` atomics living at fixed offsets inside an `mmap`ed segment,
//! and loom can only instrument its own atomic types. So this file models
//! the protocol over plain (loom-instrumented) backing — a `SegModel`
//! struct whose fields stand in, one for one, for the segment's control
//! words (`OFF_HEAD`, `OFF_TAIL`, `OFF_PRODUCER_CLOSED`, the consumer
//! waker's `armed`/`seq` pair) and whose slot array stands in for the data
//! region. Every operation below replicates the exact load/store/fence
//! sequence of its `shm.rs` / `futex.rs` counterpart — same orderings,
//! same cached-index refresh arithmetic (`crate::index`), same close
//! double-check — so an interleaving loom rejects here is an interleaving
//! the mapped-segment code admits. The arithmetic itself (wrapping
//! counters, conservative caches) is unit-tested natively in `index.rs`;
//! what loom adds is the C11 ordering argument.
#![cfg(loom)]

use loom::cell::UnsafeCell;
use loom::sync::atomic::{
    fence, AtomicU32, AtomicUsize,
    Ordering::{Acquire, Relaxed, Release, SeqCst},
};
use loom::thread;
use std::sync::Arc;

/// The segment's first four cache lines plus data region, in loom types.
struct SegModel {
    /// `OFF_HEAD`: next read index (consumer publishes with Release).
    head: AtomicUsize,
    /// `OFF_TAIL`: next write index (producer publishes with Release).
    tail: AtomicUsize,
    /// `OFF_PRODUCER_CLOSED`.
    producer_closed: AtomicU32,
    /// `OFF_CONS_ARMED`: consumer waker's armed word.
    cons_armed: AtomicU32,
    /// `OFF_CONS_SEQ`: consumer waker's eventcount generation.
    cons_seq: AtomicU32,
    /// The data region: `capacity` slots of one element each.
    slots: Box<[UnsafeCell<u64>]>,
    capacity: usize,
}

// SAFETY: the slot array is raced on by design — exactly one producer and
// one consumer, serialized per-slot by the head/tail protocol under test.
// Loom's instrumented UnsafeCell turns any protocol hole into a model
// failure instead of silent UB.
unsafe impl Send for SegModel {}
// SAFETY: see Send.
unsafe impl Sync for SegModel {}

impl SegModel {
    fn new(capacity: usize) -> Arc<SegModel> {
        assert!(capacity.is_power_of_two());
        Arc::new(SegModel {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            producer_closed: AtomicU32::new(0),
            cons_armed: AtomicU32::new(0),
            cons_seq: AtomicU32::new(0),
            slots: (0..capacity).map(|_| UnsafeCell::new(0)).collect(),
            capacity,
        })
    }

    /// `FutexWaker::arm` — seq snapshot, armed store, SeqCst fence.
    fn arm(&self) -> u32 {
        let epoch = self.cons_seq.load(Relaxed);
        self.cons_armed.store(1, Relaxed);
        fence(SeqCst);
        epoch
    }

    /// `FutexWaker::disarm`.
    fn disarm(&self) -> bool {
        self.cons_armed.swap(0, Relaxed) == 1
    }

    /// `FutexWaker::notify` — Dekker fence, claim the arm, bump the
    /// eventcount (the `FUTEX_WAKE` itself needs no modeling: a waiter
    /// sleeps only while `seq == epoch`, so the bump *is* the wake).
    fn notify(&self) {
        fence(SeqCst);
        if self.cons_armed.load(Relaxed) == 1 && self.cons_armed.swap(0, Relaxed) == 1 {
            self.cons_seq.fetch_add(1, Relaxed);
        }
    }
}

/// `ShmRingProducer` state: exact tail mirror + conservative head cache.
struct ProducerModel {
    seg: Arc<SegModel>,
    tail: usize,
    head_cache: usize,
}

impl ProducerModel {
    /// `ShmRingProducer::try_push` minus the close-in check (no consumer
    /// drop in these models) and with the waker handled by the caller.
    fn try_push(&mut self, value: u64) -> bool {
        let seg = &*self.seg;
        let tail = self.tail;
        // index::producer_free_slots, inlined: refresh the cache with one
        // Acquire load only when the ring looks too full through it.
        if tail.wrapping_sub(self.head_cache) + 1 > seg.capacity {
            self.head_cache = seg.head.load(Acquire);
        }
        if seg
            .capacity
            .saturating_sub(tail.wrapping_sub(self.head_cache))
            == 0
        {
            return false;
        }
        // SAFETY: slot `tail & mask` is outside the live region (checked
        // against the conservative head cache); sole producer by
        // construction. Loom verifies no consumer read overlaps.
        seg.slots[tail & (seg.capacity - 1)].with_mut(|p| unsafe { *p = value });
        seg.tail.store(tail + 1, Release);
        self.tail = tail + 1;
        true
    }

    /// `ShmRingProducer::drop` — close flag then full-contract notify.
    fn close(&self) {
        self.seg.producer_closed.store(1, Release);
        self.seg.notify();
    }
}

/// `ShmRingConsumer` state: exact head mirror + conservative tail cache.
struct ConsumerModel {
    seg: Arc<SegModel>,
    head: usize,
    tail_cache: usize,
}

#[derive(PartialEq, Debug)]
enum Pop {
    Value(u64),
    Empty,
    Closed,
}

impl ConsumerModel {
    /// `ShmRingConsumer::try_pop`, including the close/drain double-check.
    fn try_pop(&mut self) -> Pop {
        let seg = &*self.seg;
        let head = self.head;
        // index::consumer_ready_elems, inlined.
        if head == self.tail_cache {
            self.tail_cache = seg.tail.load(Acquire);
        }
        if self.tail_cache.wrapping_sub(head) == 0 {
            if seg.producer_closed.load(Acquire) == 1 {
                // Re-check: the producer may have pushed between our tail
                // load and its close.
                self.tail_cache = seg.tail.load(Acquire);
                if self.tail_cache == head {
                    return Pop::Closed;
                }
            }
            return Pop::Empty;
        }
        // SAFETY: head < tail observed through an Acquire load pairing
        // with the producer's Release publish; sole consumer.
        let value = seg.slots[head & (seg.capacity - 1)].with(|p| unsafe { *p });
        seg.head.store(head + 1, Release);
        self.head = head + 1;
        Pop::Value(value)
    }
}

fn endpoints(capacity: usize) -> (ProducerModel, ConsumerModel) {
    let seg = SegModel::new(capacity);
    (
        ProducerModel {
            seg: seg.clone(),
            tail: 0,
            head_cache: 0,
        },
        ConsumerModel {
            seg,
            head: 0,
            tail_cache: 0,
        },
    )
}

/// Capacity 1 forces every element after the first to reuse a slot while
/// both endpoints run — the cached-index refresh and the slot-reuse
/// ordering (consumer's Release head store before producer's overwrite)
/// are both on the critical path of every interleaving.
#[test]
fn wraparound_transfer_preserves_order() {
    loom::model(|| {
        let (mut p, mut c) = endpoints(1);
        let producer = thread::spawn(move || {
            for i in 1..=2u64 {
                while !p.try_push(i) {
                    thread::yield_now();
                }
            }
        });
        let mut got = Vec::new();
        while got.len() < 2 {
            match c.try_pop() {
                Pop::Value(v) => got.push(v),
                Pop::Empty => thread::yield_now(),
                Pop::Closed => panic!("nobody closed"),
            }
        }
        assert_eq!(got, vec![1, 2]);
        producer.join().unwrap();
    });
}

/// A push racing the close: the consumer must never observe `Closed` while
/// the pushed element is still in flight (the double-check in `try_pop`).
#[test]
fn close_delivers_only_after_drain() {
    loom::model(|| {
        let (mut p, mut c) = endpoints(2);
        let producer = thread::spawn(move || {
            assert!(p.try_push(7));
            p.close();
        });
        let mut got = Vec::new();
        loop {
            match c.try_pop() {
                Pop::Value(v) => got.push(v),
                Pop::Empty => thread::yield_now(),
                Pop::Closed => break,
            }
        }
        assert_eq!(got, vec![7]);
        producer.join().unwrap();
    });
}

/// Lost-wakeup freedom for the cross-process park (the property the
/// 2ms-bounded `notify_if_armed` trade explicitly does NOT have, and the
/// full `notify` on the close path MUST have): a consumer that armed,
/// re-checked the stream, and found nothing actionable is about to
/// `FUTEX_WAIT` on `seq == epoch` — if the producer has meanwhile pushed
/// and notified, the eventcount must have moved past `epoch`, so the
/// kernel would refuse the sleep. The SeqCst fence in `arm` (after the
/// armed store, before the re-check) and in `notify` (after the stream
/// write, before the armed read) forbid the store-buffering interleaving
/// where both sides miss each other.
#[test]
fn armed_park_cannot_sleep_through_a_notify() {
    loom::model(|| {
        let (mut p, c) = endpoints(1);
        let producer = thread::spawn(move || {
            assert!(p.try_push(1));
            p.seg.notify();
        });

        // Consumer side of ShmRingConsumer::pop's park branch.
        let seg = c.seg.clone();
        let epoch = seg.arm();
        let tail = seg.tail.load(Acquire);
        let blocked = tail == c.head && seg.producer_closed.load(Relaxed) == 0;
        if !blocked {
            seg.disarm();
        }

        producer.join().unwrap();

        if blocked {
            // The re-check missed the push, so the producer's notify fence
            // came later in the SC order — its armed read cannot have
            // missed our arm: the claim bumped seq and futex_wait(epoch)
            // would return EAGAIN instead of sleeping.
            assert_ne!(
                seg.cons_seq.load(Relaxed),
                epoch,
                "lost wakeup: parked on observed-empty ring with no seq bump"
            );
        }
    });
}

/// A disarm racing a notify: the arm is claimed exactly once — either the
/// waiter withdraws it (disarm returns true, no wake) or the notifier
/// claims it (seq bumped, disarm returns false) — never both, never
/// neither. This is what makes "absorb the in-flight wake as spurious"
/// sound on the `continue` path of blocking push/pop.
#[test]
fn arm_is_claimed_exactly_once() {
    loom::model(|| {
        let seg = SegModel::new(1);
        let epoch = seg.arm();
        let notifier = {
            let seg = seg.clone();
            thread::spawn(move || seg.notify())
        };
        let claimed_by_us = seg.disarm();
        notifier.join().unwrap();

        let wake_fired = seg.cons_seq.load(Relaxed) == epoch.wrapping_add(1);
        assert!(
            claimed_by_us != wake_fired,
            "arm claimed {} times (disarm={claimed_by_us}, wake={wake_fired})",
            claimed_by_us as u32 + wake_fired as u32,
        );
    });
}
