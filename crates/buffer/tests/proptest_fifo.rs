//! Property-based tests: no FIFO configuration, operation interleaving, or
//! resize schedule may ever lose, duplicate, or reorder elements.

use proptest::prelude::*;
use raft_buffer::{fifo_with, BoundedSpsc, FifoConfig, Signal};

/// Ops the "driver" can perform against a FIFO, derived from a proptest
/// strategy. Resize sizes are small so shrink clamping gets exercised.
#[derive(Debug, Clone)]
enum Op {
    Push(u16),
    Pop,
    Resize(u8),
    PeekRangeTry(u8),
    PopRange(u8),
    /// Reserve `n` slots, publish only `fill` of them (partial commit).
    Reserve {
        n: u8,
        fill: u8,
    },
    PopSlice(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<u16>().prop_map(Op::Push),
        4 => Just(Op::Pop),
        1 => any::<u8>().prop_map(Op::Resize),
        1 => (1u8..8).prop_map(Op::PeekRangeTry),
        1 => (1u8..8).prop_map(Op::PopRange),
        2 => ((1u8..8), any::<u8>()).prop_map(|(n, f)| Op::Reserve { n, fill: f % (n + 1) }),
        2 => (1u8..8).prop_map(Op::PopSlice),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Single-threaded op-sequence model check against a VecDeque oracle.
    #[test]
    fn fifo_matches_vecdeque_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let (f, mut p, mut c) = fifo_with::<u16>(FifoConfig {
            initial_capacity: 2,
            max_capacity: 1 << 10,
            min_capacity: 1,
            ..Default::default()
        });
        let mut model = std::collections::VecDeque::new();
        let mut seq = 10_000u16; // distinct marker values for batch writes
        for op in ops {
            match op {
                Op::Push(v) => {
                    if p.try_push(v).is_ok() {
                        model.push_back(v);
                    } else {
                        // only legal failure is Full
                        prop_assert!(f.occupancy() == f.capacity());
                    }
                }
                Op::Pop => {
                    match c.try_pop() {
                        Ok(v) => {
                            prop_assert_eq!(Some(v), model.pop_front());
                        }
                        Err(_) => prop_assert!(model.is_empty()),
                    }
                }
                Op::Resize(sz) => {
                    let newcap = f.resize(sz as usize + 1);
                    prop_assert!(newcap >= f.occupancy());
                }
                Op::PeekRangeTry(n) => {
                    let n = n as usize;
                    // Only peek when satisfiable; otherwise it would block.
                    if model.len() >= n {
                        let w = c.peek_range(n).unwrap();
                        for i in 0..n {
                            prop_assert_eq!(w[i], model[i]);
                        }
                    }
                }
                Op::PopRange(n) => {
                    if !model.is_empty() {
                        let mut out = Vec::new();
                        let got = c.pop_range(n as usize, &mut out).unwrap();
                        prop_assert!(got >= 1 && got <= n as usize);
                        for v in out {
                            prop_assert_eq!(Some(v), model.pop_front());
                        }
                    }
                }
                Op::Reserve { n, fill } => {
                    let n = n as usize;
                    // Only reserve when it can't block: room must exist (or
                    // appear via the n > capacity grow path).
                    if model.len() + n <= f.capacity().max(n) {
                        let mut slice = p.reserve(n).unwrap();
                        prop_assert_eq!(slice.remaining(), n);
                        for _ in 0..fill {
                            slice.push(seq);
                            model.push_back(seq);
                            seq += 1;
                        }
                        // Partial commit: dropping publishes exactly `fill`.
                        drop(slice);
                    }
                }
                Op::PopSlice(n) => {
                    if !model.is_empty() {
                        let got = c
                            .pop_slice(n as usize, |view| {
                                view.iter().copied().collect::<Vec<u16>>()
                            })
                            .unwrap();
                        prop_assert!(!got.is_empty() && got.len() <= n as usize);
                        for v in got {
                            prop_assert_eq!(Some(v), model.pop_front());
                        }
                    }
                }
            }
            prop_assert_eq!(f.occupancy(), model.len());
        }
        // Drain and compare the tail.
        p.close();
        while let Ok(v) = c.try_pop() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    /// Cross-thread: all data arrives in order, regardless of capacity and
    /// a concurrent resize storm.
    #[test]
    fn fifo_cross_thread_in_order(
        n in 1usize..5_000,
        cap in 1usize..64,
        resizes in 0usize..20,
    ) {
        let (f, mut p, mut c) = fifo_with::<usize>(FifoConfig {
            initial_capacity: cap,
            max_capacity: 1 << 12,
            min_capacity: 1,
            ..Default::default()
        });
        let monitor = std::thread::spawn(move || {
            for i in 0..resizes {
                if i % 2 == 0 { f.grow(); } else { f.shrink(); }
                std::thread::yield_now();
            }
        });
        let prod = std::thread::spawn(move || {
            for i in 0..n {
                p.push(i).unwrap();
            }
        });
        let mut expect = 0usize;
        while let Ok(v) = c.pop() {
            assert_eq!(v, expect);
            expect += 1;
        }
        prop_assert_eq!(expect, n);
        prod.join().unwrap();
        monitor.join().unwrap();
    }

    /// Cross-thread with zero-copy batch views on both ends: a reserving
    /// producer and a pop_slice consumer, under a concurrent grow/shrink
    /// storm, still deliver every element exactly once and in order.
    #[test]
    fn fifo_cross_thread_batch_views_in_order(
        n in 1usize..3_000,
        cap in 1usize..64,
        batch in 1usize..16,
        resizes in 0usize..20,
    ) {
        let (f, mut p, mut c) = fifo_with::<usize>(FifoConfig {
            initial_capacity: cap,
            max_capacity: 1 << 12,
            min_capacity: 1,
            ..Default::default()
        });
        let monitor = std::thread::spawn(move || {
            for i in 0..resizes {
                if i % 2 == 0 { f.grow(); } else { f.shrink(); }
                std::thread::yield_now();
            }
        });
        let prod = std::thread::spawn(move || {
            let mut next = 0usize;
            while next < n {
                let want = batch.min(n - next);
                let mut slice = p.reserve(want).unwrap();
                for _ in 0..want {
                    slice.push(next);
                    next += 1;
                }
            }
        });
        let mut expect = 0usize;
        while expect < n {
            let got = c
                .pop_slice(batch, |view| view.iter().copied().collect::<Vec<usize>>())
                .unwrap();
            for v in got {
                assert_eq!(v, expect);
                expect += 1;
            }
        }
        prop_assert_eq!(expect, n);
        assert!(c.pop_slice(1, |_| ()).is_err(), "stream must be drained");
        prod.join().unwrap();
        monitor.join().unwrap();
    }

    /// Signals never detach from their elements.
    #[test]
    fn signals_stay_attached(values in proptest::collection::vec(any::<u8>(), 1..100)) {
        let (_f, mut p, mut c) = fifo_with::<u8>(FifoConfig::starting_at(4));
        let last = values.len() - 1;
        let prod = std::thread::spawn(move || {
            for (i, v) in values.iter().enumerate() {
                let sig = if i == last { Signal::EoS } else if v % 7 == 0 { Signal::User(*v as u32) } else { Signal::None };
                p.push_signal(*v, sig).unwrap();
            }
            values
        });
        let mut got = Vec::new();
        while let Ok((v, sig)) = c.pop_signal() {
            match sig {
                Signal::User(u) => assert_eq!(u, v as u32),
                Signal::EoS | Signal::None => {}
                other => panic!("unexpected signal {other:?}"),
            }
            got.push((v, sig));
        }
        let values = prod.join().unwrap();
        prop_assert_eq!(got.len(), values.len());
        prop_assert_eq!(got.last().unwrap().1, Signal::EoS);
        for (i, (v, _)) in got.iter().enumerate() {
            prop_assert_eq!(*v, values[i]);
        }
    }

    /// The fixed lock-free SPSC agrees with a model too.
    #[test]
    fn bounded_spsc_model(ops in proptest::collection::vec(op_strategy(), 1..200), cap in 1usize..32) {
        let (mut p, mut c) = BoundedSpsc::<u16>::new(cap);
        let capacity = p.capacity();
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    if p.try_push(v).is_ok() {
                        model.push_back(v);
                    } else {
                        prop_assert_eq!(model.len(), capacity);
                    }
                }
                Op::Pop => match c.try_pop() {
                    Ok(v) => prop_assert_eq!(Some(v), model.pop_front()),
                    Err(_) => prop_assert!(model.is_empty()),
                },
                _ => {} // resize/peek_range not applicable to the fixed ring
            }
            prop_assert_eq!(c.occupancy(), model.len());
        }
    }
}
