//! Loom model checks for the Dekker-style resize fence
//! ([`raft_buffer::fence::ResizeFence`]).
//!
//! These tests only compile and run under the loom cfg:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p raft-buffer --test loom_fence --release
//! ```
//!
//! The fence's whole job is mutual exclusion between an endpoint's ring
//! access and a resizer's storage mutation, established by a store-buffering
//! (Dekker) pattern that is only correct under SeqCst — exactly the kind of
//! property a test machine's strong memory model can silently fail to
//! exercise. Each model therefore wraps the "storage" in loom's
//! instrumented `UnsafeCell`: if any interleaving lets an endpoint's cell
//! access overlap the resizer's `with_mut`, loom reports the race even when
//! the data happens to come out right.
#![cfg(loom)]

use loom::cell::UnsafeCell;
use loom::sync::Arc;
use loom::thread;
use raft_buffer::{ResizeFence, Role};

/// A fence-guarded stand-in for ring storage: one cell the endpoint writes
/// under membership and the resizer rewrites under `begin_resize`.
struct Guarded {
    fence: ResizeFence,
    storage: UnsafeCell<u64>,
}

#[test]
fn resize_never_overlaps_producer_access() {
    loom::model(|| {
        let g = Arc::new(Guarded {
            fence: ResizeFence::new(),
            storage: UnsafeCell::new(0),
        });
        let g2 = g.clone();
        let producer = thread::spawn(move || {
            for _ in 0..2 {
                g2.fence.enter(Role::Producer);
                // Exclusive storage access while inside the arena; loom
                // flags this against the resizer's with_mut if the Dekker
                // handshake ever lets both in at once.
                g2.storage.with_mut(|p| unsafe { *p += 1 });
                g2.fence.exit(Role::Producer);
            }
        });
        g.fence.begin_resize();
        g.storage.with_mut(|p| unsafe { *p += 100 });
        g.fence.end_resize();
        producer.join().unwrap();
        g.fence.enter(Role::Consumer);
        let v = g.storage.with(|p| unsafe { *p });
        g.fence.exit(Role::Consumer);
        assert_eq!(v, 102);
    });
}

#[test]
fn resize_publication_visible_on_reentry() {
    // An endpoint that enters after a resize completed must observe the
    // resizer's storage mutation (Release on `pending` drop / flag edges,
    // Acquire on the endpoint's re-check). The instrumented cell turns any
    // missing happens-before edge into a reported race rather than a
    // silently stale read.
    loom::model(|| {
        let g = Arc::new(Guarded {
            fence: ResizeFence::new(),
            storage: UnsafeCell::new(0),
        });
        let g2 = g.clone();
        let resizer = thread::spawn(move || {
            g2.fence.begin_resize();
            g2.storage.with_mut(|p| unsafe { *p = 42 });
            g2.fence.end_resize();
        });
        g.fence.enter(Role::Consumer);
        let v = g.storage.with(|p| unsafe { *p });
        g.fence.exit(Role::Consumer);
        // Entered either entirely before or entirely after the resize.
        assert!(v == 0 || v == 42, "torn or unsynchronized read: {v}");
        resizer.join().unwrap();
    });
}

#[test]
fn resizer_excludes_both_endpoints() {
    // Producer and consumer touch disjoint cells (as the real ring's
    // head/tail protocol guarantees); the resizer mutates both. The fence
    // must exclude the resizer from each endpoint independently.
    loom::model(|| {
        struct TwoCells {
            fence: ResizeFence,
            a: UnsafeCell<u64>,
            b: UnsafeCell<u64>,
        }
        let g = Arc::new(TwoCells {
            fence: ResizeFence::new(),
            a: UnsafeCell::new(0),
            b: UnsafeCell::new(0),
        });
        let gp = g.clone();
        let producer = thread::spawn(move || {
            gp.fence.enter(Role::Producer);
            gp.a.with_mut(|p| unsafe { *p += 1 });
            gp.fence.exit(Role::Producer);
        });
        let gc = g.clone();
        let consumer = thread::spawn(move || {
            gc.fence.enter(Role::Consumer);
            gc.b.with_mut(|p| unsafe { *p += 1 });
            gc.fence.exit(Role::Consumer);
        });
        g.fence.begin_resize();
        g.a.with_mut(|p| unsafe { *p += 10 });
        g.b.with_mut(|p| unsafe { *p += 10 });
        g.fence.end_resize();
        producer.join().unwrap();
        consumer.join().unwrap();
        g.fence.begin_resize();
        let (a, b) = (g.a.with(|p| unsafe { *p }), g.b.with(|p| unsafe { *p }));
        g.fence.end_resize();
        assert_eq!((a, b), (11, 11));
    });
}

#[test]
fn backed_out_endpoint_retries_and_succeeds() {
    // An endpoint that loses the Dekker race backs out, waits for
    // `pending` to drop, and re-enters — it must never give up or deadlock
    // with the resizer.
    loom::model(|| {
        let g = Arc::new(Guarded {
            fence: ResizeFence::new(),
            storage: UnsafeCell::new(0),
        });
        let g2 = g.clone();
        let resizer = thread::spawn(move || {
            g2.fence.begin_resize();
            g2.storage.with_mut(|p| unsafe { *p += 100 });
            g2.fence.end_resize();
        });
        g.fence.enter(Role::Producer);
        g.storage.with_mut(|p| unsafe { *p += 1 });
        g.fence.exit(Role::Producer);
        resizer.join().unwrap();
        g.fence.enter(Role::Producer);
        let v = g.storage.with(|p| unsafe { *p });
        g.fence.exit(Role::Producer);
        assert_eq!(v, 101);
    });
}
