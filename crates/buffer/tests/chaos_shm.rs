//! Chaos suite for the shared-memory link family: deterministic fault
//! injection at the segment-attach and futex-wake sites.
//!
//! Runs only with `--features raft_failpoints`. The CI chaos and
//! multi-process jobs execute this under pinned seeds (`RAFT_CHAOS_SEED`);
//! every firing decision is drawn from the seed, so a failure reproduces
//! exactly with `RAFT_CHAOS_SEED=<n> cargo test -p raft-buffer --features
//! raft_failpoints --test chaos_shm`.
#![cfg(all(feature = "raft_failpoints", not(loom)))]

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use raft_buffer::failpoints::{self, FailAction};
use raft_buffer::shm::{ShmRing, ShmSegment};

/// The failpoint registry is process-global; tests serialize on this so
/// one test's armed sites never fire inside another's transfer.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_guard() -> MutexGuard<'static, ()> {
    let guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    failpoints::reset();
    guard
}

fn chaos_seed() -> u64 {
    std::env::var("RAFT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// `buffer::shm::attach` armed with `ShortIo`: a rejected attach must be a
/// clean `InvalidData` error *before* the segment claims anything, so the
/// caller can simply retry — eventually attaching, claiming the consumer
/// role exactly once, and carrying data.
#[test]
fn rejected_attach_is_clean_and_retryable() {
    if !ShmSegment::memfd_supported() {
        eprintln!("skipping: no memfd on this platform");
        return;
    }
    let _guard = chaos_guard();
    failpoints::set_seed(chaos_seed());
    // Rate 1 with a budget of 4 firings: each attach draws twice (the hit
    // macro, then the ShortIo check), so attempts 1 and 2 are rejected and
    // attempt 3 succeeds — deterministically, for every chaos seed.
    failpoints::arm("buffer::shm::attach", FailAction::ShortIo, 1, 4);

    let (mut p, fd) = ShmRing::<u64>::create_producer(8).expect("create ring");
    let mut clean_failures = 0u32;
    let mut consumer = None;
    for _ in 0..8 {
        match ShmRing::<u64>::attach_consumer(fd) {
            Ok(c) => {
                consumer = Some(c);
                break;
            }
            Err(e) => {
                // Every injected failure surfaces as InvalidData from the
                // failpoint — never a role-claim conflict (AddrInUse would
                // mean a failed attach leaked a claim) and never a panic.
                assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "{e}");
                clean_failures += 1;
            }
        }
    }
    failpoints::reset();
    let mut c = consumer.expect("attach must succeed once the firing budget drains");
    assert_eq!(
        clean_failures, 2,
        "budget 4 at two draws/attach rejects exactly 2"
    );

    // The survivor link is fully functional.
    for i in 0..8u64 {
        p.try_push(i).unwrap();
    }
    for i in 0..8u64 {
        assert_eq!(c.try_pop().unwrap(), i);
    }
    // And the consumer role was claimed exactly once, by the survivor.
    assert!(ShmRing::<u64>::attach_consumer(fd).is_err());
}

/// `buffer::futex::wake` armed with `Stall`: delayed (effectively lost)
/// wakes must never corrupt or wedge a blocking transfer — the bounded
/// 2 ms park timeout re-checks the stream regardless, so chaos at the
/// wake site costs latency, never correctness.
#[test]
fn stalled_wakes_never_wedge_blocking_transfer() {
    let _guard = chaos_guard();
    failpoints::set_seed(chaos_seed());
    failpoints::arm(
        "buffer::futex::wake",
        FailAction::Stall(Duration::from_micros(500)),
        2,
        0,
    );

    // Tiny capacity plus a deliberately slow consumer: the producer runs
    // 4 elements ahead, exhausts its (64-pause, 16-yield) backoff budget
    // during the consumer's sleep, and futex-parks — so nearly every pop's
    // notify reaches the armed wake site.
    let (mut p, mut c) = ShmRing::<u64>::pair(4);
    const N: u64 = 200;
    let producer = std::thread::spawn(move || {
        for i in 0..N {
            p.push(i).unwrap();
        }
    });
    let mut expected = 0;
    while let Ok(v) = c.pop() {
        assert_eq!(v, expected, "stalled wakes must not reorder or drop");
        expected += 1;
        if expected % 2 == 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    assert_eq!(expected, N);
    producer.join().unwrap();
    assert!(
        failpoints::hits("buffer::futex::wake") > 0,
        "a parked producer's wake-ups must reach the chaos site"
    );
    failpoints::reset();
}
