//! Integration tests for the `raft_protocol_check` shadow checker: clean
//! SPSC traffic (with concurrent resizes) stays violation-free, and a
//! deliberately duplicated producer handle is caught.

#![cfg(feature = "raft_protocol_check")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use raft_buffer::fifo::{fifo_with, FifoConfig};
use raft_buffer::protocol::violations;

#[test]
fn clean_spsc_traffic_with_resizes_has_no_violations() {
    let (fifo, mut tx, mut rx) = fifo_with::<u64>(FifoConfig {
        initial_capacity: 8,
        max_capacity: 1 << 12,
        min_capacity: 8,
        ..Default::default()
    });

    const N: u64 = 20_000;
    let producer = std::thread::spawn(move || {
        for i in 0..N {
            tx.push(i).unwrap();
        }
    });
    let resizer = std::thread::spawn(move || {
        // Exercise the resize-fence transitions while traffic flows.
        for step in 0..200 {
            let cap = if step % 2 == 0 { 1 << 10 } else { 16 };
            fifo.resize(cap);
            std::thread::yield_now();
        }
    });
    let consumer = std::thread::spawn(move || {
        let mut expect = 0u64;
        while expect < N {
            if let Ok(v) = rx.pop() {
                assert_eq!(v, expect);
                expect += 1;
            }
        }
    });

    // Any protocol violation panics the offending thread: unwrap propagates.
    producer.join().unwrap();
    resizer.join().unwrap();
    consumer.join().unwrap();
}

#[test]
fn duplicated_producer_handle_is_caught() {
    // Fixed capacity: the resize fence is skipped entirely, so the shadow
    // checker is the only thing standing between the duplicate handle and
    // silent slot corruption.
    let (_fifo, mut tx, _rx) = fifo_with::<u64>(FifoConfig::fixed(8));

    let before = violations();
    let mut dup = tx.protocol_test_duplicate();
    // Hold the producer critical section open with a zero-copy batch view,
    // then drive the second handle into it.
    let slice = tx.reserve(2).unwrap();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _ = dup.try_push(42);
    }));
    let err = result.expect_err("second producer must be rejected");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("raft_protocol_check violation"),
        "unexpected panic payload: {msg}"
    );
    assert!(msg.contains("SPSC"), "unexpected message: {msg}");
    assert!(violations() > before);
    drop(slice);
    // The original producer still works after the aborted intrusion.
    std::mem::forget(dup); // its Drop would close the stream for tx
    tx.push(7).unwrap();
}
