//! Deterministic exercises of every unsafe path in `raft-buffer`, written
//! to run under Miri as well as natively:
//!
//! ```text
//! cargo +nightly miri test -p raft-buffer --test miri_unsafe
//! ```
//!
//! Miri checks what loom does not: uninitialized reads, use-after-free,
//! leaks, and Stacked/Tree Borrows aliasing violations in the
//! `UnsafeCell<MaybeUninit<..>>` slot protocol. Thread counts and element
//! counts are tiny because Miri executes ~3 orders of magnitude slower than
//! native.
#![cfg(not(loom))]

use raft_buffer::arena::{ArenaError, ShmArena};
use raft_buffer::shm::ShmRing;
use raft_buffer::spsc::BoundedSpsc;
use raft_buffer::{fifo_with, Descriptor, FifoConfig, Signal, TryPopError};

/// Covers: slot write (push), slot read-out (pop), slot reuse (wraparound),
/// and the in-place peek reference — all of the ring's raw-pointer paths.
#[test]
fn spsc_slot_protocol_single_threaded() {
    let (mut p, mut c) = BoundedSpsc::new(2);
    for round in 0..5u32 {
        p.try_push_signal(round, Signal::None).unwrap();
        p.try_push_signal(round + 100, Signal::EoS).unwrap();
        assert_eq!(c.peek(), Some(&round));
        assert_eq!(c.try_pop_signal().unwrap(), (round, Signal::None));
        assert_eq!(c.try_pop_signal().unwrap(), (round + 100, Signal::EoS));
        assert_eq!(c.try_pop(), Err(TryPopError::Empty));
    }
}

/// Covers: drop-time drain of initialized slots (`RingCore::drain`) with a
/// heap-owning element type, so Miri's leak checker sees any missed drop.
#[test]
fn spsc_drop_drains_heap_elements() {
    let (mut p, c) = BoundedSpsc::new(8);
    for i in 0..5 {
        p.try_push(vec![i; 16]).unwrap();
    }
    drop(p);
    drop(c);
}

/// Covers: the cross-thread release/acquire handoff with real parallelism.
/// Small N keeps Miri's schedule exploration affordable.
#[test]
fn spsc_cross_thread_handoff() {
    let (mut p, mut c) = BoundedSpsc::new(2);
    const N: u32 = 16;
    let producer = std::thread::spawn(move || {
        for i in 0..N {
            p.push(Box::new(i)).unwrap();
        }
    });
    let mut expected = 0;
    while let Ok(v) = c.pop() {
        assert_eq!(*v, expected);
        expected += 1;
    }
    assert_eq!(expected, N);
    producer.join().unwrap();
}

/// Covers: the resizable FIFO's unsafe storage paths (raw slot copy during
/// resize, write guards, peek ranges) under Miri.
#[test]
fn fifo_resize_copy_under_miri() {
    let (fifo, mut p, mut c) = fifo_with::<u32>(FifoConfig {
        initial_capacity: 2,
        ..FifoConfig::default()
    });
    for i in 0..2 {
        p.push(i).unwrap();
    }
    // Resize while the ring is full: forces the element-copy path.
    fifo.resize(8);
    for i in 2..6 {
        p.push(i).unwrap();
    }
    for i in 0..6 {
        assert_eq!(c.pop().unwrap(), i);
    }
}

/// Covers: the zero-copy batch views' raw-pointer paths — in-place slot
/// construction through `reserve`/`WriteSlice`, partial commits (reserved
/// but unwritten slots must never be read or dropped), and borrowed reads
/// through `pop_slice`'s `SliceView`. Heap-owning elements let Miri's leak
/// checker catch a drop of an uninitialized slot or a missed element drop.
#[test]
fn batch_views_under_miri() {
    let (_fifo, mut p, mut c) = fifo_with::<Vec<u8>>(FifoConfig {
        initial_capacity: 4,
        ..FifoConfig::default()
    });
    // Full commit. (Single-threaded, so every reserve below is sized to
    // the room actually available — reserve blocks when the ring is full.)
    let mut slice = p.reserve(3).unwrap();
    for i in 0..3u8 {
        slice.push(vec![i; 8]);
    }
    drop(slice);
    let sum: usize = c
        .pop_slice(2, |view| view.iter().map(|v| v.len()).sum())
        .unwrap();
    assert_eq!(sum, 16);
    // Partial commit: 2 reserved, only 1 written — the unwritten slot must
    // be neither read nor dropped.
    let mut slice = p.reserve(2).unwrap();
    slice.push(vec![9; 8]);
    drop(slice);
    // Zero commit: reserved and abandoned — publishes nothing.
    drop(p.reserve(2).unwrap());

    assert_eq!(c.pop().unwrap(), vec![2; 8]);
    assert_eq!(c.pop().unwrap(), vec![9; 8]);
    // Reserve wider than the ring: takes the grow path, then leaves one
    // element in flight at drop to exercise the storage drain.
    let mut slice = p.reserve(6).unwrap();
    slice.push(vec![7; 8]);
    drop(slice);
}

/// Covers: the full arena descriptor lifecycle over a heap-backed segment
/// (under Miri `memfd_supported()` is false, so `pair` takes the
/// `create_heap` path — same layout, same raw-pointer arithmetic, no
/// inline-asm syscalls). Exercises every unsafe access in `arena.rs`:
/// the generation words, the free-ring entry reads/writes, and the
/// payload slices minted by `PayloadWrite::bytes` / `ArenaRx::resolve` —
/// including the paths where a stale descriptor must be rejected *before*
/// any payload pointer is formed.
#[test]
fn arena_descriptor_lifecycle_under_miri() {
    // One slot: every recycle reuses the same payload memory, so a
    // generation bug would alias live and stale descriptors.
    let (mut tx, mut rx) = ShmArena::pair(1, 32);
    // alloc → write the payload in place → publish the descriptor.
    let mut w = tx.alloc(5).unwrap();
    w.bytes().copy_from_slice(b"hello");
    let d = w.publish();
    assert!(tx.alloc(1).is_none(), "sole slot is in flight");
    // consume: resolve borrows the payload bytes inside the segment.
    assert_eq!(rx.resolve(&d).unwrap(), b"hello");
    rx.free(d).unwrap();
    // Use-after-free and double-free land on a generation mismatch — a
    // recoverable error return, never a payload access.
    assert_eq!(rx.resolve(&d), Err(ArenaError::Stale));
    assert_eq!(rx.free(d), Err(ArenaError::Stale));
    // The slot recycles through the free ring onto a fresh (odd)
    // generation; the old descriptor stays dead.
    let d2 = tx.push_bytes(b"again").unwrap();
    assert_eq!(d2.slot, d.slot, "one-slot arena must reuse the slot");
    assert_ne!(d2.generation, d.generation);
    assert_eq!(rx.resolve(&d2).unwrap(), b"again");
    assert_eq!(rx.resolve(&d), Err(ArenaError::Stale));
    rx.free(d2).unwrap();
    // Malformed descriptors are rejected structurally, before any
    // generation word (let alone payload byte) is touched.
    assert_eq!(
        rx.resolve(&Descriptor {
            slot: 99,
            ..Descriptor::default()
        }),
        Err(ArenaError::Malformed)
    );
}

/// Covers: the intended cross-link composition with real parallelism —
/// payload staged in the arena by one thread, 16-byte descriptor through
/// a (heap-backed) `ShmRing`, the other thread resolving the payload in
/// place and recycling the slot. Two slots and eight transfers force the
/// free ring to wrap while both threads are live, so Miri checks the
/// release/acquire edge that publishes payload bytes across the ring
/// against its weak-memory and aliasing rules.
#[test]
fn descriptors_cross_a_ring_under_miri() {
    let (mut tx, mut rx) = ShmArena::pair(2, 16);
    let (mut p, mut c) = ShmRing::<Descriptor>::pair(2);
    const N: u8 = 8;
    let producer = std::thread::spawn(move || {
        for i in 0..N {
            // Arena exhaustion is backpressure: wait for the consumer to
            // recycle a slot.
            let d = loop {
                match tx.push_bytes(&[i; 10]) {
                    Some(d) => break d,
                    None => std::thread::yield_now(),
                }
            };
            while p.try_push(d).is_err() {
                std::thread::yield_now();
            }
        }
    });
    let mut seen = 0u8;
    while seen < N {
        match c.try_pop() {
            Ok(d) => {
                assert_eq!(rx.resolve(&d).unwrap(), &[seen; 10][..]);
                rx.free(d).unwrap();
                seen += 1;
            }
            Err(_) => std::thread::yield_now(),
        }
    }
    producer.join().unwrap();
}

/// Covers: `allocate`'s in-place default construction (`WriteGuard`) and
/// the `peek_range` window's borrowed indexing, both raw-pointer paths.
#[test]
fn write_guard_and_peek_range_under_miri() {
    let (_fifo, mut p, mut c) = fifo_with::<String>(FifoConfig {
        initial_capacity: 4,
        ..FifoConfig::default()
    });
    for i in 0..3 {
        let mut g = p.allocate().unwrap();
        g.push_str(&i.to_string());
        // Guard drop publishes the element.
    }
    {
        let w = c.peek_range(3).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(&w[0], "0");
        assert_eq!(&w[2], "2");
    }
    assert_eq!(c.advance(2), 2);
    assert_eq!(c.pop().unwrap(), "2");
}
