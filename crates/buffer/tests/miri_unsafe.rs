//! Deterministic exercises of every unsafe path in `raft-buffer`, written
//! to run under Miri as well as natively:
//!
//! ```text
//! cargo +nightly miri test -p raft-buffer --test miri_unsafe
//! ```
//!
//! Miri checks what loom does not: uninitialized reads, use-after-free,
//! leaks, and Stacked/Tree Borrows aliasing violations in the
//! `UnsafeCell<MaybeUninit<..>>` slot protocol. Thread counts and element
//! counts are tiny because Miri executes ~3 orders of magnitude slower than
//! native.
#![cfg(not(loom))]

use raft_buffer::spsc::BoundedSpsc;
use raft_buffer::{fifo_with, FifoConfig, Signal, TryPopError};

/// Covers: slot write (push), slot read-out (pop), slot reuse (wraparound),
/// and the in-place peek reference — all of the ring's raw-pointer paths.
#[test]
fn spsc_slot_protocol_single_threaded() {
    let (mut p, mut c) = BoundedSpsc::new(2);
    for round in 0..5u32 {
        p.try_push_signal(round, Signal::None).unwrap();
        p.try_push_signal(round + 100, Signal::EoS).unwrap();
        assert_eq!(c.peek(), Some(&round));
        assert_eq!(c.try_pop_signal().unwrap(), (round, Signal::None));
        assert_eq!(c.try_pop_signal().unwrap(), (round + 100, Signal::EoS));
        assert_eq!(c.try_pop(), Err(TryPopError::Empty));
    }
}

/// Covers: drop-time drain of initialized slots (`RingCore::drain`) with a
/// heap-owning element type, so Miri's leak checker sees any missed drop.
#[test]
fn spsc_drop_drains_heap_elements() {
    let (mut p, c) = BoundedSpsc::new(8);
    for i in 0..5 {
        p.try_push(vec![i; 16]).unwrap();
    }
    drop(p);
    drop(c);
}

/// Covers: the cross-thread release/acquire handoff with real parallelism.
/// Small N keeps Miri's schedule exploration affordable.
#[test]
fn spsc_cross_thread_handoff() {
    let (mut p, mut c) = BoundedSpsc::new(2);
    const N: u32 = 16;
    let producer = std::thread::spawn(move || {
        for i in 0..N {
            p.push(Box::new(i)).unwrap();
        }
    });
    let mut expected = 0;
    while let Ok(v) = c.pop() {
        assert_eq!(*v, expected);
        expected += 1;
    }
    assert_eq!(expected, N);
    producer.join().unwrap();
}

/// Covers: the resizable FIFO's unsafe storage paths (raw slot copy during
/// resize, write guards, peek ranges) under Miri.
#[test]
fn fifo_resize_copy_under_miri() {
    let (fifo, mut p, mut c) = fifo_with::<u32>(FifoConfig {
        initial_capacity: 2,
        ..FifoConfig::default()
    });
    for i in 0..2 {
        p.push(i).unwrap();
    }
    // Resize while the ring is full: forces the element-copy path.
    fifo.resize(8);
    for i in 2..6 {
        p.push(i).unwrap();
    }
    for i in 0..6 {
        assert_eq!(c.pop().unwrap(), i);
    }
}
