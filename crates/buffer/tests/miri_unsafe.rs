//! Deterministic exercises of every unsafe path in `raft-buffer`, written
//! to run under Miri as well as natively:
//!
//! ```text
//! cargo +nightly miri test -p raft-buffer --test miri_unsafe
//! ```
//!
//! Miri checks what loom does not: uninitialized reads, use-after-free,
//! leaks, and Stacked/Tree Borrows aliasing violations in the
//! `UnsafeCell<MaybeUninit<..>>` slot protocol. Thread counts and element
//! counts are tiny because Miri executes ~3 orders of magnitude slower than
//! native.
#![cfg(not(loom))]

use raft_buffer::spsc::BoundedSpsc;
use raft_buffer::{fifo_with, FifoConfig, Signal, TryPopError};

/// Covers: slot write (push), slot read-out (pop), slot reuse (wraparound),
/// and the in-place peek reference — all of the ring's raw-pointer paths.
#[test]
fn spsc_slot_protocol_single_threaded() {
    let (mut p, mut c) = BoundedSpsc::new(2);
    for round in 0..5u32 {
        p.try_push_signal(round, Signal::None).unwrap();
        p.try_push_signal(round + 100, Signal::EoS).unwrap();
        assert_eq!(c.peek(), Some(&round));
        assert_eq!(c.try_pop_signal().unwrap(), (round, Signal::None));
        assert_eq!(c.try_pop_signal().unwrap(), (round + 100, Signal::EoS));
        assert_eq!(c.try_pop(), Err(TryPopError::Empty));
    }
}

/// Covers: drop-time drain of initialized slots (`RingCore::drain`) with a
/// heap-owning element type, so Miri's leak checker sees any missed drop.
#[test]
fn spsc_drop_drains_heap_elements() {
    let (mut p, c) = BoundedSpsc::new(8);
    for i in 0..5 {
        p.try_push(vec![i; 16]).unwrap();
    }
    drop(p);
    drop(c);
}

/// Covers: the cross-thread release/acquire handoff with real parallelism.
/// Small N keeps Miri's schedule exploration affordable.
#[test]
fn spsc_cross_thread_handoff() {
    let (mut p, mut c) = BoundedSpsc::new(2);
    const N: u32 = 16;
    let producer = std::thread::spawn(move || {
        for i in 0..N {
            p.push(Box::new(i)).unwrap();
        }
    });
    let mut expected = 0;
    while let Ok(v) = c.pop() {
        assert_eq!(*v, expected);
        expected += 1;
    }
    assert_eq!(expected, N);
    producer.join().unwrap();
}

/// Covers: the resizable FIFO's unsafe storage paths (raw slot copy during
/// resize, write guards, peek ranges) under Miri.
#[test]
fn fifo_resize_copy_under_miri() {
    let (fifo, mut p, mut c) = fifo_with::<u32>(FifoConfig {
        initial_capacity: 2,
        ..FifoConfig::default()
    });
    for i in 0..2 {
        p.push(i).unwrap();
    }
    // Resize while the ring is full: forces the element-copy path.
    fifo.resize(8);
    for i in 2..6 {
        p.push(i).unwrap();
    }
    for i in 0..6 {
        assert_eq!(c.pop().unwrap(), i);
    }
}

/// Covers: the zero-copy batch views' raw-pointer paths — in-place slot
/// construction through `reserve`/`WriteSlice`, partial commits (reserved
/// but unwritten slots must never be read or dropped), and borrowed reads
/// through `pop_slice`'s `SliceView`. Heap-owning elements let Miri's leak
/// checker catch a drop of an uninitialized slot or a missed element drop.
#[test]
fn batch_views_under_miri() {
    let (_fifo, mut p, mut c) = fifo_with::<Vec<u8>>(FifoConfig {
        initial_capacity: 4,
        ..FifoConfig::default()
    });
    // Full commit. (Single-threaded, so every reserve below is sized to
    // the room actually available — reserve blocks when the ring is full.)
    let mut slice = p.reserve(3).unwrap();
    for i in 0..3u8 {
        slice.push(vec![i; 8]);
    }
    drop(slice);
    let sum: usize = c
        .pop_slice(2, |view| view.iter().map(|v| v.len()).sum())
        .unwrap();
    assert_eq!(sum, 16);
    // Partial commit: 2 reserved, only 1 written — the unwritten slot must
    // be neither read nor dropped.
    let mut slice = p.reserve(2).unwrap();
    slice.push(vec![9; 8]);
    drop(slice);
    // Zero commit: reserved and abandoned — publishes nothing.
    drop(p.reserve(2).unwrap());

    assert_eq!(c.pop().unwrap(), vec![2; 8]);
    assert_eq!(c.pop().unwrap(), vec![9; 8]);
    // Reserve wider than the ring: takes the grow path, then leaves one
    // element in flight at drop to exercise the storage drain.
    let mut slice = p.reserve(6).unwrap();
    slice.push(vec![7; 8]);
    drop(slice);
}

/// Covers: `allocate`'s in-place default construction (`WriteGuard`) and
/// the `peek_range` window's borrowed indexing, both raw-pointer paths.
#[test]
fn write_guard_and_peek_range_under_miri() {
    let (_fifo, mut p, mut c) = fifo_with::<String>(FifoConfig {
        initial_capacity: 4,
        ..FifoConfig::default()
    });
    for i in 0..3 {
        let mut g = p.allocate().unwrap();
        g.push_str(&i.to_string());
        // Guard drop publishes the element.
    }
    {
        let w = c.peek_range(3).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(&w[0], "0");
        assert_eq!(&w[2], "2");
    }
    assert_eq!(c.advance(2), 2);
    assert_eq!(c.pop().unwrap(), "2");
}
