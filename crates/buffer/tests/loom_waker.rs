//! Loom model check for the [`raft_buffer::WakerSlot`] arm/notify handoff.
//!
//! These tests only compile and run under the loom cfg:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p raft-buffer --test loom_waker --release
//! ```
//!
//! The property under test is the **lost-wakeup freedom** the work-stealing
//! scheduler depends on: a consumer task that (1) arms the slot, (2) re-checks
//! the stream state, and (3) parks on finding it empty must *always* receive
//! a wake from a producer that published data — the classic store-buffering
//! (Dekker) window between "queue observed empty" and "park". The slot's
//! SeqCst fence pairing (see `waker.rs` module docs) forbids the interleaving
//! where the producer's `armed` read and the consumer's state re-check both
//! miss; loom explores every C11-permitted ordering to prove it.
#![cfg(loom)]

use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::thread;
use std::sync::Arc;

use raft_buffer::{FifoWaker, WakerSlot};

/// Records wake delivery; stands in for the scheduler's "enqueue task".
struct FlagWaker(AtomicBool);

impl FifoWaker for FlagWaker {
    fn wake(&self) {
        self.0.store(true, Ordering::Release);
    }
}

/// The scheduler's park protocol against a producer's publish+notify:
/// no interleaving may end with the consumer parked on an observed-empty
/// queue *and* no wake delivered.
#[test]
fn no_lost_wakeup_between_empty_check_and_park() {
    loom::model(|| {
        let slot = Arc::new(WakerSlot::new());
        let queue = Arc::new(AtomicUsize::new(0)); // stands in for occupancy
        let woken = Arc::new(FlagWaker(AtomicBool::new(false)));
        assert!(slot.register(woken.clone()));

        let producer = {
            let slot = Arc::clone(&slot);
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                // Publish data, then notify — the order every FIFO
                // notify site follows (state write happens-before the
                // SeqCst fence inside notify()).
                queue.store(1, Ordering::Release);
                slot.notify();
            })
        };

        // Consumer/scheduler side: arm, re-check, park-if-empty.
        slot.arm();
        let parked = queue.load(Ordering::Acquire) == 0;

        producer.join().unwrap();

        if parked {
            // The re-check missed the data, so the producer's fence must
            // have come later in the SC order — its armed read cannot have
            // missed our arm: the wake was delivered.
            assert!(
                woken.0.load(Ordering::Acquire),
                "lost wakeup: consumer parked on observed-empty queue and no wake fired"
            );
        }
    });
}

/// A disarm (task claimed by some other wake source) must either observe the
/// arm itself or lose it to a concurrent notify — never both, never neither.
#[test]
fn arm_is_claimed_exactly_once() {
    loom::model(|| {
        let slot = Arc::new(WakerSlot::new());
        let woken = Arc::new(FlagWaker(AtomicBool::new(false)));
        assert!(slot.register(woken.clone()));

        slot.arm();
        let notifier = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || slot.notify())
        };
        let claimed_by_us = slot.disarm();
        notifier.join().unwrap();

        let wake_fired = woken.0.load(Ordering::Acquire);
        assert!(
            claimed_by_us != wake_fired,
            "arm claimed {} times (disarm={claimed_by_us}, wake={wake_fired})",
            claimed_by_us as u32 + wake_fired as u32,
        );
    });
}
