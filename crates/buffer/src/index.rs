//! Cached-index refresh logic shared by every SPSC ring in the crate.
//!
//! The FastForward-style fast path (see `spsc.rs` module docs) keeps, per
//! endpoint, a **stale conservative cache of the opposite counter** and
//! refreshes it with one Acquire load only when the ring *looks* full
//! (producer) or empty (consumer). Three rings speak this protocol — the
//! fixed [`crate::spsc::BoundedSpsc`], the resizable [`crate::fifo::Fifo`],
//! and the shared-memory [`crate::shm::ShmRing`] — and they must agree on
//! the arithmetic exactly: the counters are monotonically increasing and
//! compared with wrapping subtraction, and a cache that is *behind* the true
//! counter may only ever cause a spurious refresh, never a protocol
//! violation.
//!
//! The helpers are closure-parameterized over the refresh load because the
//! three rings store their counters differently: `spsc.rs` uses
//! [`crate::sync`] atomics (loom-instrumented under `--cfg loom`), `fifo.rs`
//! uses `std` atomics directly, and `shm.rs` reads an `AtomicU64` living
//! inside a mapped segment. Monomorphization collapses each call site to the
//! same two-branch sequence the hand-inlined originals compiled to.

/// Free slots visible to the producer, refreshing `head_cache` if the ring
/// looks too full to accept `want` more elements.
///
/// `tail` is the producer's exact local counter, `capacity` the slot count.
/// `refresh` must perform an **Acquire** load of the shared head counter —
/// it pairs with the consumer's Release store of `head`, ordering the
/// consumer's read-out of a slot before the producer's reuse of it.
///
/// Returns the number of currently free slots (`capacity - occupancy`)
/// as seen through the (possibly just refreshed) cache; the caller pushes
/// at most that many. A return of `0` means genuinely full at refresh time.
#[inline(always)]
pub(crate) fn producer_free_slots(
    tail: usize,
    head_cache: &mut usize,
    capacity: usize,
    want: usize,
    refresh: impl FnOnce() -> usize,
) -> usize {
    if tail.wrapping_sub(*head_cache) + want > capacity {
        // Looks too full through the cache — refresh. The new value is the
        // true head or older, so the room we report stays conservative.
        *head_cache = refresh();
    }
    capacity.saturating_sub(tail.wrapping_sub(*head_cache))
}

/// Elements visible to the consumer, refreshing `tail_cache` if the ring
/// looks empty.
///
/// `head` is the consumer's exact local counter. `refresh` must perform an
/// **Acquire** load of the shared tail counter — it pairs with the
/// producer's Release store of `tail`, making the slots it published
/// visible before the consumer reads them out.
///
/// Returns how many elements are ready (`tail - head` through the cache).
/// A return of `0` means genuinely empty at refresh time (modulo a
/// concurrent push, which the next call observes).
#[inline(always)]
pub(crate) fn consumer_ready_elems(
    head: usize,
    tail_cache: &mut usize,
    refresh: impl FnOnce() -> usize,
) -> usize {
    if head == *tail_cache {
        // Looks empty through the cache — refresh. tail only grows, so the
        // refreshed value can only reveal more elements, never fewer.
        *tail_cache = refresh();
    }
    tail_cache.wrapping_sub(head)
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn producer_skips_refresh_when_cache_shows_room() {
        let mut head_cache = 0;
        let called = Cell::new(false);
        let room = producer_free_slots(3, &mut head_cache, 8, 1, || {
            called.set(true);
            3
        });
        assert_eq!(room, 5);
        assert!(!called.get(), "cache showed room; no shared load needed");
    }

    #[test]
    fn producer_refreshes_on_apparent_full() {
        // tail=8, cache says head=0 → looks full for capacity 8; the
        // refresh reveals the consumer advanced to 5.
        let mut head_cache = 0;
        let room = producer_free_slots(8, &mut head_cache, 8, 1, || 5);
        assert_eq!(head_cache, 5);
        assert_eq!(room, 5);
        // Still full after refresh → zero room.
        let mut head_cache = 0;
        let room = producer_free_slots(8, &mut head_cache, 8, 1, || 0);
        assert_eq!(room, 0);
    }

    #[test]
    fn producer_batch_want_triggers_refresh() {
        // Room for 2 through the cache, but the batch wants 4.
        let mut head_cache = 0;
        let room = producer_free_slots(6, &mut head_cache, 8, 4, || 4);
        assert_eq!(room, 6);
    }

    #[test]
    fn consumer_skips_refresh_when_cache_shows_data() {
        let mut tail_cache = 7;
        let called = Cell::new(false);
        let avail = consumer_ready_elems(4, &mut tail_cache, || {
            called.set(true);
            7
        });
        assert_eq!(avail, 3);
        assert!(!called.get());
    }

    #[test]
    fn consumer_refreshes_on_apparent_empty() {
        let mut tail_cache = 4;
        let avail = consumer_ready_elems(4, &mut tail_cache, || 9);
        assert_eq!(tail_cache, 9);
        assert_eq!(avail, 5);
        let mut tail_cache = 4;
        let avail = consumer_ready_elems(4, &mut tail_cache, || 4);
        assert_eq!(avail, 0);
    }

    #[test]
    fn counters_wrap_safely() {
        // Counters are monotonically increasing usize values that may wrap;
        // the arithmetic must survive the wraparound point.
        let tail = usize::MAX;
        let mut head_cache = usize::MAX - 2;
        let room = producer_free_slots(tail, &mut head_cache, 8, 1, || unreachable!());
        assert_eq!(room, 6);
        let mut tail_cache = usize::MAX;
        let avail = consumer_ready_elems(usize::MAX - 3, &mut tail_cache, || unreachable!());
        assert_eq!(avail, 3);
    }
}
