//! Shared-memory link backing: mapped segments and a cross-process SPSC
//! ring — the paper's second link allocator (§3 names heap, shared memory,
//! and TCP; DESIGN §14 has the selection matrix).
//!
//! ## Segments
//!
//! [`ShmSegment`] wraps an anonymous `memfd_create(2)` file mapped
//! `MAP_SHARED`, created with raw syscalls (no `libc`, same idiom as
//! `core`'s `affinity.rs`). The fd is created **without** `MFD_CLOEXEC`, so
//! a `std::process::Command` child inherits it and attaches by number —
//! that fd is the entire cross-process handshake. Every segment starts with
//! a versioned header (magic, schema, kind, capacity, element layout,
//! total length) that [`ShmSegment::attach`] validates before trusting a
//! single byte; a mismatched peer build is a clean error, not corruption.
//!
//! A heap-backed twin ([`ShmSegment::create_heap`]) provides the same
//! layout on plain memory for platforms without `memfd` and for miri (which
//! cannot execute the inline-asm syscalls). Protocol code never knows the
//! difference.
//!
//! ## The ring
//!
//! [`ShmRing`] places the exact `spsc.rs` protocol inside a segment:
//! cache-line-separated head/tail counters, FastForward-style cached
//! indices (via the shared [`crate::index`] helpers — the shm ring is the
//! third user of that logic, not a third copy), and a single-fence batch
//! publish ([`ShmRingProducer::try_push_batch`]) so PR 7's
//! commit-is-one-store journaling composes. Blocking `push`/`pop` escalate
//! through the same adaptive spin→yield→park [`crate::wait::Waiter`], with
//! the park implemented by [`crate::futex::FutexWaker`] over words in the
//! segment's control line.
//!
//! Elements must be [`ShmItem`] — plain-old-data that is meaningful in
//! another address space. That excludes pointers/handles by construction;
//! variable-size payloads cross by descriptor through [`crate::arena`].
//!
//! ### Trust model
//!
//! `attach` validates the header shape, but a *live* peer is still free to
//! scribble on its side of the protocol. The handles here stay memory-safe
//! regardless: every header-derived quantity (capacity, element layout,
//! data offset) is **snapshotted into the local `ShmSegment` at
//! create/attach and never re-read from the mapping** — a peer rewriting
//! the header after attach changes nothing this process computes with.
//! Every slot index is masked before use, slot types are `Copy` POD (any
//! bit pattern is a value, never UB), and counters are only compared with
//! wrapping arithmetic. A byzantine peer can deliver garbage elements — it
//! cannot make this process read or write out of bounds.

use std::io;
use std::marker::PhantomData;
use std::sync::atomic::{
    AtomicU32, AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};
use std::sync::Arc;
use std::time::Duration;

use crate::error::{PopError, PushError, TryPopError, TryPushError};
use crate::futex::FutexWaker;
use crate::index::{consumer_ready_elems, producer_free_slots};
use crate::wait::{WaitAction, WaitStrategy, Waiter};

/// "RAFTSHM\0" — first eight bytes of every segment.
pub const SEG_MAGIC: u64 = 0x5241_4654_5348_4d00;
/// Bumped on any incompatible layout change; attach requires equality.
pub const SEG_SCHEMA: u32 = 1;
/// Header `kind` for an SPSC ring segment.
pub const SEG_KIND_RING: u32 = 1;
/// Header `kind` for an arena segment (see [`crate::arena`]).
pub const SEG_KIND_ARENA: u32 = 2;

/// Byte offsets of the fixed segment prelude. The header occupies the
/// first cache line; the head and tail counters each get their own line
/// (the producer's tail stores must not invalidate the line the consumer
/// spins on); the fourth line holds the close flags, futex waker words,
/// role-claim words and a general-purpose mailbox. Data begins at
/// [`DATA_OFFSET`] (or higher if the element alignment demands it).
const OFF_MAGIC: usize = 0;
const OFF_SCHEMA: usize = 8;
const OFF_KIND: usize = 12;
const OFF_CAPACITY: usize = 16;
const OFF_ELEM_SIZE: usize = 24;
const OFF_ELEM_ALIGN: usize = 32;
const OFF_TOTAL_LEN: usize = 40;
const OFF_DATA_OFFSET: usize = 48;
const OFF_HEAD: usize = 64;
const OFF_TAIL: usize = 128;
const OFF_PRODUCER_CLOSED: usize = 192;
const OFF_CONSUMER_CLOSED: usize = 196;
const OFF_CONS_ARMED: usize = 200;
const OFF_CONS_SEQ: usize = 204;
const OFF_PROD_ARMED: usize = 208;
const OFF_PROD_SEQ: usize = 212;
const OFF_CLAIM_PRODUCER: usize = 216;
const OFF_CLAIM_CONSUMER: usize = 220;
const OFF_USER_WORD: usize = 224;
/// First data byte (for alignments ≤ 256).
pub const DATA_OFFSET: usize = 256;

/// Park bound for futex waits: a lost cross-process wake (the hot path
/// checks `armed` with a relaxed load; see `futex.rs` module docs) costs at
/// most one timeout, matching `fifo.rs`'s condvar bound.
const SHM_PARK_TIMEOUT: Duration = Duration::from_millis(2);
const SHM_ENDPOINT_WAIT: WaitStrategy = WaitStrategy::parking(SHM_PARK_TIMEOUT);

const PAGE: usize = 4096;

fn align_up(n: usize, a: usize) -> usize {
    (n + a - 1) & !(a - 1)
}

// ---------------------------------------------------------------------------
// Raw syscalls (x86_64 Linux, no libc — affinity.rs idiom).
// ---------------------------------------------------------------------------

#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
mod sys {
    use std::io;

    const PROT_READ: usize = 1;
    const PROT_WRITE: usize = 2;
    const MAP_SHARED: usize = 1;

    fn check(ret: isize) -> io::Result<isize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    /// `memfd_create(name, flags=0)`. No `MFD_CLOEXEC`: the fd must
    /// survive exec so spawned workers can attach by inherited number.
    pub fn memfd_create() -> io::Result<i32> {
        let name = b"raft-shm\0";
        let ret: isize;
        // SAFETY: memfd_create reads the NUL-terminated name and takes no
        // other pointers; clobbers match the x86_64 syscall ABI.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 319isize => ret, // __NR_memfd_create
                in("rdi") name.as_ptr(),
                in("rsi") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        check(ret).map(|fd| fd as i32)
    }

    pub fn ftruncate(fd: i32, len: usize) -> io::Result<()> {
        let ret: isize;
        // SAFETY: ftruncate takes no pointers; ABI clobbers declared.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 77isize => ret, // __NR_ftruncate
                in("rdi") fd as usize,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        check(ret).map(|_| ())
    }

    pub fn mmap_shared(fd: i32, len: usize) -> io::Result<*mut u8> {
        let ret: isize;
        // SAFETY: mmap(NULL, len, RW, SHARED, fd, 0) takes no pointers in;
        // the kernel picks the address. ABI clobbers declared.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 9isize => ret, // __NR_mmap
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") PROT_READ | PROT_WRITE,
                in("r10") MAP_SHARED,
                in("r8") fd as isize,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        // mmap failures come back as -errno in [-4095, -1].
        check(ret).map(|p| p as *mut u8)
    }

    /// # Safety
    /// `ptr..ptr+len` must be a live mapping created by [`mmap_shared`]
    /// and never touched again after this call.
    pub unsafe fn munmap(ptr: *mut u8, len: usize) {
        let _ret: isize;
        // SAFETY: caller contract — the range is a whole live mapping.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 11isize => _ret, // __NR_munmap
                in("rdi") ptr,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
    }

    /// `dup(fd)` — attach duplicates the caller's fd so every segment
    /// owns (and closes) a distinct descriptor.
    pub fn dup(fd: i32) -> io::Result<i32> {
        let ret: isize;
        // SAFETY: dup takes no pointers; ABI clobbers declared.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 32isize => ret, // __NR_dup
                in("rdi") fd as usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        check(ret).map(|fd| fd as i32)
    }

    pub fn close(fd: i32) {
        let _ret: isize;
        // SAFETY: close takes no pointers; ABI clobbers declared.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 3isize => _ret, // __NR_close
                in("rdi") fd as usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
    }

    /// `fstat(fd).st_size` — the only field we need, at byte 48 of the
    /// x86_64 `struct stat`.
    pub fn fstat_size(fd: i32) -> io::Result<usize> {
        let mut statbuf = [0u8; 144];
        let ret: isize;
        // SAFETY: fstat writes at most 144 bytes (sizeof struct stat on
        // x86_64) into the live stack buffer; ABI clobbers declared.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 5isize => ret, // __NR_fstat
                in("rdi") fd as usize,
                in("rsi") statbuf.as_mut_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        check(ret)?;
        let mut size = [0u8; 8];
        size.copy_from_slice(&statbuf[48..56]);
        Ok(i64::from_ne_bytes(size) as usize)
    }
}

// ---------------------------------------------------------------------------
// Segment
// ---------------------------------------------------------------------------

/// A mapped shared-memory segment with a validated, versioned header.
///
/// Created either over a `memfd` (cross-process capable, fd inheritable) or
/// over plain heap memory (same layout, single-process — the fallback for
/// non-Linux targets and for miri). All protocol words live at fixed
/// offsets in the first four cache lines; see the `OFF_*` constants.
pub struct ShmSegment {
    ptr: *mut u8,
    len: usize,
    /// Backing memfd, or `-1` when heap-backed.
    fd: i32,
    /// Set for heap backing so `Drop` can deallocate.
    heap: Option<std::alloc::Layout>,
    // Local snapshot of the header geometry, taken once at create/attach.
    // Bounds and pointer math use ONLY these fields — never the words in
    // the mapping, which a live peer can rewrite at any time (see the
    // trust model in the module docs).
    capacity: usize,
    elem_size: usize,
    elem_align: usize,
    data_offset: usize,
}

// SAFETY: the segment is a raw memory region; all concurrent access goes
// through atomics at fixed offsets or through the ring/arena protocols,
// which impose their own ordering. Moving or sharing the owning struct
// does not move the mapping.
unsafe impl Send for ShmSegment {}
// SAFETY: see Send — `&ShmSegment` only hands out atomic views and raw
// pointers whose use sites carry their own safety contracts.
unsafe impl Sync for ShmSegment {}

impl ShmSegment {
    /// `true` when this build can create real `memfd` segments.
    pub fn memfd_supported() -> bool {
        cfg!(all(target_os = "linux", target_arch = "x86_64", not(miri)))
    }

    fn layout_len(elem_align: usize, data_bytes: usize) -> (usize, usize) {
        let data_offset = align_up(DATA_OFFSET, elem_align.max(8));
        let total = align_up(data_offset + data_bytes, PAGE);
        (data_offset, total)
    }

    /// Create a memfd-backed segment (errors on unsupported platforms).
    #[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
    pub fn create(
        kind: u32,
        capacity: u64,
        elem_size: usize,
        elem_align: usize,
        data_bytes: usize,
    ) -> io::Result<ShmSegment> {
        let (data_offset, total) = Self::layout_len(elem_align, data_bytes);
        let fd = sys::memfd_create()?;
        if let Err(e) = sys::ftruncate(fd, total) {
            sys::close(fd);
            return Err(e);
        }
        let ptr = match sys::mmap_shared(fd, total) {
            Ok(p) => p,
            Err(e) => {
                sys::close(fd);
                return Err(e);
            }
        };
        let seg = ShmSegment {
            ptr,
            len: total,
            fd,
            heap: None,
            capacity: capacity as usize,
            elem_size,
            elem_align,
            data_offset,
        };
        seg.init_header(kind, capacity, elem_size, elem_align, data_offset);
        Ok(seg)
    }

    /// Unsupported platform: always an error (callers fall back to
    /// [`ShmSegment::create_heap`]).
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64", not(miri))))]
    pub fn create(
        _kind: u32,
        _capacity: u64,
        _elem_size: usize,
        _elem_align: usize,
        _data_bytes: usize,
    ) -> io::Result<ShmSegment> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memfd segments require x86_64 Linux",
        ))
    }

    /// Create a heap-backed segment with the identical layout. Works on
    /// every platform (and under miri); cannot cross a process boundary.
    pub fn create_heap(
        kind: u32,
        capacity: u64,
        elem_size: usize,
        elem_align: usize,
        data_bytes: usize,
    ) -> ShmSegment {
        let (data_offset, total) = Self::layout_len(elem_align, data_bytes);
        let layout = std::alloc::Layout::from_size_align(total, PAGE).expect("segment layout");
        // SAFETY: layout has non-zero size (total ≥ one page).
        let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "segment allocation failed");
        let seg = ShmSegment {
            ptr,
            len: total,
            fd: -1,
            heap: Some(layout),
            capacity: capacity as usize,
            elem_size,
            elem_align,
            data_offset,
        };
        seg.init_header(kind, capacity, elem_size, elem_align, data_offset);
        seg
    }

    /// Create a memfd segment when the platform has one, heap otherwise.
    pub fn create_auto(
        kind: u32,
        capacity: u64,
        elem_size: usize,
        elem_align: usize,
        data_bytes: usize,
    ) -> ShmSegment {
        Self::create(kind, capacity, elem_size, elem_align, data_bytes).unwrap_or_else(|_| {
            Self::create_heap(kind, capacity, elem_size, elem_align, data_bytes)
        })
    }

    fn init_header(
        &self,
        kind: u32,
        capacity: u64,
        elem_size: usize,
        elem_align: usize,
        data_offset: usize,
    ) {
        // Creation is single-threaded (the segment has not been shared
        // yet), so plain writes through the word views are fine; the first
        // share (fd pass / Arc clone) provides the ordering.
        self.u64_at(OFF_MAGIC).store(SEG_MAGIC, Relaxed);
        self.u32_at(OFF_SCHEMA).store(SEG_SCHEMA, Relaxed);
        self.u32_at(OFF_KIND).store(kind, Relaxed);
        self.u64_at(OFF_CAPACITY).store(capacity, Relaxed);
        self.u64_at(OFF_ELEM_SIZE).store(elem_size as u64, Relaxed);
        self.u64_at(OFF_ELEM_ALIGN)
            .store(elem_align as u64, Relaxed);
        self.u64_at(OFF_TOTAL_LEN).store(self.len as u64, Relaxed);
        self.u64_at(OFF_DATA_OFFSET)
            .store(data_offset as u64, Relaxed);
    }

    /// Map an inherited fd and validate its header against expectations.
    ///
    /// Rejects (with `InvalidData`) any magic/schema mismatch, a `kind`
    /// other than `expect_kind`, or a header whose total length disagrees
    /// with the file's actual size — a truncated or foreign segment never
    /// gets a single protocol access. The chaos harness can fail this call
    /// via the `buffer::shm::attach` failpoint.
    #[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
    pub fn attach(fd: i32, expect_kind: u32) -> io::Result<ShmSegment> {
        crate::failpoint!("buffer::shm::attach");
        #[cfg(feature = "raft_failpoints")]
        if matches!(
            crate::failpoints::check("buffer::shm::attach"),
            Some(crate::failpoints::FailAction::ShortIo)
        ) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "failpoint: segment attach rejected",
            ));
        }
        // Own a private duplicate: the caller keeps its fd, and this
        // segment's Drop closes only what it owns.
        let fd = sys::dup(fd)?;
        let total = match sys::fstat_size(fd) {
            Ok(t) => t,
            Err(e) => {
                sys::close(fd);
                return Err(e);
            }
        };
        if total < DATA_OFFSET || total % PAGE != 0 {
            sys::close(fd);
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "segment too small or unaligned",
            ));
        }
        let ptr = match sys::mmap_shared(fd, total) {
            Ok(p) => p,
            Err(e) => {
                sys::close(fd);
                return Err(e);
            }
        };
        let mut seg = ShmSegment {
            ptr,
            len: total,
            fd,
            heap: None,
            capacity: 0,
            elem_size: 0,
            elem_align: 0,
            data_offset: 0,
        };
        // Read the header geometry exactly once, validated, and freeze it
        // into the local fields; nothing re-reads it afterwards.
        seg.snapshot_header(expect_kind)?;
        Ok(seg)
    }

    /// Unsupported platform: attach always fails.
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64", not(miri))))]
    pub fn attach(_fd: i32, _expect_kind: u32) -> io::Result<ShmSegment> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memfd segments require x86_64 Linux",
        ))
    }

    /// Validate the mapped header once and copy its geometry into the
    /// local fields. Called only from `attach`; the header is never read
    /// again after this returns.
    #[cfg_attr(
        not(all(target_os = "linux", target_arch = "x86_64", not(miri))),
        allow(dead_code)
    )]
    fn snapshot_header(&mut self, expect_kind: u32) -> io::Result<()> {
        let fail = |what: &str| Err(io::Error::new(io::ErrorKind::InvalidData, what.to_string()));
        if self.u64_at(OFF_MAGIC).load(Relaxed) != SEG_MAGIC {
            return fail("bad segment magic");
        }
        if self.u32_at(OFF_SCHEMA).load(Relaxed) != SEG_SCHEMA {
            return fail("segment schema version mismatch");
        }
        if self.u32_at(OFF_KIND).load(Relaxed) != expect_kind {
            return fail("segment kind mismatch");
        }
        if self.u64_at(OFF_TOTAL_LEN).load(Relaxed) != self.len as u64 {
            return fail("segment length disagrees with header");
        }
        let elem_align = self.u64_at(OFF_ELEM_ALIGN).load(Relaxed) as usize;
        if elem_align == 0 || !elem_align.is_power_of_two() {
            return fail("segment element alignment not a power of two");
        }
        let data_offset = self.u64_at(OFF_DATA_OFFSET).load(Relaxed) as usize;
        if data_offset < DATA_OFFSET || data_offset > self.len {
            return fail("segment data offset out of range");
        }
        // Misaligned data would turn every slot (and the arena's atomic
        // generation words) into UB, not a clean error — reject it here.
        if !data_offset.is_multiple_of(elem_align.max(8)) {
            return fail("segment data offset misaligned for element");
        }
        self.capacity = self.u64_at(OFF_CAPACITY).load(Relaxed) as usize;
        self.elem_size = self.u64_at(OFF_ELEM_SIZE).load(Relaxed) as usize;
        self.elem_align = elem_align;
        self.data_offset = data_offset;
        Ok(())
    }

    /// The inheritable backing fd (`None` for heap segments).
    pub fn fd(&self) -> Option<i32> {
        (self.fd >= 0).then_some(self.fd)
    }

    /// `true` when backed by a real memfd (cross-process capable).
    pub fn is_memfd(&self) -> bool {
        self.fd >= 0
    }

    /// Element capacity (local snapshot taken at create/attach).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Element size (local snapshot taken at create/attach).
    pub fn elem_size(&self) -> usize {
        self.elem_size
    }

    /// Element alignment (local snapshot taken at create/attach).
    pub fn elem_align(&self) -> usize {
        self.elem_align
    }

    /// Bytes available in the data region.
    pub fn data_len(&self) -> usize {
        self.len - self.data_offset
    }

    /// First byte of the data region.
    pub fn data_ptr(&self) -> *mut u8 {
        // In-bounds by construction: data_offset ≤ len, and it is a local
        // field (validated once at attach, computed at create) that a peer
        // rewriting the header word cannot move.
        self.ptr.wrapping_add(self.data_offset)
    }

    #[inline]
    fn u64_at(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off + 8 <= self.len && off.is_multiple_of(8));
        // SAFETY: the prelude offsets are all within the first page of a
        // mapping at least one page long, 8-aligned on a page-aligned
        // base; AtomicU64 has the same layout as u64 and any bit pattern
        // is valid. The returned borrow cannot outlive the mapping
        // (lifetime tied to &self, Drop unmaps only with exclusive access).
        unsafe { &*(self.ptr.add(off) as *const AtomicU64) }
    }

    #[inline]
    fn u32_at(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off + 4 <= self.len && off.is_multiple_of(4));
        // SAFETY: as `u64_at`, with 4-byte alignment.
        unsafe { &*(self.ptr.add(off) as *const AtomicU32) }
    }

    /// Shared ring head (next read index).
    #[inline]
    pub fn head(&self) -> &AtomicU64 {
        self.u64_at(OFF_HEAD)
    }

    /// Shared ring tail (next write index).
    #[inline]
    pub fn tail(&self) -> &AtomicU64 {
        self.u64_at(OFF_TAIL)
    }

    /// Producer-gone flag.
    #[inline]
    pub fn producer_closed(&self) -> &AtomicU32 {
        self.u32_at(OFF_PRODUCER_CLOSED)
    }

    /// Consumer-gone flag.
    #[inline]
    pub fn consumer_closed(&self) -> &AtomicU32 {
        self.u32_at(OFF_CONSUMER_CLOSED)
    }

    /// Waker the producer notifies when data becomes visible.
    #[inline]
    pub fn consumer_waker(&self) -> FutexWaker<'_> {
        FutexWaker::new(self.u32_at(OFF_CONS_ARMED), self.u32_at(OFF_CONS_SEQ))
    }

    /// Waker the consumer notifies when space becomes visible.
    #[inline]
    pub fn producer_waker(&self) -> FutexWaker<'_> {
        FutexWaker::new(self.u32_at(OFF_PROD_ARMED), self.u32_at(OFF_PROD_SEQ))
    }

    /// General-purpose mailbox word (benches use it for end-of-run acks).
    #[inline]
    pub fn user_word(&self) -> &AtomicU64 {
        self.u64_at(OFF_USER_WORD)
    }

    /// Claim the producer or consumer role exactly once per segment
    /// lifetime; `false` means another handle (possibly in another
    /// process) already holds it.
    pub fn claim_role(&self, producer: bool) -> bool {
        let word = self.u32_at(if producer {
            OFF_CLAIM_PRODUCER
        } else {
            OFF_CLAIM_CONSUMER
        });
        word.compare_exchange(0, 1, Acquire, Relaxed).is_ok()
    }
}

impl Drop for ShmSegment {
    fn drop(&mut self) {
        match self.heap {
            Some(layout) => {
                // SAFETY: allocated in create_heap with this exact layout;
                // Drop has exclusive access, so no views remain.
                unsafe { std::alloc::dealloc(self.ptr, layout) };
            }
            None => {
                #[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
                {
                    // SAFETY: ptr/len are the live mapping created by
                    // create/attach; nothing touches it after Drop.
                    unsafe { sys::munmap(self.ptr, self.len) };
                    sys::close(self.fd);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ShmItem
// ---------------------------------------------------------------------------

/// Plain-old-data that may cross a process boundary through a shared ring.
///
/// # Safety
/// Implementors must be `Copy` types for which **every bit pattern is a
/// valid value** and whose meaning does not depend on the address space
/// (no pointers, no handles, no padding with invariants). The ring reads
/// elements straight out of shared memory; a type that violates this can
/// turn a byzantine peer into undefined behavior.
pub unsafe trait ShmItem: Copy + Send + 'static {}

// SAFETY: fixed-width integers and floats are address-space-independent
// and valid for every bit pattern.
unsafe impl ShmItem for u8 {}
// SAFETY: see u8.
unsafe impl ShmItem for u16 {}
// SAFETY: see u8.
unsafe impl ShmItem for u32 {}
// SAFETY: see u8.
unsafe impl ShmItem for u64 {}
// SAFETY: see u8.
unsafe impl ShmItem for usize {}
// SAFETY: see u8.
unsafe impl ShmItem for i8 {}
// SAFETY: see u8.
unsafe impl ShmItem for i16 {}
// SAFETY: see u8.
unsafe impl ShmItem for i32 {}
// SAFETY: see u8.
unsafe impl ShmItem for i64 {}
// SAFETY: see u8.
unsafe impl ShmItem for isize {}
// SAFETY: see u8.
unsafe impl ShmItem for f32 {}
// SAFETY: see u8.
unsafe impl ShmItem for f64 {}
// SAFETY: an array of ShmItems has no padding invariants of its own.
unsafe impl<T: ShmItem, const N: usize> ShmItem for [T; N] {}

// ---------------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------------

/// Factory for shared-memory SPSC rings of `T`.
///
/// Same protocol as [`crate::spsc::BoundedSpsc`]; the two handles may live
/// in different processes, connected by the segment fd.
pub struct ShmRing<T>(PhantomData<T>);

/// Producing half of a [`ShmRing`]; one per segment, enforced by a
/// CAS-claimed role word in the header.
pub struct ShmRingProducer<T> {
    seg: Arc<ShmSegment>,
    mask: usize,
    /// Local mirror of the shared tail — exact between calls.
    tail: usize,
    /// Stale conservative copy of the shared head (see `crate::index`).
    head_cache: usize,
    _marker: PhantomData<fn(T)>,
}

/// Consuming half of a [`ShmRing`].
pub struct ShmRingConsumer<T> {
    seg: Arc<ShmSegment>,
    mask: usize,
    /// Local mirror of the shared head — exact between calls.
    head: usize,
    /// Stale conservative copy of the shared tail (see `crate::index`).
    tail_cache: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: ShmItem> ShmRing<T> {
    fn ring_segment(capacity: usize, memfd: bool) -> io::Result<ShmSegment> {
        let capacity = capacity.max(1).next_power_of_two();
        let bytes = capacity * std::mem::size_of::<T>();
        let (size, align) = (std::mem::size_of::<T>(), std::mem::align_of::<T>());
        if memfd {
            ShmSegment::create(SEG_KIND_RING, capacity as u64, size, align, bytes)
        } else {
            Ok(ShmSegment::create_heap(
                SEG_KIND_RING,
                capacity as u64,
                size,
                align,
                bytes,
            ))
        }
    }

    /// In-process pair over one segment (memfd when available, heap
    /// otherwise) — the single-address-space configuration used by tests
    /// and the descriptor bench.
    #[allow(clippy::new_ret_no_self)]
    pub fn pair(capacity: usize) -> (ShmRingProducer<T>, ShmRingConsumer<T>) {
        let memfd = ShmSegment::memfd_supported();
        let seg = Arc::new(Self::ring_segment(capacity, memfd).unwrap_or_else(|_| {
            Self::ring_segment(capacity, false).expect("heap ring segment cannot fail")
        }));
        assert!(seg.claim_role(true) && seg.claim_role(false));
        (Self::producer_over(seg.clone()), Self::consumer_over(seg))
    }

    /// Create a memfd ring and take the producer role; pass the returned
    /// fd to the peer process for [`ShmRing::attach_consumer`].
    pub fn create_producer(capacity: usize) -> io::Result<(ShmRingProducer<T>, i32)> {
        let seg = Self::ring_segment(capacity, true)?;
        let fd = seg.fd().expect("memfd segment has an fd");
        assert!(seg.claim_role(true), "fresh segment role");
        Ok((Self::producer_over(Arc::new(seg)), fd))
    }

    /// Create a memfd ring and take the consumer role (for result paths
    /// flowing child → parent).
    pub fn create_consumer(capacity: usize) -> io::Result<(ShmRingConsumer<T>, i32)> {
        let seg = Self::ring_segment(capacity, true)?;
        let fd = seg.fd().expect("memfd segment has an fd");
        assert!(seg.claim_role(false), "fresh segment role");
        Ok((Self::consumer_over(Arc::new(seg)), fd))
    }

    /// Attach to an inherited fd as the producer. Validates the header
    /// (magic, schema, kind, capacity, element layout) and claims the
    /// producer role; both can fail cleanly.
    pub fn attach_producer(fd: i32) -> io::Result<ShmRingProducer<T>> {
        let seg = Self::attach_ring(fd)?;
        if !seg.claim_role(true) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                "producer role already claimed",
            ));
        }
        Ok(Self::producer_over(Arc::new(seg)))
    }

    /// Attach to an inherited fd as the consumer (see
    /// [`ShmRing::attach_producer`]).
    pub fn attach_consumer(fd: i32) -> io::Result<ShmRingConsumer<T>> {
        let seg = Self::attach_ring(fd)?;
        if !seg.claim_role(false) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                "consumer role already claimed",
            ));
        }
        Ok(Self::consumer_over(Arc::new(seg)))
    }

    fn attach_ring(fd: i32) -> io::Result<ShmSegment> {
        let seg = ShmSegment::attach(fd, SEG_KIND_RING)?;
        let cap = seg.capacity();
        let fail = |what: &str| Err(io::Error::new(io::ErrorKind::InvalidData, what.to_string()));
        if !cap.is_power_of_two() {
            return fail("ring capacity not a power of two");
        }
        if seg.elem_size() != std::mem::size_of::<T>()
            || seg.elem_align() != std::mem::align_of::<T>()
        {
            return fail("ring element layout mismatch");
        }
        match cap.checked_mul(seg.elem_size()) {
            Some(bytes) if bytes <= seg.data_len() => {}
            _ => return fail("ring data region smaller than capacity"),
        }
        Ok(seg)
    }

    fn producer_over(seg: Arc<ShmSegment>) -> ShmRingProducer<T> {
        let mask = seg.capacity() - 1;
        let tail = seg.tail().load(Relaxed) as usize;
        let head_cache = seg.head().load(Relaxed) as usize;
        ShmRingProducer {
            seg,
            mask,
            tail,
            head_cache,
            _marker: PhantomData,
        }
    }

    fn consumer_over(seg: Arc<ShmSegment>) -> ShmRingConsumer<T> {
        let mask = seg.capacity() - 1;
        let head = seg.head().load(Relaxed) as usize;
        let tail_cache = seg.tail().load(Relaxed) as usize;
        ShmRingConsumer {
            seg,
            mask,
            head,
            tail_cache,
            _marker: PhantomData,
        }
    }
}

impl<T: ShmItem> ShmRingProducer<T> {
    #[inline]
    fn slot_ptr(&self, idx: usize) -> *mut T {
        // Masked index: always inside the validated data region.
        self.seg
            .data_ptr()
            .cast::<T>()
            .wrapping_add(idx & self.mask)
    }

    /// Non-blocking push (same protocol as `spsc.rs::try_push`).
    #[inline]
    pub fn try_push(&mut self, value: T) -> Result<(), TryPushError<T>> {
        let seg = &*self.seg;
        if seg.consumer_closed().load(Relaxed) == 1 {
            return Err(TryPushError::Closed(value));
        }
        let tail = self.tail;
        // Shared cached-index fast path (see `crate::index`): refresh pairs
        // Acquire with the consumer's Release store of `head`.
        let room = producer_free_slots(tail, &mut self.head_cache, self.mask + 1, 1, || {
            seg.head().load(Acquire) as usize
        });
        if room == 0 {
            return Err(TryPushError::Full(value));
        }
        // SAFETY: slot `tail & mask` is outside the live region (checked
        // against a conservative head), in-bounds by the attach-time size
        // validation, and we are the sole producer (role-claimed handle,
        // `&mut self`). The Release store below publishes the write.
        unsafe { self.slot_ptr(tail).write(value) };
        seg.tail().store((tail + 1) as u64, Release);
        self.tail = tail + 1;
        seg.consumer_waker().notify_if_armed();
        Ok(())
    }

    /// Push as many of `items` as currently fit, publishing the whole
    /// batch with **one** Release store of `tail` — the single-fence batch
    /// publish the journaling layer's commit relies on. Returns the count
    /// actually pushed.
    pub fn try_push_batch(&mut self, items: &[T]) -> usize {
        if items.is_empty() {
            return 0;
        }
        let seg = &*self.seg;
        if seg.consumer_closed().load(Relaxed) == 1 {
            return 0;
        }
        let tail = self.tail;
        let room = producer_free_slots(
            tail,
            &mut self.head_cache,
            self.mask + 1,
            items.len(),
            || seg.head().load(Acquire) as usize,
        );
        let n = room.min(items.len());
        for (i, v) in items[..n].iter().enumerate() {
            // SAFETY: slots [tail, tail+n) are outside the live region and
            // in-bounds after masking; nothing reads them until the single
            // Release store below publishes the batch.
            unsafe { self.slot_ptr(tail + i).write(*v) };
        }
        if n > 0 {
            seg.tail().store((tail + n) as u64, Release);
            self.tail = tail + n;
            seg.consumer_waker().notify_if_armed();
        }
        n
    }

    /// Blocking push: adaptive spin→yield→futex-park until the element
    /// fits or the consumer disconnects.
    pub fn push(&mut self, mut value: T) -> Result<(), PushError<T>> {
        let mut waiter = Waiter::new(SHM_ENDPOINT_WAIT);
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(TryPushError::Closed(v)) => return Err(PushError(v)),
                Err(TryPushError::Full(v)) => value = v,
            }
            if waiter.pause_or_park() == WaitAction::Park {
                let w = self.seg.producer_waker();
                let epoch = w.arm();
                // Re-check under the arm: a pop or close that landed
                // before the arm's fence is visible here; one that lands
                // after will observe the arm and notify.
                let head = self.seg.head().load(Acquire) as usize;
                if self.tail.wrapping_sub(head) < self.mask + 1
                    || self.seg.consumer_closed().load(Relaxed) == 1
                {
                    w.disarm();
                    continue;
                }
                w.wait(epoch, Some(SHM_PARK_TIMEOUT));
            }
        }
    }

    /// Ring capacity in elements.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Elements currently queued (telemetry estimate).
    pub fn occupancy(&self) -> usize {
        let seg = &*self.seg;
        (seg.tail().load(Acquire) as usize).saturating_sub(seg.head().load(Acquire) as usize)
    }

    /// `true` once the consumer side is gone.
    pub fn is_closed(&self) -> bool {
        self.seg.consumer_closed().load(Relaxed) == 1
    }

    /// The backing segment (fd, mailbox word, …).
    pub fn segment(&self) -> &ShmSegment {
        &self.seg
    }
}

impl<T> Drop for ShmRingProducer<T> {
    fn drop(&mut self) {
        self.seg.producer_closed().store(1, Release);
        // Full-contract notify: a consumer parked right now must see EoS.
        self.seg.consumer_waker().notify();
    }
}

impl<T: ShmItem> ShmRingConsumer<T> {
    #[inline]
    fn slot_ptr(&self, idx: usize) -> *const T {
        (self.seg.data_ptr() as *const T).wrapping_add(idx & self.mask)
    }

    /// Non-blocking pop (same protocol as `spsc.rs::try_pop`).
    #[inline]
    pub fn try_pop(&mut self) -> Result<T, TryPopError> {
        let seg = &*self.seg;
        let head = self.head;
        // Shared cached-index fast path (see `crate::index`): refresh pairs
        // Acquire with the producer's Release store of `tail`.
        let avail = consumer_ready_elems(head, &mut self.tail_cache, || {
            seg.tail().load(Acquire) as usize
        });
        if avail == 0 {
            return if seg.producer_closed().load(Acquire) == 1 {
                // Re-check: the producer may have pushed between our tail
                // load and its close.
                self.tail_cache = seg.tail().load(Acquire) as usize;
                if self.tail_cache == head {
                    Err(TryPopError::Closed)
                } else {
                    Err(TryPopError::Empty)
                }
            } else {
                Err(TryPopError::Empty)
            };
        }
        // SAFETY: `head < tail` observed via Acquire, pairing with the
        // producer's Release publish — the slot holds a fully written T
        // (POD: any bit pattern valid), in-bounds after masking, and the
        // producer will not reuse it until our Release store of `head`.
        let value = unsafe { self.slot_ptr(head).read() };
        seg.head().store((head + 1) as u64, Release);
        self.head = head + 1;
        seg.producer_waker().notify_if_armed();
        Ok(value)
    }

    /// Pop up to `out.len()` elements, freeing the whole run with one
    /// Release store of `head`. Returns the count written into `out`.
    pub fn try_pop_batch(&mut self, out: &mut [T]) -> usize {
        if out.is_empty() {
            return 0;
        }
        let seg = &*self.seg;
        let head = self.head;
        let avail = consumer_ready_elems(head, &mut self.tail_cache, || {
            seg.tail().load(Acquire) as usize
        });
        let n = avail.min(out.len());
        for (i, slot) in out[..n].iter_mut().enumerate() {
            // SAFETY: indices [head, head+n) are inside the live region
            // observed through the Acquire tail load above; see try_pop.
            *slot = unsafe { self.slot_ptr(head + i).read() };
        }
        if n > 0 {
            seg.head().store((head + n) as u64, Release);
            self.head = head + n;
            seg.producer_waker().notify_if_armed();
        }
        n
    }

    /// Blocking pop; `Err` once the producer closed *and* the ring
    /// drained.
    pub fn pop(&mut self) -> Result<T, PopError> {
        let mut waiter = Waiter::new(SHM_ENDPOINT_WAIT);
        loop {
            match self.try_pop() {
                Ok(v) => return Ok(v),
                Err(TryPopError::Closed) => return Err(PopError),
                Err(TryPopError::Empty) => {}
            }
            if waiter.pause_or_park() == WaitAction::Park {
                let w = self.seg.consumer_waker();
                let epoch = w.arm();
                let tail = self.seg.tail().load(Acquire) as usize;
                if tail != self.head || self.seg.producer_closed().load(Relaxed) == 1 {
                    w.disarm();
                    continue;
                }
                w.wait(epoch, Some(SHM_PARK_TIMEOUT));
            }
        }
    }

    /// Ring capacity in elements.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Elements currently queued (telemetry estimate).
    pub fn occupancy(&self) -> usize {
        let seg = &*self.seg;
        (seg.tail().load(Acquire) as usize).saturating_sub(seg.head().load(Acquire) as usize)
    }

    /// `true` once the producer closed and the ring drained.
    pub fn is_finished(&self) -> bool {
        self.seg.producer_closed().load(Acquire) == 1 && self.occupancy() == 0
    }

    /// The backing segment (fd, mailbox word, …).
    pub fn segment(&self) -> &ShmSegment {
        &self.seg
    }
}

impl<T> Drop for ShmRingConsumer<T> {
    fn drop(&mut self) {
        self.seg.consumer_closed().store(1, Release);
        self.seg.producer_waker().notify();
    }
}

// SAFETY: one non-Clone handle per role (CAS-enforced even across
// processes); moving it moves the role, and elements are ShmItem (POD).
unsafe impl<T: ShmItem> Send for ShmRingProducer<T> {}
// SAFETY: see ShmRingProducer.
unsafe impl<T: ShmItem> Send for ShmRingConsumer<T> {}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn heap_segment_layout_roundtrip() {
        let seg = ShmSegment::create_heap(SEG_KIND_RING, 8, 8, 8, 64);
        assert_eq!(seg.capacity(), 8);
        assert_eq!(seg.elem_size(), 8);
        assert!(!seg.is_memfd());
        assert!(seg.data_len() >= 64);
        assert_eq!(seg.data_ptr() as usize % 8, 0);
    }

    #[test]
    fn memfd_segment_create_and_attach() {
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        let seg = ShmSegment::create(SEG_KIND_RING, 16, 4, 4, 64).unwrap();
        let fd = seg.fd().unwrap();
        seg.user_word().store(0xBEEF, Release);
        // Second mapping of the same fd sees the first one's writes.
        let peer = ShmSegment::attach(fd, SEG_KIND_RING).unwrap();
        assert_eq!(peer.user_word().load(Acquire), 0xBEEF);
        assert_eq!(peer.capacity(), 16);
        // Kind mismatch rejected.
        assert!(ShmSegment::attach(fd, SEG_KIND_ARENA).is_err());
        // attach dups the fd, so each segment closes its own descriptor.
        drop(peer);
        drop(seg);
    }

    #[test]
    fn ring_push_pop_in_order() {
        let (mut p, mut c) = ShmRing::<u64>::pair(4);
        for i in 0..4u64 {
            p.try_push(i).unwrap();
        }
        assert!(matches!(p.try_push(9), Err(TryPushError::Full(9))));
        for i in 0..4u64 {
            assert_eq!(c.try_pop().unwrap(), i);
        }
        assert!(matches!(c.try_pop(), Err(TryPopError::Empty)));
    }

    #[test]
    fn ring_batch_publish_and_drain() {
        let (mut p, mut c) = ShmRing::<u32>::pair(8);
        let items: Vec<u32> = (0..6).collect();
        assert_eq!(p.try_push_batch(&items), 6);
        let mut out = [0u32; 8];
        assert_eq!(c.try_pop_batch(&mut out), 6);
        assert_eq!(&out[..6], &[0, 1, 2, 3, 4, 5]);
        // Batch larger than room pushes only what fits.
        let items: Vec<u32> = (0..20).collect();
        assert_eq!(p.try_push_batch(&items), 8);
    }

    #[test]
    fn ring_close_semantics() {
        let (mut p, mut c) = ShmRing::<u64>::pair(4);
        p.try_push(1).unwrap();
        drop(p);
        assert_eq!(c.try_pop().unwrap(), 1);
        assert!(matches!(c.try_pop(), Err(TryPopError::Closed)));
        assert!(c.is_finished());
    }

    #[test]
    fn ring_cross_thread_blocking_transfer() {
        let (mut p, mut c) = ShmRing::<u64>::pair(16);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                p.push(i).unwrap();
            }
        });
        let mut expected = 0;
        while let Ok(v) = c.pop() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, N);
        producer.join().unwrap();
    }

    #[test]
    fn role_claims_are_exclusive() {
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        let (p, fd) = ShmRing::<u64>::create_producer(8).unwrap();
        // Producer role is taken; attaching as producer must fail, as
        // consumer must succeed exactly once.
        assert!(ShmRing::<u64>::attach_producer(fd).is_err());
        let c = ShmRing::<u64>::attach_consumer(fd).unwrap();
        assert!(ShmRing::<u64>::attach_consumer(fd).is_err());
        drop((p, c));
    }

    #[test]
    fn geometry_snapshot_ignores_header_rewrites() {
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        // Attach a peer, then scribble over the header the way a byzantine
        // process could: the peer's snapshotted geometry must not move.
        let seg = ShmSegment::create(SEG_KIND_RING, 16, 8, 8, 128).unwrap();
        let peer = ShmSegment::attach(seg.fd().unwrap(), SEG_KIND_RING).unwrap();
        let (ptr, len, cap) = (peer.data_ptr(), peer.data_len(), peer.capacity());
        seg.u64_at(OFF_DATA_OFFSET).store(u64::MAX, Relaxed);
        seg.u64_at(OFF_CAPACITY).store(u64::MAX, Relaxed);
        seg.u64_at(OFF_ELEM_SIZE).store(u64::MAX, Relaxed);
        assert_eq!(peer.data_ptr(), ptr);
        assert_eq!(peer.data_len(), len);
        assert_eq!(peer.capacity(), cap);
    }

    #[test]
    fn attach_rejects_misaligned_data_offset() {
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        let seg = ShmSegment::create(SEG_KIND_RING, 16, 8, 8, 128).unwrap();
        let fd = seg.fd().unwrap();
        // data_offset = 260: in range, 4-aligned, but not 8-aligned — slot
        // reads of u64 would be UB, so attach must reject it cleanly.
        seg.u64_at(OFF_DATA_OFFSET).store(260, Relaxed);
        assert!(ShmSegment::attach(fd, SEG_KIND_RING).is_err());
        // Non-power-of-two element alignment is rejected too.
        seg.u64_at(OFF_DATA_OFFSET).store(DATA_OFFSET as u64, Relaxed);
        seg.u64_at(OFF_ELEM_ALIGN).store(24, Relaxed);
        assert!(ShmSegment::attach(fd, SEG_KIND_RING).is_err());
        // Restoring the header makes attach succeed again.
        seg.u64_at(OFF_ELEM_ALIGN).store(8, Relaxed);
        assert!(ShmSegment::attach(fd, SEG_KIND_RING).is_ok());
    }

    #[test]
    fn attach_rejects_element_layout_mismatch() {
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        let (_p, fd) = ShmRing::<u64>::create_producer(8).unwrap();
        assert!(ShmRing::<u32>::attach_consumer(fd).is_err());
    }
}
