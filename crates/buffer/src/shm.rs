//! Shared-memory link backing: mapped segments and a cross-process SPSC
//! ring — the paper's second link allocator (§3 names heap, shared memory,
//! and TCP; DESIGN §14 has the selection matrix).
//!
//! ## Segments
//!
//! [`ShmSegment`] wraps an anonymous `memfd_create(2)` file mapped
//! `MAP_SHARED`, created with raw syscalls (no `libc`, same idiom as
//! `core`'s `affinity.rs`). The fd is created **without** `MFD_CLOEXEC`, so
//! a `std::process::Command` child inherits it and attaches by number —
//! that fd is the entire cross-process handshake. Every segment starts with
//! a versioned header (magic, schema, kind, capacity, element layout,
//! total length) that [`ShmSegment::attach`] validates before trusting a
//! single byte; a mismatched peer build is a clean error, not corruption.
//!
//! A heap-backed twin ([`ShmSegment::create_heap`]) provides the same
//! layout on plain memory for platforms without `memfd` and for miri (which
//! cannot execute the inline-asm syscalls). Protocol code never knows the
//! difference.
//!
//! ## The ring
//!
//! [`ShmRing`] places the exact `spsc.rs` protocol inside a segment:
//! cache-line-separated head/tail counters, FastForward-style cached
//! indices (via the shared [`crate::index`] helpers — the shm ring is the
//! third user of that logic, not a third copy), and a single-fence batch
//! publish ([`ShmRingProducer::try_push_batch`]) so PR 7's
//! commit-is-one-store journaling composes. Blocking `push`/`pop` escalate
//! through the same adaptive spin→yield→park [`crate::wait::Waiter`], with
//! the park implemented by [`crate::futex::FutexWaker`] over words in the
//! segment's control line.
//!
//! Elements must be [`ShmItem`] — plain-old-data that is meaningful in
//! another address space. That excludes pointers/handles by construction;
//! variable-size payloads cross by descriptor through [`crate::arena`].
//!
//! ### Trust model
//!
//! `attach` validates the header shape, but a *live* peer is still free to
//! scribble on its side of the protocol. The handles here stay memory-safe
//! regardless: every header-derived quantity (capacity, element layout,
//! data offset) is **snapshotted into the local `ShmSegment` at
//! create/attach and never re-read from the mapping** — a peer rewriting
//! the header after attach changes nothing this process computes with.
//! Every slot index is masked before use, slot types are `Copy` POD (any
//! bit pattern is a value, never UB), and counters are only compared with
//! wrapping arithmetic. A byzantine peer can deliver garbage elements — it
//! cannot make this process read or write out of bounds.
//!
//! ## Role reclaim (generations)
//!
//! The producer/consumer role words are **generation counters**: even =
//! free at generation *g*, odd = claimed. A fresh segment starts at 0;
//! claiming CASes even→odd, and a supervisor that has *reaped* a dead
//! role-holder revokes the claim by CASing that exact odd generation back
//! to even ([`ShmSegment::revoke_role`]) — a mismatched generation is
//! refused, so a live (or already-reclaimed) worker's role can never be
//! stolen out from under it. A respawned worker then claims the next odd
//! generation and resumes over the same mapping. Anything the dead worker
//! left behind fails cleanly against the new epoch: its arena descriptors
//! carry stale slot generations, its futex arms cost at most one bounded
//! park, and its un-popped ring residue is discarded by
//! [`ShmSegment::drain_residue`] before the journal replays it.
//!
//! The header also carries a heartbeat eventcount ([`ShmSegment::heartbeat`])
//! a worker bumps per processed item and a watcher futex-parks on, plus a
//! cumulative commit word ([`ShmSegment::commit_word`]) — the cross-process
//! ack cursor that lets the parent's [`JournaledShmProducer`] retire replay
//! entries the worker has fully processed.

use std::io;
use std::marker::PhantomData;
use std::sync::atomic::{
    AtomicU32, AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};
use std::sync::Arc;
use std::time::Duration;

use crate::error::{PopError, PushError, TryPopError, TryPushError};
use crate::futex::FutexWaker;
use crate::index::{consumer_ready_elems, producer_free_slots};
use crate::journal::ReplayWindow;
use crate::wait::{WaitAction, WaitStrategy, Waiter};

/// "RAFTSHM\0" — first eight bytes of every segment.
pub const SEG_MAGIC: u64 = 0x5241_4654_5348_4d00;
/// Bumped on any incompatible layout or protocol change; attach requires
/// equality. Schema 2 added generation-bumped role reclaim and the
/// heartbeat/commit supervision words — a schema-1 peer would treat a
/// revoked role word as "claimed forever", so the bump keeps mixed builds
/// from silently disagreeing about liveness.
pub const SEG_SCHEMA: u32 = 2;
/// Header `kind` for an SPSC ring segment.
pub const SEG_KIND_RING: u32 = 1;
/// Header `kind` for an arena segment (see [`crate::arena`]).
pub const SEG_KIND_ARENA: u32 = 2;

/// Byte offsets of the fixed segment prelude. The header occupies the
/// first cache line; the head and tail counters each get their own line
/// (the producer's tail stores must not invalidate the line the consumer
/// spins on); the fourth line holds the close flags, futex waker words,
/// role-claim words and a general-purpose mailbox. Data begins at
/// [`DATA_OFFSET`] (or higher if the element alignment demands it).
const OFF_MAGIC: usize = 0;
const OFF_SCHEMA: usize = 8;
const OFF_KIND: usize = 12;
const OFF_CAPACITY: usize = 16;
const OFF_ELEM_SIZE: usize = 24;
const OFF_ELEM_ALIGN: usize = 32;
const OFF_TOTAL_LEN: usize = 40;
const OFF_DATA_OFFSET: usize = 48;
const OFF_HEAD: usize = 64;
const OFF_TAIL: usize = 128;
const OFF_PRODUCER_CLOSED: usize = 192;
const OFF_CONSUMER_CLOSED: usize = 196;
const OFF_CONS_ARMED: usize = 200;
const OFF_CONS_SEQ: usize = 204;
const OFF_PROD_ARMED: usize = 208;
const OFF_PROD_SEQ: usize = 212;
const OFF_CLAIM_PRODUCER: usize = 216;
const OFF_CLAIM_CONSUMER: usize = 220;
const OFF_USER_WORD: usize = 224;
/// Supervision words (schema 2): heartbeat eventcount (armed + seq) and
/// the worker's cumulative commit cursor. Bytes 248–255 remain reserved.
const OFF_HB_ARMED: usize = 232;
const OFF_HB_SEQ: usize = 236;
const OFF_COMMIT: usize = 240;
/// First data byte (for alignments ≤ 256).
pub const DATA_OFFSET: usize = 256;

/// Park bound for futex waits: a lost cross-process wake (the hot path
/// checks `armed` with a relaxed load; see `futex.rs` module docs) costs at
/// most one timeout, matching `fifo.rs`'s condvar bound.
const SHM_PARK_TIMEOUT: Duration = Duration::from_millis(2);
const SHM_ENDPOINT_WAIT: WaitStrategy = WaitStrategy::parking(SHM_PARK_TIMEOUT);

const PAGE: usize = 4096;

fn align_up(n: usize, a: usize) -> usize {
    (n + a - 1) & !(a - 1)
}

// ---------------------------------------------------------------------------
// Raw syscalls (x86_64 Linux, no libc — affinity.rs idiom).
// ---------------------------------------------------------------------------

#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
mod sys {
    use std::io;

    const PROT_READ: usize = 1;
    const PROT_WRITE: usize = 2;
    const MAP_SHARED: usize = 1;

    fn check(ret: isize) -> io::Result<isize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    /// `memfd_create(name, flags=0)`. No `MFD_CLOEXEC`: the fd must
    /// survive exec so spawned workers can attach by inherited number.
    pub fn memfd_create() -> io::Result<i32> {
        let name = b"raft-shm\0";
        let ret: isize;
        // SAFETY: memfd_create reads the NUL-terminated name and takes no
        // other pointers; clobbers match the x86_64 syscall ABI.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 319isize => ret, // __NR_memfd_create
                in("rdi") name.as_ptr(),
                in("rsi") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        check(ret).map(|fd| fd as i32)
    }

    pub fn ftruncate(fd: i32, len: usize) -> io::Result<()> {
        let ret: isize;
        // SAFETY: ftruncate takes no pointers; ABI clobbers declared.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 77isize => ret, // __NR_ftruncate
                in("rdi") fd as usize,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        check(ret).map(|_| ())
    }

    pub fn mmap_shared(fd: i32, len: usize) -> io::Result<*mut u8> {
        let ret: isize;
        // SAFETY: mmap(NULL, len, RW, SHARED, fd, 0) takes no pointers in;
        // the kernel picks the address. ABI clobbers declared.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 9isize => ret, // __NR_mmap
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") PROT_READ | PROT_WRITE,
                in("r10") MAP_SHARED,
                in("r8") fd as isize,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        // mmap failures come back as -errno in [-4095, -1].
        check(ret).map(|p| p as *mut u8)
    }

    /// # Safety
    /// `ptr..ptr+len` must be a live mapping created by [`mmap_shared`]
    /// and never touched again after this call.
    pub unsafe fn munmap(ptr: *mut u8, len: usize) {
        let _ret: isize;
        // SAFETY: caller contract — the range is a whole live mapping.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 11isize => _ret, // __NR_munmap
                in("rdi") ptr,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
    }

    /// `dup(fd)` — attach duplicates the caller's fd so every segment
    /// owns (and closes) a distinct descriptor.
    pub fn dup(fd: i32) -> io::Result<i32> {
        let ret: isize;
        // SAFETY: dup takes no pointers; ABI clobbers declared.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 32isize => ret, // __NR_dup
                in("rdi") fd as usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        check(ret).map(|fd| fd as i32)
    }

    pub fn close(fd: i32) {
        let _ret: isize;
        // SAFETY: close takes no pointers; ABI clobbers declared.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 3isize => _ret, // __NR_close
                in("rdi") fd as usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
    }

    /// `fstat(fd).st_size` — the only field we need, at byte 48 of the
    /// x86_64 `struct stat`.
    pub fn fstat_size(fd: i32) -> io::Result<usize> {
        let mut statbuf = [0u8; 144];
        let ret: isize;
        // SAFETY: fstat writes at most 144 bytes (sizeof struct stat on
        // x86_64) into the live stack buffer; ABI clobbers declared.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 5isize => ret, // __NR_fstat
                in("rdi") fd as usize,
                in("rsi") statbuf.as_mut_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        check(ret)?;
        let mut size = [0u8; 8];
        size.copy_from_slice(&statbuf[48..56]);
        Ok(i64::from_ne_bytes(size) as usize)
    }
}

// ---------------------------------------------------------------------------
// Segment
// ---------------------------------------------------------------------------

/// A mapped shared-memory segment with a validated, versioned header.
///
/// Created either over a `memfd` (cross-process capable, fd inheritable) or
/// over plain heap memory (same layout, single-process — the fallback for
/// non-Linux targets and for miri). All protocol words live at fixed
/// offsets in the first four cache lines; see the `OFF_*` constants.
pub struct ShmSegment {
    ptr: *mut u8,
    len: usize,
    /// Backing memfd, or `-1` when heap-backed.
    fd: i32,
    /// Set for heap backing so `Drop` can deallocate.
    heap: Option<std::alloc::Layout>,
    // Local snapshot of the header geometry, taken once at create/attach.
    // Bounds and pointer math use ONLY these fields — never the words in
    // the mapping, which a live peer can rewrite at any time (see the
    // trust model in the module docs).
    capacity: usize,
    elem_size: usize,
    elem_align: usize,
    data_offset: usize,
}

// SAFETY: the segment is a raw memory region; all concurrent access goes
// through atomics at fixed offsets or through the ring/arena protocols,
// which impose their own ordering. Moving or sharing the owning struct
// does not move the mapping.
unsafe impl Send for ShmSegment {}
// SAFETY: see Send — `&ShmSegment` only hands out atomic views and raw
// pointers whose use sites carry their own safety contracts.
unsafe impl Sync for ShmSegment {}

impl ShmSegment {
    /// `true` when this build can create real `memfd` segments.
    pub fn memfd_supported() -> bool {
        cfg!(all(target_os = "linux", target_arch = "x86_64", not(miri)))
    }

    fn layout_len(elem_align: usize, data_bytes: usize) -> (usize, usize) {
        let data_offset = align_up(DATA_OFFSET, elem_align.max(8));
        let total = align_up(data_offset + data_bytes, PAGE);
        (data_offset, total)
    }

    /// Create a memfd-backed segment (errors on unsupported platforms).
    #[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
    pub fn create(
        kind: u32,
        capacity: u64,
        elem_size: usize,
        elem_align: usize,
        data_bytes: usize,
    ) -> io::Result<ShmSegment> {
        let (data_offset, total) = Self::layout_len(elem_align, data_bytes);
        let fd = sys::memfd_create()?;
        if let Err(e) = sys::ftruncate(fd, total) {
            sys::close(fd);
            return Err(e);
        }
        let ptr = match sys::mmap_shared(fd, total) {
            Ok(p) => p,
            Err(e) => {
                sys::close(fd);
                return Err(e);
            }
        };
        let seg = ShmSegment {
            ptr,
            len: total,
            fd,
            heap: None,
            capacity: capacity as usize,
            elem_size,
            elem_align,
            data_offset,
        };
        seg.init_header(kind, capacity, elem_size, elem_align, data_offset);
        Ok(seg)
    }

    /// Unsupported platform: always an error (callers fall back to
    /// [`ShmSegment::create_heap`]).
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64", not(miri))))]
    pub fn create(
        _kind: u32,
        _capacity: u64,
        _elem_size: usize,
        _elem_align: usize,
        _data_bytes: usize,
    ) -> io::Result<ShmSegment> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memfd segments require x86_64 Linux",
        ))
    }

    /// Create a heap-backed segment with the identical layout. Works on
    /// every platform (and under miri); cannot cross a process boundary.
    pub fn create_heap(
        kind: u32,
        capacity: u64,
        elem_size: usize,
        elem_align: usize,
        data_bytes: usize,
    ) -> ShmSegment {
        let (data_offset, total) = Self::layout_len(elem_align, data_bytes);
        let layout = std::alloc::Layout::from_size_align(total, PAGE).expect("segment layout");
        // SAFETY: layout has non-zero size (total ≥ one page).
        let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "segment allocation failed");
        let seg = ShmSegment {
            ptr,
            len: total,
            fd: -1,
            heap: Some(layout),
            capacity: capacity as usize,
            elem_size,
            elem_align,
            data_offset,
        };
        seg.init_header(kind, capacity, elem_size, elem_align, data_offset);
        seg
    }

    /// Create a memfd segment when the platform has one, heap otherwise.
    pub fn create_auto(
        kind: u32,
        capacity: u64,
        elem_size: usize,
        elem_align: usize,
        data_bytes: usize,
    ) -> ShmSegment {
        Self::create(kind, capacity, elem_size, elem_align, data_bytes).unwrap_or_else(|_| {
            Self::create_heap(kind, capacity, elem_size, elem_align, data_bytes)
        })
    }

    fn init_header(
        &self,
        kind: u32,
        capacity: u64,
        elem_size: usize,
        elem_align: usize,
        data_offset: usize,
    ) {
        // Creation is single-threaded (the segment has not been shared
        // yet), so plain writes through the word views are fine; the first
        // share (fd pass / Arc clone) provides the ordering.
        self.u64_at(OFF_MAGIC).store(SEG_MAGIC, Relaxed);
        self.u32_at(OFF_SCHEMA).store(SEG_SCHEMA, Relaxed);
        self.u32_at(OFF_KIND).store(kind, Relaxed);
        self.u64_at(OFF_CAPACITY).store(capacity, Relaxed);
        self.u64_at(OFF_ELEM_SIZE).store(elem_size as u64, Relaxed);
        self.u64_at(OFF_ELEM_ALIGN)
            .store(elem_align as u64, Relaxed);
        self.u64_at(OFF_TOTAL_LEN).store(self.len as u64, Relaxed);
        self.u64_at(OFF_DATA_OFFSET)
            .store(data_offset as u64, Relaxed);
    }

    /// Map an inherited fd and validate its header against expectations.
    ///
    /// Rejects (with `InvalidData`) any magic/schema mismatch, a `kind`
    /// other than `expect_kind`, or a header whose total length disagrees
    /// with the file's actual size — a truncated or foreign segment never
    /// gets a single protocol access. The chaos harness can fail this call
    /// via the `buffer::shm::attach` failpoint.
    #[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
    pub fn attach(fd: i32, expect_kind: u32) -> io::Result<ShmSegment> {
        crate::failpoint!("buffer::shm::attach");
        #[cfg(feature = "raft_failpoints")]
        if matches!(
            crate::failpoints::check("buffer::shm::attach"),
            Some(crate::failpoints::FailAction::ShortIo)
        ) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "failpoint: segment attach rejected",
            ));
        }
        // Own a private duplicate: the caller keeps its fd, and this
        // segment's Drop closes only what it owns.
        let fd = sys::dup(fd)?;
        let total = match sys::fstat_size(fd) {
            Ok(t) => t,
            Err(e) => {
                sys::close(fd);
                return Err(e);
            }
        };
        if total < DATA_OFFSET || total % PAGE != 0 {
            sys::close(fd);
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "segment too small or unaligned",
            ));
        }
        let ptr = match sys::mmap_shared(fd, total) {
            Ok(p) => p,
            Err(e) => {
                sys::close(fd);
                return Err(e);
            }
        };
        let mut seg = ShmSegment {
            ptr,
            len: total,
            fd,
            heap: None,
            capacity: 0,
            elem_size: 0,
            elem_align: 0,
            data_offset: 0,
        };
        // Read the header geometry exactly once, validated, and freeze it
        // into the local fields; nothing re-reads it afterwards.
        seg.snapshot_header(expect_kind)?;
        Ok(seg)
    }

    /// Unsupported platform: attach always fails.
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64", not(miri))))]
    pub fn attach(_fd: i32, _expect_kind: u32) -> io::Result<ShmSegment> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memfd segments require x86_64 Linux",
        ))
    }

    /// Validate the mapped header once and copy its geometry into the
    /// local fields. Called only from `attach`; the header is never read
    /// again after this returns.
    #[cfg_attr(
        not(all(target_os = "linux", target_arch = "x86_64", not(miri))),
        allow(dead_code)
    )]
    fn snapshot_header(&mut self, expect_kind: u32) -> io::Result<()> {
        let fail = |what: &str| Err(io::Error::new(io::ErrorKind::InvalidData, what.to_string()));
        if self.u64_at(OFF_MAGIC).load(Relaxed) != SEG_MAGIC {
            return fail("bad segment magic");
        }
        if self.u32_at(OFF_SCHEMA).load(Relaxed) != SEG_SCHEMA {
            return fail("segment schema version mismatch");
        }
        if self.u32_at(OFF_KIND).load(Relaxed) != expect_kind {
            return fail("segment kind mismatch");
        }
        if self.u64_at(OFF_TOTAL_LEN).load(Relaxed) != self.len as u64 {
            return fail("segment length disagrees with header");
        }
        let elem_align = self.u64_at(OFF_ELEM_ALIGN).load(Relaxed) as usize;
        if elem_align == 0 || !elem_align.is_power_of_two() {
            return fail("segment element alignment not a power of two");
        }
        let data_offset = self.u64_at(OFF_DATA_OFFSET).load(Relaxed) as usize;
        if data_offset < DATA_OFFSET || data_offset > self.len {
            return fail("segment data offset out of range");
        }
        // Misaligned data would turn every slot (and the arena's atomic
        // generation words) into UB, not a clean error — reject it here.
        if !data_offset.is_multiple_of(elem_align.max(8)) {
            return fail("segment data offset misaligned for element");
        }
        self.capacity = self.u64_at(OFF_CAPACITY).load(Relaxed) as usize;
        self.elem_size = self.u64_at(OFF_ELEM_SIZE).load(Relaxed) as usize;
        self.elem_align = elem_align;
        self.data_offset = data_offset;
        Ok(())
    }

    /// The inheritable backing fd (`None` for heap segments).
    pub fn fd(&self) -> Option<i32> {
        (self.fd >= 0).then_some(self.fd)
    }

    /// `true` when backed by a real memfd (cross-process capable).
    pub fn is_memfd(&self) -> bool {
        self.fd >= 0
    }

    /// Element capacity (local snapshot taken at create/attach).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Element size (local snapshot taken at create/attach).
    pub fn elem_size(&self) -> usize {
        self.elem_size
    }

    /// Element alignment (local snapshot taken at create/attach).
    pub fn elem_align(&self) -> usize {
        self.elem_align
    }

    /// Bytes available in the data region.
    pub fn data_len(&self) -> usize {
        self.len - self.data_offset
    }

    /// First byte of the data region.
    pub fn data_ptr(&self) -> *mut u8 {
        // In-bounds by construction: data_offset ≤ len, and it is a local
        // field (validated once at attach, computed at create) that a peer
        // rewriting the header word cannot move.
        self.ptr.wrapping_add(self.data_offset)
    }

    #[inline]
    fn u64_at(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off + 8 <= self.len && off.is_multiple_of(8));
        // SAFETY: the prelude offsets are all within the first page of a
        // mapping at least one page long, 8-aligned on a page-aligned
        // base; AtomicU64 has the same layout as u64 and any bit pattern
        // is valid. The returned borrow cannot outlive the mapping
        // (lifetime tied to &self, Drop unmaps only with exclusive access).
        unsafe { &*(self.ptr.add(off) as *const AtomicU64) }
    }

    #[inline]
    fn u32_at(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off + 4 <= self.len && off.is_multiple_of(4));
        // SAFETY: as `u64_at`, with 4-byte alignment.
        unsafe { &*(self.ptr.add(off) as *const AtomicU32) }
    }

    /// Shared ring head (next read index).
    #[inline]
    pub fn head(&self) -> &AtomicU64 {
        self.u64_at(OFF_HEAD)
    }

    /// Shared ring tail (next write index).
    #[inline]
    pub fn tail(&self) -> &AtomicU64 {
        self.u64_at(OFF_TAIL)
    }

    /// Producer-gone flag.
    #[inline]
    pub fn producer_closed(&self) -> &AtomicU32 {
        self.u32_at(OFF_PRODUCER_CLOSED)
    }

    /// Consumer-gone flag.
    #[inline]
    pub fn consumer_closed(&self) -> &AtomicU32 {
        self.u32_at(OFF_CONSUMER_CLOSED)
    }

    /// Waker the producer notifies when data becomes visible.
    #[inline]
    pub fn consumer_waker(&self) -> FutexWaker<'_> {
        FutexWaker::new(self.u32_at(OFF_CONS_ARMED), self.u32_at(OFF_CONS_SEQ))
    }

    /// Waker the consumer notifies when space becomes visible.
    #[inline]
    pub fn producer_waker(&self) -> FutexWaker<'_> {
        FutexWaker::new(self.u32_at(OFF_PROD_ARMED), self.u32_at(OFF_PROD_SEQ))
    }

    /// General-purpose mailbox word (benches use it for end-of-run acks).
    #[inline]
    pub fn user_word(&self) -> &AtomicU64 {
        self.u64_at(OFF_USER_WORD)
    }

    #[inline]
    fn role_word(&self, producer: bool) -> &AtomicU32 {
        self.u32_at(if producer {
            OFF_CLAIM_PRODUCER
        } else {
            OFF_CLAIM_CONSUMER
        })
    }

    /// Claim the producer or consumer role; `false` means another handle
    /// (possibly in another process) currently holds it. See
    /// [`Self::claim_role_generation`] for the generation protocol.
    pub fn claim_role(&self, producer: bool) -> bool {
        self.claim_role_generation(producer).is_some()
    }

    /// Claim a role and return the odd generation the claim landed on.
    ///
    /// The role word is a generation counter: even = free, odd = claimed.
    /// The claim CASes the current even value to the next odd one, so a
    /// role that was revoked after a worker death ([`Self::revoke_role`])
    /// is claimable again — at a *new* generation, which is what makes the
    /// dead worker's leftovers detectable as stale.
    pub fn claim_role_generation(&self, producer: bool) -> Option<u32> {
        let word = self.role_word(producer);
        let mut cur = word.load(Relaxed);
        loop {
            if cur & 1 == 1 {
                return None; // currently claimed
            }
            let next = cur.wrapping_add(1);
            match word.compare_exchange(cur, next, Acquire, Relaxed) {
                Ok(_) => return Some(next),
                Err(now) => cur = now,
            }
        }
    }

    /// Current role-word value (odd = claimed, even = free). The value a
    /// supervisor snapshots before attempting [`Self::revoke_role`].
    pub fn role_generation(&self, producer: bool) -> u32 {
        self.role_word(producer).load(Acquire)
    }

    /// Revoke a dead holder's role claim: CAS the exact odd generation
    /// `expected` back to even, freeing the role for a respawned worker.
    ///
    /// Returns the new (even) generation on success and the *current* word
    /// value on refusal. Refusals are the trust model: a caller may only
    /// revoke a generation it observed from a worker it has itself killed
    /// and reaped — if the word moved (the role was already reclaimed and
    /// re-claimed, or `expected` never was the live claim), the CAS fails
    /// rather than yanking a live worker's role.
    pub fn revoke_role(&self, producer: bool, expected: u32) -> Result<u32, u32> {
        if expected & 1 == 0 {
            return Err(self.role_generation(producer));
        }
        let next = expected.wrapping_add(1);
        match self
            .role_word(producer)
            .compare_exchange(expected, next, Acquire, Acquire)
        {
            Ok(_) => Ok(next),
            Err(cur) => Err(cur),
        }
    }

    /// Clear one side's closed flag — the respawn path's "reopen": the
    /// supervisor wrote the dead worker's closed flag at reap time (so
    /// blocked peers unpark promptly) and clears it here, after the role
    /// is revoked and before the replacement worker is spawned.
    pub fn reopen_role(&self, producer: bool) {
        if producer {
            self.producer_closed().store(0, Release);
        } else {
            self.consumer_closed().store(0, Release);
        }
    }

    /// Discard every un-popped element: advance `head` to `tail`, returning
    /// the number of elements dropped.
    ///
    /// Only meaningful on a **ring** segment whose consumer role is dead
    /// and revoked — the residue is what the dead worker never popped, and
    /// the journal replays it (plus anything popped-but-uncommitted) to the
    /// replacement, so dropping it here is what prevents duplicates. The
    /// producer side only ever observes head moving forward (more room),
    /// which its cached index absorbs like any other pop.
    pub fn drain_residue(&self) -> u64 {
        let tail = self.tail().load(Acquire);
        let head = self.head().load(Acquire);
        let n = tail.saturating_sub(head);
        if n > 0 {
            self.head().store(tail, Release);
        }
        n
    }

    /// Cross-process heartbeat over the header's eventcount words.
    #[inline]
    pub fn heartbeat(&self) -> Heartbeat<'_> {
        Heartbeat {
            armed: self.u32_at(OFF_HB_ARMED),
            seq: self.u32_at(OFF_HB_SEQ),
        }
    }

    /// The worker's cumulative commit cursor: how many journal entries it
    /// has *fully processed* (results published). The parent acks its
    /// [`JournaledShmProducer`] window up to this value; a worker that
    /// dies between publishing a result and bumping this word is replayed
    /// from the last commit, and the duplicate result is deduplicated by
    /// its sequence number downstream.
    #[inline]
    pub fn commit_word(&self) -> &AtomicU64 {
        self.u64_at(OFF_COMMIT)
    }
}

/// Heartbeat eventcount over two header words — like [`FutexWaker`] but
/// **level-preserving**: every [`Heartbeat::beat`] bumps `seq` whether or
/// not a watcher is armed, because the count itself is the liveness signal
/// (a waker-style claimed-arm-only bump would let beats land invisibly
/// between arms and a healthy worker would read as wedged).
///
/// Watcher protocol: `let epoch = arm();` → if `epoch` moved since the last
/// observation the worker is alive (disarm and record it); otherwise
/// `wait(epoch, slice)` futex-parks until the next beat or the bounded
/// slice elapses. The arm/fence pairing with `beat` is the same Dekker
/// store-buffering argument as `futex.rs`: a beat that misses the armed
/// flag is visible in the epoch the watcher re-reads, and vice versa.
#[derive(Clone, Copy)]
pub struct Heartbeat<'a> {
    armed: &'a AtomicU32,
    seq: &'a AtomicU32,
}

impl Heartbeat<'_> {
    /// Worker side: bump the count and wake an armed watcher.
    #[inline]
    pub fn beat(&self) {
        self.seq.fetch_add(1, Release);
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
        if self.armed.swap(0, Relaxed) == 1 {
            crate::futex::futex_wake(self.seq, u32::MAX);
        }
    }

    /// Current beat count.
    #[inline]
    pub fn count(&self) -> u32 {
        self.seq.load(Acquire)
    }

    /// Watcher side: announce intent to sleep, returning the epoch to
    /// compare/wait against. Any beat ordered before the fence is visible
    /// in the returned epoch.
    #[inline]
    pub fn arm(&self) -> u32 {
        self.armed.store(1, Relaxed);
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
        self.seq.load(Relaxed)
    }

    /// Watcher side: withdraw interest (the re-check found a fresh beat).
    #[inline]
    pub fn disarm(&self) {
        self.armed.store(0, Relaxed);
    }

    /// Watcher side: sleep until the count moves past `epoch` or `timeout`
    /// elapses; always re-read [`Self::count`] after.
    #[inline]
    pub fn wait(&self, epoch: u32, timeout: Duration) -> bool {
        crate::futex::futex_wait(self.seq, epoch, Some(timeout))
    }
}

impl Drop for ShmSegment {
    fn drop(&mut self) {
        match self.heap {
            Some(layout) => {
                // SAFETY: allocated in create_heap with this exact layout;
                // Drop has exclusive access, so no views remain.
                unsafe { std::alloc::dealloc(self.ptr, layout) };
            }
            None => {
                #[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
                {
                    // SAFETY: ptr/len are the live mapping created by
                    // create/attach; nothing touches it after Drop.
                    unsafe { sys::munmap(self.ptr, self.len) };
                    sys::close(self.fd);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ShmItem
// ---------------------------------------------------------------------------

/// Plain-old-data that may cross a process boundary through a shared ring.
///
/// # Safety
/// Implementors must be `Copy` types for which **every bit pattern is a
/// valid value** and whose meaning does not depend on the address space
/// (no pointers, no handles, no padding with invariants). The ring reads
/// elements straight out of shared memory; a type that violates this can
/// turn a byzantine peer into undefined behavior.
pub unsafe trait ShmItem: Copy + Send + 'static {}

// SAFETY: fixed-width integers and floats are address-space-independent
// and valid for every bit pattern.
unsafe impl ShmItem for u8 {}
// SAFETY: see u8.
unsafe impl ShmItem for u16 {}
// SAFETY: see u8.
unsafe impl ShmItem for u32 {}
// SAFETY: see u8.
unsafe impl ShmItem for u64 {}
// SAFETY: see u8.
unsafe impl ShmItem for usize {}
// SAFETY: see u8.
unsafe impl ShmItem for i8 {}
// SAFETY: see u8.
unsafe impl ShmItem for i16 {}
// SAFETY: see u8.
unsafe impl ShmItem for i32 {}
// SAFETY: see u8.
unsafe impl ShmItem for i64 {}
// SAFETY: see u8.
unsafe impl ShmItem for isize {}
// SAFETY: see u8.
unsafe impl ShmItem for f32 {}
// SAFETY: see u8.
unsafe impl ShmItem for f64 {}
// SAFETY: an array of ShmItems has no padding invariants of its own.
unsafe impl<T: ShmItem, const N: usize> ShmItem for [T; N] {}

// ---------------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------------

/// Factory for shared-memory SPSC rings of `T`.
///
/// Same protocol as [`crate::spsc::BoundedSpsc`]; the two handles may live
/// in different processes, connected by the segment fd.
pub struct ShmRing<T>(PhantomData<T>);

/// Producing half of a [`ShmRing`]; one per segment, enforced by a
/// CAS-claimed role word in the header.
pub struct ShmRingProducer<T> {
    seg: Arc<ShmSegment>,
    mask: usize,
    /// Local mirror of the shared tail — exact between calls.
    tail: usize,
    /// Stale conservative copy of the shared head (see `crate::index`).
    head_cache: usize,
    _marker: PhantomData<fn(T)>,
}

/// Consuming half of a [`ShmRing`].
pub struct ShmRingConsumer<T> {
    seg: Arc<ShmSegment>,
    mask: usize,
    /// Local mirror of the shared head — exact between calls.
    head: usize,
    /// Stale conservative copy of the shared tail (see `crate::index`).
    tail_cache: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: ShmItem> ShmRing<T> {
    fn ring_segment(capacity: usize, memfd: bool) -> io::Result<ShmSegment> {
        let capacity = capacity.max(1).next_power_of_two();
        let bytes = capacity * std::mem::size_of::<T>();
        let (size, align) = (std::mem::size_of::<T>(), std::mem::align_of::<T>());
        if memfd {
            ShmSegment::create(SEG_KIND_RING, capacity as u64, size, align, bytes)
        } else {
            Ok(ShmSegment::create_heap(
                SEG_KIND_RING,
                capacity as u64,
                size,
                align,
                bytes,
            ))
        }
    }

    /// In-process pair over one segment (memfd when available, heap
    /// otherwise) — the single-address-space configuration used by tests
    /// and the descriptor bench.
    #[allow(clippy::new_ret_no_self)]
    pub fn pair(capacity: usize) -> (ShmRingProducer<T>, ShmRingConsumer<T>) {
        let memfd = ShmSegment::memfd_supported();
        let seg = Arc::new(Self::ring_segment(capacity, memfd).unwrap_or_else(|_| {
            Self::ring_segment(capacity, false).expect("heap ring segment cannot fail")
        }));
        assert!(seg.claim_role(true) && seg.claim_role(false));
        (Self::producer_over(seg.clone()), Self::consumer_over(seg))
    }

    /// Create a memfd ring and take the producer role; pass the returned
    /// fd to the peer process for [`ShmRing::attach_consumer`].
    pub fn create_producer(capacity: usize) -> io::Result<(ShmRingProducer<T>, i32)> {
        let seg = Self::ring_segment(capacity, true)?;
        let fd = seg.fd().expect("memfd segment has an fd");
        assert!(seg.claim_role(true), "fresh segment role");
        Ok((Self::producer_over(Arc::new(seg)), fd))
    }

    /// Create a memfd ring and take the consumer role (for result paths
    /// flowing child → parent).
    pub fn create_consumer(capacity: usize) -> io::Result<(ShmRingConsumer<T>, i32)> {
        let seg = Self::ring_segment(capacity, true)?;
        let fd = seg.fd().expect("memfd segment has an fd");
        assert!(seg.claim_role(false), "fresh segment role");
        Ok((Self::consumer_over(Arc::new(seg)), fd))
    }

    /// Attach to an inherited fd as the producer. Validates the header
    /// (magic, schema, kind, capacity, element layout) and claims the
    /// producer role; both can fail cleanly.
    pub fn attach_producer(fd: i32) -> io::Result<ShmRingProducer<T>> {
        let seg = Self::attach_ring(fd)?;
        if !seg.claim_role(true) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                "producer role already claimed",
            ));
        }
        Ok(Self::producer_over(Arc::new(seg)))
    }

    /// Attach to an inherited fd as the consumer (see
    /// [`ShmRing::attach_producer`]).
    pub fn attach_consumer(fd: i32) -> io::Result<ShmRingConsumer<T>> {
        let seg = Self::attach_ring(fd)?;
        if !seg.claim_role(false) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                "consumer role already claimed",
            ));
        }
        Ok(Self::consumer_over(Arc::new(seg)))
    }

    fn attach_ring(fd: i32) -> io::Result<ShmSegment> {
        let seg = ShmSegment::attach(fd, SEG_KIND_RING)?;
        let cap = seg.capacity();
        let fail = |what: &str| Err(io::Error::new(io::ErrorKind::InvalidData, what.to_string()));
        if !cap.is_power_of_two() {
            return fail("ring capacity not a power of two");
        }
        if seg.elem_size() != std::mem::size_of::<T>()
            || seg.elem_align() != std::mem::align_of::<T>()
        {
            return fail("ring element layout mismatch");
        }
        match cap.checked_mul(seg.elem_size()) {
            Some(bytes) if bytes <= seg.data_len() => {}
            _ => return fail("ring data region smaller than capacity"),
        }
        Ok(seg)
    }

    fn producer_over(seg: Arc<ShmSegment>) -> ShmRingProducer<T> {
        let mask = seg.capacity() - 1;
        let tail = seg.tail().load(Relaxed) as usize;
        let head_cache = seg.head().load(Relaxed) as usize;
        ShmRingProducer {
            seg,
            mask,
            tail,
            head_cache,
            _marker: PhantomData,
        }
    }

    fn consumer_over(seg: Arc<ShmSegment>) -> ShmRingConsumer<T> {
        let mask = seg.capacity() - 1;
        let head = seg.head().load(Relaxed) as usize;
        let tail_cache = seg.tail().load(Relaxed) as usize;
        ShmRingConsumer {
            seg,
            mask,
            head,
            tail_cache,
            _marker: PhantomData,
        }
    }
}

impl<T: ShmItem> ShmRingProducer<T> {
    #[inline]
    fn slot_ptr(&self, idx: usize) -> *mut T {
        // Masked index: always inside the validated data region.
        self.seg
            .data_ptr()
            .cast::<T>()
            .wrapping_add(idx & self.mask)
    }

    /// Non-blocking push (same protocol as `spsc.rs::try_push`).
    #[inline]
    pub fn try_push(&mut self, value: T) -> Result<(), TryPushError<T>> {
        let seg = &*self.seg;
        if seg.consumer_closed().load(Relaxed) == 1 {
            return Err(TryPushError::Closed(value));
        }
        let tail = self.tail;
        // Shared cached-index fast path (see `crate::index`): refresh pairs
        // Acquire with the consumer's Release store of `head`.
        let room = producer_free_slots(tail, &mut self.head_cache, self.mask + 1, 1, || {
            seg.head().load(Acquire) as usize
        });
        if room == 0 {
            return Err(TryPushError::Full(value));
        }
        // SAFETY: slot `tail & mask` is outside the live region (checked
        // against a conservative head), in-bounds by the attach-time size
        // validation, and we are the sole producer (role-claimed handle,
        // `&mut self`). The Release store below publishes the write.
        unsafe { self.slot_ptr(tail).write(value) };
        seg.tail().store((tail + 1) as u64, Release);
        self.tail = tail + 1;
        seg.consumer_waker().notify_if_armed();
        Ok(())
    }

    /// Push as many of `items` as currently fit, publishing the whole
    /// batch with **one** Release store of `tail` — the single-fence batch
    /// publish the journaling layer's commit relies on. Returns the count
    /// actually pushed.
    pub fn try_push_batch(&mut self, items: &[T]) -> usize {
        if items.is_empty() {
            return 0;
        }
        let seg = &*self.seg;
        if seg.consumer_closed().load(Relaxed) == 1 {
            return 0;
        }
        let tail = self.tail;
        let room = producer_free_slots(
            tail,
            &mut self.head_cache,
            self.mask + 1,
            items.len(),
            || seg.head().load(Acquire) as usize,
        );
        let n = room.min(items.len());
        for (i, v) in items[..n].iter().enumerate() {
            // SAFETY: slots [tail, tail+n) are outside the live region and
            // in-bounds after masking; nothing reads them until the single
            // Release store below publishes the batch.
            unsafe { self.slot_ptr(tail + i).write(*v) };
        }
        if n > 0 {
            seg.tail().store((tail + n) as u64, Release);
            self.tail = tail + n;
            seg.consumer_waker().notify_if_armed();
        }
        n
    }

    /// Blocking push: adaptive spin→yield→futex-park until the element
    /// fits or the consumer disconnects.
    pub fn push(&mut self, mut value: T) -> Result<(), PushError<T>> {
        let mut waiter = Waiter::new(SHM_ENDPOINT_WAIT);
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(TryPushError::Closed(v)) => return Err(PushError(v)),
                Err(TryPushError::Full(v)) => value = v,
            }
            if waiter.pause_or_park() == WaitAction::Park {
                let w = self.seg.producer_waker();
                let epoch = w.arm();
                // Re-check under the arm: a pop or close that landed
                // before the arm's fence is visible here; one that lands
                // after will observe the arm and notify.
                let head = self.seg.head().load(Acquire) as usize;
                if self.tail.wrapping_sub(head) < self.mask + 1
                    || self.seg.consumer_closed().load(Relaxed) == 1
                {
                    w.disarm();
                    continue;
                }
                w.wait(epoch, Some(SHM_PARK_TIMEOUT));
            }
        }
    }

    /// Ring capacity in elements.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Elements currently queued (telemetry estimate).
    pub fn occupancy(&self) -> usize {
        let seg = &*self.seg;
        (seg.tail().load(Acquire) as usize).saturating_sub(seg.head().load(Acquire) as usize)
    }

    /// `true` once the consumer side is gone.
    pub fn is_closed(&self) -> bool {
        self.seg.consumer_closed().load(Relaxed) == 1
    }

    /// The backing segment (fd, mailbox word, …).
    pub fn segment(&self) -> &ShmSegment {
        &self.seg
    }

    /// An owned handle on the backing segment — what a supervisor keeps so
    /// it can write close flags and revoke roles while the producer handle
    /// itself sits behind a lock.
    pub fn segment_shared(&self) -> Arc<ShmSegment> {
        self.seg.clone()
    }
}

impl<T> Drop for ShmRingProducer<T> {
    fn drop(&mut self) {
        self.seg.producer_closed().store(1, Release);
        // Full-contract notify: a consumer parked right now must see EoS.
        self.seg.consumer_waker().notify();
    }
}

impl<T: ShmItem> ShmRingConsumer<T> {
    #[inline]
    fn slot_ptr(&self, idx: usize) -> *const T {
        (self.seg.data_ptr() as *const T).wrapping_add(idx & self.mask)
    }

    /// Non-blocking pop (same protocol as `spsc.rs::try_pop`).
    #[inline]
    pub fn try_pop(&mut self) -> Result<T, TryPopError> {
        let seg = &*self.seg;
        let head = self.head;
        // Shared cached-index fast path (see `crate::index`): refresh pairs
        // Acquire with the producer's Release store of `tail`.
        let avail = consumer_ready_elems(head, &mut self.tail_cache, || {
            seg.tail().load(Acquire) as usize
        });
        if avail == 0 {
            return if seg.producer_closed().load(Acquire) == 1 {
                // Re-check: the producer may have pushed between our tail
                // load and its close.
                self.tail_cache = seg.tail().load(Acquire) as usize;
                if self.tail_cache == head {
                    Err(TryPopError::Closed)
                } else {
                    Err(TryPopError::Empty)
                }
            } else {
                Err(TryPopError::Empty)
            };
        }
        // SAFETY: `head < tail` observed via Acquire, pairing with the
        // producer's Release publish — the slot holds a fully written T
        // (POD: any bit pattern valid), in-bounds after masking, and the
        // producer will not reuse it until our Release store of `head`.
        let value = unsafe { self.slot_ptr(head).read() };
        seg.head().store((head + 1) as u64, Release);
        self.head = head + 1;
        seg.producer_waker().notify_if_armed();
        Ok(value)
    }

    /// Pop up to `out.len()` elements, freeing the whole run with one
    /// Release store of `head`. Returns the count written into `out`.
    pub fn try_pop_batch(&mut self, out: &mut [T]) -> usize {
        if out.is_empty() {
            return 0;
        }
        let seg = &*self.seg;
        let head = self.head;
        let avail = consumer_ready_elems(head, &mut self.tail_cache, || {
            seg.tail().load(Acquire) as usize
        });
        let n = avail.min(out.len());
        for (i, slot) in out[..n].iter_mut().enumerate() {
            // SAFETY: indices [head, head+n) are inside the live region
            // observed through the Acquire tail load above; see try_pop.
            *slot = unsafe { self.slot_ptr(head + i).read() };
        }
        if n > 0 {
            seg.head().store((head + n) as u64, Release);
            self.head = head + n;
            seg.producer_waker().notify_if_armed();
        }
        n
    }

    /// Blocking pop; `Err` once the producer closed *and* the ring
    /// drained.
    pub fn pop(&mut self) -> Result<T, PopError> {
        let mut waiter = Waiter::new(SHM_ENDPOINT_WAIT);
        loop {
            match self.try_pop() {
                Ok(v) => return Ok(v),
                Err(TryPopError::Closed) => return Err(PopError),
                Err(TryPopError::Empty) => {}
            }
            if waiter.pause_or_park() == WaitAction::Park {
                let w = self.seg.consumer_waker();
                let epoch = w.arm();
                let tail = self.seg.tail().load(Acquire) as usize;
                if tail != self.head || self.seg.producer_closed().load(Relaxed) == 1 {
                    w.disarm();
                    continue;
                }
                w.wait(epoch, Some(SHM_PARK_TIMEOUT));
            }
        }
    }

    /// Ring capacity in elements.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Elements currently queued (telemetry estimate).
    pub fn occupancy(&self) -> usize {
        let seg = &*self.seg;
        (seg.tail().load(Acquire) as usize).saturating_sub(seg.head().load(Acquire) as usize)
    }

    /// `true` once the producer closed and the ring drained.
    pub fn is_finished(&self) -> bool {
        self.seg.producer_closed().load(Acquire) == 1 && self.occupancy() == 0
    }

    /// The backing segment (fd, mailbox word, …).
    pub fn segment(&self) -> &ShmSegment {
        &self.seg
    }

    /// An owned handle on the backing segment (see
    /// [`ShmRingProducer::segment_shared`]).
    pub fn segment_shared(&self) -> Arc<ShmSegment> {
        self.seg.clone()
    }
}

impl<T> Drop for ShmRingConsumer<T> {
    fn drop(&mut self) {
        self.seg.consumer_closed().store(1, Release);
        self.seg.producer_waker().notify();
    }
}

// SAFETY: one non-Clone handle per role (CAS-enforced even across
// processes); moving it moves the role, and elements are ShmItem (POD).
unsafe impl<T: ShmItem> Send for ShmRingProducer<T> {}
// SAFETY: see ShmRingProducer.
unsafe impl<T: ShmItem> Send for ShmRingConsumer<T> {}

// ---------------------------------------------------------------------------
// Journaled producer — cross-process exactly-once on top of the ring
// ---------------------------------------------------------------------------

/// A [`ShmRingProducer`] with a [`ReplayWindow`] in front of it: the
/// cross-process half of the PR 7 recovery contract.
///
/// Every sent element is journaled *before* it is pushed, acknowledged only
/// when the consuming worker advances the segment's
/// [`commit word`](ShmSegment::commit_word), and re-delivered in order by
/// [`Self::replay_unacked`] after the supervisor has reaped the dead
/// worker, revoked its role, and [drained](ShmSegment::drain_residue) the
/// un-popped residue. Because an element is journaled first, a push that
/// fails with `Closed` mid-crash is *not* a loss — the entry is retained
/// and replayed — so [`Self::send`] treats it as sent.
///
/// The journal order is the delivery order: [`Self::begin_recovery`] gates
/// new sends (they return `false`) until `replay_unacked` has re-pushed the
/// suffix, so a replacement worker never observes a new element ordered
/// before a replayed one. The worker-side contract that makes the commit
/// word safe: *publish the result of element `n`, then store `n+1`* — a
/// death between the two re-delivers element `n`, and the duplicate result
/// is deduplicated downstream by its sequence number.
pub struct JournaledShmProducer<T: ShmItem> {
    ring: ShmRingProducer<T>,
    window: ReplayWindow<T>,
    recovering: bool,
    /// Journal sequence of the next entry still to be re-pushed after a
    /// recovery (`None`: no replay backlog outstanding). While a backlog
    /// exists, new sends queue behind it — journal order is delivery
    /// order — and it drains opportunistically on every
    /// [`Self::ack_committed`] pump instead of blocking the caller.
    backlog: Option<u64>,
}

impl<T: ShmItem> JournaledShmProducer<T> {
    /// Journal `ring` with at most `bound` unacknowledged entries
    /// (0 = unbounded). The bound must cover the ring capacity plus the
    /// worker's commit lag, or forced acks will puncture replay coverage —
    /// `2 × capacity` is a comfortable floor.
    pub fn new(ring: ShmRingProducer<T>, bound: usize) -> Self {
        JournaledShmProducer {
            ring,
            window: ReplayWindow::new(bound),
            recovering: false,
            backlog: None,
        }
    }

    /// Journal `value` and push it, blocking while the ring is full.
    /// Returns `false` — value **not** journaled, retry later — only while
    /// a recovery window is open ([`Self::begin_recovery`] has run and
    /// [`Self::replay_unacked`] has not). A `Closed` push after the journal
    /// append still returns `true`: the entry is retained for replay.
    pub fn send(&mut self, value: T) -> bool {
        if self.recovering {
            return false;
        }
        self.window.append(value);
        if self.backlog.is_some() {
            // A replay backlog is still draining: the new entry queues
            // behind the cursor so journal order stays delivery order.
            self.push_backlog();
        } else {
            // A Closed error here means the worker died (or its reaper
            // wrote the flag) after the append — exactly the window
            // replay covers.
            let _ = self.ring.push(value);
        }
        self.ack_committed();
        true
    }

    /// Retire journal entries the worker has committed and drain any
    /// outstanding replay backlog into free ring space. Returns how many
    /// entries were released. Call this periodically after a recovery: it
    /// is the pump that finishes a replay too large to fit the ring in
    /// one go.
    pub fn ack_committed(&mut self) -> usize {
        let committed = self.ring.segment().commit_word().load(Acquire);
        let acked = self.window.ack(committed);
        if !self.recovering && self.backlog.is_some() {
            self.push_backlog();
        }
        acked
    }

    /// Re-push backlog entries with `try_push` until the backlog is gone
    /// or the ring has no room. Never blocks: a supervisor thread calls
    /// this from its reaction path, and parking it on ring space would
    /// deadlock if the replacement worker dies mid-replay (nobody left to
    /// reap it). Returns entries pushed.
    fn push_backlog(&mut self) -> usize {
        let mut pushed = 0;
        while let Some(cursor) = self.backlog {
            // Forced acks may have dropped entries at the cursor; resume
            // from the first journaled sequence at or after it.
            let next = self.window.iter_from(cursor).next().map(|&(s, e)| (s, e));
            let Some((seq, entry)) = next else {
                self.backlog = None;
                break;
            };
            match self.ring.try_push(entry) {
                Ok(()) => {
                    self.backlog = Some(seq + 1);
                    pushed += 1;
                }
                // Full: retry on a later pump. Closed: the worker died
                // again; the next recovery cycle rewinds the cursor.
                Err(_) => break,
            }
        }
        pushed
    }

    /// Open the recovery window: discard the dead worker's un-popped ring
    /// residue, fold its final commit into the journal, and gate new sends
    /// until [`Self::replay_unacked`]. Returns the residue count dropped.
    ///
    /// Caller contract: the worker is dead **and reaped**, and its consumer
    /// role has been revoked — residue draining moves the shared head, which
    /// only the (now nonexistent) consumer otherwise owns.
    pub fn begin_recovery(&mut self) -> u64 {
        self.recovering = true;
        let dropped = self.ring.segment().drain_residue();
        self.ack_committed();
        dropped
    }

    /// Rewind the replay cursor to the first unacknowledged entry, close
    /// the recovery window, and re-push as much of the backlog as fits the
    /// ring *without blocking*. Whatever does not fit drains on subsequent
    /// [`Self::ack_committed`] pumps (and ahead of any new sends), so the
    /// replacement worker still observes strict journal order. Returns
    /// entries re-pushed immediately.
    pub fn replay_unacked(&mut self) -> usize {
        self.backlog = Some(self.window.acked());
        self.recovering = false;
        self.push_backlog()
    }

    /// `true` while sends are gated by an open recovery window.
    pub fn recovering(&self) -> bool {
        self.recovering
    }

    /// Journal entries not yet committed by the worker.
    pub fn pending(&self) -> usize {
        self.window.len()
    }

    /// The replay window (sequence numbers are send order from 0).
    pub fn window(&self) -> &ReplayWindow<T> {
        &self.window
    }

    /// The underlying producer.
    pub fn ring(&mut self) -> &mut ShmRingProducer<T> {
        &mut self.ring
    }

    /// The backing segment.
    pub fn segment(&self) -> &ShmSegment {
        self.ring.segment()
    }

    /// An owned handle on the backing segment.
    pub fn segment_shared(&self) -> Arc<ShmSegment> {
        self.ring.segment_shared()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn heap_segment_layout_roundtrip() {
        let seg = ShmSegment::create_heap(SEG_KIND_RING, 8, 8, 8, 64);
        assert_eq!(seg.capacity(), 8);
        assert_eq!(seg.elem_size(), 8);
        assert!(!seg.is_memfd());
        assert!(seg.data_len() >= 64);
        assert_eq!(seg.data_ptr() as usize % 8, 0);
    }

    #[test]
    fn memfd_segment_create_and_attach() {
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        let seg = ShmSegment::create(SEG_KIND_RING, 16, 4, 4, 64).unwrap();
        let fd = seg.fd().unwrap();
        seg.user_word().store(0xBEEF, Release);
        // Second mapping of the same fd sees the first one's writes.
        let peer = ShmSegment::attach(fd, SEG_KIND_RING).unwrap();
        assert_eq!(peer.user_word().load(Acquire), 0xBEEF);
        assert_eq!(peer.capacity(), 16);
        // Kind mismatch rejected.
        assert!(ShmSegment::attach(fd, SEG_KIND_ARENA).is_err());
        // attach dups the fd, so each segment closes its own descriptor.
        drop(peer);
        drop(seg);
    }

    #[test]
    fn ring_push_pop_in_order() {
        let (mut p, mut c) = ShmRing::<u64>::pair(4);
        for i in 0..4u64 {
            p.try_push(i).unwrap();
        }
        assert!(matches!(p.try_push(9), Err(TryPushError::Full(9))));
        for i in 0..4u64 {
            assert_eq!(c.try_pop().unwrap(), i);
        }
        assert!(matches!(c.try_pop(), Err(TryPopError::Empty)));
    }

    #[test]
    fn ring_batch_publish_and_drain() {
        let (mut p, mut c) = ShmRing::<u32>::pair(8);
        let items: Vec<u32> = (0..6).collect();
        assert_eq!(p.try_push_batch(&items), 6);
        let mut out = [0u32; 8];
        assert_eq!(c.try_pop_batch(&mut out), 6);
        assert_eq!(&out[..6], &[0, 1, 2, 3, 4, 5]);
        // Batch larger than room pushes only what fits.
        let items: Vec<u32> = (0..20).collect();
        assert_eq!(p.try_push_batch(&items), 8);
    }

    #[test]
    fn ring_close_semantics() {
        let (mut p, mut c) = ShmRing::<u64>::pair(4);
        p.try_push(1).unwrap();
        drop(p);
        assert_eq!(c.try_pop().unwrap(), 1);
        assert!(matches!(c.try_pop(), Err(TryPopError::Closed)));
        assert!(c.is_finished());
    }

    #[test]
    fn ring_cross_thread_blocking_transfer() {
        let (mut p, mut c) = ShmRing::<u64>::pair(16);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                p.push(i).unwrap();
            }
        });
        let mut expected = 0;
        while let Ok(v) = c.pop() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, N);
        producer.join().unwrap();
    }

    #[test]
    fn role_claims_are_exclusive() {
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        let (p, fd) = ShmRing::<u64>::create_producer(8).unwrap();
        // Producer role is taken; attaching as producer must fail, as
        // consumer must succeed exactly once.
        assert!(ShmRing::<u64>::attach_producer(fd).is_err());
        let c = ShmRing::<u64>::attach_consumer(fd).unwrap();
        assert!(ShmRing::<u64>::attach_consumer(fd).is_err());
        drop((p, c));
    }

    #[test]
    fn geometry_snapshot_ignores_header_rewrites() {
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        // Attach a peer, then scribble over the header the way a byzantine
        // process could: the peer's snapshotted geometry must not move.
        let seg = ShmSegment::create(SEG_KIND_RING, 16, 8, 8, 128).unwrap();
        let peer = ShmSegment::attach(seg.fd().unwrap(), SEG_KIND_RING).unwrap();
        let (ptr, len, cap) = (peer.data_ptr(), peer.data_len(), peer.capacity());
        seg.u64_at(OFF_DATA_OFFSET).store(u64::MAX, Relaxed);
        seg.u64_at(OFF_CAPACITY).store(u64::MAX, Relaxed);
        seg.u64_at(OFF_ELEM_SIZE).store(u64::MAX, Relaxed);
        assert_eq!(peer.data_ptr(), ptr);
        assert_eq!(peer.data_len(), len);
        assert_eq!(peer.capacity(), cap);
    }

    #[test]
    fn attach_rejects_misaligned_data_offset() {
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        let seg = ShmSegment::create(SEG_KIND_RING, 16, 8, 8, 128).unwrap();
        let fd = seg.fd().unwrap();
        // data_offset = 260: in range, 4-aligned, but not 8-aligned — slot
        // reads of u64 would be UB, so attach must reject it cleanly.
        seg.u64_at(OFF_DATA_OFFSET).store(260, Relaxed);
        assert!(ShmSegment::attach(fd, SEG_KIND_RING).is_err());
        // Non-power-of-two element alignment is rejected too.
        seg.u64_at(OFF_DATA_OFFSET)
            .store(DATA_OFFSET as u64, Relaxed);
        seg.u64_at(OFF_ELEM_ALIGN).store(24, Relaxed);
        assert!(ShmSegment::attach(fd, SEG_KIND_RING).is_err());
        // Restoring the header makes attach succeed again.
        seg.u64_at(OFF_ELEM_ALIGN).store(8, Relaxed);
        assert!(ShmSegment::attach(fd, SEG_KIND_RING).is_ok());
    }

    #[test]
    fn attach_rejects_element_layout_mismatch() {
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        let (_p, fd) = ShmRing::<u64>::create_producer(8).unwrap();
        assert!(ShmRing::<u32>::attach_consumer(fd).is_err());
    }

    #[test]
    fn role_generations_reclaim_after_revoke() {
        let seg = ShmSegment::create_heap(SEG_KIND_RING, 8, 8, 8, 64);
        // Fresh segment: claim succeeds at generation 1, double-claim fails.
        assert_eq!(seg.claim_role_generation(true), Some(1));
        assert_eq!(seg.claim_role_generation(true), None);
        assert_eq!(seg.role_generation(true), 1);
        // Revoking a *live* role at a stale generation is refused: the
        // supervisor must have observed the current odd generation from a
        // worker it killed and reaped, not a guess.
        assert_eq!(seg.revoke_role(true, 3), Err(1));
        assert_eq!(seg.revoke_role(true, 0), Err(1));
        assert_eq!(seg.role_generation(true), 1);
        // Revoke at the observed generation frees the role (now even)...
        assert_eq!(seg.revoke_role(true, 1), Ok(2));
        // ...and revoking twice is refused (word is even = unclaimed).
        assert_eq!(seg.revoke_role(true, 2), Err(2));
        // The replacement claims at the next odd generation.
        assert_eq!(seg.claim_role_generation(true), Some(3));
        // Roles are independent per side.
        assert_eq!(seg.claim_role_generation(false), Some(1));
    }

    #[test]
    fn drain_residue_discards_unpopped_elements() {
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        // drain_residue moves the *shared* head, which only a consumer
        // whose local mirror is gone (dead + revoked) can tolerate — so
        // the test follows the real reap sequence, not a live consumer.
        let (mut p, fd) = ShmRing::<u64>::create_producer(8).unwrap();
        let mut c = ShmRing::<u64>::attach_consumer(fd).unwrap();
        for i in 0..5u64 {
            p.try_push(i).unwrap();
        }
        assert_eq!(c.try_pop().unwrap(), 0);
        assert_eq!(c.try_pop().unwrap(), 1);
        let gen = p.segment().role_generation(false);
        std::mem::forget(c);
        assert_eq!(p.segment().revoke_role(false, gen), Ok(gen + 1));
        // 3 un-popped elements discarded; a fresh attach reads empty.
        assert_eq!(p.segment().drain_residue(), 3);
        p.segment().reopen_role(false);
        let mut c2 = ShmRing::<u64>::attach_consumer(fd).unwrap();
        assert!(matches!(c2.try_pop(), Err(TryPopError::Empty)));
        // The ring stays usable: new pushes land after the drained gap.
        p.try_push(40).unwrap();
        assert_eq!(c2.try_pop().unwrap(), 40);
    }

    #[test]
    fn heartbeat_beats_are_level_preserving() {
        let seg = ShmSegment::create_heap(SEG_KIND_RING, 8, 8, 8, 64);
        let hb = seg.heartbeat();
        // Beats land even with no watcher armed — a watcher arming later
        // still sees progress (this is what FutexWaker::notify would lose).
        hb.beat();
        hb.beat();
        assert_eq!(hb.count(), 2);
        let epoch = hb.arm();
        assert_eq!(epoch, 2);
        hb.beat();
        assert_ne!(hb.count(), epoch);
        // An armed watcher whose epoch is already stale must not block.
        assert!(!hb.wait(epoch, Duration::from_millis(50)) || hb.count() != epoch);
        hb.disarm();
    }

    #[test]
    fn journaled_producer_replays_after_simulated_kill() {
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        let (ring, fd) = ShmRing::<u64>::create_producer(8).unwrap();
        let mut c = ShmRing::<u64>::attach_consumer(fd).unwrap();
        let mut p = JournaledShmProducer::new(ring, 32);

        for i in 0..6u64 {
            assert!(p.send(i * 10));
        }
        assert_eq!(p.pending(), 6);

        // Worker consumes 4 and commits them (publish-then-commit order),
        // then is SIGKILL'd: no drop glue runs, so simulate with forget —
        // the closed flag stays unset and the role stays claimed.
        for i in 0..4u64 {
            assert_eq!(c.try_pop().unwrap(), i * 10);
        }
        p.segment().commit_word().store(4, Release);
        let gen = p.segment().role_generation(false);
        std::mem::forget(c);

        // Supervisor reap path: revoke at the observed generation, open
        // the recovery window (drops the 2 un-popped elements, folds the
        // final commit into the journal), reopen the closed flag.
        assert_eq!(p.segment().revoke_role(false, gen), Ok(gen + 1));
        assert_eq!(p.begin_recovery(), 2);
        assert_eq!(p.pending(), 2);
        assert!(p.recovering());
        // New sends are gated (not journaled) until replay closes the window.
        assert!(!p.send(999));
        assert_eq!(p.pending(), 2);
        p.segment().reopen_role(false);

        // Respawned worker re-attaches under the reclaimed role and sees
        // exactly the unacknowledged suffix, in order.
        let mut c2 = ShmRing::<u64>::attach_consumer(fd).unwrap();
        assert_eq!(p.replay_unacked(), 2);
        assert!(!p.recovering());
        assert!(p.send(60));
        assert_eq!(c2.try_pop().unwrap(), 40);
        assert_eq!(c2.try_pop().unwrap(), 50);
        assert_eq!(c2.try_pop().unwrap(), 60);
        p.segment().commit_word().store(7, Release);
        p.ack_committed();
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn replay_backlog_drains_without_blocking() {
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        // Unacked window (8) larger than the ring (4): a full replay
        // cannot fit in one go and must never block the caller — the
        // supervisor thread replays from its reaction path, and parking
        // there deadlocks if the replacement dies mid-replay.
        let (ring, fd) = ShmRing::<u64>::create_producer(4).unwrap();
        let mut c = ShmRing::<u64>::attach_consumer(fd).unwrap();
        let mut p = JournaledShmProducer::new(ring, 32);
        for i in 0..8u64 {
            // Interleave pops (uncommitted) so blocking sends never park.
            assert!(p.send(i));
            assert_eq!(c.try_pop().unwrap(), i);
        }
        assert_eq!(p.pending(), 8);

        let gen = p.segment().role_generation(false);
        std::mem::forget(c);
        assert_eq!(p.segment().revoke_role(false, gen), Ok(gen + 1));
        assert_eq!(p.begin_recovery(), 0);
        p.segment().reopen_role(false);
        let mut c2 = ShmRing::<u64>::attach_consumer(fd).unwrap();

        // Only the ring's worth fits immediately; the rest is backlog.
        assert_eq!(p.replay_unacked(), 4);
        assert!(!p.recovering());
        // New sends while a backlog drains queue *behind* it.
        assert!(p.send(8));
        assert_eq!(p.pending(), 9);

        // The replacement drains; ack pumps push the backlog in journal
        // order until everything (including the queued new send) arrives.
        let mut got = Vec::new();
        while got.len() < 9 {
            match c2.try_pop() {
                Ok(v) => {
                    got.push(v);
                    p.segment().commit_word().store(got.len() as u64, Release);
                }
                Err(TryPopError::Empty) => {
                    p.ack_committed();
                }
                Err(TryPopError::Closed) => panic!("ring closed unexpectedly"),
            }
        }
        assert_eq!(got, (0..9u64).collect::<Vec<_>>());
        p.ack_committed();
        assert_eq!(p.pending(), 0);
    }
}
