//! Fixed-capacity, lock-free SPSC ring buffer.
//!
//! This is the classic single-producer / single-consumer bounded queue:
//! monotonically increasing `head` (next read) and `tail` (next write)
//! counters, a power-of-two slot array indexed by `counter & mask`, and
//! acquire/release pairs on the counters for synchronization (see *Rust
//! Atomics and Locks*, ch. 5) — with two FastForward-style refinements:
//!
//! * `head` and `tail` are padded to separate cache lines
//!   ([`CachePadded`]), so the producer's stores never invalidate the line
//!   the consumer spins on (and vice versa);
//! * each endpoint handle keeps a **local mirror of its own counter** and a
//!   **stale cache of the opposite counter**, refreshed with an Acquire
//!   load only when the ring *looks* full (producer) or empty (consumer).
//!   The cache is conservative — a stale `head_cache` under-estimates how
//!   much the consumer has freed — so the only cost of staleness is a
//!   spurious refresh, never a protocol violation. The common-case push or
//!   pop is one Relaxed load (the closed flag), the slot access, and one
//!   Release store.
//!
//! [`BoundedSpsc`] is used directly for the FIFO ablation bench and serves as
//! the reference protocol that [`crate::fifo::Fifo`] extends with dynamic
//! resizing.
//!
//! All atomics and cells come from [`crate::sync`], so building with
//! `RUSTFLAGS="--cfg loom"` swaps in loom's instrumented primitives and the
//! tests in `tests/loom_spsc.rs` model-check every permitted interleaving of
//! the head/tail protocol below — including the cached-index fast path.
//!
//! [`CachePadded`]: crossbeam::utils::CachePadded

use std::mem::MaybeUninit;

use crossbeam::utils::CachePadded;

use crate::error::{TryPopError, TryPushError};
use crate::index::{consumer_ready_elems, producer_free_slots};
use crate::signal::Signal;
use crate::sync::{
    Arc, AtomicBool, AtomicUsize,
    Ordering::{Acquire, Relaxed, Release},
    UnsafeCell,
};

/// One ring slot: possibly-uninitialized element plus its synchronous signal.
struct Slot<T> {
    value: UnsafeCell<MaybeUninit<(T, Signal)>>,
}

// SAFETY: a Slot is only ever touched through the head/tail protocol: the
// producer writes slot `i` strictly before its Release store of `tail = i+1`,
// and the consumer reads slot `i` strictly after its Acquire load observes
// `tail > i`. Every slot access is therefore ordered by an atomic
// release/acquire pair, so sending or sharing the slot between the two
// threads cannot race as long as `T: Send` (the element itself may move
// across threads).
unsafe impl<T: Send> Send for Slot<T> {}
// SAFETY: see the `Send` justification above — shared access (`&Slot`) is
// still serialized per-slot by the counter protocol.
unsafe impl<T: Send> Sync for Slot<T> {}

/// Shared state of a fixed-capacity SPSC ring.
///
/// The counters live on separate cache lines; the closed flags share a third
/// line (they are written once per endpoint lifetime).
pub(crate) struct RingCore<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Next index to read; only the consumer advances it.
    pub(crate) head: CachePadded<AtomicUsize>,
    /// Next index to write; only the producer advances it.
    pub(crate) tail: CachePadded<AtomicUsize>,
    /// Producer is gone (stream closed).
    pub(crate) producer_closed: AtomicBool,
    /// Consumer is gone (pushes are pointless).
    pub(crate) consumer_closed: AtomicBool,
}

impl<T> RingCore<T> {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        let slots: Box<[Slot<T>]> = (0..capacity)
            .map(|_| Slot {
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RingCore {
            mask: capacity - 1,
            slots,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            producer_closed: AtomicBool::new(false),
            consumer_closed: AtomicBool::new(false),
        }
    }

    #[inline]
    pub(crate) fn capacity(&self) -> usize {
        self.mask + 1
    }

    #[inline]
    pub(crate) fn occupancy(&self) -> usize {
        // tail and head only grow; a torn read can momentarily under- or
        // over-estimate, which is fine for telemetry call sites. The
        // producer/consumer themselves track their own counter exactly.
        self.tail
            .load(Acquire)
            .saturating_sub(self.head.load(Acquire))
    }

    /// `true` iff the live region `[head, tail)` does not wrap around the
    /// slot array — the paper's preferred (fast memcpy) resize position.
    #[allow(dead_code)] // exercised by unit tests; kept as a diagnostic
    pub(crate) fn is_non_wrapped(&self) -> bool {
        let head = self.head.load(Acquire);
        let tail = self.tail.load(Acquire);
        (head & self.mask) <= ((tail.wrapping_sub(1)) & self.mask) || head == tail
    }

    /// Drain remaining initialized elements (used on drop).
    ///
    /// # Safety
    /// Caller must have exclusive access to the ring (`&mut self` plus no
    /// outstanding element references), which `Drop` guarantees.
    unsafe fn drain(&mut self) {
        // Relaxed suffices: `&mut self` proves no other thread can touch the
        // counters concurrently. (loom's atomics have no `get_mut`, so plain
        // loads/stores keep this path identical under the model checker.)
        let head = self.head.load(Relaxed);
        let tail = self.tail.load(Relaxed);
        for i in head..tail {
            let slot = &self.slots[i & self.mask];
            // SAFETY: every index in `[head, tail)` was written by a push and
            // not yet consumed, so the slot is initialized; exclusive access
            // is the caller's contract. Each slot is dropped exactly once
            // because `head` is advanced to `tail` below.
            slot.value.with_mut(|p| unsafe { (*p).assume_init_drop() });
        }
        self.head.store(tail, Relaxed);
    }
}

impl<T> Drop for RingCore<T> {
    fn drop(&mut self) {
        // SAFETY: dropping grants exclusive access — both endpoint handles
        // are gone (they hold the only Arcs) and no element refs outlive them.
        unsafe { self.drain() };
    }
}

/// A fixed-capacity lock-free SPSC queue, split into producer and consumer
/// halves by [`BoundedSpsc::new`].
pub struct BoundedSpsc<T>(std::marker::PhantomData<T>);

impl<T: Send> BoundedSpsc<T> {
    /// Create a ring with at least `capacity` slots (rounded up to a power of
    /// two) and return the two endpoint handles.
    #[allow(clippy::new_ret_no_self)] // intentionally a factory of the two halves
    pub fn new(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
        let core = Arc::new(RingCore::with_capacity(capacity));
        (
            SpscProducer {
                core: core.clone(),
                tail: 0,
                head_cache: 0,
            },
            SpscConsumer {
                core,
                head: 0,
                tail_cache: 0,
            },
        )
    }
}

/// Producing half of a [`BoundedSpsc`]. `Send` but not `Clone`.
pub struct SpscProducer<T> {
    core: Arc<RingCore<T>>,
    /// Local mirror of `core.tail` — always equal to it between calls, so
    /// the fast path never loads its own shared counter.
    tail: usize,
    /// Stale (conservative) copy of `core.head`; refreshed only when the
    /// ring looks full.
    head_cache: usize,
}

/// Consuming half of a [`BoundedSpsc`]. `Send` but not `Clone`.
pub struct SpscConsumer<T> {
    core: Arc<RingCore<T>>,
    /// Local mirror of `core.head` — always equal to it between calls.
    head: usize,
    /// Stale (conservative) copy of `core.tail`; refreshed only when the
    /// ring looks empty.
    tail_cache: usize,
}

// SAFETY: the producer handle owns the producer role exclusively (it is not
// Clone), so moving it to another thread just moves which thread plays
// producer; the ring itself synchronizes via the head/tail protocol and `T`
// is required to be Send for the elements that cross.
unsafe impl<T: Send> Send for SpscProducer<T> {}
// SAFETY: same argument as SpscProducer — one non-Clone handle per role.
unsafe impl<T: Send> Send for SpscConsumer<T> {}

impl<T: Send> SpscProducer<T> {
    /// Attempt to enqueue without blocking.
    #[inline]
    pub fn try_push(&mut self, value: T) -> Result<(), TryPushError<T>> {
        self.try_push_signal(value, Signal::None)
    }

    /// Attempt to enqueue an element with a synchronous signal.
    #[inline]
    pub fn try_push_signal(&mut self, value: T, signal: Signal) -> Result<(), TryPushError<T>> {
        let core = &*self.core;
        if core.consumer_closed.load(Relaxed) {
            return Err(TryPushError::Closed(value));
        }
        let tail = self.tail;
        // Shared cached-index fast path (see `crate::index`): refresh pairs
        // Acquire with the consumer's Release store of `head`, ordering its
        // slot read-out before our reuse of the slot.
        let room = producer_free_slots(tail, &mut self.head_cache, core.capacity(), 1, || {
            core.head.load(Acquire)
        });
        if room == 0 {
            return Err(TryPushError::Full(value));
        }
        let slot = &core.slots[tail & core.mask];
        slot.value.with_mut(|p| {
            // SAFETY: `tail - head < capacity` (head_cache is never ahead of
            // the true head, and the check above passed against it), so slot
            // `tail & mask` is outside the live region: the consumer will not
            // touch it until our Release store below publishes it, and we are
            // the only producer (`&mut self` on a non-Clone handle). Writing
            // through the raw pointer is therefore exclusive.
            unsafe { (*p).write((value, signal)) };
        });
        core.tail.store(tail + 1, Release);
        self.tail = tail + 1;
        Ok(())
    }

    /// Spin until the element fits or the consumer disconnects.
    pub fn push(&mut self, mut value: T) -> Result<(), crate::error::PushError<T>> {
        // Spin-then-yield: the SPSC ring has no parking primitive, so the
        // shared wait strategy never asks us to park (and under loom every
        // step degrades to a model-checker yield).
        let mut waiter = crate::wait::Waiter::new(crate::wait::WaitStrategy::spinning());
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(TryPushError::Closed(v)) => return Err(crate::error::PushError(v)),
                Err(TryPushError::Full(v)) => {
                    value = v;
                    waiter.pause();
                }
            }
        }
    }

    /// Queue capacity in elements.
    pub fn capacity(&self) -> usize {
        self.core.capacity()
    }

    /// Elements currently queued.
    pub fn occupancy(&self) -> usize {
        self.core.occupancy()
    }

    /// `true` once the consumer half has been dropped.
    pub fn is_closed(&self) -> bool {
        self.core.consumer_closed.load(Relaxed)
    }
}

impl<T> Drop for SpscProducer<T> {
    fn drop(&mut self) {
        self.core.producer_closed.store(true, Release);
    }
}

impl<T: Send> SpscConsumer<T> {
    /// Attempt to dequeue without blocking.
    #[inline]
    pub fn try_pop(&mut self) -> Result<T, TryPopError> {
        self.try_pop_signal().map(|(v, _)| v)
    }

    /// Attempt to dequeue an element together with its signal.
    #[inline]
    pub fn try_pop_signal(&mut self) -> Result<(T, Signal), TryPopError> {
        let core = &*self.core;
        let head = self.head;
        // Shared cached-index fast path (see `crate::index`): refresh pairs
        // Acquire with the producer's Release store of `tail`, making the
        // slot contents visible before we read them out.
        let avail = consumer_ready_elems(head, &mut self.tail_cache, || core.tail.load(Acquire));
        if avail == 0 {
            return if core.producer_closed.load(Acquire) {
                // Re-check emptiness: the producer may have pushed
                // between our tail load and its close.
                self.tail_cache = core.tail.load(Acquire);
                if self.tail_cache == head {
                    Err(TryPopError::Closed)
                } else {
                    Err(TryPopError::Empty)
                }
            } else {
                Err(TryPopError::Empty)
            };
        }
        let slot = &core.slots[head & core.mask];
        // SAFETY: `head < tail` was observed through an Acquire load of
        // `tail` (tail_cache never runs ahead of the true tail), which
        // synchronizes-with the producer's Release store after it initialized
        // this slot — so the slot is initialized and the producer will not
        // write it again until our Release store below frees it. We are the
        // only consumer (`&mut self` on a non-Clone handle), so the read-out
        // is exclusive.
        let pair = slot.value.with(|p| unsafe { (*p).assume_init_read() });
        core.head.store(head + 1, Release);
        self.head = head + 1;
        Ok(pair)
    }

    /// Spin until an element arrives; `Err` once closed *and* drained.
    pub fn pop(&mut self) -> Result<T, crate::error::PopError> {
        // See `push`: shared spin-then-yield strategy, loom-safe.
        let mut waiter = crate::wait::Waiter::new(crate::wait::WaitStrategy::spinning());
        loop {
            match self.try_pop() {
                Ok(v) => return Ok(v),
                Err(TryPopError::Closed) => return Err(crate::error::PopError),
                Err(TryPopError::Empty) => waiter.pause(),
            }
        }
    }

    /// Reference to the front element, if any (no copy).
    pub fn peek(&mut self) -> Option<&T> {
        let core = &*self.core;
        let head = self.head;
        if consumer_ready_elems(head, &mut self.tail_cache, || core.tail.load(Acquire)) == 0 {
            return None;
        }
        let slot = &core.slots[head & core.mask];
        // SAFETY: `head < tail` observed via Acquire (see try_pop_signal),
        // so the slot is initialized and inside the live region; the
        // producer cannot reuse it until the consumer advances `head`, and
        // only the consumer (this handle, borrowed mutably) can do that. The
        // returned reference borrows `self`, so it dies before any `pop` by
        // the same thread. The pointer does not escape the `with` closure —
        // only the derived shared reference, which stays valid because the
        // cell's contents are not moved or mutated while the live region
        // holds this slot.
        Some(slot.value.with(|p| unsafe { &(*p).assume_init_ref().0 }))
    }

    /// Queue capacity in elements.
    pub fn capacity(&self) -> usize {
        self.core.capacity()
    }

    /// Elements currently queued.
    pub fn occupancy(&self) -> usize {
        self.core.occupancy()
    }

    /// `true` once the producer dropped and the ring drained.
    pub fn is_finished(&self) -> bool {
        self.core.producer_closed.load(Acquire) && self.core.occupancy() == 0
    }
}

impl<T> Drop for SpscConsumer<T> {
    fn drop(&mut self) {
        self.core.consumer_closed.store(true, Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (p, _c) = BoundedSpsc::<u32>::new(5);
        assert_eq!(p.capacity(), 8);
        let (p, _c) = BoundedSpsc::<u32>::new(8);
        assert_eq!(p.capacity(), 8);
        let (p, _c) = BoundedSpsc::<u32>::new(0);
        assert_eq!(p.capacity(), 1);
    }

    #[test]
    fn push_pop_in_order() {
        let (mut p, mut c) = BoundedSpsc::new(4);
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        assert!(matches!(p.try_push(9), Err(TryPushError::Full(9))));
        for i in 0..4 {
            assert_eq!(c.try_pop().unwrap(), i);
        }
        assert_eq!(c.try_pop(), Err(TryPopError::Empty));
    }

    #[test]
    fn wraps_around() {
        let (mut p, mut c) = BoundedSpsc::new(2);
        for round in 0..100 {
            p.try_push(round * 2).unwrap();
            p.try_push(round * 2 + 1).unwrap();
            assert_eq!(c.try_pop().unwrap(), round * 2);
            assert_eq!(c.try_pop().unwrap(), round * 2 + 1);
        }
    }

    #[test]
    fn close_semantics() {
        let (mut p, mut c) = BoundedSpsc::new(4);
        p.try_push(1).unwrap();
        drop(p);
        assert_eq!(c.try_pop().unwrap(), 1);
        assert_eq!(c.try_pop(), Err(TryPopError::Closed));
        assert!(c.is_finished());
    }

    #[test]
    fn consumer_drop_closes_producer() {
        let (mut p, c) = BoundedSpsc::new(4);
        drop(c);
        assert!(p.is_closed());
        assert!(matches!(p.try_push(1), Err(TryPushError::Closed(1))));
    }

    #[test]
    fn signals_ride_with_elements() {
        let (mut p, mut c) = BoundedSpsc::new(4);
        p.try_push_signal(7u8, Signal::EoS).unwrap();
        assert_eq!(c.try_pop_signal().unwrap(), (7, Signal::EoS));
    }

    #[test]
    fn peek_does_not_consume() {
        let (mut p, mut c) = BoundedSpsc::new(4);
        p.try_push(42).unwrap();
        assert_eq!(c.peek(), Some(&42));
        assert_eq!(c.peek(), Some(&42));
        assert_eq!(c.try_pop().unwrap(), 42);
        assert_eq!(c.peek(), None);
    }

    #[test]
    fn drops_remaining_elements() {
        // Use a type with a drop counter to verify no leaks.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let (mut p, c) = BoundedSpsc::new(8);
        for _ in 0..5 {
            p.try_push(D).unwrap();
        }
        drop(p);
        drop(c);
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn cross_thread_transfer() {
        let (mut p, mut c) = BoundedSpsc::new(16);
        const N: u64 = 100_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                p.push(i).unwrap();
            }
        });
        let mut expected = 0;
        while let Ok(v) = c.pop() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, N);
        producer.join().unwrap();
    }

    #[test]
    fn non_wrapped_detection() {
        let (mut p, mut c) = BoundedSpsc::new(4);
        // empty ring is trivially non-wrapped
        assert!(p.core.is_non_wrapped());
        p.try_push(0).unwrap();
        p.try_push(1).unwrap();
        assert!(p.core.is_non_wrapped());
        // advance head past two, push two more: live region [2,6) wraps
        c.try_pop().unwrap();
        c.try_pop().unwrap();
        p.try_push(2).unwrap();
        p.try_push(3).unwrap();
        p.try_push(4).unwrap();
        assert!(!p.core.is_non_wrapped());
    }

    #[test]
    fn cached_indices_stay_conservative() {
        // Fill, drain on the consumer side, then verify the producer's
        // stale head_cache only causes a refresh — never a lost slot.
        let (mut p, mut c) = BoundedSpsc::new(2);
        p.try_push(1).unwrap();
        p.try_push(2).unwrap();
        // producer believes the ring is full; consumer frees both slots
        assert_eq!(c.try_pop().unwrap(), 1);
        assert_eq!(c.try_pop().unwrap(), 2);
        // the next push must refresh head_cache and succeed
        p.try_push(3).unwrap();
        p.try_push(4).unwrap();
        assert!(matches!(p.try_push(5), Err(TryPushError::Full(5))));
        assert_eq!(c.try_pop().unwrap(), 3);
        assert_eq!(c.try_pop().unwrap(), 4);
        assert_eq!(c.try_pop(), Err(TryPopError::Empty));
    }
}
