//! Low-overhead per-FIFO telemetry.
//!
//! RaftLib's monitor thread samples every queue each δ (default 10 µs in the
//! paper) and feeds mean occupancy, service rates, throughput and occupancy
//! histograms to the optimizer (§4.1, the TimeTrial lineage of refs \[29,30\]).
//! To keep producer/consumer overhead negligible, everything here is a
//! relaxed atomic counter updated on the hot path with a single store, and
//! the monitor does all derivation at sample time.
//!
//! ## Layout: who writes what
//!
//! The counters are split into three cache-padded groups by *writer*:
//! [`WriterCounters`] (producer thread only), [`ReaderCounters`] (consumer
//! thread only) and [`MonitorCounters`] (monitor thread only). Before this
//! split, `pushed` and `popped` sat on the same cache line, so every push
//! invalidated the consumer's line and vice versa — classic false sharing
//! that shows up directly as cross-thread throughput loss. With one padded
//! group per writing thread, each hot-path store hits a line nobody else
//! writes; only the (rare, sampling-rate) monitor reads cross lines.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// Number of log2 occupancy-histogram buckets; bucket `i` counts samples
/// with occupancy in `[2^(i-1), 2^i)` (bucket 0 = occupancy 0).
pub const HIST_BUCKETS: usize = 32;

/// Counters written only by the producer thread (padded to its own cache
/// line inside [`FifoStats`]).
#[derive(Debug)]
pub struct WriterCounters {
    /// Total elements ever pushed.
    pub pushed: AtomicU64,
    /// Nanoseconds (since [`FifoStats::now_ns`]'s epoch) at which the writer
    /// started blocking on a full ring; 0 = writer not currently blocked.
    pub blocked_since: AtomicU64,
    /// Cumulative nanoseconds the writer spent blocked.
    pub blocked_ns: AtomicU64,
    /// Elements dropped by a [`Shed`]/[`BlockTimeout`] admission policy on
    /// a full ring (see [`crate::journal::AdmissionPolicy`]).
    ///
    /// [`Shed`]: crate::journal::AdmissionPolicy::Shed
    /// [`BlockTimeout`]: crate::journal::AdmissionPolicy::BlockTimeout
    pub shed: AtomicU64,
}

/// Counters written only by the consumer thread (padded to its own cache
/// line inside [`FifoStats`]).
#[derive(Debug)]
pub struct ReaderCounters {
    /// Total elements ever popped.
    pub popped: AtomicU64,
    /// Like [`WriterCounters::blocked_since`], for a reader blocked on an
    /// empty ring or an unsatisfiable `peek_range`.
    pub blocked_since: AtomicU64,
    /// Cumulative nanoseconds the reader spent blocked.
    pub blocked_ns: AtomicU64,
    /// Largest item count a reader has requested at once (`peek_range` /
    /// `pop_range`); the monitor grows the ring if this exceeds capacity —
    /// the paper's read-side resize trigger.
    pub max_read_request: AtomicU64,
    /// Elements served again from the consumer-side journal after a
    /// supervised restart rewound the link (exactly-once replay).
    pub replayed: AtomicU64,
}

/// Counters written only by the monitor thread (padded to its own cache
/// line inside [`FifoStats`]).
#[derive(Debug)]
pub struct MonitorCounters {
    /// Number of resize operations performed on this FIFO.
    pub resizes: AtomicU64,
    /// Occupancy histogram, filled by the monitor at each sampling tick.
    pub occupancy_hist: [AtomicU64; HIST_BUCKETS],
    /// Sum of sampled occupancies (for mean occupancy).
    pub occupancy_sum: AtomicU64,
    /// Number of occupancy samples taken.
    pub occupancy_samples: AtomicU64,
}

/// Shared counters between one FIFO's producer, consumer, and the monitor,
/// grouped per writing thread to avoid false sharing (see module docs).
///
/// All fields are updated with `Relaxed` ordering: the numbers are
/// statistical, never used for synchronization.
#[derive(Debug)]
pub struct FifoStats {
    /// Producer-written counters, on their own cache line.
    pub writer: CachePadded<WriterCounters>,
    /// Consumer-written counters, on their own cache line.
    pub reader: CachePadded<ReaderCounters>,
    /// Monitor-written counters, on their own cache line.
    pub monitor: CachePadded<MonitorCounters>,
    epoch: Instant,
}

impl Default for FifoStats {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoStats {
    /// Fresh, zeroed stats with `epoch = now`.
    pub fn new() -> Self {
        FifoStats {
            writer: CachePadded::new(WriterCounters {
                pushed: AtomicU64::new(0),
                blocked_since: AtomicU64::new(0),
                blocked_ns: AtomicU64::new(0),
                shed: AtomicU64::new(0),
            }),
            reader: CachePadded::new(ReaderCounters {
                popped: AtomicU64::new(0),
                blocked_since: AtomicU64::new(0),
                blocked_ns: AtomicU64::new(0),
                max_read_request: AtomicU64::new(0),
                replayed: AtomicU64::new(0),
            }),
            monitor: CachePadded::new(MonitorCounters {
                resizes: AtomicU64::new(0),
                occupancy_hist: std::array::from_fn(|_| AtomicU64::new(0)),
                occupancy_sum: AtomicU64::new(0),
                occupancy_samples: AtomicU64::new(0),
            }),
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since this FIFO's stats were created. Used as the
    /// timebase for the `blocked_since` fields (0 is reserved for "not
    /// blocked", so we offset by 1).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64 + 1
    }

    /// Producer entered the blocked state.
    #[inline]
    pub fn writer_block_begin(&self) {
        self.writer.blocked_since.store(self.now_ns(), Relaxed);
    }

    /// Producer left the blocked state; accumulates blocked time.
    #[inline]
    pub fn writer_block_end(&self) {
        let since = self.writer.blocked_since.swap(0, Relaxed);
        if since != 0 {
            let dt = self.now_ns().saturating_sub(since);
            self.writer.blocked_ns.fetch_add(dt, Relaxed);
        }
    }

    /// Consumer entered the blocked state.
    #[inline]
    pub fn reader_block_begin(&self) {
        self.reader.blocked_since.store(self.now_ns(), Relaxed);
    }

    /// Consumer left the blocked state; accumulates blocked time.
    #[inline]
    pub fn reader_block_end(&self) {
        let since = self.reader.blocked_since.swap(0, Relaxed);
        if since != 0 {
            let dt = self.now_ns().saturating_sub(since);
            self.reader.blocked_ns.fetch_add(dt, Relaxed);
        }
    }

    /// How long (ns) the writer has been continuously blocked, or 0.
    #[inline]
    pub fn writer_blocked_for_ns(&self) -> u64 {
        let since = self.writer.blocked_since.load(Relaxed);
        if since == 0 {
            0
        } else {
            self.now_ns().saturating_sub(since)
        }
    }

    /// Record a reader's multi-item request size (monitor may grow the ring
    /// past it).
    #[inline]
    pub fn note_read_request(&self, n: usize) {
        self.reader.max_read_request.fetch_max(n as u64, Relaxed);
    }

    /// Called by the monitor each tick with the observed occupancy.
    pub fn sample_occupancy(&self, occ: usize) {
        let bucket = if occ == 0 {
            0
        } else {
            (usize::BITS - occ.leading_zeros()) as usize
        }
        .min(HIST_BUCKETS - 1);
        self.monitor.occupancy_hist[bucket].fetch_add(1, Relaxed);
        self.monitor.occupancy_sum.fetch_add(occ as u64, Relaxed);
        self.monitor.occupancy_samples.fetch_add(1, Relaxed);
    }

    /// Snapshot all derived statistics.
    pub fn snapshot(&self, capacity: usize, occupancy: usize) -> StatsSnapshot {
        let samples = self.monitor.occupancy_samples.load(Relaxed);
        let mean_occupancy = if samples == 0 {
            occupancy as f64
        } else {
            self.monitor.occupancy_sum.load(Relaxed) as f64 / samples as f64
        };
        let elapsed = self.epoch.elapsed().as_secs_f64();
        let popped = self.reader.popped.load(Relaxed);
        StatsSnapshot {
            pushed: self.writer.pushed.load(Relaxed),
            popped,
            capacity,
            occupancy,
            mean_occupancy,
            resizes: self.monitor.resizes.load(Relaxed),
            writer_blocked_ns: self.writer.blocked_ns.load(Relaxed),
            reader_blocked_ns: self.reader.blocked_ns.load(Relaxed),
            max_read_request: self.reader.max_read_request.load(Relaxed) as usize,
            shed: self.writer.shed.load(Relaxed),
            replayed: self.reader.replayed.load(Relaxed),
            throughput: if elapsed > 0.0 {
                popped as f64 / elapsed
            } else {
                0.0
            },
            occupancy_hist: std::array::from_fn(|i| self.monitor.occupancy_hist[i].load(Relaxed)),
        }
    }
}

/// A point-in-time copy of a FIFO's statistics, as reported to users and the
/// optimizer.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Total elements pushed so far.
    pub pushed: u64,
    /// Total elements popped so far.
    pub popped: u64,
    /// Current ring capacity (elements).
    pub capacity: usize,
    /// Instantaneous occupancy at snapshot time.
    pub occupancy: usize,
    /// Mean occupancy over all monitor samples.
    pub mean_occupancy: f64,
    /// Number of dynamic resizes performed.
    pub resizes: u64,
    /// Total writer blocked time (ns).
    pub writer_blocked_ns: u64,
    /// Total reader blocked time (ns).
    pub reader_blocked_ns: u64,
    /// Largest multi-item read request observed.
    pub max_read_request: usize,
    /// Elements dropped by the link's admission policy on overload.
    pub shed: u64,
    /// Elements re-served from the journal after a supervised restart.
    pub replayed: u64,
    /// Elements per second popped since creation.
    pub throughput: f64,
    /// Log2-bucketed occupancy histogram (see [`HIST_BUCKETS`]).
    pub occupancy_hist: [u64; HIST_BUCKETS],
}

impl StatsSnapshot {
    /// Fraction of elements in flight: `occupancy / capacity`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.occupancy as f64 / self.capacity as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_accounting() {
        let s = FifoStats::new();
        assert_eq!(s.writer_blocked_for_ns(), 0);
        s.writer_block_begin();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(s.writer_blocked_for_ns() >= 1_000_000);
        s.writer_block_end();
        assert_eq!(s.writer_blocked_for_ns(), 0);
        assert!(s.writer.blocked_ns.load(Relaxed) >= 1_000_000);
    }

    #[test]
    fn block_end_without_begin_is_noop() {
        let s = FifoStats::new();
        s.writer_block_end();
        s.reader_block_end();
        assert_eq!(s.writer.blocked_ns.load(Relaxed), 0);
        assert_eq!(s.reader.blocked_ns.load(Relaxed), 0);
    }

    #[test]
    fn occupancy_histogram_buckets() {
        let s = FifoStats::new();
        s.sample_occupancy(0); // bucket 0
        s.sample_occupancy(1); // bucket 1  [1,2)
        s.sample_occupancy(2); // bucket 2  [2,4)
        s.sample_occupancy(3); // bucket 2
        s.sample_occupancy(4); // bucket 3  [4,8)
        s.sample_occupancy(1024); // bucket 11
        let snap = s.snapshot(2048, 0);
        assert_eq!(snap.occupancy_hist[0], 1);
        assert_eq!(snap.occupancy_hist[1], 1);
        assert_eq!(snap.occupancy_hist[2], 2);
        assert_eq!(snap.occupancy_hist[3], 1);
        assert_eq!(snap.occupancy_hist[11], 1);
        assert_eq!(snap.occupancy_samples_total(), 6);
    }

    #[test]
    fn mean_occupancy() {
        let s = FifoStats::new();
        s.sample_occupancy(10);
        s.sample_occupancy(20);
        let snap = s.snapshot(64, 15);
        assert!((snap.mean_occupancy - 15.0).abs() < 1e-9);
    }

    #[test]
    fn utilization() {
        let s = FifoStats::new();
        let snap = s.snapshot(100, 25);
        assert!((snap.utilization() - 0.25).abs() < 1e-12);
        let snap0 = s.snapshot(0, 0);
        assert_eq!(snap0.utilization(), 0.0);
    }

    #[test]
    fn read_request_max() {
        let s = FifoStats::new();
        s.note_read_request(5);
        s.note_read_request(3);
        s.note_read_request(9);
        assert_eq!(s.snapshot(4, 0).max_read_request, 9);
    }

    #[test]
    fn hot_counters_live_on_distinct_cache_lines() {
        let s = FifoStats::new();
        let pushed = &s.writer.pushed as *const _ as usize;
        let popped = &s.reader.popped as *const _ as usize;
        let resizes = &s.monitor.resizes as *const _ as usize;
        // CachePadded aligns to at least 64 bytes on every supported arch.
        assert!(pushed.abs_diff(popped) >= 64);
        assert!(popped.abs_diff(resizes) >= 64);
        assert!(pushed.abs_diff(resizes) >= 64);
    }

    impl StatsSnapshot {
        fn occupancy_samples_total(&self) -> u64 {
            self.occupancy_hist.iter().sum()
        }
    }
}
