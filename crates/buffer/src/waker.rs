//! Edge-triggered wakers on the FIFO shared core.
//!
//! The pool schedulers used to discover readiness by *polling*: every
//! worker pass re-read the occupancy of every input stream of every kernel
//! (O(kernels × ports) loads per sweep) and idled through a sleep loop when
//! nothing was ready. A [`WakerSlot`] inverts that: the scheduler parks a
//! kernel once, **arms** the slot on each of its input streams, and the
//! *producer side* of the stream turns readiness into an O(1) callback at
//! the moment data (or EoS, or an async signal) arrives. The condvar
//! `PARK_TIMEOUT` inside the FIFO stops being a polling rate and becomes a
//! pure safety net.
//!
//! Each FIFO core owns two slots: a **consumer-side** slot notified by
//! `push`/batch-commit/`close`/`post_async` ("data or EoS is visible") and
//! a **producer-side** slot notified by `pop`/batch-drain/consumer-drop/
//! resize ("space is visible").
//!
//! ## The lost-wakeup problem, and the fence protocol
//!
//! Arming and notification race on two distinct locations — the `armed`
//! flag and the stream state (head/tail/closed) — which is the classic
//! store-buffering (Dekker) shape, the same one
//! [`crate::fence::ResizeFence`] solves for resizes:
//!
//! ```text
//! waiter  (scheduler):  armed = true;   Fw: fence(SeqCst);  read stream state
//! notifier (endpoint):  write stream;   Fn: fence(SeqCst);  read-and-clear armed
//! ```
//!
//! SeqCst fences have a single total order, so either `Fw < Fn` — the
//! notifier's `armed` read observes the waiter's store and the waker fires
//! — or `Fn < Fw` — the waiter's state re-check observes the notifier's
//! write and the waiter never parks. There is **no interleaving in which
//! the waiter parks on an observed-empty queue and the notifier skips the
//! wake**: that would need both fences to precede each other. Both sides
//! "winning" (state seen *and* wake fired) costs one spurious wake, which
//! the scheduler's task state machine absorbs. `tests/loom_waker.rs`
//! model-checks exactly this window.
//!
//! `armed` is read-and-cleared with a swap, so each arm produces **at most
//! one** wake (edge-triggered): a stream pushing a thousand elements while
//! its consumer is already queued costs a thousand `state != SET` relaxed
//! loads, not a thousand callbacks. When no waker was ever registered
//! (thread-per-kernel and polling-pool runs), every notify site degrades to
//! that single relaxed load and branch — the PR 2 hot-path numbers are
//! preserved.

// The waker handle is a std Arc even under loom: the Arc is payload, not
// protocol — publication of the cell contents is ordered entirely by the
// (loom-instrumented) `state` atomic and SeqCst fences below, so the model
// checker still explores every ordering that matters.
use std::sync::Arc;

use crate::sync::{
    fence, AtomicBool, AtomicUsize,
    Ordering::{Relaxed, Release, SeqCst},
    UnsafeCell,
};

/// Callback invoked (at most once per arm) when a stream becomes actionable
/// for the registered side. Implementations must be cheap and non-blocking:
/// they run inline on the notifying endpoint's thread — typically an O(1)
/// task enqueue plus a worker unpark.
pub trait FifoWaker: Send + Sync {
    /// Deliver the wake.
    fn wake(&self);
}

/// `state` values: no waker installed / installation in progress /
/// installed and published.
const EMPTY: usize = 0;
const INSTALLING: usize = 1;
const SET: usize = 2;

/// One registration point for a [`FifoWaker`], owned by the FIFO core.
///
/// Lifecycle: the scheduler [`register`](WakerSlot::register)s a waker once
/// per run (first caller wins; the slot stays registered for the FIFO's
/// lifetime, so no reclamation race exists), then repeatedly
/// [`arm`](WakerSlot::arm)s it before parking the consuming/producing task
/// and re-checks the stream state per the module-level fence protocol.
pub struct WakerSlot {
    /// Publication state of `waker` (EMPTY → INSTALLING → SET, one-way).
    state: AtomicUsize,
    /// Set by the waiter when it is about to park; cleared (claimed) by
    /// exactly one notifier or by a cancelling [`disarm`](WakerSlot::disarm).
    armed: AtomicBool,
    /// The installed waker. Written once by the INSTALLING winner, read
    /// only after observing `state == SET`.
    waker: UnsafeCell<Option<Arc<dyn FifoWaker>>>,
}

impl std::fmt::Debug for WakerSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WakerSlot")
            .field("registered", &(self.state.load(Relaxed) == SET))
            .field("armed", &self.armed.load(Relaxed))
            .finish()
    }
}

// SAFETY: the `waker` cell is written only by the single thread that wins
// the EMPTY→INSTALLING CAS, strictly before the Release store of SET; every
// read happens after observing SET (via the SeqCst fence in `notify`, which
// upgrades the relaxed guard load to an acquire of that publication). The
// cell is never written again, so shared references cannot alias a mutation.
unsafe impl Send for WakerSlot {}
// SAFETY: see the `Send` justification above — all cross-thread access to
// the cell is ordered by the state protocol.
unsafe impl Sync for WakerSlot {}

impl Default for WakerSlot {
    fn default() -> Self {
        Self::new()
    }
}

impl WakerSlot {
    /// An empty, unarmed slot.
    pub fn new() -> Self {
        WakerSlot {
            state: AtomicUsize::new(EMPTY),
            armed: AtomicBool::new(false),
            waker: UnsafeCell::new(None),
        }
    }

    /// Install `waker`. Returns `false` (dropping `waker`) if a waker is
    /// already installed or being installed — registration is once per
    /// slot lifetime, which is what makes lock-free reads on the notify
    /// path sound.
    pub fn register(&self, waker: Arc<dyn FifoWaker>) -> bool {
        if self
            .state
            .compare_exchange(EMPTY, INSTALLING, Relaxed, Relaxed)
            .is_err()
        {
            return false;
        }
        self.waker.with_mut(|p| {
            // SAFETY: we won the EMPTY→INSTALLING CAS, so no other thread
            // writes the cell, and no reader dereferences it until the
            // Release store of SET below publishes our write.
            unsafe { *p = Some(waker) };
        });
        self.state.store(SET, Release);
        true
    }

    /// `true` once a waker is installed.
    #[inline]
    pub fn is_registered(&self) -> bool {
        self.state.load(Relaxed) == SET
    }

    /// Waiter side: declare interest in the next notify. Call **before**
    /// re-checking the stream state; the SeqCst fence pairs with the one in
    /// [`notify`](WakerSlot::notify) (see the module docs for the proof).
    #[inline]
    pub fn arm(&self) {
        self.armed.store(true, Relaxed);
        fence(SeqCst);
    }

    /// Waiter side: withdraw interest (the re-check found the stream
    /// actionable, or the task is being claimed). Returns `false` if a
    /// notifier already claimed the arm — its wake is in flight and will be
    /// absorbed as a spurious one.
    #[inline]
    pub fn disarm(&self) -> bool {
        self.armed.swap(false, Relaxed)
    }

    /// Notifier side: fire the registered waker if the slot is armed.
    /// Called by the FIFO after every state change the opposite endpoint
    /// might be waiting on. One relaxed load + branch when nothing was ever
    /// registered; fence + flag check when registered; the callback only
    /// when an arm is actually claimed.
    #[inline]
    pub fn notify(&self) {
        if self.state.load(Relaxed) != SET {
            return;
        }
        self.notify_slow();
    }

    #[cold]
    fn notify_slow(&self) {
        // Dekker pairing: orders the caller's preceding stream write before
        // the `armed` read in the SC fence order (module docs). Also
        // upgrades the relaxed `state == SET` observation into an acquire
        // of the waker publication.
        fence(SeqCst);
        if self.armed.load(Relaxed) && self.armed.swap(false, Relaxed) {
            self.waker.with(|p| {
                // SAFETY: `state == SET` was observed and acquired via the
                // fence above, so the INSTALLING thread's write to the cell
                // happened-before this read; the cell is never written
                // again after SET.
                if let Some(w) = unsafe { (*p).as_ref() } {
                    w.wake();
                }
            });
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingWaker(AtomicU64);
    impl FifoWaker for CountingWaker {
        fn wake(&self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn counting() -> (Arc<CountingWaker>, Arc<dyn FifoWaker>) {
        let w = Arc::new(CountingWaker(AtomicU64::new(0)));
        (w.clone(), w)
    }

    #[test]
    fn notify_without_registration_is_noop() {
        let slot = WakerSlot::new();
        slot.arm();
        slot.notify(); // must not crash or spin
        assert!(!slot.is_registered());
        assert!(slot.disarm(), "arm was never claimed");
    }

    #[test]
    fn one_wake_per_arm() {
        let slot = WakerSlot::new();
        let (counter, waker) = counting();
        assert!(slot.register(waker));
        assert!(slot.is_registered());

        slot.notify(); // not armed: no wake
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);

        slot.arm();
        slot.notify();
        slot.notify(); // edge-triggered: second notify finds it disarmed
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);

        slot.arm();
        slot.notify();
        assert_eq!(counter.0.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn second_registration_is_rejected() {
        let slot = WakerSlot::new();
        let (counter_a, waker_a) = counting();
        let (counter_b, waker_b) = counting();
        assert!(slot.register(waker_a));
        assert!(!slot.register(waker_b));
        slot.arm();
        slot.notify();
        assert_eq!(counter_a.0.load(Ordering::SeqCst), 1);
        assert_eq!(counter_b.0.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn disarm_cancels_pending_wake() {
        let slot = WakerSlot::new();
        let (counter, waker) = counting();
        slot.register(waker);
        slot.arm();
        assert!(slot.disarm());
        slot.notify();
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn concurrent_notifiers_deliver_exactly_one_wake_per_arm() {
        let slot = Arc::new(WakerSlot::new());
        let (counter, waker) = counting();
        slot.register(waker);
        for round in 0..200u64 {
            slot.arm();
            let threads: Vec<_> = (0..4)
                .map(|_| {
                    let slot = slot.clone();
                    std::thread::spawn(move || slot.notify())
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(counter.0.load(Ordering::SeqCst), round + 1);
        }
    }
}
