//! Deterministic fault injection ("failpoints") for the chaos test suite.
//!
//! Compiled only under the `raft_failpoints` feature; release builds carry
//! zero overhead because every hook site goes through the [`failpoint!`]
//! macro, which expands to nothing when the feature is off.
//!
//! A failpoint *site* is a string label baked into the code path it guards
//! (e.g. `"core::scheduler::step"`, `"buffer::fifo::resize"`,
//! `"net::frame::write"`). Sites are disarmed by default; a test arms one
//! with [`arm`], choosing an action and a firing rate, and every firing
//! decision is drawn from a per-site xorshift stream seeded by
//! `global seed ⊕ fnv1a(site)` — so a given `(seed, site, rate)` triple
//! produces the same fault schedule on every run, which is what lets the CI
//! chaos job pin three seeds and get reproducible failures.
//!
//! The registry is process-global (the hook sites are reached from
//! scheduler, monitor, and socket threads); tests that arm overlapping
//! sites must serialize themselves, e.g. by holding a shared test mutex.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic at the site (exercises restart/skip/abort policies).
    Panic,
    /// Sleep at the site for the given duration (exercises the watchdog).
    Stall(Duration),
    /// Report a short read/write to the caller. Only meaningful at I/O
    /// sites that consult [`check`] and act on the result themselves.
    ShortIo,
}

struct Site {
    action: FailAction,
    /// Fire on average once every `one_in` hits (1 = every hit).
    one_in: u32,
    /// Stop firing after this many firings (0 = unlimited).
    budget: u64,
    fired: u64,
    rng: u64,
    hits: u64,
}

struct Registry {
    seed: u64,
    sites: HashMap<String, Site>,
}

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
/// Fast path: number of armed sites. Zero means every `check` returns
/// `None` after a single relaxed load, so an armed-nothing chaos build
/// stays cheap.
static ARMED: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Registry> {
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            seed: 0x9E37_79B9_7F4A_7C15,
            sites: HashMap::new(),
        })
    })
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Set the global chaos seed. Call before arming sites; re-seeding resets
/// the draw streams of sites armed afterwards (already-armed sites keep
/// their stream).
pub fn set_seed(seed: u64) {
    registry().lock().expect("failpoint registry").seed = seed;
}

/// Arm `site`: fire `action` on average once every `one_in` hits, at most
/// `budget` times (`0` = unlimited). Re-arming a site replaces its state.
pub fn arm(site: &str, action: FailAction, one_in: u32, budget: u64) {
    let mut reg = registry().lock().expect("failpoint registry");
    let rng = (reg.seed ^ fnv1a(site)).max(1);
    let prev = reg.sites.insert(
        site.to_string(),
        Site {
            action,
            one_in: one_in.max(1),
            budget,
            fired: 0,
            rng,
            hits: 0,
        },
    );
    if prev.is_none() {
        ARMED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Disarm every site (test teardown).
pub fn reset() {
    let mut reg = registry().lock().expect("failpoint registry");
    reg.sites.clear();
    ARMED.store(0, Ordering::Relaxed);
}

/// Number of times `site` was consulted (armed sites only).
pub fn hits(site: &str) -> u64 {
    registry()
        .lock()
        .expect("failpoint registry")
        .sites
        .get(site)
        .map_or(0, |s| s.hits)
}

/// Number of times `site` actually fired.
pub fn fired(site: &str) -> u64 {
    registry()
        .lock()
        .expect("failpoint registry")
        .sites
        .get(site)
        .map_or(0, |s| s.fired)
}

/// Consult `site`: returns the action to take if the site is armed and its
/// deterministic draw says "fire now". I/O sites that need [`FailAction::
/// ShortIo`] call this directly; panic/stall sites go through [`hit`].
pub fn check(site: &str) -> Option<FailAction> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let mut reg = registry().lock().expect("failpoint registry");
    let s = reg.sites.get_mut(site)?;
    s.hits += 1;
    if s.budget != 0 && s.fired >= s.budget {
        return None;
    }
    if xorshift(&mut s.rng) % s.one_in as u64 != 0 {
        return None;
    }
    s.fired += 1;
    Some(s.action)
}

/// Consult `site` and execute panic/stall actions in place. `ShortIo` at a
/// non-I/O site is ignored.
pub fn hit(site: &str) {
    match check(site) {
        Some(FailAction::Panic) => panic!("failpoint {site:?} fired"),
        Some(FailAction::Stall(d)) => std::thread::sleep(d),
        Some(FailAction::ShortIo) | None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_schedule_per_seed() {
        set_seed(42);
        arm("fp::test::sched", FailAction::ShortIo, 3, 0);
        let a: Vec<bool> = (0..64)
            .map(|_| check("fp::test::sched").is_some())
            .collect();
        set_seed(42);
        arm("fp::test::sched", FailAction::ShortIo, 3, 0);
        let b: Vec<bool> = (0..64)
            .map(|_| check("fp::test::sched").is_some())
            .collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&f| f), "rate 1-in-3 never fired in 64 draws");
        reset();
    }

    #[test]
    fn budget_caps_firings() {
        set_seed(7);
        arm("fp::test::budget", FailAction::ShortIo, 1, 2);
        let fired_n = (0..10)
            .filter(|_| check("fp::test::budget").is_some())
            .count();
        assert_eq!(fired_n, 2);
        assert_eq!(fired("fp::test::budget"), 2);
        assert_eq!(hits("fp::test::budget"), 10);
        reset();
    }

    #[test]
    fn unarmed_site_is_silent() {
        assert!(check("fp::test::never-armed").is_none());
        hit("fp::test::never-armed"); // must not panic
    }
}
