//! Error types for FIFO operations.

use std::fmt;

/// Non-blocking push failed.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The ring is full; the element is handed back.
    Full(T),
    /// The consumer side is gone; no one will ever read this element.
    Closed(T),
}

impl<T> TryPushError<T> {
    /// Recover the element that could not be pushed.
    pub fn into_inner(self) -> T {
        match self {
            TryPushError::Full(v) | TryPushError::Closed(v) => v,
        }
    }
}

/// Blocking push failed — only possible when the consumer disconnected.
#[derive(Debug, PartialEq, Eq)]
pub struct PushError<T>(pub T);

impl<T> PushError<T> {
    /// Recover the element that could not be pushed.
    pub fn into_inner(self) -> T {
        self.0
    }
}

/// Non-blocking pop failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryPopError {
    /// The ring is currently empty but the producer may still send.
    Empty,
    /// The ring is empty and the producer closed the stream: no element will
    /// ever arrive again.
    Closed,
}

/// Blocking pop failed — the stream drained and the producer closed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopError;

impl<T> fmt::Display for TryPushError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryPushError::Full(_) => write!(f, "FIFO full"),
            TryPushError::Closed(_) => write!(f, "FIFO closed by consumer"),
        }
    }
}

impl<T> fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FIFO closed by consumer")
    }
}

impl fmt::Display for TryPopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryPopError::Empty => write!(f, "FIFO empty"),
            TryPopError::Closed => write!(f, "FIFO closed and drained"),
        }
    }
}

impl fmt::Display for PopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FIFO closed and drained")
    }
}

impl<T: fmt::Debug> std::error::Error for TryPushError<T> {}
impl<T: fmt::Debug> std::error::Error for PushError<T> {}
impl std::error::Error for TryPopError {}
impl std::error::Error for PopError {}
