//! Unified adaptive **spin → yield → park** wait strategy.
//!
//! Before this module, the workspace had three hand-rolled idle loops with
//! three different shapes: pool workers counted "idle spins" and slept a
//! flat 100 µs, blocking FIFO endpoints ran a `crossbeam::Backoff` to
//! completion and then parked on a condvar, and the resize fence simply
//! `yield_now()`-looped. All of them are the same problem — *how long do I
//! believe the condition will flip soon?* — so they share one policy now:
//!
//! 1. **Spin**: a handful of exponentially growing busy-spin rounds
//!    (`pause` instructions). Wake-to-observe latency is tens of
//!    nanoseconds; right when the other side is actively producing.
//! 2. **Yield**: give the core away but stay runnable. Right when the other
//!    side is running but descheduled (oversubscribed hosts).
//! 3. **Park**: the caller should block on its real primitive (condvar,
//!    scheduler sleep). [`Waiter::pause`] falls back to `thread::sleep`
//!    with the strategy's timeout for callers that have none.
//!
//! The module is built on [`crate::sync`], so `--cfg loom` builds degrade
//! every phase to a model-checker yield and the waiting code inside the
//! loom suites stays explorable.

use std::time::Duration;

/// Tuning knobs for a [`Waiter`]. Copy-cheap; typically a `const`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitStrategy {
    /// Busy-spin rounds before yielding; round `n` executes `2^n` CPU
    /// relax hints, so the total spin budget is `2^spin_rounds` pauses.
    pub spin_rounds: u32,
    /// `yield_now` rounds after spinning, before parking.
    pub yield_rounds: u32,
    /// How long one park may last before the caller must re-check its
    /// condition (the missed-wakeup safety net). `None` means this waiter
    /// never parks: after the spin budget it yields forever (the resize
    /// fence and SPSC endpoints, which have no wake signal to park on).
    pub park_timeout: Option<Duration>,
}

impl WaitStrategy {
    /// Spin-then-yield strategy for waits with no parking primitive.
    pub const fn spinning() -> Self {
        WaitStrategy {
            spin_rounds: 6,
            yield_rounds: 0,
            park_timeout: None,
        }
    }

    /// Full spin → yield → park strategy; `park_timeout` bounds one park.
    pub const fn parking(park_timeout: Duration) -> Self {
        WaitStrategy {
            spin_rounds: 6,
            yield_rounds: 16,
            park_timeout: Some(park_timeout),
        }
    }
}

/// What a [`Waiter`] did (or asks the caller to do) for one idle round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitAction {
    /// Busy-spun; re-check immediately.
    Spun,
    /// Yielded the core; re-check on reschedule.
    Yielded,
    /// Spin and yield budgets are exhausted: block on your wake primitive
    /// (bounded by [`WaitStrategy::park_timeout`]), then re-check.
    Park,
}

/// Per-wait adaptive backoff state. Create one per logical wait, call
/// [`pause`](Waiter::pause) or [`pause_or_park`](Waiter::pause_or_park)
/// each time the condition is still false, and [`reset`](Waiter::reset)
/// whenever progress is observed.
#[derive(Debug)]
pub struct Waiter {
    strategy: WaitStrategy,
    round: u32,
}

impl Waiter {
    /// A fresh waiter at the start of its spin phase.
    pub fn new(strategy: WaitStrategy) -> Self {
        Waiter { strategy, round: 0 }
    }

    /// Restart the backoff (call on progress).
    #[inline]
    pub fn reset(&mut self) {
        self.round = 0;
    }

    /// The strategy's park bound, for callers that park on their own
    /// primitive (condvar `wait_for`, scheduler sleep).
    #[inline]
    pub fn park_timeout(&self) -> Option<Duration> {
        self.strategy.park_timeout
    }

    /// One non-blocking backoff step: spins or yields per the schedule and
    /// returns what happened. Once the budgets are spent it returns
    /// [`WaitAction::Park`] *without blocking* — the caller parks on its own
    /// primitive (or keeps yielding if the strategy never parks).
    #[inline]
    pub fn pause_or_park(&mut self) -> WaitAction {
        let s = &self.strategy;
        if self.round < s.spin_rounds {
            // Exponential spin: 1, 2, 4, ... relax hints per round.
            for _ in 0..(1u32 << self.round) {
                crate::sync::spin_loop();
            }
            self.round += 1;
            return WaitAction::Spun;
        }
        if self.round < s.spin_rounds + s.yield_rounds || s.park_timeout.is_none() {
            self.round = self.round.saturating_add(1);
            crate::sync::yield_now();
            return WaitAction::Yielded;
        }
        WaitAction::Park
    }

    /// One backoff step executed fully inline: spin, yield, or sleep for
    /// the park timeout. For callers without a wake primitive of their own
    /// (pool worker idle loops).
    #[inline]
    pub fn pause(&mut self) {
        if self.pause_or_park() == WaitAction::Park {
            // Reachable only when park_timeout is Some (see pause_or_park).
            #[cfg(not(loom))]
            std::thread::sleep(self.strategy.park_timeout.unwrap_or(Duration::ZERO));
            #[cfg(loom)]
            crate::sync::yield_now();
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn phases_progress_in_order() {
        let mut w = Waiter::new(WaitStrategy {
            spin_rounds: 2,
            yield_rounds: 2,
            park_timeout: Some(Duration::from_micros(1)),
        });
        assert_eq!(w.pause_or_park(), WaitAction::Spun);
        assert_eq!(w.pause_or_park(), WaitAction::Spun);
        assert_eq!(w.pause_or_park(), WaitAction::Yielded);
        assert_eq!(w.pause_or_park(), WaitAction::Yielded);
        assert_eq!(w.pause_or_park(), WaitAction::Park);
        // Park is sticky until reset.
        assert_eq!(w.pause_or_park(), WaitAction::Park);
        w.reset();
        assert_eq!(w.pause_or_park(), WaitAction::Spun);
    }

    #[test]
    fn spinning_strategy_never_parks() {
        let mut w = Waiter::new(WaitStrategy::spinning());
        for _ in 0..100 {
            assert_ne!(w.pause_or_park(), WaitAction::Park);
        }
        assert_eq!(w.park_timeout(), None);
    }

    #[test]
    fn pause_inline_sleeps_in_park_phase() {
        let mut w = Waiter::new(WaitStrategy {
            spin_rounds: 0,
            yield_rounds: 0,
            park_timeout: Some(Duration::from_millis(2)),
        });
        let t0 = std::time::Instant::now();
        w.pause();
        assert!(t0.elapsed() >= Duration::from_millis(1));
    }
}
