//! Stream signals.
//!
//! RaftLib delivers *synchronous* signals together with the data element they
//! accompany (the paper's example: an end-of-file marker that must arrive at
//! the downstream kernel exactly when the last element does), and
//! *asynchronous* signals that bypass the queue. This module defines the
//! signal vocabulary; synchronous delivery is implemented by storing a
//! [`Signal`] in every ring-buffer slot, asynchronous delivery by an atomic
//! side-channel on the FIFO ([`crate::fifo::Fifo::post_async`]).

/// A signal that rides alongside a stream element (synchronous) or is posted
/// out-of-band (asynchronous).
///
/// `Signal` is `Copy` and one byte + payload so that carrying it in every
/// slot costs almost nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Signal {
    /// No signal — the common case for a data element.
    #[default]
    None,
    /// Start of stream. Emitted with the first element by convention.
    SoS,
    /// End of stream. The element carrying this signal is the last one the
    /// producer will send; after it the stream is closed.
    EoS,
    /// A synchronization barrier: downstream kernels should flush state.
    Flush,
    /// A user-defined signal with a 32-bit payload (e.g. file boundaries in
    /// a multi-file scan).
    User(u32),
    /// Delivered asynchronously when a kernel terminated abnormally; the
    /// payload is an application-defined error code.
    Error(u32),
}

impl Signal {
    /// `true` if this signal terminates the stream.
    #[inline]
    pub fn is_terminal(self) -> bool {
        matches!(self, Signal::EoS | Signal::Error(_))
    }

    /// Encode to a `u64` for the asynchronous atomic side-channel.
    ///
    /// Layout: low 32 bits payload, next 8 bits discriminant, bit 63 set to
    /// distinguish "a signal is present" from the empty value `0`.
    #[inline]
    pub fn encode(self) -> u64 {
        const PRESENT: u64 = 1 << 63;
        let (tag, payload): (u64, u64) = match self {
            Signal::None => (0, 0),
            Signal::SoS => (1, 0),
            Signal::EoS => (2, 0),
            Signal::Flush => (3, 0),
            Signal::User(p) => (4, p as u64),
            Signal::Error(p) => (5, p as u64),
        };
        PRESENT | (tag << 32) | payload
    }

    /// Decode from the asynchronous side-channel; `None` if no signal was
    /// posted (`raw == 0`).
    #[inline]
    pub fn decode(raw: u64) -> Option<Signal> {
        if raw == 0 {
            return None;
        }
        let tag = (raw >> 32) & 0xff;
        let payload = (raw & 0xffff_ffff) as u32;
        Some(match tag {
            0 => Signal::None,
            1 => Signal::SoS,
            2 => Signal::EoS,
            3 => Signal::Flush,
            4 => Signal::User(payload),
            5 => Signal::Error(payload),
            _ => Signal::None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_none() {
        assert_eq!(Signal::default(), Signal::None);
    }

    #[test]
    fn terminal_signals() {
        assert!(Signal::EoS.is_terminal());
        assert!(Signal::Error(7).is_terminal());
        assert!(!Signal::None.is_terminal());
        assert!(!Signal::SoS.is_terminal());
        assert!(!Signal::Flush.is_terminal());
        assert!(!Signal::User(0).is_terminal());
    }

    #[test]
    fn encode_decode_roundtrip() {
        for s in [
            Signal::None,
            Signal::SoS,
            Signal::EoS,
            Signal::Flush,
            Signal::User(0),
            Signal::User(u32::MAX),
            Signal::Error(42),
        ] {
            assert_eq!(Signal::decode(s.encode()), Some(s), "{s:?}");
        }
    }

    #[test]
    fn decode_empty_channel() {
        assert_eq!(Signal::decode(0), None);
    }

    #[test]
    fn encoded_values_nonzero() {
        // The side-channel uses 0 for "empty": every encoding must be != 0.
        assert_ne!(Signal::None.encode(), 0);
        assert_ne!(Signal::User(0).encode(), 0);
    }
}
