//! Runtime protocol shadow checker for the unsafe FIFO fabric
//! (`raft_protocol_check` feature).
//!
//! The hot path in [`crate::fifo`] is lock-free and `unsafe`: its soundness
//! argument rests on a protocol — exactly one producer and one consumer
//! inside their ring critical sections at a time, monotonic published
//! counters, and resizes strictly excluded from both endpoints by the
//! [`crate::fence::ResizeFence`]. This module turns that argument into
//! executable assertions. Each FIFO carries a [`FifoShadow`]; the arena
//! enter/exit chokepoints and the resize path drive it. The shadow critical
//! section is entered strictly *after* the fence is acquired and exited
//! strictly *before* the fence is released, so the checker can never
//! report a violation the fence itself would have prevented (no false
//! positives from benign interleavings).
//!
//! Checks:
//!
//! * **SPSC discipline** — at most one thread inside the producer critical
//!   section, at most one inside the consumer critical section. A second
//!   entrant (e.g. a duplicated producer handle) is reported with both
//!   thread ids.
//! * **Monotonic sequence** — the producer's published `tail` and the
//!   consumer's published `head` never decrease across critical sections.
//!   Each role is checked only against its *own* counter (cross-role
//!   comparisons would race against legitimate concurrent progress).
//! * **Legal resize-fence transitions** — a resize may begin only with both
//!   endpoints outside their critical sections, resizes never nest, no
//!   endpoint enters during an active resize, and `head`/`tail` are
//!   unchanged across the resize.
//!
//! A violation increments [`violations`] and panics with a message prefixed
//! `raft_protocol_check violation:` — under chaos CI any violation fails
//! the run. The checker costs a few atomics per operation and exists for
//! test/CI builds only; the feature is off by default.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::fence::Role;

/// Process-wide count of detected protocol violations (each one also
/// panics; the counter survives `catch_unwind` for test assertions).
static VIOLATIONS: AtomicU64 = AtomicU64::new(0);

/// Total protocol violations detected so far in this process.
pub fn violations() -> u64 {
    VIOLATIONS.load(Ordering::Relaxed)
}

/// Monotonic per-thread id (1-based; `ThreadId::as_u64` is unstable).
fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

#[cold]
fn violation(msg: String) -> ! {
    VIOLATIONS.fetch_add(1, Ordering::Relaxed);
    panic!("raft_protocol_check violation: {msg}");
}

/// Shadow state attached to every FIFO when the checker is compiled in.
#[derive(Debug)]
pub(crate) struct FifoShadow {
    /// Thread id currently inside the producer critical section (0 = none).
    producer_cs: AtomicU64,
    /// Thread id currently inside the consumer critical section (0 = none).
    consumer_cs: AtomicU64,
    /// Set while a resize holds the fence.
    resizing: AtomicBool,
    /// Highest `tail` the producer has published at a critical-section exit.
    tail_seq: AtomicUsize,
    /// Highest `head` the consumer has published at a critical-section exit.
    head_seq: AtomicUsize,
}

impl FifoShadow {
    pub(crate) fn new() -> Self {
        FifoShadow {
            producer_cs: AtomicU64::new(0),
            consumer_cs: AtomicU64::new(0),
            resizing: AtomicBool::new(false),
            tail_seq: AtomicUsize::new(0),
            head_seq: AtomicUsize::new(0),
        }
    }

    fn cs(&self, role: Role) -> &AtomicU64 {
        match role {
            Role::Producer => &self.producer_cs,
            Role::Consumer => &self.consumer_cs,
        }
    }

    /// Called immediately *after* the fence is entered for `role`.
    pub(crate) fn enter(&self, role: Role) {
        if self.resizing.load(Ordering::SeqCst) {
            violation(format!(
                "{role:?} entered the ring critical section during an active \
                 resize (fence transition violated)"
            ));
        }
        let tid = current_tid();
        if let Err(prev) =
            self.cs(role)
                .compare_exchange(0, tid, Ordering::SeqCst, Ordering::SeqCst)
        {
            violation(format!(
                "two {role:?} endpoints inside the critical section at once \
                 (thread {prev} already inside, thread {tid} entered): the \
                 stream is SPSC — exactly one producer and one consumer \
                 handle may operate at a time"
            ));
        }
    }

    /// Called immediately *before* the fence is exited for `role`.
    /// `published` is the role's own monotonic counter (`tail` for the
    /// producer, `head` for the consumer) as published by this critical
    /// section.
    pub(crate) fn exit(&self, role: Role, published: usize) {
        let seq = match role {
            Role::Producer => &self.tail_seq,
            Role::Consumer => &self.head_seq,
        };
        let prev = seq.swap(published, Ordering::SeqCst);
        if published < prev {
            violation(format!(
                "{role:?} published a non-monotonic sequence: counter moved \
                 backwards from {prev} to {published}"
            ));
        }
        let tid = current_tid();
        let owner = self.cs(role).swap(0, Ordering::SeqCst);
        if owner != tid {
            violation(format!(
                "{role:?} critical-section exit by thread {tid} but the \
                 section was owned by thread {owner}"
            ));
        }
    }

    /// Called with the resize fence held, before the storage is touched.
    pub(crate) fn resize_begin(&self) {
        if self.resizing.swap(true, Ordering::SeqCst) {
            violation("two resizes inside the fence at once".to_string());
        }
        let p = self.producer_cs.load(Ordering::SeqCst);
        let c = self.consumer_cs.load(Ordering::SeqCst);
        if p != 0 || c != 0 {
            violation(format!(
                "resize began while an endpoint was inside its critical \
                 section (producer thread {p}, consumer thread {c}): the \
                 fence must drain both endpoints first"
            ));
        }
    }

    /// Called with the fence still held, after the storage swap. `head` and
    /// `tail` are the counters as reloaded at the end of the resize; a
    /// resize moves storage, never the protocol counters.
    pub(crate) fn resize_end(
        &self,
        head_at_begin: usize,
        tail_at_begin: usize,
        head: usize,
        tail: usize,
    ) {
        if head != head_at_begin || tail != tail_at_begin {
            violation(format!(
                "head/tail moved during a resize (head {head_at_begin} -> \
                 {head}, tail {tail_at_begin} -> {tail}) despite the fence"
            ));
        }
        if !self.resizing.swap(false, Ordering::SeqCst) {
            violation("resize_end without a matching resize_begin".to_string());
        }
    }
}
