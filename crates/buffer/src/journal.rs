//! In-flight journaling: the sequence-numbered replay window behind the
//! exactly-once recovery contract.
//!
//! The paper's runtime assumes kernels never fail; our supervision layer
//! (restart/replace policies) re-enters a panicked kernel, but historically
//! anything the kernel had already *popped* in the failing `run()` was gone
//! and anything it had already *pushed* was published twice on replay —
//! "lossy panic absorption". The resilient TCP links solved the same
//! problem across processes with a seq/ack replay window
//! (`raft-net/src/resilient.rs`); [`ReplayWindow`] is that mechanism
//! factored out so the in-process FIFOs can journal too.
//!
//! ## The recovery contract
//!
//! A journaled link treats one `run()` invocation as a transaction:
//!
//! * every element popped during the run is **recorded** (a clone) in the
//!   consumer-side window, unacknowledged;
//! * every element pushed during the run is **staged** producer-side and
//!   not yet published to the ring;
//! * if the run returns, the scheduler **commits**: consumed entries are
//!   acknowledged (dropped from the window), staged outputs are published;
//! * if the run panics under a restart/replace policy, the scheduler
//!   **rewinds**: staged outputs are discarded, and the window's replay
//!   cursor moves back so the restarted kernel re-pops the exact same
//!   elements, in order.
//!
//! For a deterministic kernel this yields exactly-once *observable*
//! processing: downstream sees each input's effect once, byte-identical to
//! a fault-free run. Entries stay in the window until acknowledged, so a
//! second panic replays again.
//!
//! The window is bounded ([`JournalConfig::bound`]); a run that pops more
//! than `bound` elements force-acknowledges the oldest entries (those can
//! no longer be replayed — the safety valve is recorded in the
//! `forced_acks` counter so the loss is visible, never silent).

use std::collections::VecDeque;

/// Per-link journal configuration (see [`crate::FifoConfig::journal`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// Maximum unacknowledged entries retained for replay. A committed
    /// transaction acknowledges everything it consumed, so the bound only
    /// has to cover the pops of a single commit interval.
    pub bound: usize,
    /// How many successful `run()` invocations the scheduler folds into one
    /// transaction before committing (publishing staged outputs and
    /// acknowledging consumed inputs). `1` commits after every run — the
    /// tightest replay window, but per-element commit cost. Larger values
    /// amortize the commit across many runs; a rewind then replays up to
    /// `commit_interval` runs' worth of pops, all of whose outputs were
    /// still staged (never published), so exactly-once observability is
    /// unchanged. Schedulers flush early whenever the kernel goes idle,
    /// finishes, or winds down, so batching adds bounded latency only while
    /// the kernel is actively running.
    pub commit_interval: u32,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            bound: 4096,
            commit_interval: 32,
        }
    }
}

impl JournalConfig {
    /// Journal with the given replay bound.
    pub fn bounded(bound: usize) -> Self {
        JournalConfig {
            bound: bound.max(1),
            ..JournalConfig::default()
        }
    }

    /// Override the scheduler commit interval (clamped to at least 1).
    pub fn with_commit_interval(mut self, runs: u32) -> Self {
        self.commit_interval = runs.max(1);
        self
    }
}

/// What a producer does when its queue is full — the paper's blocking
/// write, or an overload-degradation policy (see
/// [`crate::FifoConfig::admission`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Block until the consumer makes room (the default; lossless).
    #[default]
    Block,
    /// Drop the element immediately when the ring is full and count it in
    /// the `shed` statistic — load shedding for pipelines that prefer
    /// freshness over completeness.
    Shed,
    /// Block up to the given timeout, then shed. A middle ground: absorbs
    /// short bursts losslessly, degrades under sustained overload.
    BlockTimeout(std::time::Duration),
}

impl AdmissionPolicy {
    /// `true` for any policy that may drop elements.
    pub fn may_shed(&self) -> bool {
        !matches!(self, AdmissionPolicy::Block)
    }
}

/// A bounded, sequence-numbered window of sent-but-unacknowledged entries.
///
/// Generic over the entry type: the in-process consumer journal stores
/// `(T, Signal)` pairs, the resilient TCP sender stores encoded frames.
/// Sequence numbers are monotonic from 0 and never reused; acknowledgement
/// is cumulative (acking `n` releases every entry with `seq < n`).
#[derive(Debug)]
pub struct ReplayWindow<E> {
    entries: VecDeque<(u64, E)>,
    /// Sequence number the *next* appended entry will get.
    next_seq: u64,
    /// Everything below this has been acknowledged and dropped.
    acked: u64,
    /// Max retained entries; 0 = unbounded (net links bound by flow
    /// control instead).
    bound: usize,
    /// Entries force-dropped by the bound before acknowledgement — each is
    /// an element that can no longer be replayed.
    forced: u64,
}

impl<E> ReplayWindow<E> {
    /// Empty window. `bound == 0` disables the cap.
    pub fn new(bound: usize) -> Self {
        ReplayWindow {
            entries: VecDeque::new(),
            next_seq: 0,
            acked: 0,
            bound,
            forced: 0,
        }
    }

    /// Record `entry`, returning its sequence number. If the window is at
    /// its bound, the oldest entry is force-acknowledged first.
    pub fn append(&mut self, entry: E) -> u64 {
        if self.bound != 0 && self.entries.len() >= self.bound {
            self.entries.pop_front();
            self.acked += 1;
            self.forced += 1;
        }
        let seq = self.next_seq;
        self.entries.push_back((seq, entry));
        self.next_seq += 1;
        // After the record: an injected crash here models dying right after
        // the journal write — the recoverable half of the window (the entry
        // is retained, a rewind replays it). Crashing *before* the record
        // would lose the element the caller already took from the ring, so
        // the site sits on the committed side.
        crate::failpoint!("buffer::journal::append");
        seq
    }

    /// Cumulative acknowledgement: drop every entry with `seq <
    /// next_expected`. Returns how many entries were released.
    pub fn ack(&mut self, next_expected: u64) -> usize {
        crate::failpoint!("buffer::journal::ack");
        let mut released = 0;
        while let Some(&(seq, _)) = self.entries.front() {
            if seq < next_expected {
                self.entries.pop_front();
                released += 1;
            } else {
                break;
            }
        }
        self.acked = self.acked.max(next_expected.min(self.next_seq));
        released
    }

    /// Acknowledge everything currently recorded. Equivalent to
    /// `ack(next_seq)` but skips the per-entry front probes — this is the
    /// transaction-commit hot path.
    pub fn ack_all(&mut self) -> usize {
        crate::failpoint!("buffer::journal::ack");
        let released = self.entries.len();
        self.entries.clear();
        self.acked = self.next_seq;
        released
    }

    /// Iterate entries with `seq >= from`, in sequence order — the replay
    /// suffix retransmitted after a reconnect or rewound after a panic.
    pub fn iter_from(&self, from: u64) -> impl Iterator<Item = &(u64, E)> {
        crate::failpoint!("buffer::journal::replay");
        self.entries.iter().filter(move |(seq, _)| *seq >= from)
    }

    /// Entry with sequence number `seq`, if still retained.
    pub fn get(&self, seq: u64) -> Option<&E> {
        if seq < self.acked || seq >= self.next_seq {
            return None;
        }
        // Entries are dense and ordered: seq - front.seq is the offset.
        let front = self.entries.front()?.0;
        self.entries.get((seq - front) as usize).map(|(_, e)| e)
    }

    /// Unacknowledged entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is awaiting acknowledgement.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sequence number the next [`append`](Self::append) will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Cumulative acknowledgement horizon.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Entries force-dropped by the bound (replay coverage lost).
    pub fn forced_acks(&self) -> u64 {
        self.forced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_monotonic_seqs() {
        let mut w = ReplayWindow::new(0);
        assert_eq!(w.append("a"), 0);
        assert_eq!(w.append("b"), 1);
        assert_eq!(w.append("c"), 2);
        assert_eq!(w.len(), 3);
        assert_eq!(w.next_seq(), 3);
    }

    #[test]
    fn cumulative_ack_releases_prefix() {
        let mut w = ReplayWindow::new(0);
        for s in ["a", "b", "c", "d"] {
            w.append(s);
        }
        assert_eq!(w.ack(2), 2);
        assert_eq!(w.len(), 2);
        assert_eq!(w.acked(), 2);
        // re-acking the same horizon is a no-op
        assert_eq!(w.ack(2), 0);
        // ack beyond next_seq clamps
        assert_eq!(w.ack(100), 2);
        assert_eq!(w.acked(), 4);
        assert!(w.is_empty());
    }

    #[test]
    fn replay_suffix_in_order() {
        let mut w = ReplayWindow::new(0);
        for s in ["a", "b", "c", "d"] {
            w.append(s);
        }
        w.ack(1);
        let suffix: Vec<_> = w.iter_from(2).map(|(s, e)| (*s, *e)).collect();
        assert_eq!(suffix, vec![(2, "c"), (3, "d")]);
        // iter_from below the retained range yields the whole window
        assert_eq!(w.iter_from(0).count(), 3);
    }

    #[test]
    fn get_by_seq() {
        let mut w = ReplayWindow::new(0);
        for s in ["a", "b", "c"] {
            w.append(s);
        }
        w.ack(1);
        assert_eq!(w.get(0), None); // acked
        assert_eq!(w.get(1), Some(&"b"));
        assert_eq!(w.get(2), Some(&"c"));
        assert_eq!(w.get(3), None); // not yet appended
    }

    #[test]
    fn bound_forces_oldest_out() {
        let mut w = ReplayWindow::new(2);
        w.append(10);
        w.append(11);
        w.append(12); // evicts seq 0
        assert_eq!(w.len(), 2);
        assert_eq!(w.forced_acks(), 1);
        assert_eq!(w.acked(), 1);
        assert_eq!(w.get(0), None);
        assert_eq!(w.get(1), Some(&11));
    }

    #[test]
    fn ack_all_clears() {
        let mut w = ReplayWindow::new(0);
        w.append(1u32);
        w.append(2);
        assert_eq!(w.ack_all(), 2);
        assert!(w.is_empty());
        assert_eq!(w.acked(), 2);
        assert_eq!(w.forced_acks(), 0);
    }

    #[test]
    fn admission_policy_classification() {
        assert!(!AdmissionPolicy::Block.may_shed());
        assert!(AdmissionPolicy::Shed.may_shed());
        assert!(AdmissionPolicy::BlockTimeout(std::time::Duration::from_millis(1)).may_shed());
        assert_eq!(AdmissionPolicy::default(), AdmissionPolicy::Block);
    }

    #[test]
    fn journal_config_bound_floor() {
        assert_eq!(JournalConfig::bounded(0).bound, 1);
        assert_eq!(JournalConfig::default().bound, 4096);
    }
}
