#![warn(missing_docs)]

//! # raft-buffer
//!
//! Ring-buffer FIFOs backing the streams of `raftlib`, a Rust reproduction of
//! RaftLib (Beard, Li & Chamberlain, PMAM'15).
//!
//! The paper models every stream as a FIFO queue whose capacity is tuned
//! *dynamically* by a monitor thread ("lock-free exclusion", resize preferred
//! when the ring is in a non-wrapped position, §4). This crate provides:
//!
//! * [`spsc::BoundedSpsc`] — a fixed-capacity, lock-free single-producer /
//!   single-consumer ring buffer. This is the baseline used by the
//!   fixed-vs-resizable ablation bench.
//! * [`fifo::Fifo`] — the production stream: the same lock-free SPSC fast
//!   path, plus dynamic resizing excluded through a [`parking_lot::RwLock`]
//!   (producer/consumer take *shared* locks and stay wait-free against each
//!   other; only a resize takes the exclusive lock), per-element
//!   [`signal::Signal`]s delivered synchronously with data, blocking
//!   push/pop with adaptive backoff, and low-overhead telemetry counters
//!   ([`stats::FifoStats`]) that the monitor thread samples.
//!
//! Elements travel as `(T, Signal)` pairs so that synchronous signals (end of
//! stream, user signals) arrive at the consumer exactly when the accompanying
//! element does — the paper's "synchronized signaling".
//!
//! ## Concurrency contract
//!
//! Each FIFO has exactly one producer handle and one consumer handle; the
//! type system enforces this (the handles are `Send` but not `Clone`).
//! A third party — the monitor — may call [`fifo::Fifo::resize`] and read
//! stats at any time.

pub mod error;
pub mod fifo;
pub mod signal;
pub mod spsc;
pub mod stats;
pub(crate) mod sync;

pub use error::{PopError, PushError, TryPopError, TryPushError};
pub use fifo::{fifo_with, Consumer, Fifo, FifoConfig, PeekRange, Producer, WriteGuard};
pub use signal::Signal;
pub use spsc::BoundedSpsc;
pub use stats::{FifoStats, StatsSnapshot};
