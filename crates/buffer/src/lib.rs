#![warn(missing_docs)]

//! # raft-buffer
//!
//! Ring-buffer FIFOs backing the streams of `raftlib`, a Rust reproduction of
//! RaftLib (Beard, Li & Chamberlain, PMAM'15).
//!
//! The paper models every stream as a FIFO queue whose capacity is tuned
//! *dynamically* by a monitor thread ("lock-free exclusion", resize preferred
//! when the ring is in a non-wrapped position, §4). This crate provides:
//!
//! * [`spsc::BoundedSpsc`] — a fixed-capacity, lock-free single-producer /
//!   single-consumer ring buffer. This is the baseline used by the
//!   fixed-vs-resizable ablation bench.
//! * [`fifo::Fifo`] — the production stream: the same lock-free SPSC fast
//!   path (cache-padded counters, cached indices), plus dynamic resizing
//!   excluded through the Dekker-style [`fence::ResizeFence`] — one flag
//!   store, one SeqCst fence and one load per operation instead of a lock
//!   acquisition; a resize raises a pending flag and waits for both
//!   endpoints to step out. Per-element [`signal::Signal`]s are delivered
//!   synchronously with data, push/pop block with adaptive backoff, and
//!   low-overhead telemetry counters ([`stats::FifoStats`]) feed the
//!   monitor thread. Zero-copy batch views ([`fifo::Producer::reserve`],
//!   [`fifo::Consumer::pop_slice`]) amortize even that over whole batches.
//!
//! Elements travel as `(T, Signal)` pairs so that synchronous signals (end of
//! stream, user signals) arrive at the consumer exactly when the accompanying
//! element does — the paper's "synchronized signaling".
//!
//! ## Concurrency contract
//!
//! Each FIFO has exactly one producer handle and one consumer handle; the
//! type system enforces this (the handles are `Send` but not `Clone`).
//! A third party — the monitor — may call [`fifo::Fifo::resize`] and read
//! stats at any time.

pub mod arena;
pub mod error;
#[cfg(feature = "raft_failpoints")]
pub mod failpoints;
pub mod fence;
pub mod fifo;
pub mod futex;
pub(crate) mod index;
pub mod journal;
#[cfg(feature = "raft_protocol_check")]
pub mod protocol;
pub mod shm;
pub mod signal;
pub mod spsc;
pub mod stats;
pub(crate) mod sync;
pub mod wait;
pub mod waker;

pub use arena::{
    ArenaError, ArenaRx, ArenaTx, Descriptor, DescriptorSender, SendOutcome, ShmArena,
};
pub use error::{PopError, PushError, TryPopError, TryPushError};
pub use fence::{ResizeFence, Role};
pub use fifo::{
    fifo_with, Consumer, Fifo, FifoConfig, LinkAlloc, PeekRange, Producer, SliceView, WriteGuard,
    WriteSlice, DRAIN_DRAINING, DRAIN_QUIESCED, DRAIN_RUNNING,
};
pub use journal::{AdmissionPolicy, JournalConfig, ReplayWindow};
pub use shm::{Heartbeat, JournaledShmProducer, ShmRing, ShmSegment};
pub use signal::Signal;
pub use spsc::BoundedSpsc;
pub use stats::{FifoStats, StatsSnapshot};
pub use wait::{WaitAction, WaitStrategy, Waiter};
pub use waker::{FifoWaker, WakerSlot};

/// Consult a failpoint site, executing panic/stall actions in place.
///
/// Expands to nothing unless the crate is built with the
/// `raft_failpoints` feature, so hook sites cost zero in normal builds.
/// I/O sites that need to observe [`failpoints::FailAction::ShortIo`]
/// call [`failpoints::check`] directly instead.
#[cfg(feature = "raft_failpoints")]
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {
        $crate::failpoints::hit($site)
    };
}

/// No-op: the `raft_failpoints` feature is off.
#[cfg(not(feature = "raft_failpoints"))]
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {};
}
