//! Cross-process parking over `futex(2)` — the shared-memory counterpart of
//! the in-process [`crate::waker`] slot.
//!
//! A [`crate::waker::WakerSlot`] wakes a *task* inside one scheduler; across
//! a process boundary there is no shared scheduler, so the only thing two
//! processes can rendezvous on is a 32-bit word in the mapped segment. This
//! module provides:
//!
//! * thin wrappers over the raw `FUTEX_WAIT` / `FUTEX_WAKE` syscalls
//!   ([`futex_wait`], [`futex_wake`]) using the same no-`libc` inline-asm
//!   idiom as `core`'s `affinity.rs`. The *non-private* futex ops are used
//!   deliberately: `FUTEX_PRIVATE_FLAG` restricts matching to one address
//!   space, and these words live in a `MAP_SHARED` segment.
//! * [`FutexWaker`] — an **edge-triggered eventcount** over two in-segment
//!   words (`armed`, `seq`) that replays the `WakerSlot` contract verbatim:
//!   `arm` = store + `fence(SeqCst)`, `notify` = fence + `swap(armed)`,
//!   at most one wake per arm, and an unarmed notify costs one relaxed
//!   load. The waiter plugs into the same adaptive spin→yield→park
//!   [`crate::wait::Waiter`] the in-process endpoints use: only when the
//!   waiter escalates to `Park` does the futex syscall happen.
//!
//! ## Why an eventcount (the `seq` word)
//!
//! `FUTEX_WAIT` sleeps only while `*uaddr == expected` — a plain flag is
//! racy: the notifier could set-and-wake between the waiter's recheck and
//! its `futex_wait`, and the wake would be lost. The `seq` word is a
//! generation counter bumped by every claimed notify; the waiter snapshots
//! it *before* arming, so a notify that lands in the race window changes
//! `seq` and the kernel refuses to put the waiter to sleep (`EAGAIN`).
//! The store-buffering pairing is the same as `waker.rs`: the waiter's
//! `armed = 1; fence; re-check stream state` cannot miss a notifier's
//! `stream write; fence; read armed` — one of the two always observes the
//! other (DESIGN §14).
//!
//! On non-Linux (or non-x86_64) targets the wait degrades to a bounded
//! `yield`/`sleep`, and under miri (which cannot execute inline asm) the
//! same fallback is compiled in — the protocol stays correct, only the
//! parking efficiency is lost.

use std::sync::atomic::{
    fence, AtomicU32,
    Ordering::{Relaxed, SeqCst},
};
use std::time::Duration;

/// `futex(2)` op codes (non-private: these words are cross-process).
#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
const FUTEX_WAIT: usize = 0;
#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
const FUTEX_WAKE: usize = 1;

#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

/// Raw 6-argument futex syscall. Returns the kernel's result (`-errno` on
/// failure).
#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
fn sys_futex(uaddr: *const AtomicU32, op: usize, val: u32, timeout: *const Timespec) -> isize {
    let ret: isize;
    // SAFETY: futex(uaddr, op, val, timeout, NULL, 0) only dereferences
    // `uaddr` (a live AtomicU32 borrowed by the caller) and `timeout`
    // (either null or a live Timespec on this stack frame); the clobbers
    // match the x86_64 Linux syscall ABI (rcx/r11 clobbered, rax returns).
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 202isize => ret, // __NR_futex
            in("rdi") uaddr,
            in("rsi") op,
            in("rdx") val as usize,
            in("r10") timeout,
            in("r8") 0usize,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// Sleep while `*word == expected`, for at most `timeout` (forever if
/// `None`). Returns `true` if the kernel reports an actual wake and `false`
/// for every other outcome (value already changed, timeout, signal) — the
/// caller must re-check its condition either way, exactly like
/// `Condvar::wait_for`.
#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
pub fn futex_wait(word: &AtomicU32, expected: u32, timeout: Option<Duration>) -> bool {
    let ts;
    let ts_ptr = match timeout {
        Some(t) => {
            ts = Timespec {
                tv_sec: t.as_secs() as i64,
                tv_nsec: i64::from(t.subsec_nanos()),
            };
            &ts as *const Timespec
        }
        None => std::ptr::null(),
    };
    sys_futex(word, FUTEX_WAIT, expected, ts_ptr) == 0
}

/// Portable fallback: no kernel parking available — bounded sleep instead.
/// Correctness is unaffected (futex waits are always condition-rechecked);
/// only wake latency and idle efficiency degrade.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64", not(miri))))]
pub fn futex_wait(word: &AtomicU32, expected: u32, timeout: Option<Duration>) -> bool {
    if word.load(SeqCst) != expected {
        return false;
    }
    let nap = timeout.unwrap_or(Duration::from_millis(1));
    std::thread::sleep(nap.min(Duration::from_millis(1)));
    false
}

/// Wake up to `n` waiters sleeping on `word`. Returns how many were woken.
#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
pub fn futex_wake(word: &AtomicU32, n: u32) -> usize {
    crate::failpoint!("buffer::futex::wake");
    let ret = sys_futex(word, FUTEX_WAKE, n, std::ptr::null());
    if ret < 0 {
        0
    } else {
        ret as usize
    }
}

/// Portable fallback: sleepers poll, so there is nobody to wake.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64", not(miri))))]
pub fn futex_wake(_word: &AtomicU32, _n: u32) -> usize {
    crate::failpoint!("buffer::futex::wake");
    0
}

/// `true` when real kernel futex parking is compiled in.
pub fn futex_supported() -> bool {
    cfg!(all(target_os = "linux", target_arch = "x86_64", not(miri)))
}

/// Edge-triggered cross-process waker over two words in a mapped segment.
///
/// Borrowed views of the segment's control words — the struct itself holds
/// no state, so both processes can construct one over the same mapping.
/// Contract (mirrors [`crate::waker::WakerSlot`]):
///
/// * **Waiter**: `let epoch = arm();` → re-check the stream condition → if
///   still blocked, `wait(epoch, timeout)`; if actionable, `disarm()` and
///   carry on (a racing notify is absorbed as a spurious wake).
/// * **Notifier**: after every stream state change the other side might be
///   waiting on, call `notify()` — one relaxed load when unarmed, one
///   `swap` + `seq` bump + `FUTEX_WAKE` when an arm is claimed.
#[derive(Clone, Copy)]
pub struct FutexWaker<'a> {
    /// 1 while a waiter has announced intent to sleep.
    armed: &'a AtomicU32,
    /// Eventcount generation; bumped by every claimed notify.
    seq: &'a AtomicU32,
}

impl<'a> FutexWaker<'a> {
    /// Build a waker over an `(armed, seq)` word pair in shared memory.
    pub fn new(armed: &'a AtomicU32, seq: &'a AtomicU32) -> Self {
        FutexWaker { armed, seq }
    }

    /// Waiter side: snapshot the eventcount and announce intent to sleep.
    /// The `SeqCst` fence orders the `armed` store before the caller's
    /// subsequent re-check of the stream condition (store-buffering pairing
    /// with [`Self::notify`]).
    #[inline]
    pub fn arm(&self) -> u32 {
        let epoch = self.seq.load(Relaxed);
        self.armed.store(1, Relaxed);
        fence(SeqCst);
        epoch
    }

    /// Waiter side: withdraw interest after the re-check found the stream
    /// actionable. Returns `false` if a notifier already claimed the arm
    /// (its wake is in flight and will be absorbed as a spurious one).
    #[inline]
    pub fn disarm(&self) -> bool {
        self.armed.swap(0, Relaxed) == 1
    }

    /// Waiter side: sleep until notified, the eventcount moves past
    /// `epoch`, or `timeout` elapses. Always re-check the condition after.
    #[inline]
    pub fn wait(&self, epoch: u32, timeout: Option<Duration>) -> bool {
        futex_wait(self.seq, epoch, timeout)
    }

    /// Hot-path notify: skip even the `SeqCst` fence when no waiter looks
    /// armed. The relaxed pre-check admits a narrow lost-wake window
    /// (store-buffering: our stream write and the waiter's arm can miss
    /// each other), which the waiter's bounded park timeout absorbs — the
    /// same trade `fifo.rs` makes with its relaxed `reader_waiting` check.
    /// Use [`Self::notify`] where a wake must never be lost (close paths).
    #[inline]
    pub fn notify_if_armed(&self) {
        if self.armed.load(Relaxed) == 1 {
            self.notify();
        }
    }

    /// Notifier side: wake the waiter if one is armed. At most one wake per
    /// arm; an unarmed notify is one `SeqCst` fence + relaxed load.
    #[inline]
    pub fn notify(&self) {
        // Dekker pairing: orders the caller's preceding stream write before
        // the `armed` read in the SC fence order (see module docs).
        fence(SeqCst);
        if self.armed.load(Relaxed) == 1 && self.armed.swap(0, Relaxed) == 1 {
            self.seq.fetch_add(1, Relaxed);
            futex_wake(self.seq, u32::MAX);
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn unarmed_notify_is_silent() {
        let armed = AtomicU32::new(0);
        let seq = AtomicU32::new(0);
        let w = FutexWaker::new(&armed, &seq);
        w.notify();
        assert_eq!(seq.load(Relaxed), 0, "no arm claimed, no seq bump");
    }

    #[test]
    fn one_wake_per_arm() {
        let armed = AtomicU32::new(0);
        let seq = AtomicU32::new(0);
        let w = FutexWaker::new(&armed, &seq);
        let epoch = w.arm();
        w.notify();
        w.notify(); // second notify on the same arm must be absorbed
        assert_eq!(seq.load(Relaxed), epoch + 1);
        assert_eq!(armed.load(Relaxed), 0);
    }

    #[test]
    fn disarm_reports_claimed_arm() {
        let armed = AtomicU32::new(0);
        let seq = AtomicU32::new(0);
        let w = FutexWaker::new(&armed, &seq);
        w.arm();
        assert!(w.disarm(), "arm not yet claimed");
        w.arm();
        w.notify();
        assert!(!w.disarm(), "notify already claimed the arm");
    }

    #[test]
    fn wait_returns_when_epoch_stale() {
        let armed = AtomicU32::new(0);
        let seq = AtomicU32::new(7);
        let w = FutexWaker::new(&armed, &seq);
        // Expected epoch 3 ≠ current 7 → FUTEX_WAIT refuses to sleep.
        let start = std::time::Instant::now();
        w.wait(3, Some(Duration::from_secs(5)));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn cross_thread_park_and_wake() {
        // A real park-and-wake handshake: the consumer thread arms and
        // sleeps on the futex; the producer flips the condition and
        // notifies. Bounded by timeouts so a regression fails, not hangs.
        let armed = Arc::new(AtomicU32::new(0));
        let seq = Arc::new(AtomicU32::new(0));
        let cond = Arc::new(AtomicU64::new(0));
        let (a2, s2, c2) = (armed.clone(), seq.clone(), cond.clone());
        let waiter = std::thread::spawn(move || {
            let w = FutexWaker::new(&a2, &s2);
            let mut spins = 0u32;
            loop {
                let epoch = w.arm();
                if c2.load(SeqCst) == 1 {
                    w.disarm();
                    return true;
                }
                w.wait(epoch, Some(Duration::from_millis(200)));
                spins += 1;
                if spins > 100 {
                    return false; // ~20s bound; only hit on regression
                }
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        cond.store(1, SeqCst);
        FutexWaker::new(&armed, &seq).notify();
        assert!(waiter.join().unwrap(), "waiter observed the condition");
    }
}
