//! Pass-by-descriptor payload arena inside a shared segment.
//!
//! Rings move fixed-size elements; real workloads move `Vec<u8>`-class
//! payloads. Copying each payload through ring slots costs a memcpy per
//! hop (BENCH_fifo.json's `xthread_*` ceilings are exactly that memcpy).
//! The arena inverts this: the payload is written **once** into a slab
//! slot inside the segment, and what crosses the ring is a 16-byte
//! [`Descriptor`] — offset, length, slot, generation.
//!
//! ## Layout (segment kind = [`crate::shm::SEG_KIND_ARENA`])
//!
//! The data region holds three consecutive arrays, all derivable from the
//! header's `capacity` (slot count) and `elem_size` (slot size):
//!
//! ```text
//! [ generations: capacity × AtomicU32, 64-padded ]
//! [ free ring:   capacity.next_power_of_two() × u32, 64-padded ]
//! [ payloads:    capacity × slot_size bytes ]
//! ```
//!
//! ## Free-slot recycling
//!
//! Freed slots flow back from the consuming side ([`ArenaRx`]) to the
//! allocating side ([`ArenaTx`]) through an embedded SPSC **free ring** —
//! the same head/tail protocol as every other ring in this crate (fourth
//! user of `crate::index`), with Rx as its producer and Tx as its
//! consumer. It is sized to the next power of two ≥ slot count, so with at
//! most `capacity` slots in flight it can never overflow.
//!
//! ## Generations catch use-after-free
//!
//! `generations[slot]` is even while the slot is free, odd while live.
//! [`ArenaTx::alloc`] bumps it odd and stamps the value into the
//! descriptor; [`ArenaRx::resolve`] and [`ArenaRx::free`] verify the stamp
//! still matches. A descriptor held past its `free` (use-after-free), a
//! double-free, or a descriptor forged/corrupted across the boundary all
//! land on a mismatched or even generation and are rejected as
//! [`ArenaError::Stale`] — turning the classic shared-memory lifetime bug
//! into a recoverable error return.
//!
//! ## Visibility contract
//!
//! The arena itself orders only the generation words. Payload bytes are
//! published by the **descriptor's ride through a ring**: the producer
//! writes the payload, then pushes the descriptor (Release store of the
//! ring tail); the consumer's Acquire pop makes the payload bytes visible
//! before `resolve` reads them. Handing a descriptor to the peer by any
//! channel without a release/acquire edge is outside the contract.
//!
//! ## Surviving a dead consumer
//!
//! A SIGKILL'd Rx process leaves live-generation slots it will never free
//! and possibly a half-finished free (generation flipped even, free-ring
//! entry never published). After the supervisor has reaped the worker and
//! revoked its role word, [`ArenaTx::sweep_orphans`] repairs both: it
//! re-enrolls every slot that is neither free-ring-enrolled nor still
//! referenced by a journaled in-flight descriptor. [`DescriptorSender`]
//! packages the full producer-side recovery contract — journaled
//! descriptor ring ([`crate::shm::JournaledShmProducer`]) plus arena
//! sweep — so a respawned worker re-attaches and replays exactly the
//! unacknowledged suffix over payload slots the sweep left untouched.

use std::io;
use std::sync::atomic::{
    AtomicU32,
    Ordering::{Acquire, Relaxed, Release},
};
use std::sync::Arc;
use std::time::Duration;

use crate::index::{consumer_ready_elems, producer_free_slots};
use crate::shm::{JournaledShmProducer, ShmItem, ShmRingProducer, ShmSegment, SEG_KIND_ARENA};
use crate::wait::{WaitAction, WaitStrategy, Waiter};

/// Park bound for [`ArenaTx::wait_free_slot`]: the relaxed-armed futex
/// notify admits the same narrow lost-wake window as the ring endpoints
/// (see `futex.rs`), so one park costs at most this before a re-check.
const ARENA_PARK_TIMEOUT: Duration = Duration::from_millis(2);
const ARENA_WAIT: WaitStrategy = WaitStrategy::parking(ARENA_PARK_TIMEOUT);

/// Fixed-size ticket for one payload in the arena. 16 bytes, POD, crosses
/// process boundaries through any `ShmRing<Descriptor>`.
#[repr(C)]
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Descriptor {
    /// Byte offset of the payload inside the arena's payload region
    /// (always `slot * slot_size`; carried explicitly and re-validated).
    pub offset: u32,
    /// Payload length in bytes (≤ slot size).
    pub len: u32,
    /// Slab slot index.
    pub slot: u32,
    /// Liveness stamp: must match `generations[slot]` (odd) to resolve.
    pub generation: u32,
}

// SAFETY: repr(C) struct of four u32s — no padding, every bit pattern is a
// value, nothing address-space-dependent. A forged descriptor is caught by
// validation, not UB.
unsafe impl ShmItem for Descriptor {}

/// Why a descriptor was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArenaError {
    /// Generation mismatch: the slot was freed (use-after-free), freed
    /// twice, or the descriptor was never issued by this arena epoch.
    Stale,
    /// Structurally invalid: slot index, offset, or length out of range.
    Malformed,
}

impl std::fmt::Display for ArenaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArenaError::Stale => write!(f, "stale descriptor (generation mismatch)"),
            ArenaError::Malformed => write!(f, "malformed descriptor"),
        }
    }
}

impl std::error::Error for ArenaError {}

/// Factory for descriptor arenas; see the module docs for the protocol.
pub struct ShmArena;

/// Geometry derived once from the segment header.
#[derive(Clone, Copy)]
struct Geometry {
    slots: usize,
    slot_size: usize,
    /// Free-ring capacity (power of two ≥ slots).
    fcap: usize,
    gen_off: usize,
    free_off: usize,
    payload_off: usize,
}

fn align64(n: usize) -> usize {
    (n + 63) & !63
}

impl Geometry {
    fn for_counts(slots: usize, slot_size: usize) -> Geometry {
        let fcap = slots.next_power_of_two();
        let gen_bytes = align64(slots * 4);
        let free_bytes = align64(fcap * 4);
        Geometry {
            slots,
            slot_size,
            fcap,
            gen_off: 0,
            free_off: gen_bytes,
            payload_off: gen_bytes + free_bytes,
        }
    }

    fn data_bytes(&self) -> usize {
        self.payload_off + self.slots * self.slot_size
    }

    fn of_segment(seg: &ShmSegment) -> Geometry {
        Geometry::for_counts(seg.capacity(), seg.elem_size())
    }
}

/// Shared accessors over an arena segment.
struct ArenaCore {
    seg: Arc<ShmSegment>,
    geo: Geometry,
}

impl ArenaCore {
    #[inline]
    fn generation(&self, slot: usize) -> &AtomicU32 {
        debug_assert!(slot < self.geo.slots);
        // SAFETY: slot < slots (validated by every caller), so the word is
        // inside the generations array, which is inside the mapped data
        // region; 4-aligned (64-aligned base + 4×slot). AtomicU32 is
        // layout-compatible with u32 and any bit pattern is valid.
        unsafe { &*(self.seg.data_ptr().add(self.geo.gen_off + slot * 4) as *const AtomicU32) }
    }

    #[inline]
    fn free_entry_ptr(&self, idx: usize) -> *mut u32 {
        // Masked by fcap-1: always inside the free-ring array.
        let masked = idx & (self.geo.fcap - 1);
        // In-bounds: free_off + fcap*4 ≤ payload_off ≤ data_len.
        self.seg
            .data_ptr()
            .wrapping_add(self.geo.free_off + masked * 4)
            .cast::<u32>()
    }

    #[inline]
    fn payload_ptr(&self, offset: usize) -> *mut u8 {
        self.seg
            .data_ptr()
            .wrapping_add(self.geo.payload_off + offset)
    }

    /// Structural validation shared by resolve/free. Returns the slot.
    fn validate(&self, d: &Descriptor) -> Result<usize, ArenaError> {
        let slot = d.slot as usize;
        if slot >= self.geo.slots
            || d.len as usize > self.geo.slot_size
            || d.offset as usize != slot * self.geo.slot_size
        {
            return Err(ArenaError::Malformed);
        }
        Ok(slot)
    }
}

impl ShmArena {
    fn segment(slots: usize, slot_size: usize, memfd: bool) -> io::Result<ShmSegment> {
        assert!(slots > 0 && slot_size > 0, "arena geometry");
        // Descriptors carry offset/len as u32: the payload region must stay
        // u32-addressable or publish() would mint truncated offsets that
        // validate() then rejects as Malformed.
        assert!(
            slots
                .checked_mul(slot_size)
                .is_some_and(|bytes| bytes <= u32::MAX as usize),
            "arena payload region exceeds u32 descriptor addressing"
        );
        let geo = Geometry::for_counts(slots, slot_size);
        let seg = if memfd {
            ShmSegment::create(
                SEG_KIND_ARENA,
                slots as u64,
                slot_size,
                64,
                geo.data_bytes(),
            )?
        } else {
            ShmSegment::create_heap(
                SEG_KIND_ARENA,
                slots as u64,
                slot_size,
                64,
                geo.data_bytes(),
            )
        };
        // Pre-fill the free ring with every slot: entries [0, slots),
        // free-ring tail = slots. Single-threaded creation; the fd pass /
        // Arc clone that shares the segment publishes these writes.
        let core = ArenaCore {
            seg: Arc::new(seg),
            geo,
        };
        for i in 0..slots {
            // SAFETY: index i < fcap, entry inside the free-ring array.
            unsafe { core.free_entry_ptr(i).write(i as u32) };
        }
        core.seg.tail().store(slots as u64, Release);
        let seg = Arc::try_unwrap(core.seg).ok().expect("sole owner");
        Ok(seg)
    }

    /// In-process pair over one segment (memfd when available).
    pub fn pair(slots: usize, slot_size: usize) -> (ArenaTx, ArenaRx) {
        let memfd = ShmSegment::memfd_supported();
        let seg = Self::segment(slots, slot_size, memfd)
            .unwrap_or_else(|_| Self::segment(slots, slot_size, false).expect("heap arena"));
        let seg = Arc::new(seg);
        assert!(seg.claim_role(true) && seg.claim_role(false));
        (Self::tx_over(seg.clone()), Self::rx_over(seg))
    }

    /// Create a memfd arena and take the allocating side; pass the fd to
    /// the consuming process for [`ShmArena::attach_rx`].
    pub fn create_tx(slots: usize, slot_size: usize) -> io::Result<(ArenaTx, i32)> {
        let seg = Self::segment(slots, slot_size, true)?;
        let fd = seg.fd().expect("memfd segment has an fd");
        assert!(seg.claim_role(true), "fresh segment role");
        Ok((Self::tx_over(Arc::new(seg)), fd))
    }

    /// Attach to an inherited arena fd as the consuming side.
    pub fn attach_rx(fd: i32) -> io::Result<ArenaRx> {
        let seg = Self::attach_arena(fd)?;
        if !seg.claim_role(false) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                "arena rx role already claimed",
            ));
        }
        Ok(Self::rx_over(Arc::new(seg)))
    }

    /// Attach to an inherited arena fd as the allocating side.
    pub fn attach_tx(fd: i32) -> io::Result<ArenaTx> {
        let seg = Self::attach_arena(fd)?;
        if !seg.claim_role(true) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                "arena tx role already claimed",
            ));
        }
        Ok(Self::tx_over(Arc::new(seg)))
    }

    fn attach_arena(fd: i32) -> io::Result<ShmSegment> {
        let seg = ShmSegment::attach(fd, SEG_KIND_ARENA)?;
        let fail = |what: &str| Err(io::Error::new(io::ErrorKind::InvalidData, what.to_string()));
        // Bound the header counts with checked math BEFORE deriving a
        // geometry from them: a forged header must not be able to overflow
        // the layout arithmetic (wrapped data_bytes would falsely pass the
        // size check) or exceed u32 descriptor addressing.
        let (slots, slot_size) = (seg.capacity(), seg.elem_size());
        if slots == 0 || slot_size == 0 {
            return fail("arena geometry empty");
        }
        match slots.checked_mul(slot_size) {
            Some(bytes) if bytes <= u32::MAX as usize => {}
            _ => return fail("arena payload region exceeds u32 descriptor addressing"),
        }
        let geo = Geometry::for_counts(slots, slot_size);
        if geo.data_bytes() > seg.data_len() {
            return fail("arena geometry disagrees with segment size");
        }
        Ok(seg)
    }

    fn tx_over(seg: Arc<ShmSegment>) -> ArenaTx {
        let geo = Geometry::of_segment(&seg);
        let free_head = seg.head().load(Relaxed) as usize;
        let free_tail_cache = seg.tail().load(Relaxed) as usize;
        ArenaTx {
            core: ArenaCore { seg, geo },
            free_head,
            free_tail_cache,
        }
    }

    fn rx_over(seg: Arc<ShmSegment>) -> ArenaRx {
        let geo = Geometry::of_segment(&seg);
        let free_tail = seg.tail().load(Relaxed) as usize;
        let free_head_cache = seg.head().load(Relaxed) as usize;
        ArenaRx {
            core: ArenaCore { seg, geo },
            free_tail,
            free_head_cache,
        }
    }
}

/// Allocating side: `alloc` → write payload → `publish` → send the
/// descriptor through a ring.
pub struct ArenaTx {
    core: ArenaCore,
    /// Free-ring consumer state (mirrors + conservative cache).
    free_head: usize,
    free_tail_cache: usize,
}

/// Consuming side: `resolve` → read payload in place → `free`.
pub struct ArenaRx {
    core: ArenaCore,
    /// Free-ring producer state.
    free_tail: usize,
    free_head_cache: usize,
}

// SAFETY: single handle per side (CAS-claimed role); all shared state is
// accessed through the free-ring protocol and atomic generation words.
unsafe impl Send for ArenaTx {}
// SAFETY: see ArenaTx.
unsafe impl Send for ArenaRx {}

/// In-flight allocation: write the payload through [`PayloadWrite::bytes`],
/// then [`PayloadWrite::publish`] to obtain the descriptor. Dropping the
/// guard without publishing leaks the slot until the arena is recycled —
/// deliberate, since un-publishing would need a free-ring push from the
/// wrong side.
pub struct PayloadWrite<'a> {
    tx: &'a mut ArenaTx,
    slot: usize,
    generation: u32,
    len: usize,
}

impl PayloadWrite<'_> {
    /// The payload bytes to fill (exactly the allocation length).
    pub fn bytes(&mut self) -> &mut [u8] {
        let off = self.slot * self.tx.core.geo.slot_size;
        // SAFETY: the slot is live (alloc popped it from the free ring and
        // no descriptor exists yet, so the Rx side cannot touch it); the
        // range [off, off+len) lies inside this slot's payload area, which
        // is inside the mapped data region. &mut self on the guard makes
        // the borrow exclusive in this process, and the peer process never
        // reads a slot before a descriptor for it arrives over a ring.
        unsafe { std::slice::from_raw_parts_mut(self.tx.core.payload_ptr(off), self.len) }
    }

    /// Seal the payload and mint its descriptor.
    pub fn publish(self) -> Descriptor {
        Descriptor {
            offset: (self.slot * self.tx.core.geo.slot_size) as u32,
            len: self.len as u32,
            slot: self.slot as u32,
            generation: self.generation,
        }
    }
}

impl ArenaTx {
    /// Reserve a slot for `len` payload bytes. `None` when `len` exceeds
    /// the slot size or every slot is in flight (arena full — backpressure
    /// belongs to the caller, typically the ring push that follows).
    pub fn alloc(&mut self, len: usize) -> Option<PayloadWrite<'_>> {
        if len > self.core.geo.slot_size {
            return None;
        }
        // Pop one slot index off the free ring (we are its consumer).
        let head = self.free_head;
        let seg = &*self.core.seg;
        let avail = consumer_ready_elems(head, &mut self.free_tail_cache, || {
            seg.tail().load(Acquire) as usize
        });
        if avail == 0 {
            return None;
        }
        // SAFETY: head < free tail observed via Acquire, pairing with the
        // Rx side's Release publish of this entry; masked index in-bounds.
        let slot = unsafe { self.core.free_entry_ptr(head).read() } as usize;
        if slot >= self.core.geo.slots {
            // A byzantine peer fed us garbage; drop the entry rather than
            // index out of range.
            seg.head().store((head + 1) as u64, Release);
            self.free_head = head + 1;
            return None;
        }
        seg.head().store((head + 1) as u64, Release);
        self.free_head = head + 1;
        // Free slots carry an even generation; bump to odd = live. Release
        // pairs with resolve's Acquire load.
        let gen = self.core.generation(slot);
        let g = gen.load(Relaxed).wrapping_add(1);
        let g = if g & 1 == 0 { g.wrapping_add(1) } else { g };
        gen.store(g, Release);
        Some(PayloadWrite {
            tx: self,
            slot,
            generation: g,
            len,
        })
    }

    /// Convenience: allocate, copy `payload` in, publish.
    pub fn push_bytes(&mut self, payload: &[u8]) -> Option<Descriptor> {
        let mut w = self.alloc(payload.len())?;
        w.bytes().copy_from_slice(payload);
        Some(w.publish())
    }

    /// Block until a recycled slot is probably available — the arena-full
    /// analogue of the ring's blocking push, for callers whose [`alloc`]
    /// came back `None`. Escalates through the same spin→yield→futex-park
    /// ladder as the ring endpoints, parking on the segment's producer
    /// waker (which [`ArenaRx::free`] notifies); one park is bounded, so a
    /// lost cross-process wake costs at most [`ARENA_PARK_TIMEOUT`].
    ///
    /// Returns `true` when the caller should retry `alloc` (a slot became
    /// visible or the bounded park elapsed) and `false` when the consuming
    /// side is gone — no slot will ever come back, so allocation can never
    /// succeed again.
    ///
    /// [`alloc`]: ArenaTx::alloc
    pub fn wait_free_slot(&mut self) -> bool {
        let seg = &*self.core.seg;
        let mut waiter = Waiter::new(ARENA_WAIT);
        loop {
            // Refresh the free-ring tail: any entry past our head means a
            // slot is ready for the next alloc.
            let tail = seg.tail().load(Acquire) as usize;
            if tail != self.free_head {
                self.free_tail_cache = tail;
                return true;
            }
            if seg.consumer_closed().load(Relaxed) == 1 {
                return false;
            }
            if waiter.pause_or_park() == WaitAction::Park {
                let w = seg.producer_waker();
                let epoch = w.arm();
                // Re-check under the arm: a free or close that landed
                // before the arm's fence is visible here; one that lands
                // after will observe the arm and notify.
                let tail = seg.tail().load(Acquire) as usize;
                if tail != self.free_head || seg.consumer_closed().load(Relaxed) == 1 {
                    w.disarm();
                    continue;
                }
                w.wait(epoch, Some(ARENA_PARK_TIMEOUT));
                // Bounded contract: after one real park, hand control back
                // so a scheduler-driven caller can observe stop requests.
                let tail = seg.tail().load(Acquire) as usize;
                self.free_tail_cache = tail;
                return tail != self.free_head || seg.consumer_closed().load(Relaxed) != 1;
            }
        }
    }

    /// Total payload slots.
    pub fn slots(&self) -> usize {
        self.core.geo.slots
    }

    /// Payload bytes per slot.
    pub fn slot_size(&self) -> usize {
        self.core.geo.slot_size
    }

    /// Slots currently available to allocate (telemetry estimate).
    pub fn free_slots(&self) -> usize {
        let seg = &*self.core.seg;
        (seg.tail().load(Acquire) as usize).saturating_sub(self.free_head)
    }

    /// Reclaim slots orphaned by a dead consumer. Caller contract: the Rx
    /// role holder is dead **and reaped**, and its role word has been
    /// revoked — the sweep temporarily acts as the free ring's producer,
    /// which is sound only while no live Rx exists.
    ///
    /// Three crash windows are repaired, keyed off each slot's generation
    /// word and the free ring's *shared* tail (the dead Rx's local tail
    /// mirror died with it, so the shared word is authoritative):
    ///
    /// * **live orphan** — odd generation, not `in_flight`: the worker
    ///   died holding the payload past its commit; bump even, re-enroll;
    /// * **mid-free loss** — even generation, not enrolled in
    ///   `[head, tail)`: the worker died between its generation CAS and
    ///   the free-ring publish; re-enroll;
    /// * **torn enrollment** — an entry written at the shared tail whose
    ///   publish never landed: overwritten by the re-enrollment there.
    ///
    /// `in_flight(slot, generation)` must return `true` for descriptors a
    /// journal will re-deliver: their payload bytes survive untouched, so
    /// the replacement worker resolves them as if nothing happened.
    /// Returns the number of slots re-enrolled.
    pub fn sweep_orphans(&mut self, in_flight: impl Fn(u32, u32) -> bool) -> usize {
        let seg = &*self.core.seg;
        let head = seg.head().load(Acquire) as usize;
        let mut tail = seg.tail().load(Acquire) as usize;
        let mut enrolled = vec![false; self.core.geo.slots];
        for idx in head..tail {
            // SAFETY: masked index inside the free-ring array; entries in
            // [head, tail) were published by a Release store of the tail.
            let s = unsafe { self.core.free_entry_ptr(idx).read() } as usize;
            if s < self.core.geo.slots {
                enrolled[s] = true;
            }
        }
        let mut swept = 0;
        for (slot, slot_enrolled) in enrolled.iter().enumerate() {
            let gen = self.core.generation(slot);
            let g = gen.load(Acquire);
            if g & 1 == 1 {
                if in_flight(slot as u32, g) {
                    continue;
                }
                gen.store(g.wrapping_add(1), Release);
            } else if *slot_enrolled {
                continue;
            }
            // SAFETY: acting as the free-ring producer under the caller
            // contract (Rx dead, role revoked); fcap ≥ slots bounds the
            // enrolled count so the ring cannot overflow; masked in-bounds.
            unsafe { self.core.free_entry_ptr(tail).write(slot as u32) };
            tail += 1;
            swept += 1;
        }
        seg.tail().store(tail as u64, Release);
        self.free_tail_cache = tail;
        swept
    }

    /// The backing segment (fd for the peer attach).
    pub fn segment(&self) -> &ShmSegment {
        &self.core.seg
    }

    /// An owned handle on the backing segment (supervisor bookkeeping
    /// outlives the endpoint that created it).
    pub fn segment_shared(&self) -> Arc<ShmSegment> {
        self.core.seg.clone()
    }
}

impl ArenaRx {
    /// Borrow the payload bytes named by `d`, verifying structure and
    /// generation. The borrow is tied to `&self`; the producer cannot
    /// recycle the slot while the descriptor is unfreed, so the bytes
    /// stay stable for the borrow's life.
    pub fn resolve(&self, d: &Descriptor) -> Result<&[u8], ArenaError> {
        let slot = self.core.validate(d)?;
        // Acquire pairs with alloc's Release store of the odd generation.
        let g = self.core.generation(slot).load(Acquire);
        if g != d.generation || g & 1 == 0 {
            return Err(ArenaError::Stale);
        }
        // SAFETY: offset/len validated against the slot geometry; the
        // bytes were published by the ring edge that delivered `d` (module
        // docs: visibility contract). The slot stays live until `free`.
        Ok(unsafe {
            std::slice::from_raw_parts(self.core.payload_ptr(d.offset as usize), d.len as usize)
        })
    }

    /// Return `d`'s slot to the allocator. Rejects stale/forged
    /// descriptors; a double free is therefore an error, not corruption.
    pub fn free(&mut self, d: Descriptor) -> Result<(), ArenaError> {
        let slot = self.core.validate(&d)?;
        let gen = self.core.generation(slot);
        // Odd (live) and matching → even (free). The CAS closes the
        // double-free race with itself: only one free per generation wins.
        if d.generation & 1 == 0
            || gen
                .compare_exchange(d.generation, d.generation.wrapping_add(1), Release, Relaxed)
                .is_err()
        {
            return Err(ArenaError::Stale);
        }
        // Push the slot back on the free ring (we are its producer). The
        // ring can never be full: at most `slots` entries exist in flight
        // and fcap ≥ slots.
        let tail = self.free_tail;
        let seg = &*self.core.seg;
        let _room = producer_free_slots(
            tail,
            &mut self.free_head_cache,
            self.core.geo.fcap,
            1,
            || seg.head().load(Acquire) as usize,
        );
        debug_assert!(_room > 0, "free ring overflow impossible by sizing");
        // SAFETY: slot entry [tail & fmask] is outside the free ring's
        // live region; published by the Release store below.
        unsafe { self.core.free_entry_ptr(tail).write(slot as u32) };
        seg.tail().store((tail + 1) as u64, Release);
        self.free_tail = tail + 1;
        // A producer blocked in `wait_free_slot` parks on this waker.
        seg.producer_waker().notify_if_armed();
        Ok(())
    }

    /// Total payload slots.
    pub fn slots(&self) -> usize {
        self.core.geo.slots
    }

    /// Payload bytes per slot.
    pub fn slot_size(&self) -> usize {
        self.core.geo.slot_size
    }

    /// The backing segment.
    pub fn segment(&self) -> &ShmSegment {
        &self.core.seg
    }

    /// An owned handle on the backing segment (see
    /// [`ArenaTx::segment_shared`]).
    pub fn segment_shared(&self) -> Arc<ShmSegment> {
        self.core.seg.clone()
    }
}

impl Drop for ArenaRx {
    fn drop(&mut self) {
        self.core.seg.consumer_closed().store(1, Release);
        // Full-contract notify: a producer parked in `wait_free_slot` right
        // now must see that no slot will ever come back.
        self.core.seg.producer_waker().notify();
    }
}

/// What [`DescriptorSender::send_bytes`] did with the payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendOutcome {
    /// Journaled and pushed (or retained for replay if the ring closed
    /// mid-push — either way the payload will reach a worker).
    Sent,
    /// Not accepted *yet*: every arena slot is in flight, or a recovery
    /// window is open. Nothing was journaled; retry the same payload.
    Busy,
}

/// Producer-side bundle for a supervised descriptor link: an [`ArenaTx`]
/// for the payload bytes plus a journaled descriptor ring
/// ([`JournaledShmProducer<Descriptor>`]) for exactly-once re-delivery
/// across worker deaths.
///
/// The worker-side contract that recovery relies on, per descriptor:
/// resolve → process → *publish the result* → bump the ring segment's
/// [`commit word`](ShmSegment::commit_word) to `seq + 1` → **then** free
/// the slot. Freeing before committing would let a sweep-surviving replay
/// hand the replacement worker a stale descriptor.
///
/// Supervisor recovery sequence after kill + reap + role revocation (both
/// segments): [`Self::begin_recovery`] → reopen roles → respawn →
/// [`Self::replay`].
pub struct DescriptorSender {
    tx: ArenaTx,
    ring: JournaledShmProducer<Descriptor>,
}

impl DescriptorSender {
    /// Bundle `tx` and `ring` with a journal bound of `journal_bound`
    /// unacknowledged descriptors (see [`JournaledShmProducer::new`]).
    pub fn new(tx: ArenaTx, ring: ShmRingProducer<Descriptor>, journal_bound: usize) -> Self {
        DescriptorSender {
            tx,
            ring: JournaledShmProducer::new(ring, journal_bound),
        }
    }

    /// Stage `payload` into an arena slot and journal + push its
    /// descriptor. [`SendOutcome::Busy`] (arena full or recovering) leaves
    /// no trace — the caller retries, typically after
    /// [`Self::wait_arena_slot`].
    pub fn send_bytes(&mut self, payload: &[u8]) -> SendOutcome {
        if self.ring.recovering() {
            return SendOutcome::Busy;
        }
        match self.tx.push_bytes(payload) {
            Some(d) => {
                // Cannot return false: the recovering gate was checked
                // above and nothing in between opens a window.
                let sent = self.ring.send(d);
                debug_assert!(sent);
                SendOutcome::Sent
            }
            None => SendOutcome::Busy,
        }
    }

    /// Park until a recycled arena slot is probably available; `false`
    /// means the consuming side is gone (see [`ArenaTx::wait_free_slot`]).
    pub fn wait_arena_slot(&mut self) -> bool {
        self.tx.wait_free_slot()
    }

    /// Retire journal entries the worker has committed.
    pub fn ack_committed(&mut self) -> usize {
        self.ring.ack_committed()
    }

    /// Descriptors journaled but not yet committed by the worker.
    pub fn pending(&self) -> usize {
        self.ring.pending()
    }

    /// `true` while sends are gated by an open recovery window.
    pub fn recovering(&self) -> bool {
        self.ring.recovering()
    }

    /// Open the recovery window: drain the dead worker's un-popped
    /// descriptor residue, fold its final commit into the journal, and
    /// sweep arena slots not referenced by the unacknowledged suffix.
    /// Returns `(ring residue drained, arena slots swept)`.
    ///
    /// Caller contract: the worker is dead and reaped, and its consumer
    /// roles on **both** segments have been revoked.
    pub fn begin_recovery(&mut self) -> (u64, usize) {
        let drained = self.ring.begin_recovery();
        let keep: Vec<(u32, u32)> = self
            .ring
            .window()
            .iter_from(self.ring.window().acked())
            .map(|&(_, d)| (d.slot, d.generation))
            .collect();
        let swept = self
            .tx
            .sweep_orphans(|slot, generation| keep.contains(&(slot, generation)));
        (drained, swept)
    }

    /// Re-push the unacknowledged descriptors in journal order and close
    /// the recovery window. Returns descriptors re-pushed.
    pub fn replay(&mut self) -> usize {
        self.ring.replay_unacked()
    }

    /// The descriptor ring's backing segment (roles, commit word,
    /// heartbeat live here).
    pub fn ring_segment(&self) -> &ShmSegment {
        self.ring.segment()
    }

    /// Owned handle on the descriptor ring's segment.
    pub fn ring_segment_shared(&self) -> Arc<ShmSegment> {
        self.ring.segment_shared()
    }

    /// The arena's backing segment.
    pub fn arena_segment(&self) -> &ShmSegment {
        self.tx.segment()
    }

    /// Owned handle on the arena's segment.
    pub fn arena_segment_shared(&self) -> Arc<ShmSegment> {
        self.tx.segment_shared()
    }

    /// The underlying arena allocator.
    pub fn arena(&mut self) -> &mut ArenaTx {
        &mut self.tx
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn alloc_publish_resolve_free_roundtrip() {
        let (mut tx, mut rx) = ShmArena::pair(4, 64);
        let d = tx.push_bytes(b"hello arena").unwrap();
        assert_eq!(d.len, 11);
        assert_eq!(rx.resolve(&d).unwrap(), b"hello arena");
        rx.free(d).unwrap();
        // Freed slot is recyclable and lands on a new generation.
        let d2 = tx.push_bytes(b"second").unwrap();
        assert_eq!(rx.resolve(&d2).unwrap(), b"second");
    }

    #[test]
    fn generation_mismatch_rejected_after_free() {
        let (mut tx, mut rx) = ShmArena::pair(2, 32);
        let d = tx.push_bytes(b"payload").unwrap();
        rx.free(d).unwrap();
        // Use-after-free: the held descriptor no longer resolves…
        assert_eq!(rx.resolve(&d), Err(ArenaError::Stale));
        // …and a double free is rejected too.
        assert_eq!(rx.free(d), Err(ArenaError::Stale));
    }

    #[test]
    fn malformed_descriptors_rejected() {
        let (mut tx, rx) = ShmArena::pair(2, 32);
        let d = tx.push_bytes(b"x").unwrap();
        let bad_slot = Descriptor { slot: 99, ..d };
        assert_eq!(rx.resolve(&bad_slot), Err(ArenaError::Malformed));
        let bad_len = Descriptor { len: 1000, ..d };
        assert_eq!(rx.resolve(&bad_len), Err(ArenaError::Malformed));
        let bad_off = Descriptor {
            offset: d.offset + 1,
            ..d
        };
        assert_eq!(rx.resolve(&bad_off), Err(ArenaError::Malformed));
        // Forged generation.
        let forged = Descriptor {
            generation: d.generation.wrapping_add(2),
            ..d
        };
        assert_eq!(rx.resolve(&forged), Err(ArenaError::Stale));
    }

    #[test]
    fn arena_exhaustion_and_recycling() {
        let (mut tx, mut rx) = ShmArena::pair(2, 16);
        let d1 = tx.push_bytes(b"a").unwrap();
        let d2 = tx.push_bytes(b"b").unwrap();
        assert!(tx.alloc(1).is_none(), "all slots in flight");
        rx.free(d1).unwrap();
        let d3 = tx.push_bytes(b"c").unwrap();
        assert_eq!(rx.resolve(&d3).unwrap(), b"c");
        assert_eq!(rx.resolve(&d2).unwrap(), b"b");
        rx.free(d2).unwrap();
        rx.free(d3).unwrap();
        assert_eq!(tx.free_slots(), 2);
    }

    #[test]
    fn oversize_alloc_refused() {
        let (mut tx, _rx) = ShmArena::pair(2, 16);
        assert!(tx.alloc(17).is_none());
        assert!(tx.alloc(16).is_some());
    }

    #[test]
    fn wait_free_slot_wakes_on_free_and_fails_on_close() {
        let (mut tx, mut rx) = ShmArena::pair(1, 32);
        let d = tx.push_bytes(b"fill").unwrap();
        // Arena full: a blocked producer thread must wake when the
        // consumer frees the slot and then allocate successfully.
        let waiter = std::thread::spawn(move || {
            while tx.alloc(1).is_none() {
                if !tx.wait_free_slot() {
                    return false;
                }
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        rx.free(d).unwrap();
        assert!(waiter.join().unwrap(), "producer woke and allocated");
    }

    #[test]
    fn wait_free_slot_observes_consumer_gone() {
        let (mut tx, rx) = ShmArena::pair(1, 32);
        let _d = tx.push_bytes(b"fill").unwrap();
        drop(rx);
        // The slot can never come back: the wait must report that rather
        // than spin forever (bounded by the park timeout regardless).
        let t0 = std::time::Instant::now();
        assert!(!tx.wait_free_slot());
        assert!(t0.elapsed() < std::time::Duration::from_secs(1));
    }

    #[test]
    fn descriptors_cross_a_ring() {
        use crate::shm::ShmRing;
        // The intended composition: payload in the arena, descriptor
        // through the ring, consumer resolves in place then frees.
        let (mut tx, mut rx) = ShmArena::pair(8, 128);
        let (mut p, mut c) = ShmRing::<Descriptor>::pair(8);
        for i in 0..32u8 {
            let d = tx.push_bytes(&[i; 100]).unwrap();
            p.try_push(d).unwrap();
            let d = c.try_pop().unwrap();
            let bytes = rx.resolve(&d).unwrap();
            assert_eq!(bytes, &[i; 100][..]);
            rx.free(d).unwrap();
        }
    }

    #[test]
    fn cross_process_attach_roundtrip() {
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        let (mut tx, fd) = ShmArena::create_tx(4, 64).unwrap();
        let mut rx = ShmArena::attach_rx(fd).unwrap();
        assert!(ShmArena::attach_rx(fd).is_err(), "rx role exclusive");
        let d = tx.push_bytes(b"via second mapping").unwrap();
        assert_eq!(rx.resolve(&d).unwrap(), b"via second mapping");
        rx.free(d).unwrap();
    }

    #[test]
    fn sweep_reclaims_orphans_and_spares_in_flight() {
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        let (mut tx, fd) = ShmArena::create_tx(4, 32).unwrap();
        let mut rx = ShmArena::attach_rx(fd).unwrap();
        // d1 stays in flight (a journal would replay it), d2 is orphaned
        // live, d3 was freed properly before the "kill".
        let d1 = tx.push_bytes(b"keep").unwrap();
        let d2 = tx.push_bytes(b"orphan").unwrap();
        let d3 = tx.push_bytes(b"freed").unwrap();
        rx.free(d3).unwrap();
        // SIGKILL: no drop glue runs; the role stays claimed.
        let gen = tx.segment().role_generation(false);
        std::mem::forget(rx);
        tx.segment().revoke_role(false, gen).unwrap();
        let swept = tx.sweep_orphans(|slot, g| (slot, g) == (d1.slot, d1.generation));
        assert_eq!(swept, 1, "only the orphan is reclaimed");
        tx.segment().reopen_role(false);
        // The replacement consumer resolves the surviving in-flight
        // payload; the swept orphan is stale.
        let mut rx2 = ShmArena::attach_rx(fd).unwrap();
        assert_eq!(rx2.resolve(&d1).unwrap(), b"keep");
        assert_eq!(rx2.resolve(&d2), Err(ArenaError::Stale));
        rx2.free(d1).unwrap();
        // Every slot is allocatable again: nothing leaked.
        for _ in 0..4 {
            assert!(tx.push_bytes(b"x").is_some());
        }
    }

    #[test]
    fn descriptor_sender_busy_when_arena_full() {
        use crate::shm::ShmRing;
        let (arena_tx, arena_rx) = ShmArena::pair(2, 32);
        let (ring_p, mut ring_c) = ShmRing::<Descriptor>::pair(8);
        // pair() claims both arena roles; we only exercise the Tx side.
        let mut rx = arena_rx;
        let mut sender = DescriptorSender::new(arena_tx, ring_p, 16);
        assert_eq!(sender.send_bytes(b"a"), SendOutcome::Sent);
        assert_eq!(sender.send_bytes(b"b"), SendOutcome::Sent);
        assert_eq!(sender.send_bytes(b"c"), SendOutcome::Busy);
        assert_eq!(sender.pending(), 2);
        // Worker frees a slot: the retry goes through.
        let d = ring_c.try_pop().unwrap();
        assert_eq!(rx.resolve(&d).unwrap(), b"a");
        rx.free(d).unwrap();
        assert!(sender.wait_arena_slot());
        assert_eq!(sender.send_bytes(b"c"), SendOutcome::Sent);
    }

    #[test]
    fn descriptor_sender_recovers_across_simulated_kill() {
        use crate::shm::ShmRing;
        if !ShmSegment::memfd_supported() {
            eprintln!("skipping: no memfd on this platform");
            return;
        }
        let (arena_tx, arena_fd) = ShmArena::create_tx(8, 32).unwrap();
        let (ring_p, ring_fd) = ShmRing::<Descriptor>::create_producer(8).unwrap();
        let mut sender = DescriptorSender::new(arena_tx, ring_p, 32);
        let mut rx = ShmArena::attach_rx(arena_fd).unwrap();
        let mut c = ShmRing::<Descriptor>::attach_consumer(ring_fd).unwrap();

        for i in 0..6u8 {
            assert_eq!(sender.send_bytes(&[i; 8]), SendOutcome::Sent);
        }
        // Worker contract: resolve → publish result → commit → free.
        for i in 0..3u8 {
            let d = c.try_pop().unwrap();
            assert_eq!(rx.resolve(&d).unwrap(), &[i; 8][..]);
            sender
                .ring_segment()
                .commit_word()
                .store(i as u64 + 1, Release);
            rx.free(d).unwrap();
        }
        // Pops one more, then dies before committing it: that descriptor
        // and the two un-popped ones are the unacknowledged suffix.
        let _in_flight = c.try_pop().unwrap();
        let ring_gen = sender.ring_segment().role_generation(false);
        let arena_gen = sender.arena_segment().role_generation(false);
        std::mem::forget(c);
        std::mem::forget(rx);

        // Supervisor path: revoke both consumer roles, recover, reopen.
        sender.ring_segment().revoke_role(false, ring_gen).unwrap();
        sender
            .arena_segment()
            .revoke_role(false, arena_gen)
            .unwrap();
        let (drained, swept) = sender.begin_recovery();
        assert_eq!(drained, 2, "two descriptors never popped");
        assert_eq!(swept, 0, "every live slot is journal-referenced");
        assert_eq!(sender.pending(), 3);
        assert_eq!(sender.send_bytes(b"zz"), SendOutcome::Busy);
        sender.ring_segment().reopen_role(false);
        sender.arena_segment().reopen_role(false);

        // Respawned worker re-attaches and receives exactly the
        // unacknowledged suffix, payload bytes intact.
        let mut c2 = ShmRing::<Descriptor>::attach_consumer(ring_fd).unwrap();
        let mut rx2 = ShmArena::attach_rx(arena_fd).unwrap();
        assert_eq!(sender.replay(), 3);
        for i in 3..6u8 {
            let d = c2.try_pop().unwrap();
            assert_eq!(rx2.resolve(&d).unwrap(), &[i; 8][..]);
            sender
                .ring_segment()
                .commit_word()
                .store(i as u64 + 1, Release);
            rx2.free(d).unwrap();
        }
        sender.ack_committed();
        assert_eq!(sender.pending(), 0);
    }
}
