//! The production stream FIFO: lock-free SPSC fast path + dynamic resizing.
//!
//! RaftLib resizes queues while the application runs (§4): a monitor thread
//! wakes every δ and grows a queue when the writer has been blocked for 3δ,
//! or when a reader asked for more items than the queue can ever hold. The
//! resize itself uses "lock-free exclusion" and prefers the moment when the
//! ring is in a *non-wrapped* position so the live region can be moved with
//! one contiguous copy.
//!
//! Reproduction here:
//!
//! * `head`/`tail` are monotonic atomic counters living *outside* the slot
//!   storage (each on its own cache line), so a resize only swaps the
//!   storage and never disturbs the producer/consumer protocol;
//! * each endpoint keeps a local mirror of its own counter plus a stale
//!   cache of the opposite one ([`crate::spsc`]'s cached-index scheme), so
//!   the common-case push/pop never loads its own shared counter and only
//!   refreshes the opposite counter when the ring looks full/empty;
//! * push/pop are excluded from resizes by the Dekker-style
//!   [`ResizeFence`] — one flag store + SeqCst fence + one load per
//!   operation, no lock RMW and no shared contended lock word. The old
//!   per-op `RwLock` read acquisition is gone from the hot path; the lock
//!   survives only for resizer-vs-resizer exclusion and third-party
//!   `capacity()` reads;
//! * a resize takes the exclusive lock **and** the fence, copies the live
//!   region (single `memcpy` when source and destination are both
//!   non-wrapped, element-wise otherwise), and swaps storage;
//! * blocked endpoints record `*_blocked_since` timestamps in
//!   [`FifoStats`], which is precisely the signal the monitor's 3δ rule
//!   consumes; parked threads are woken by the opposite endpoint or by a
//!   resize;
//! * zero-copy batch views: [`Producer::reserve`] hands out a
//!   [`WriteSlice`] that is written in place and committed (published with
//!   one counter store) on drop; [`Consumer::pop_slice`] lends the front of
//!   the queue to a closure as a [`SliceView`] and consumes it afterwards —
//!   both amortize the fence entry over the whole batch.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut, Index};
use std::sync::atomic::{
    AtomicBool, AtomicU64, AtomicU8, AtomicUsize,
    Ordering::{AcqRel, Acquire, Relaxed, Release},
};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::utils::CachePadded;
use parking_lot::{Condvar, Mutex, RwLock};

use crate::error::{PopError, PushError, TryPopError, TryPushError};
use crate::fence::{ResizeFence, Role};
use crate::index::{consumer_ready_elems, producer_free_slots};
use crate::journal::{AdmissionPolicy, JournalConfig, ReplayWindow};
use crate::signal::Signal;
use crate::stats::{FifoStats, StatsSnapshot};
use crate::wait::{WaitAction, WaitStrategy, Waiter};
use crate::waker::WakerSlot;

/// Drain levels for the cooperative shutdown protocol (see
/// [`Fifo::set_drain_level`]). `RUNNING` is normal operation; `DRAINING`
/// asks sources to stop while in-flight data keeps flowing; `QUIESCED`
/// fails blocked endpoints fast so a wedged graph still terminates.
pub const DRAIN_RUNNING: u8 = 0;
/// Sources stop, in-flight elements still flow (see [`DRAIN_RUNNING`]).
pub const DRAIN_DRAINING: u8 = 1;
/// Blocked pushes fail fast and pops on an empty ring report end-of-stream.
pub const DRAIN_QUIESCED: u8 = 2;

/// Which allocator backs a link's element storage — the paper's three
/// link allocators (§3): process-local heap, a shared-memory segment for
/// co-located processes, and TCP for cross-machine edges. The mapper
/// classifies each link from its placement (DESIGN §14 has the matrix);
/// `RAFT_LINK_ALLOC` overrides globally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkAlloc {
    /// Process-local heap ring (the default; fastest within one process).
    #[default]
    Heap,
    /// `memfd`-backed mapped segment (see [`crate::shm`]): zero-copy
    /// between co-located processes. Implies a fixed capacity — a mapped
    /// segment cannot be resized under a live peer. Falls back to `Heap`
    /// (recorded as such) on platforms without `memfd`.
    Shm,
    /// Serialized over a TCP link (`raft-net`); the only option across
    /// machines. In-process FIFOs treat this as `Heap` — the socket pair
    /// lives at the graph layer, not in the ring.
    Tcp,
}

impl LinkAlloc {
    /// Parse a `RAFT_LINK_ALLOC` value (`heap` | `shm` | `tcp`).
    pub fn parse(s: &str) -> Option<LinkAlloc> {
        match s.to_ascii_lowercase().as_str() {
            "heap" => Some(LinkAlloc::Heap),
            "shm" => Some(LinkAlloc::Shm),
            "tcp" => Some(LinkAlloc::Tcp),
            _ => None,
        }
    }
}

impl std::fmt::Display for LinkAlloc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad`, not `write_str`: report tables format this with a width.
        f.pad(match self {
            LinkAlloc::Heap => "heap",
            LinkAlloc::Shm => "shm",
            LinkAlloc::Tcp => "tcp",
        })
    }
}

/// Construction parameters for a [`Fifo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoConfig {
    /// Starting capacity in elements (rounded up to a power of two).
    pub initial_capacity: usize,
    /// Growth ceiling — the paper's "buffer cap" engineering solution for
    /// queues that would otherwise grow without bound.
    pub max_capacity: usize,
    /// Shrink floor.
    pub min_capacity: usize,
    /// When set, the link records consumed elements in a replay journal and
    /// stages produced elements until commit — the exactly-once recovery
    /// contract (see [`crate::journal`]). Requires `T: Clone` at the wiring
    /// layer; `None` keeps the historical lossy-restart behavior.
    pub journal: Option<JournalConfig>,
    /// What the producer does when the ring is full (see
    /// [`AdmissionPolicy`]). `Block` preserves the paper's lossless
    /// blocking-write semantics.
    pub admission: AdmissionPolicy,
    /// Storage allocator for the ring (see [`LinkAlloc`]). `Shm` pins the
    /// capacity to `initial_capacity` and places the slots in a mapped
    /// segment.
    pub alloc: LinkAlloc,
}

impl Default for FifoConfig {
    fn default() -> Self {
        FifoConfig {
            initial_capacity: 64,
            max_capacity: 1 << 22,
            min_capacity: 8,
            journal: None,
            admission: AdmissionPolicy::Block,
            alloc: LinkAlloc::Heap,
        }
    }
}

impl FifoConfig {
    /// Config with a fixed capacity (resizing disabled: floor == ceiling).
    pub fn fixed(capacity: usize) -> Self {
        let c = capacity.max(1).next_power_of_two();
        FifoConfig {
            initial_capacity: c,
            max_capacity: c,
            min_capacity: c,
            ..Default::default()
        }
    }

    /// Config starting at `initial` with the default ceiling/floor.
    pub fn starting_at(initial: usize) -> Self {
        FifoConfig {
            initial_capacity: initial,
            ..Default::default()
        }
    }

    /// Enable the exactly-once replay journal on this link.
    pub fn journaled(mut self, journal: JournalConfig) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Select the storage allocator for this link.
    pub fn with_alloc(mut self, alloc: LinkAlloc) -> Self {
        self.alloc = alloc;
        self
    }

    /// Set the overload admission policy for this link.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }
}

/// One storage slot: a possibly-uninitialized `(element, signal)` pair.
type Slot<T> = UnsafeCell<MaybeUninit<(T, Signal)>>;

/// What owns the slot memory. Heap rings own a boxed slice; shm rings own
/// a mapped segment whose data region *is* the slot array. The hot path
/// never inspects this — it goes through the cached raw pointer below.
enum StorageOwner<T> {
    Heap(#[allow(dead_code)] Box<[Slot<T>]>), // held for Drop, read via `ptr`
    Seg(#[allow(dead_code)] crate::shm::ShmSegment), // held for Drop/unmap
}

/// Swappable slot storage; everything else lives in [`Shared`].
struct Storage<T> {
    /// First slot; stride `size_of::<Slot<T>>()`, `capacity` slots long.
    /// Cached out of `owner` so `slot()` is one add+mask, no branch on the
    /// backing kind (and no bounds check, unlike the old boxed-slice
    /// index).
    ptr: *mut Slot<T>,
    mask: usize,
    owner: StorageOwner<T>,
}

// SAFETY: slots are only touched through the head/tail protocol — the
// producer writes a slot strictly before publishing it with a Release store
// of `tail`, the consumer reads it strictly after an Acquire load of `tail`,
// and a resize holds the fence (both endpoints outside their critical
// sections, their exits acquired) while it mutates. Every access is
// therefore ordered, so the storage may move to (Send) or be shared with
// (Sync) other threads whenever the elements themselves are Send.
unsafe impl<T: Send> Send for Storage<T> {}
// SAFETY: see the `Send` justification above.
unsafe impl<T: Send> Sync for Storage<T> {}

impl<T> Storage<T> {
    fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        let mut slots: Box<[Slot<T>]> = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        let ptr = slots.as_mut_ptr();
        Storage {
            ptr,
            mask: capacity - 1,
            owner: StorageOwner::Heap(slots),
        }
    }

    /// Place the slot array in a freshly created `memfd` segment — the
    /// shared-memory link backing (fails on platforms without memfd; the
    /// caller falls back to the heap and records the downgrade). The
    /// segment is process-private here (only this process maps it), so
    /// any `T` is permissible — unlike [`crate::shm::ShmRing`], nothing
    /// is read from another address space.
    fn with_segment(capacity: usize) -> std::io::Result<Self> {
        let capacity = capacity.max(1).next_power_of_two();
        let (size, align) = (
            std::mem::size_of::<Slot<T>>(),
            std::mem::align_of::<Slot<T>>(),
        );
        let seg = crate::shm::ShmSegment::create(
            crate::shm::SEG_KIND_RING,
            capacity as u64,
            size,
            align,
            capacity * size.max(1),
        )?;
        let ptr = seg.data_ptr().cast::<Slot<T>>();
        // Fresh zeroed segment: every slot starts as an uninitialized
        // MaybeUninit, exactly like the heap path.
        Ok(Storage {
            ptr,
            mask: capacity - 1,
            owner: StorageOwner::Seg(seg),
        })
    }

    /// `true` when the slots live in a mapped segment.
    fn is_shm(&self) -> bool {
        matches!(self.owner, StorageOwner::Seg(_))
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Raw pointer to the slot for monotonic index `idx`.
    #[inline]
    fn slot(&self, idx: usize) -> *mut MaybeUninit<(T, Signal)> {
        // SAFETY: the masked index is < capacity, and `ptr` points at a
        // live array of `capacity` slots owned by `self.owner` (boxed
        // slice or mapped segment) for exactly as long as `self` lives.
        // Only the UnsafeCell raw pointer escapes; dereferencing it is the
        // caller's (protocol-ordered) obligation, as before.
        unsafe { (*self.ptr.add(idx & self.mask)).get() }
    }
}

/// State shared by producer, consumer, and monitor.
struct Shared<T> {
    /// Slot storage. Endpoints access it **without** taking this lock —
    /// they hold [`ResizeFence`] membership instead and go through
    /// [`RwLock::data_ptr`]. The lock only serializes resizers against each
    /// other and covers third-party `capacity()` reads.
    storage: RwLock<Storage<T>>,
    /// Dekker-style exclusion between endpoint ring access and resizes.
    fence: ResizeFence,
    /// `false` when the config pins the capacity (floor == ceiling): the
    /// storage can never be swapped, so endpoints skip the fence entirely
    /// and run at raw SPSC speed.
    resizable: bool,
    /// The allocator actually backing the slots (a requested `Shm` that
    /// fell back to the heap is recorded as `Heap`); surfaced per-link in
    /// `ExeReport`.
    alloc: LinkAlloc,
    /// Next index to read (monotonic). Own cache line: the producer spins
    /// on this only when its cached copy says the ring is full.
    head: CachePadded<AtomicUsize>,
    /// Next index to write (monotonic), cache line apart from `head`.
    tail: CachePadded<AtomicUsize>,
    producer_closed: AtomicBool,
    consumer_closed: AtomicBool,
    /// Out-of-band signal channel ("asynchronous signaling", §4.2).
    async_signal: AtomicU64,
    /// Set while the producer is parked waiting for space.
    writer_waiting: AtomicBool,
    /// Set while the consumer is parked waiting for data.
    reader_waiting: AtomicBool,
    park: Mutex<()>,
    unpark: Condvar,
    /// Event-driven readiness hook for the consuming side: notified when
    /// data, EoS, or an async signal becomes visible. Registered/armed by
    /// the work-stealing scheduler; a single relaxed load when unused.
    consumer_waker: WakerSlot,
    /// Readiness hook for the producing side: notified when space becomes
    /// visible (pop, batch drain, consumer drop, grow).
    producer_waker: WakerSlot,
    /// Cooperative drain level ([`DRAIN_RUNNING`] / [`DRAIN_DRAINING`] /
    /// [`DRAIN_QUIESCED`]); raised monotonically by the monitor or a stop
    /// handle, never lowered.
    drain: AtomicU8,
    /// Elements awaiting replay after a journal rewind. Counted into
    /// [`Shared::occupancy`] so schedulers see a rewound link as ready and
    /// `is_finished` stays false until the replay is consumed.
    journal_pending: AtomicUsize,
    /// Set once the consumer endpoint enabled its replay journal.
    journaled: AtomicBool,
    stats: FifoStats,
    cfg: FifoConfig,
    /// Protocol shadow checker (SPSC discipline, monotonic sequences,
    /// resize-fence transitions); driven from the arena chokepoints below.
    #[cfg(feature = "raft_protocol_check")]
    shadow: crate::protocol::FifoShadow,
}

impl<T> Shared<T> {
    /// Elements in the ring proper (excluding journal replay).
    #[inline]
    fn ring_occupancy(&self) -> usize {
        self.tail
            .load(Acquire)
            .saturating_sub(self.head.load(Acquire))
    }

    /// Elements observable by the consumer: ring contents plus journal
    /// entries queued for replay after a rewind.
    #[inline]
    fn occupancy(&self) -> usize {
        self.ring_occupancy() + self.journal_pending.load(Acquire)
    }

    /// Wake any parked endpoint. Cheap when nobody is waiting (one relaxed
    /// load each).
    #[inline]
    fn wake(&self) {
        if self.writer_waiting.load(Relaxed) || self.reader_waiting.load(Relaxed) {
            let _g = self.park.lock();
            self.unpark.notify_all();
        }
    }

    /// Enter the ring critical section for `role`. Free for fixed-capacity
    /// FIFOs (nothing can swap the storage); one SeqCst swap + load
    /// otherwise.
    #[inline]
    fn arena_enter(&self, role: Role) {
        if self.resizable {
            self.fence.enter(role);
        }
        // Shadow CS strictly inside the fence CS: entered only after the
        // fence is held, so the checker cannot flag interleavings the
        // fence already excludes.
        #[cfg(feature = "raft_protocol_check")]
        self.shadow.enter(role);
    }

    /// Leave the ring critical section for `role`.
    #[inline]
    fn arena_exit(&self, role: Role) {
        #[cfg(feature = "raft_protocol_check")]
        self.shadow.exit(
            role,
            match role {
                Role::Producer => self.tail.load(Relaxed),
                Role::Consumer => self.head.load(Relaxed),
            },
        );
        if self.resizable {
            self.fence.exit(role);
        }
    }

    /// Raw storage access for an endpoint *currently inside
    /// [`arena_enter`](Self::arena_enter)*.
    ///
    /// # Safety
    /// The caller must be inside an `arena_enter`/`arena_exit` pair for its
    /// role: membership excludes any storage swap (and fixed-capacity FIFOs
    /// can never swap), so the reference is stable for the duration of the
    /// critical section.
    #[inline]
    unsafe fn storage_unlocked(&self) -> &Storage<T> {
        // SAFETY: per the function contract, no resize (the only writer)
        // can run while the caller holds membership, so a shared reference
        // to the contents cannot alias a mutation.
        unsafe { &*self.storage.data_ptr() }
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Last owner of the FIFO: drop whatever elements remain exactly once.
        // (Storage never drops its MaybeUninit contents itself.)
        let storage = self.storage.write();
        let head = self.head.load(Relaxed);
        let tail = self.tail.load(Relaxed);
        for i in head..tail {
            // SAFETY: [head, tail) is the live region; exclusive access here.
            unsafe { (*storage.slot(i)).assume_init_drop() };
        }
    }
}

/// RAII fence membership, so user closures that panic (peek, pop_slice)
/// can't strand the monitor waiting on a raised `active` flag.
struct ArenaGuard<'a, T> {
    shared: &'a Shared<T>,
    role: Role,
}

impl<'a, T> ArenaGuard<'a, T> {
    #[inline]
    fn enter(shared: &'a Shared<T>, role: Role) -> Self {
        shared.arena_enter(role);
        ArenaGuard { shared, role }
    }
}

impl<T> Drop for ArenaGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.shared.arena_exit(self.role);
    }
}

/// How long a parked endpoint sleeps before re-checking, as a missed-wakeup
/// safety net. The event path (condvar notify + [`WakerSlot`]) is what
/// actually delivers wakeups; this bound only papers over the inherent
/// relaxed-flag race on the condvar path, so it is a pure safety net rather
/// than a polling rate — stretched from the old 200 µs accordingly.
const PARK_TIMEOUT: Duration = Duration::from_millis(2);

/// Spin → yield → park schedule shared by every blocking endpoint loop.
const ENDPOINT_WAIT: WaitStrategy = WaitStrategy::parking(PARK_TIMEOUT);

/// The dynamically resizable stream FIFO. Create one with [`fifo_with`];
/// this handle is the monitor/third-party view, [`Producer`]/[`Consumer`]
/// are the data endpoints.
pub struct Fifo<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Fifo<T> {
    fn clone(&self) -> Self {
        Fifo {
            shared: self.shared.clone(),
        }
    }
}

/// Create a FIFO with the given configuration; returns the monitor-facing
/// handle plus the two endpoints.
pub fn fifo_with<T: Send>(cfg: FifoConfig) -> (Fifo<T>, Producer<T>, Consumer<T>) {
    let mut cfg = FifoConfig {
        initial_capacity: cfg
            .initial_capacity
            .clamp(1, cfg.max_capacity.max(1))
            .next_power_of_two(),
        max_capacity: cfg.max_capacity.max(1).next_power_of_two(),
        min_capacity: cfg.min_capacity.max(1).next_power_of_two(),
        ..cfg
    };
    // A mapped segment cannot be swapped out under a live peer: an shm
    // link runs at its initial capacity, fixed (which also means the
    // endpoints skip the resize fence and run at raw SPSC speed).
    if cfg.alloc == LinkAlloc::Shm {
        cfg.max_capacity = cfg.initial_capacity;
        cfg.min_capacity = cfg.initial_capacity;
    }
    let storage = if cfg.alloc == LinkAlloc::Shm {
        Storage::with_segment(cfg.initial_capacity)
            .unwrap_or_else(|_| Storage::with_capacity(cfg.initial_capacity))
    } else {
        Storage::with_capacity(cfg.initial_capacity)
    };
    // Record what actually backs the slots, not what was asked for.
    let alloc = if storage.is_shm() {
        LinkAlloc::Shm
    } else {
        LinkAlloc::Heap
    };
    let shared = Arc::new(Shared {
        storage: RwLock::new(storage),
        fence: ResizeFence::new(),
        resizable: cfg.max_capacity != cfg.min_capacity,
        alloc,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
        producer_closed: AtomicBool::new(false),
        consumer_closed: AtomicBool::new(false),
        async_signal: AtomicU64::new(0),
        writer_waiting: AtomicBool::new(false),
        reader_waiting: AtomicBool::new(false),
        park: Mutex::new(()),
        unpark: Condvar::new(),
        consumer_waker: WakerSlot::new(),
        producer_waker: WakerSlot::new(),
        drain: AtomicU8::new(DRAIN_RUNNING),
        journal_pending: AtomicUsize::new(0),
        journaled: AtomicBool::new(false),
        stats: FifoStats::new(),
        cfg,
        #[cfg(feature = "raft_protocol_check")]
        shadow: crate::protocol::FifoShadow::new(),
    });
    (
        Fifo {
            shared: shared.clone(),
        },
        Producer {
            shared: shared.clone(),
            tail: 0,
            head_cache: 0,
            staged: None,
        },
        Consumer {
            shared,
            head: 0,
            tail_cache: 0,
            journal: None,
        },
    )
}

impl<T: Send> Fifo<T> {
    /// Current capacity (elements).
    pub fn capacity(&self) -> usize {
        self.shared.storage.read().capacity()
    }

    /// Current occupancy (elements queued).
    pub fn occupancy(&self) -> usize {
        self.shared.occupancy()
    }

    /// The FIFO's telemetry counters.
    pub fn stats(&self) -> &FifoStats {
        &self.shared.stats
    }

    /// Point-in-time statistics snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.shared
            .stats
            .snapshot(self.capacity(), self.occupancy())
    }

    /// The allocator actually backing this link's slots.
    pub fn link_alloc(&self) -> LinkAlloc {
        self.shared.alloc
    }

    /// The configured growth ceiling.
    pub fn max_capacity(&self) -> usize {
        self.shared.cfg.max_capacity
    }

    /// The configured shrink floor.
    pub fn min_capacity(&self) -> usize {
        self.shared.cfg.min_capacity
    }

    /// `true` once the producer closed (or the link quiesced) and all data —
    /// including journal entries awaiting replay — has been consumed.
    pub fn is_finished(&self) -> bool {
        (self.shared.producer_closed.load(Acquire)
            || self.shared.drain.load(Acquire) >= DRAIN_QUIESCED)
            && self.shared.occupancy() == 0
    }

    /// Raise the cooperative drain level (monotonic; lowering is ignored).
    /// At [`DRAIN_QUIESCED`] blocked producers fail fast and pops on an
    /// empty ring observe end-of-stream, so a wedged graph still terminates.
    pub fn set_drain_level(&self, level: u8) {
        crate::failpoint!("buffer::fifo::drain");
        let prev = self.shared.drain.fetch_max(level, AcqRel);
        if prev < level {
            // Both endpoints may be parked on conditions that will now never
            // arrive; the new level must be actionable immediately.
            self.shared.consumer_waker.notify();
            self.shared.producer_waker.notify();
            self.shared.wake();
        }
    }

    /// Current cooperative drain level.
    pub fn drain_level(&self) -> u8 {
        self.shared.drain.load(Acquire)
    }

    /// `true` once the consumer endpoint enabled its replay journal.
    pub fn journaled(&self) -> bool {
        self.shared.journaled.load(Acquire)
    }

    /// Post an asynchronous (out-of-band) signal, immediately visible to the
    /// consumer regardless of queued data.
    pub fn post_async(&self, signal: Signal) {
        self.shared.async_signal.store(signal.encode(), Release);
        self.shared.consumer_waker.notify();
        self.shared.wake();
    }

    /// Take a pending asynchronous signal, if any.
    pub fn take_async(&self) -> Option<Signal> {
        Signal::decode(self.shared.async_signal.swap(0, Acquire))
    }

    /// `true` while an asynchronous signal is posted and unconsumed. Part
    /// of the readiness predicate: an async signal is actionable input for
    /// a consumer kernel even when no data is queued.
    pub fn has_async(&self) -> bool {
        self.shared.async_signal.load(Acquire) != 0
    }

    /// Resize the ring to `new_capacity` (clamped to config bounds and to
    /// current occupancy). Returns the resulting capacity.
    ///
    /// Takes the exclusive storage lock (vs. other resizers and third-party
    /// `capacity()` readers), then the [`ResizeFence`] (vs. the endpoints,
    /// who retry as soon as `end_resize` clears the pending flag). The live
    /// region is moved with one contiguous copy when both source and
    /// destination regions are non-wrapped (the paper's preferred resize
    /// position), element-wise otherwise.
    pub fn resize(&self, new_capacity: usize) -> usize {
        let shared = &self.shared;
        if !shared.resizable {
            // Fixed-capacity config: endpoints skip the fence, so mutating
            // the storage here would be unsound — and the clamp below could
            // only ever return the current capacity anyway.
            return self.capacity();
        }
        let mut guard = shared.storage.write();
        // Chaos hook: inject a stall (or panic) while holding the storage
        // lock but before the fence, the window where a wedged resize is
        // most visible to the endpoints.
        crate::failpoint!("buffer::fifo::resize");
        shared.fence.begin_resize();
        // With the fence held, both endpoints are outside their critical
        // sections; their counter stores happened-before their (acquired)
        // fence exits, so Relaxed loads here read the settled values and
        // nobody moves them until end_resize.
        let head = shared.head.load(Relaxed);
        let tail = shared.tail.load(Relaxed);
        #[cfg(feature = "raft_protocol_check")]
        shared.shadow.resize_begin();
        let live = tail - head;
        let new_capacity = new_capacity
            .clamp(shared.cfg.min_capacity, shared.cfg.max_capacity)
            .max(live)
            .next_power_of_two();
        if new_capacity == guard.capacity() {
            #[cfg(feature = "raft_protocol_check")]
            shared.shadow.resize_end(
                head,
                tail,
                shared.head.load(Relaxed),
                shared.tail.load(Relaxed),
            );
            shared.fence.end_resize();
            return new_capacity;
        }
        let new = Storage::<T>::with_capacity(new_capacity);
        let old_mask = guard.mask;
        let old_cap = guard.capacity();
        if live > 0 {
            let src_start = head & old_mask;
            let dst_start = head & new.mask;
            let src_contig = src_start + live <= old_cap;
            let dst_contig = dst_start + live <= new.capacity();
            // SAFETY: the fence excludes both endpoints and the write lock
            // excludes other resizers, so nothing reads or writes either
            // storage concurrently. Source slots `[head, tail)` are
            // initialized (live region); destination slots are freshly
            // allocated and distinct allocations, so the ranges cannot
            // overlap. `new_capacity >= live` (clamped above) guarantees the
            // destination indices stay in bounds, and the bit-copy is a
            // move: the old slots are discarded as `MaybeUninit` (never
            // dropped) right after, so no element is duplicated or leaked.
            unsafe {
                if src_contig && dst_contig {
                    // Fast path: one memcpy of the whole live region.
                    std::ptr::copy_nonoverlapping(guard.slot(src_start), new.slot(head), live);
                } else {
                    // Wrapped on either side: move element-wise.
                    for i in 0..live {
                        std::ptr::copy_nonoverlapping(
                            guard.slot((head + i) & old_mask),
                            new.slot(head + i),
                            1,
                        );
                    }
                }
            }
        }
        // Old slots' live elements were moved out byte-wise: discarding the
        // old storage is safe because MaybeUninit never drops its contents.
        *guard = new;
        shared.stats.monitor.resizes.fetch_add(1, Relaxed);
        #[cfg(feature = "raft_protocol_check")]
        shared.shadow.resize_end(
            head,
            tail,
            shared.head.load(Relaxed),
            shared.tail.load(Relaxed),
        );
        // Publish the new storage (Release inside) before endpoints re-enter.
        shared.fence.end_resize();
        drop(guard);
        // A grow makes space visible to a parked producer-side task.
        shared.producer_waker.notify();
        shared.wake();
        new_capacity
    }

    /// Grow by doubling (bounded by `max_capacity`). Returns `true` if the
    /// capacity changed.
    pub fn grow(&self) -> bool {
        let cur = self.capacity();
        if cur >= self.shared.cfg.max_capacity {
            return false;
        }
        self.resize(cur * 2) > cur
    }

    /// Grow until `capacity >= target` (bounded). Returns `true` if the
    /// final capacity satisfies the request.
    pub fn grow_to(&self, target: usize) -> bool {
        if self.capacity() >= target {
            return true;
        }
        self.resize(target.next_power_of_two()) >= target
    }

    /// Halve the capacity (bounded by `min_capacity` and occupancy).
    pub fn shrink(&self) -> bool {
        let cur = self.capacity();
        if cur <= self.shared.cfg.min_capacity {
            return false;
        }
        self.resize(cur / 2) < cur
    }

    /// Monitor tick: record an occupancy sample into the histogram.
    pub fn sample(&self) {
        self.shared.stats.sample_occupancy(self.occupancy());
    }
}

/// Monitor-facing, type-erased view of a FIFO — what the runtime's monitor
/// thread holds for every stream in the application.
pub trait Monitorable: Send + Sync {
    /// Current capacity (elements).
    fn capacity(&self) -> usize;
    /// Current occupancy (elements).
    fn occupancy(&self) -> usize;
    /// Telemetry counters.
    fn stats(&self) -> &FifoStats;
    /// Double the capacity; `true` if changed.
    fn grow(&self) -> bool;
    /// Grow to at least `target`; `true` if satisfied.
    fn grow_to(&self, target: usize) -> bool;
    /// Halve the capacity; `true` if changed.
    fn shrink(&self) -> bool;
    /// Record an occupancy sample.
    fn sample(&self);
    /// Growth ceiling.
    fn max_capacity(&self) -> usize;
    /// Statistics snapshot.
    fn snapshot(&self) -> StatsSnapshot;
    /// Producer closed and drained.
    fn is_finished(&self) -> bool;
    /// Post an asynchronous signal to the consumer side.
    fn post_async(&self, signal: Signal);
    /// `true` while an asynchronous signal is posted and unconsumed.
    fn has_async(&self) -> bool {
        false
    }
    /// Waker slot notified when data/EoS becomes visible to the consumer.
    fn consumer_waker(&self) -> &WakerSlot;
    /// Waker slot notified when space becomes visible to the producer.
    fn producer_waker(&self) -> &WakerSlot;
    /// Raise the cooperative drain level (no-op for links without drain
    /// support).
    fn set_drain_level(&self, _level: u8) {}
    /// Current cooperative drain level.
    fn drain_level(&self) -> u8 {
        DRAIN_RUNNING
    }
    /// The allocator backing this link's storage (for `ExeReport`).
    fn link_alloc(&self) -> LinkAlloc {
        LinkAlloc::Heap
    }
    /// `true` when an exactly-once replay journal records this link.
    fn journaled(&self) -> bool {
        false
    }
}

impl<T: Send> Monitorable for Fifo<T> {
    fn capacity(&self) -> usize {
        Fifo::capacity(self)
    }
    fn link_alloc(&self) -> LinkAlloc {
        Fifo::link_alloc(self)
    }
    fn occupancy(&self) -> usize {
        Fifo::occupancy(self)
    }
    fn stats(&self) -> &FifoStats {
        Fifo::stats(self)
    }
    fn grow(&self) -> bool {
        Fifo::grow(self)
    }
    fn grow_to(&self, target: usize) -> bool {
        Fifo::grow_to(self, target)
    }
    fn shrink(&self) -> bool {
        Fifo::shrink(self)
    }
    fn sample(&self) {
        Fifo::sample(self);
    }
    fn max_capacity(&self) -> usize {
        Fifo::max_capacity(self)
    }
    fn snapshot(&self) -> StatsSnapshot {
        Fifo::snapshot(self)
    }
    fn is_finished(&self) -> bool {
        Fifo::is_finished(self)
    }
    fn post_async(&self, signal: Signal) {
        Fifo::post_async(self, signal);
    }
    fn has_async(&self) -> bool {
        Fifo::has_async(self)
    }
    fn consumer_waker(&self) -> &WakerSlot {
        &self.shared.consumer_waker
    }
    fn producer_waker(&self) -> &WakerSlot {
        &self.shared.producer_waker
    }
    fn set_drain_level(&self, level: u8) {
        Fifo::set_drain_level(self, level);
    }
    fn drain_level(&self) -> u8 {
        Fifo::drain_level(self)
    }
    fn journaled(&self) -> bool {
        Fifo::journaled(self)
    }
}

/// Producing endpoint of a [`Fifo`]. One per stream; `Send`, not `Clone`.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Local mirror of `shared.tail` — exact between operations, so the
    /// fast path never loads its own shared counter.
    tail: usize,
    /// Stale (conservative) copy of `shared.head`; refreshed only when the
    /// ring looks full. Never ahead of the true head, so staleness can only
    /// cause a spurious refresh, never an overwrite.
    head_cache: usize,
    /// When `Some`, pushes are staged here instead of published to the ring;
    /// [`commit_produced`](Producer::commit_produced) flushes them,
    /// [`rewind_produced`](Producer::rewind_produced) discards them — the
    /// output half of the exactly-once contract (see [`crate::journal`]).
    staged: Option<Vec<(T, Signal)>>,
}

// SAFETY: the producer handle is the unique owner of the producer role (not
// Clone), so sending it to another thread only relocates that role; all slot
// access it performs is ordered by the head/tail protocol and `T: Send`
// covers the elements that cross threads.
unsafe impl<T: Send> Send for Producer<T> {}

impl<T: Send> Producer<T> {
    /// Non-blocking push of `(value, signal)`. With staging enabled the
    /// element lands in the pending buffer (never `Full`) and reaches the
    /// ring at the next [`commit_produced`](Self::commit_produced).
    pub fn try_push_signal(&mut self, value: T, signal: Signal) -> Result<(), TryPushError<T>> {
        if let Some(pending) = self.staged.as_mut() {
            if self.shared.consumer_closed.load(Relaxed) {
                return Err(TryPushError::Closed(value));
            }
            pending.push((value, signal));
            return Ok(());
        }
        self.try_push_signal_ring(value, signal)
    }

    /// Non-blocking push straight to the ring, bypassing any staging buffer
    /// (used by the commit flush).
    fn try_push_signal_ring(&mut self, value: T, signal: Signal) -> Result<(), TryPushError<T>> {
        let shared = &*self.shared;
        if shared.consumer_closed.load(Relaxed) {
            return Err(TryPushError::Closed(value));
        }
        shared.arena_enter(Role::Producer);
        // SAFETY: fence membership held until the exit below.
        let storage = unsafe { shared.storage_unlocked() };
        let tail = self.tail;
        // Shared cached-index fast path (see `crate::index`): refresh pairs
        // Acquire with the consumer's Release store of `head`, ordering its
        // read-out of the slot before our reuse of it.
        let room = producer_free_slots(tail, &mut self.head_cache, storage.capacity(), 1, || {
            shared.head.load(Acquire)
        });
        if room == 0 {
            shared.arena_exit(Role::Producer);
            return Err(TryPushError::Full(value));
        }
        // SAFETY: single producer; slot [tail] is outside the live region
        // (checked against a conservative head), and the fence keeps the
        // storage pointer stable.
        unsafe { (*storage.slot(tail)).write((value, signal)) };
        shared.tail.store(tail + 1, Release);
        self.tail = tail + 1;
        // Single-writer counter: total pushed == tail, so a plain store
        // replaces the old fetch_add.
        shared.stats.writer.pushed.store((tail + 1) as u64, Relaxed);
        shared.arena_exit(Role::Producer);
        // Event-driven readiness: hand the new element to a parked consumer
        // task (one relaxed load when no scheduler registered a waker).
        shared.consumer_waker.notify();
        if shared.reader_waiting.load(Relaxed) {
            shared.wake();
        }
        Ok(())
    }

    /// Non-blocking push.
    #[inline]
    pub fn try_push(&mut self, value: T) -> Result<(), TryPushError<T>> {
        self.try_push_signal(value, Signal::None)
    }

    /// Blocking push of `(value, signal)`; errs only if the consumer is gone
    /// (or the link quiesced mid-drain). With staging enabled the element is
    /// buffered instead — see [`try_push_signal`](Self::try_push_signal).
    ///
    /// While blocked, the producer is visible to the monitor through
    /// `writer_blocked_since` — after 3δ of continuous blocking the monitor
    /// grows this queue (the paper's write-side resize trigger). Under a
    /// shedding [`AdmissionPolicy`] a full ring drops the element (counted
    /// in the `shed` statistic) instead of blocking indefinitely.
    pub fn push_signal(&mut self, value: T, signal: Signal) -> Result<(), PushError<T>> {
        if self.staged.is_some() {
            return match self.try_push_signal(value, signal) {
                Ok(()) => Ok(()),
                Err(TryPushError::Closed(v)) | Err(TryPushError::Full(v)) => Err(PushError(v)),
            };
        }
        self.push_signal_ring(value, signal)
    }

    /// Blocking push straight to the ring (the commit flush path and the
    /// unstaged common case). Applies the link's admission policy.
    fn push_signal_ring(&mut self, value: T, signal: Signal) -> Result<(), PushError<T>> {
        let mut value = match self.try_push_signal_ring(value, signal) {
            Ok(()) => return Ok(()),
            Err(TryPushError::Closed(v)) => return Err(PushError(v)),
            Err(TryPushError::Full(v)) => v,
        };
        let shared = self.shared.clone();
        if shared.cfg.admission == AdmissionPolicy::Shed {
            // Full ring + shedding policy: drop now, count it, stay live.
            shared.stats.writer.shed.fetch_add(1, Relaxed);
            return Ok(());
        }
        let deadline = match shared.cfg.admission {
            AdmissionPolicy::BlockTimeout(t) => Some(Instant::now() + t),
            _ => None,
        };
        shared.stats.writer_block_begin();
        let mut waiter = Waiter::new(ENDPOINT_WAIT);
        let result = loop {
            match self.try_push_signal_ring(value, signal) {
                Ok(()) => break Ok(()),
                Err(TryPushError::Closed(v)) => break Err(PushError(v)),
                Err(TryPushError::Full(v)) => value = v,
            }
            if shared.drain.load(Acquire) >= DRAIN_QUIESCED {
                // Quiesced: nobody will drain this ring — fail fast rather
                // than wedge the draining graph.
                break Err(PushError(value));
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    // Burst outlasted the timeout: degrade to shedding.
                    shared.stats.writer.shed.fetch_add(1, Relaxed);
                    break Ok(());
                }
            }
            if waiter.pause_or_park() != WaitAction::Park {
                continue;
            }
            // Park until a pop or a resize makes room. We are *outside* the
            // fence here, so a resize can proceed while we sleep.
            shared.writer_waiting.store(true, Relaxed);
            let mut g = shared.park.lock();
            // Re-check under the lock to close the race with wake(). The
            // read lock (not the fence) covers the capacity read; it only
            // contends with a resizer, never the consumer.
            let full = {
                let storage = shared.storage.read();
                self.tail - shared.head.load(Acquire) >= storage.capacity()
            };
            if full && !shared.consumer_closed.load(Relaxed) {
                shared.unpark.wait_for(&mut g, PARK_TIMEOUT);
            }
            drop(g);
            shared.writer_waiting.store(false, Relaxed);
        };
        shared.stats.writer_block_end();
        result
    }

    /// Blocking push; errs only if the consumer is gone.
    #[inline]
    pub fn push(&mut self, value: T) -> Result<(), PushError<T>> {
        self.push_signal(value, Signal::None)
    }

    /// Push as many elements from `items` as currently fit, under a single
    /// fence entry (the batch path split adapters and sources use). Returns
    /// the number pushed; the rest stay in `items`.
    pub fn try_push_batch(&mut self, items: &mut Vec<T>) -> Result<usize, PushError<()>> {
        if items.is_empty() {
            return Ok(0);
        }
        let shared = &*self.shared;
        if shared.consumer_closed.load(Relaxed) {
            return Err(PushError(()));
        }
        shared.arena_enter(Role::Producer);
        // SAFETY: fence membership held until the exit below.
        let storage = unsafe { shared.storage_unlocked() };
        let mut tail = self.tail;
        let room = producer_free_slots(
            tail,
            &mut self.head_cache,
            storage.capacity(),
            items.len(),
            || shared.head.load(Acquire),
        );
        let n = room.min(items.len());
        for v in items.drain(..n) {
            // SAFETY: single producer; slots [tail, tail+n) are outside the
            // live region, so nothing reads them until the Release store of
            // `tail` below publishes the batch.
            unsafe { (*storage.slot(tail)).write((v, Signal::None)) };
            tail += 1;
        }
        if n > 0 {
            shared.tail.store(tail, Release);
            self.tail = tail;
            shared.stats.writer.pushed.store(tail as u64, Relaxed);
        }
        shared.arena_exit(Role::Producer);
        if n > 0 {
            shared.consumer_waker.notify();
            if shared.reader_waiting.load(Relaxed) {
                shared.wake();
            }
        }
        Ok(n)
    }

    /// Blocking batch push: pushes *all* of `items`, waiting for room as
    /// needed. Errs only if the consumer is gone (remaining items stay in
    /// `items`) or the link quiesced. With staging enabled the whole batch
    /// is buffered until commit; under a shedding admission policy a full
    /// ring drops the remainder (counted) instead of blocking.
    pub fn push_batch(&mut self, items: &mut Vec<T>) -> Result<(), PushError<()>> {
        if let Some(pending) = self.staged.as_mut() {
            if self.shared.consumer_closed.load(Relaxed) {
                return Err(PushError(()));
            }
            pending.extend(items.drain(..).map(|v| (v, Signal::None)));
            return Ok(());
        }
        let deadline = match self.shared.cfg.admission {
            AdmissionPolicy::BlockTimeout(t) => Some(Instant::now() + t),
            _ => None,
        };
        let mut waiter = Waiter::new(ENDPOINT_WAIT);
        let mut began_block = false;
        while !items.is_empty() {
            let pushed = self.try_push_batch(items)?;
            if items.is_empty() {
                break;
            }
            if pushed == 0 {
                if self.shared.drain.load(Acquire) >= DRAIN_QUIESCED {
                    if began_block {
                        self.shared.stats.writer_block_end();
                    }
                    return Err(PushError(()));
                }
                let shed_now = self.shared.cfg.admission == AdmissionPolicy::Shed
                    || deadline.is_some_and(|d| Instant::now() >= d);
                if shed_now {
                    // Degrade: drop the remainder rather than block on a
                    // ring nobody is draining fast enough.
                    self.shared
                        .stats
                        .writer
                        .shed
                        .fetch_add(items.len() as u64, Relaxed);
                    items.clear();
                    break;
                }
                if !began_block {
                    self.shared.stats.writer_block_begin();
                    began_block = true;
                }
                if waiter.pause_or_park() == WaitAction::Park {
                    self.shared.writer_waiting.store(true, Relaxed);
                    let mut g = self.shared.park.lock();
                    self.shared.unpark.wait_for(&mut g, PARK_TIMEOUT);
                    drop(g);
                    self.shared.writer_waiting.store(false, Relaxed);
                }
            } else {
                waiter.reset();
            }
        }
        if began_block {
            self.shared.stats.writer_block_end();
        }
        Ok(())
    }

    /// Reserve `n` slots for in-place batch writing; blocks until they are
    /// free (growing the ring on the spot if `n` exceeds its capacity,
    /// bounded by `max_capacity` — larger requests are clamped). The
    /// returned [`WriteSlice`] is filled with [`WriteSlice::push`] and the
    /// whole batch is published with a single counter store when it drops.
    ///
    /// Holding the slice holds fence membership: a resize waits until the
    /// slice is dropped. Errs only if the consumer is gone.
    pub fn reserve(&mut self, n: usize) -> Result<WriteSlice<'_, T>, PushError<()>> {
        let n = n.clamp(1, self.shared.cfg.max_capacity);
        let shared = self.shared.clone();
        let mut waiter = Waiter::new(ENDPOINT_WAIT);
        let mut began_block = false;
        loop {
            if shared.consumer_closed.load(Relaxed) || shared.drain.load(Acquire) >= DRAIN_QUIESCED
            {
                if began_block {
                    shared.stats.writer_block_end();
                }
                return Err(PushError(()));
            }
            if n > self.capacity() {
                // Write-side on-the-spot grow (cold; resizer path).
                let f = Fifo {
                    shared: self.shared.clone(),
                };
                f.grow_to(n);
            }
            shared.arena_enter(Role::Producer);
            // SAFETY: fence membership held; released on the failure path
            // below, or by WriteSlice::drop on success.
            let storage = unsafe { shared.storage_unlocked() };
            let tail = self.tail;
            let room =
                producer_free_slots(tail, &mut self.head_cache, storage.capacity(), n, || {
                    shared.head.load(Acquire)
                });
            if room >= n {
                if began_block {
                    shared.stats.writer_block_end();
                }
                return Ok(WriteSlice {
                    producer: self,
                    base: tail,
                    cap: n,
                    written: 0,
                });
            }
            shared.arena_exit(Role::Producer);
            if !began_block {
                shared.stats.writer_block_begin();
                began_block = true;
            }
            if waiter.pause_or_park() == WaitAction::Park {
                shared.writer_waiting.store(true, Relaxed);
                let mut g = shared.park.lock();
                shared.unpark.wait_for(&mut g, PARK_TIMEOUT);
                drop(g);
                shared.writer_waiting.store(false, Relaxed);
            }
        }
    }

    /// In-place write: returns a guard holding a defaulted element; mutate it
    /// through `DerefMut` and it is committed (pushed) when the guard drops —
    /// the paper's `allocate_s` semantics. Blocks while the ring is full.
    ///
    /// The guard holds fence membership, so a concurrent resize waits until
    /// the guard drops.
    pub fn allocate(&mut self) -> Result<WriteGuard<'_, T>, PushError<T>>
    where
        T: Default,
    {
        let shared = self.shared.clone();
        let mut waiter = Waiter::new(ENDPOINT_WAIT);
        let mut began_block = false;
        loop {
            if shared.consumer_closed.load(Relaxed) || shared.drain.load(Acquire) >= DRAIN_QUIESCED
            {
                if began_block {
                    shared.stats.writer_block_end();
                }
                return Err(PushError(T::default()));
            }
            shared.arena_enter(Role::Producer);
            // SAFETY: fence membership held; released on the failure path
            // below, or by WriteGuard::drop on success.
            let storage = unsafe { shared.storage_unlocked() };
            let tail = self.tail;
            let room =
                producer_free_slots(tail, &mut self.head_cache, storage.capacity(), 1, || {
                    shared.head.load(Acquire)
                });
            if room > 0 {
                if began_block {
                    shared.stats.writer_block_end();
                }
                // SAFETY: single producer; slot outside the live region.
                unsafe { (*storage.slot(tail)).write((T::default(), Signal::None)) };
                return Ok(WriteGuard {
                    producer: self,
                    tail,
                    committed: false,
                });
            }
            shared.arena_exit(Role::Producer);
            if !began_block {
                shared.stats.writer_block_begin();
                began_block = true;
            }
            if waiter.pause_or_park() == WaitAction::Park {
                shared.writer_waiting.store(true, Relaxed);
                let mut g = shared.park.lock();
                shared.unpark.wait_for(&mut g, PARK_TIMEOUT);
                drop(g);
                shared.writer_waiting.store(false, Relaxed);
            }
        }
    }

    /// Stage outputs instead of publishing them: after this call every push
    /// lands in a pending buffer that only reaches the ring on
    /// [`commit_produced`](Self::commit_produced) — the output half of the
    /// exactly-once recovery contract (see [`crate::journal`]). Zero-copy
    /// writes ([`reserve`](Self::reserve) / [`allocate`](Self::allocate))
    /// bypass staging and publish directly. Elements still staged when the
    /// producer closes are discarded.
    pub fn enable_staging(&mut self) {
        if self.staged.is_none() {
            self.staged = Some(Vec::new());
        }
    }

    /// `true` once [`enable_staging`](Self::enable_staging) was called.
    pub fn staging_enabled(&self) -> bool {
        self.staged.is_some()
    }

    /// Elements currently staged and not yet published.
    pub fn staged_len(&self) -> usize {
        self.staged.as_ref().map_or(0, Vec::len)
    }

    /// Publish every staged element to the ring, blocking for room as
    /// needed (the link's admission policy applies). Returns the number
    /// published; errs if the consumer is gone, in which case the remaining
    /// staged elements are discarded.
    pub fn commit_produced(&mut self) -> Result<usize, PushError<()>> {
        if self.staged.as_ref().is_none_or(Vec::is_empty) {
            return Ok(0);
        }
        // Take the buffer out (push_signal_ring needs `&mut self`) but put
        // it back with its capacity intact: a transaction per element must
        // not cost an allocator round-trip per commit.
        let mut items = self.staged.take().expect("checked above");
        let mut published = 0;
        let mut closed = false;
        while !items.is_empty() {
            // Fast path: publish whatever fits as one batch — a single
            // fence entry, tail store, and consumer notify for the whole
            // run, instead of per-element publication.
            match self.try_push_pairs(&mut items) {
                Ok(0) => {
                    // Ring full: fall back to the blocking single push,
                    // which applies the admission policy (grow, block,
                    // shed, or time out) before the loop batches again.
                    let (v, s) = items.remove(0);
                    match self.push_signal_ring(v, s) {
                        Ok(()) => published += 1,
                        Err(_) => {
                            closed = true;
                            break;
                        }
                    }
                }
                Ok(n) => published += n,
                Err(_) => {
                    closed = true;
                    break;
                }
            }
        }
        items.clear();
        self.staged = Some(items);
        if closed {
            return Err(PushError(()));
        }
        Ok(published)
    }

    /// Batch variant of [`try_push_batch`](Self::try_push_batch) that
    /// preserves each element's [`Signal`] — the staged-commit publish
    /// path. Pushes as many pairs as currently fit under a single fence
    /// entry; the rest stay in `items`.
    fn try_push_pairs(&mut self, items: &mut Vec<(T, Signal)>) -> Result<usize, PushError<()>> {
        if items.is_empty() {
            return Ok(0);
        }
        let shared = &*self.shared;
        if shared.consumer_closed.load(Relaxed) {
            return Err(PushError(()));
        }
        shared.arena_enter(Role::Producer);
        // SAFETY: fence membership held until the exit below.
        let storage = unsafe { shared.storage_unlocked() };
        let mut tail = self.tail;
        let room = producer_free_slots(
            tail,
            &mut self.head_cache,
            storage.capacity(),
            items.len(),
            || shared.head.load(Acquire),
        );
        let n = room.min(items.len());
        for pair in items.drain(..n) {
            // SAFETY: single producer; slots [tail, tail+n) are outside the
            // live region, so nothing reads them until the Release store of
            // `tail` below publishes the batch.
            unsafe { (*storage.slot(tail)).write(pair) };
            tail += 1;
        }
        if n > 0 {
            shared.tail.store(tail, Release);
            self.tail = tail;
            shared.stats.writer.pushed.store(tail as u64, Relaxed);
        }
        shared.arena_exit(Role::Producer);
        if n > 0 {
            shared.consumer_waker.notify();
            if shared.reader_waiting.load(Relaxed) {
                shared.wake();
            }
        }
        Ok(n)
    }

    /// Discard every staged element — the rewind half of a failed
    /// transaction. Returns how many were discarded.
    pub fn rewind_produced(&mut self) -> usize {
        match self.staged.as_mut() {
            Some(pending) => {
                let n = pending.len();
                pending.clear();
                n
            }
            None => 0,
        }
    }

    /// Close the stream: the consumer drains what remains, then sees
    /// `Closed`. Idempotent.
    pub fn close(&mut self) {
        self.shared.producer_closed.store(true, Release);
        // EoS is actionable for a parked consumer-side task.
        self.shared.consumer_waker.notify();
        self.shared.wake();
    }

    /// `true` once the consumer endpoint dropped.
    pub fn is_closed(&self) -> bool {
        self.shared.consumer_closed.load(Relaxed)
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.shared.storage.read().capacity()
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.shared.occupancy()
    }

    /// Monitor-facing handle for this FIFO.
    pub fn fifo(&self) -> Fifo<T> {
        Fifo {
            shared: self.shared.clone(),
        }
    }

    /// Test double that deliberately breaks the single-producer contract:
    /// a second live producer handle over the same stream. Exists so the
    /// protocol checker's SPSC-discipline detection can be exercised; any
    /// real use is undefined behavior by construction.
    #[cfg(feature = "raft_protocol_check")]
    #[doc(hidden)]
    pub fn protocol_test_duplicate(&self) -> Producer<T> {
        Producer {
            shared: self.shared.clone(),
            tail: self.tail,
            head_cache: self.head_cache,
            staged: None,
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.producer_closed.store(true, Release);
        // Implicit EoS: a parked consumer-side task must observe the close.
        self.shared.consumer_waker.notify();
        self.shared.wake();
    }
}

/// RAII guard returned by [`Producer::allocate`]; commits the element on
/// drop (or discards it via [`WriteGuard::abort`]).
///
/// Holds fence membership for its lifetime: references handed out by
/// `Deref` stay valid because any resize must wait for the guard.
pub struct WriteGuard<'a, T: Send + Default> {
    producer: &'a mut Producer<T>,
    tail: usize,
    committed: bool,
}

impl<'a, T: Send + Default> WriteGuard<'a, T> {
    #[inline]
    fn slot(&self) -> *mut MaybeUninit<(T, Signal)> {
        // SAFETY: the guard holds fence membership (entered in allocate,
        // exited in Drop), so the storage cannot be swapped under us.
        unsafe { self.producer.shared.storage_unlocked().slot(self.tail) }
    }

    /// Attach a synchronous signal to the element being written.
    pub fn set_signal(&mut self, signal: Signal) {
        // SAFETY: slot was initialized in allocate() and is not yet visible
        // to the consumer (tail not advanced); storage pinned by the fence.
        unsafe {
            (*self.slot()).assume_init_mut().1 = signal;
        }
    }

    /// Abandon the element without sending it.
    pub fn abort(mut self) {
        // SAFETY: initialized in allocate(), never published.
        unsafe { (*self.slot()).assume_init_drop() };
        self.committed = true; // prevent Drop from publishing
    }
}

impl<'a, T: Send + Default> Deref for WriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: initialized, unpublished slot, storage pinned by the fence.
        unsafe { &(*self.slot()).assume_init_ref().0 }
    }
}

impl<'a, T: Send + Default> DerefMut for WriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in Deref; single producer, so no aliasing.
        unsafe { &mut (*self.slot()).assume_init_mut().0 }
    }
}

impl<'a, T: Send + Default> Drop for WriteGuard<'a, T> {
    fn drop(&mut self) {
        let shared = &*self.producer.shared;
        if !self.committed {
            shared.tail.store(self.tail + 1, Release);
            self.producer.tail = self.tail + 1;
            shared
                .stats
                .writer
                .pushed
                .store((self.tail + 1) as u64, Relaxed);
        }
        shared.arena_exit(Role::Producer);
        if !self.committed {
            shared.consumer_waker.notify();
            if shared.reader_waiting.load(Relaxed) {
                shared.wake();
            }
        }
    }
}

/// In-place batch write window returned by [`Producer::reserve`]. Fill it
/// front-to-back with [`push`](WriteSlice::push); everything written is
/// published with one counter store when the slice drops.
pub struct WriteSlice<'a, T: Send> {
    producer: &'a mut Producer<T>,
    base: usize,
    cap: usize,
    written: usize,
}

impl<'a, T: Send> WriteSlice<'a, T> {
    /// Write the next element of the batch in place.
    ///
    /// # Panics
    /// If the reservation is already full (`remaining() == 0`).
    #[inline]
    pub fn push(&mut self, value: T) {
        self.push_signal(value, Signal::None);
    }

    /// Write the next element with a synchronous signal attached.
    ///
    /// # Panics
    /// If the reservation is already full.
    #[inline]
    pub fn push_signal(&mut self, value: T, signal: Signal) {
        assert!(
            self.written < self.cap,
            "WriteSlice overflow: reserved {} slots",
            self.cap
        );
        let shared = &*self.producer.shared;
        // SAFETY: the slice holds fence membership (entered in reserve,
        // exited in Drop) so the storage is pinned; reserve checked that
        // [base, base+cap) is outside the live region against a conservative
        // head, and the consumer cannot see any of it until Drop publishes.
        unsafe {
            (*shared.storage_unlocked().slot(self.base + self.written)).write((value, signal))
        };
        self.written += 1;
    }

    /// Slots still unwritten in this reservation.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.cap - self.written
    }

    /// Elements written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.written
    }

    /// `true` if nothing has been written yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }
}

impl<'a, T: Send> Drop for WriteSlice<'a, T> {
    fn drop(&mut self) {
        let shared = &*self.producer.shared;
        if self.written > 0 {
            let tail = self.base + self.written;
            shared.tail.store(tail, Release);
            self.producer.tail = tail;
            shared.stats.writer.pushed.store(tail as u64, Relaxed);
        }
        shared.arena_exit(Role::Producer);
        if self.written > 0 {
            shared.consumer_waker.notify();
            if shared.reader_waiting.load(Relaxed) {
                shared.wake();
            }
        }
    }
}

/// Consuming endpoint of a [`Fifo`]. One per stream; `Send`, not `Clone`.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Local mirror of `shared.head` — exact between operations.
    head: usize,
    /// Stale (conservative) copy of `shared.tail`; refreshed only when the
    /// ring looks empty. Never ahead of the true tail, so staleness can only
    /// hide elements momentarily, never show uninitialized slots.
    tail_cache: usize,
    /// Replay journal for the exactly-once recovery contract (see
    /// [`crate::journal`]): records a clone of every popped element until
    /// the transaction commits, re-serves them after a rewind.
    journal: Option<Box<ConsumerJournal<T>>>,
}

/// Consumer-side journal state (boxed: the unjournaled common case pays one
/// pointer of space and a null check per pop).
struct ConsumerJournal<T> {
    window: ReplayWindow<(T, Signal)>,
    /// Next sequence number to serve. Equal to `window.next_seq()` while
    /// recording (live); behind it while replaying after a rewind.
    cursor: u64,
    /// Captured at [`Consumer::enable_journal`], where `T: Clone` is known;
    /// keeps the `Clone` bound off the `Consumer` type itself.
    clone_fn: fn(&T) -> T,
}

// SAFETY: same argument as `Producer` — one non-Clone handle per role.
unsafe impl<T: Send> Send for Consumer<T> {}

impl<T: Send> Consumer<T> {
    /// Refresh `tail_cache` and return how many elements are visible.
    #[inline]
    fn refresh_avail(&mut self) -> usize {
        // Acquire pairs with the producer's Release store of `tail`, making
        // the slots it published visible before we read them. Force the
        // shared-helper refresh path by treating the cache as spent.
        self.tail_cache = self.head;
        let shared = &*self.shared;
        consumer_ready_elems(self.head, &mut self.tail_cache, || {
            shared.tail.load(Acquire)
        })
    }

    /// Non-blocking pop of `(value, signal)`. On a journaled link,
    /// rewound elements are re-served (as clones, in original order) before
    /// anything new is taken from the ring, and every live pop is recorded
    /// for possible replay.
    pub fn try_pop_signal(&mut self) -> Result<(T, Signal), TryPopError> {
        if let Some(j) = self.journal.as_mut() {
            if j.cursor < j.window.next_seq() {
                // Replaying a rewound transaction: serve from the window
                // without touching the ring.
                let (v, s) = j
                    .window
                    .get(j.cursor)
                    .expect("replay cursor inside retained window");
                let pair = ((j.clone_fn)(v), *s);
                j.cursor += 1;
                // Saturating: the cursor can trail `next_seq` without a
                // rewind if recording was interrupted mid-pop (failpoint or
                // caught panic between the ring pop and the cursor bump);
                // re-serving that entry must not underflow the counter.
                let _ = self
                    .shared
                    .journal_pending
                    .fetch_update(AcqRel, Acquire, |v| v.checked_sub(1));
                self.shared.stats.reader.replayed.fetch_add(1, Relaxed);
                return Ok(pair);
            }
        }
        let head = self.head;
        if head == self.tail_cache && self.refresh_avail() == 0 {
            return if self.shared.producer_closed.load(Acquire) {
                // Re-check: the producer may have pushed between our tail
                // load and its close.
                if self.refresh_avail() == 0 {
                    Err(TryPopError::Closed)
                } else {
                    Err(TryPopError::Empty)
                }
            } else if self.shared.drain.load(Acquire) >= DRAIN_QUIESCED {
                // Quiesced mid-drain: report end-of-stream so a blocked
                // consumer kernel terminates even though its producer is
                // still alive upstream.
                Err(TryPopError::Closed)
            } else {
                Err(TryPopError::Empty)
            };
        }
        let shared = &*self.shared;
        shared.arena_enter(Role::Consumer);
        // SAFETY: fence membership held until the exit below.
        let storage = unsafe { shared.storage_unlocked() };
        // SAFETY: single consumer; `head < tail` was observed through an
        // Acquire load of `tail`, so the slot is initialized and the
        // producer won't touch it until our Release store of `head` below.
        let pair = unsafe { (*storage.slot(head)).assume_init_read() };
        shared.head.store(head + 1, Release);
        self.head = head + 1;
        // Single-writer counter: total popped == head.
        shared.stats.reader.popped.store((head + 1) as u64, Relaxed);
        shared.arena_exit(Role::Consumer);
        if let Some(j) = self.journal.as_mut() {
            // Record the live pop for possible replay; the cursor tracks
            // next_seq while recording.
            j.window.append(((j.clone_fn)(&pair.0), pair.1));
            j.cursor = j.window.next_seq();
        }
        // Freed space is actionable for a parked producer-side task.
        shared.producer_waker.notify();
        if shared.writer_waiting.load(Relaxed) {
            shared.wake();
        }
        Ok(pair)
    }

    /// Non-blocking pop.
    #[inline]
    pub fn try_pop(&mut self) -> Result<T, TryPopError> {
        self.try_pop_signal().map(|(v, _)| v)
    }

    /// Blocking pop of `(value, signal)`; errs when the stream closed and
    /// drained.
    pub fn pop_signal(&mut self) -> Result<(T, Signal), PopError> {
        match self.try_pop_signal() {
            Ok(p) => return Ok(p),
            Err(TryPopError::Closed) => return Err(PopError),
            Err(TryPopError::Empty) => {}
        }
        let shared = self.shared.clone();
        shared.stats.reader_block_begin();
        let mut waiter = Waiter::new(ENDPOINT_WAIT);
        let result = loop {
            match self.try_pop_signal() {
                Ok(p) => break Ok(p),
                Err(TryPopError::Closed) => break Err(PopError),
                Err(TryPopError::Empty) => {}
            }
            if waiter.pause_or_park() != WaitAction::Park {
                continue;
            }
            shared.reader_waiting.store(true, Relaxed);
            let mut g = shared.park.lock();
            let empty = self.head == shared.tail.load(Acquire);
            if empty && !shared.producer_closed.load(Acquire) {
                shared.unpark.wait_for(&mut g, PARK_TIMEOUT);
            }
            drop(g);
            shared.reader_waiting.store(false, Relaxed);
        };
        shared.stats.reader_block_end();
        result
    }

    /// Blocking pop.
    #[inline]
    pub fn pop(&mut self) -> Result<T, PopError> {
        self.pop_signal().map(|(v, _)| v)
    }

    /// Blocking sliding-window view of the next `n` elements without
    /// consuming them — the paper's `peek_range`. If `n` exceeds the current
    /// capacity the request is recorded and the ring is grown on the spot
    /// (read-side resize trigger), rather than deadlocking.
    ///
    /// Returns `Err(PopError)` if the stream closes before `n` elements are
    /// available (fewer than `n` remain, forever).
    pub fn peek_range(&mut self, n: usize) -> Result<PeekRange<'_, T>, PopError> {
        let shared = self.shared.clone();
        shared.stats.note_read_request(n);
        let mut waiter = Waiter::new(ENDPOINT_WAIT);
        loop {
            // Grow first if the request can never be satisfied (paper: queue
            // "tagged for resizing" when a read request exceeds capacity).
            // We are outside the fence here, so the resize cannot deadlock
            // against our own membership.
            if n > self.capacity() {
                let f = Fifo {
                    shared: self.shared.clone(),
                };
                if !f.grow_to(n) {
                    // Request exceeds even max_capacity: impossible.
                    return Err(PopError);
                }
            }
            if self.refresh_avail() >= n {
                // Occupancy can only grow from here (we are the consumer),
                // so entering the fence and taking the window is race-free.
                shared.arena_enter(Role::Consumer);
                return Ok(PeekRange {
                    consumer: self,
                    len: n,
                });
            }
            if shared.producer_closed.load(Acquire) && self.refresh_avail() < n {
                return Err(PopError);
            }
            shared.stats.reader_block_begin();
            if waiter.pause_or_park() == WaitAction::Park {
                shared.reader_waiting.store(true, Relaxed);
                let mut g = shared.park.lock();
                shared.unpark.wait_for(&mut g, PARK_TIMEOUT);
                drop(g);
                shared.reader_waiting.store(false, Relaxed);
            }
            shared.stats.reader_block_end();
        }
    }

    /// Reference to the front element, if present (non-blocking). The
    /// closure style keeps the fence membership scoped.
    pub fn peek<R>(&mut self, f: impl FnOnce(&T, Signal) -> R) -> Option<R> {
        let head = self.head;
        if head == self.tail_cache && self.refresh_avail() == 0 {
            return None;
        }
        let shared = &*self.shared;
        // RAII: `f` is user code — membership must survive a panic inside it.
        let _arena = ArenaGuard::enter(shared, Role::Consumer);
        // SAFETY: fence membership held by `_arena`; single consumer; live
        // slot observed through an Acquire load of `tail`.
        let pair = unsafe { &*(*shared.storage_unlocked().slot(head)).as_ptr() };
        Some(f(&pair.0, pair.1))
    }

    /// Pop up to `max` elements, moving them into `out` under one fence
    /// entry. Non-blocking w.r.t. waiting for *more* data: takes what is
    /// visible now. Returns the number moved.
    fn bulk_pop_into(&mut self, max: usize, out: &mut Vec<T>) -> usize {
        if max == 0 {
            return 0;
        }
        if self.journal.is_some() {
            // Journaled link: route through the per-element path so every
            // element is recorded (and replay is served first). Gives up the
            // single-fence batch amortization for the recovery guarantee.
            let mut moved = 0;
            while moved < max {
                match self.try_pop_signal() {
                    Ok((v, _s)) => {
                        out.push(v);
                        moved += 1;
                    }
                    Err(_) => break,
                }
            }
            return moved;
        }
        let head = self.head;
        let avail = if self.tail_cache == head {
            self.refresh_avail()
        } else {
            self.tail_cache - head
        };
        let k = avail.min(max);
        if k == 0 {
            return 0;
        }
        let shared = &*self.shared;
        shared.arena_enter(Role::Consumer);
        // SAFETY: fence membership held until the exit below.
        let storage = unsafe { shared.storage_unlocked() };
        out.reserve(k);
        for i in 0..k {
            // SAFETY: single consumer; `[head, head+k)` is inside the live
            // region observed through an Acquire load of `tail`.
            let (v, _s) = unsafe { (*storage.slot(head + i)).assume_init_read() };
            out.push(v);
        }
        shared.head.store(head + k, Release);
        self.head = head + k;
        shared.stats.reader.popped.store((head + k) as u64, Relaxed);
        shared.arena_exit(Role::Consumer);
        shared.producer_waker.notify();
        if shared.writer_waiting.load(Relaxed) {
            shared.wake();
        }
        k
    }

    /// Pop up to `n` elements into `out`; blocks until at least one element
    /// is available or the stream ends. Returns the number popped.
    pub fn pop_range(&mut self, n: usize, out: &mut Vec<T>) -> Result<usize, PopError> {
        self.shared.stats.note_read_request(n);
        let first = self.pop()?;
        out.push(first);
        Ok(1 + self.bulk_pop_into(n.saturating_sub(1), out))
    }

    /// Lend the front of the queue to `f` as a zero-copy [`SliceView`] of up
    /// to `n` elements, then consume exactly the elements viewed. Blocks
    /// until at least one element is available; the view may hold fewer than
    /// `n` if the stream is running dry. Errs once the stream is closed and
    /// drained.
    ///
    /// The whole batch costs one fence entry and one counter store. If `f`
    /// panics, nothing is consumed.
    pub fn pop_slice<R>(
        &mut self,
        n: usize,
        f: impl FnOnce(&SliceView<'_, T>) -> R,
    ) -> Result<R, PopError> {
        let shared = self.shared.clone();
        shared.stats.note_read_request(n);
        let mut waiter = Waiter::new(ENDPOINT_WAIT);
        let mut began_block = false;
        let wait = loop {
            if self.refresh_avail() > 0 {
                break Ok(());
            }
            if shared.producer_closed.load(Acquire) {
                if self.refresh_avail() > 0 {
                    break Ok(());
                }
                break Err(PopError);
            }
            if !began_block {
                shared.stats.reader_block_begin();
                began_block = true;
            }
            if waiter.pause_or_park() == WaitAction::Park {
                shared.reader_waiting.store(true, Relaxed);
                let mut g = shared.park.lock();
                shared.unpark.wait_for(&mut g, PARK_TIMEOUT);
                drop(g);
                shared.reader_waiting.store(false, Relaxed);
            }
        };
        if began_block {
            shared.stats.reader_block_end();
        }
        wait?;
        let head = self.head;
        let k = (self.tail_cache - head).min(n.max(1));
        // RAII: `f` is user code — membership must survive a panic inside it
        // (on unwind nothing is consumed; head stays put).
        let arena = ArenaGuard::enter(&shared, Role::Consumer);
        let r = f(&SliceView {
            shared: &*shared,
            head,
            len: k,
        });
        // SAFETY: fence membership still held by `arena`.
        let storage = unsafe { shared.storage_unlocked() };
        for i in 0..k {
            // SAFETY: single consumer; `[head, head+k)` is live (observed
            // via Acquire above); each slot is dropped exactly once because
            // `head` advances past all of them below.
            unsafe { (*storage.slot(head + i)).assume_init_drop() };
        }
        shared.head.store(head + k, Release);
        self.head = head + k;
        shared.stats.reader.popped.store((head + k) as u64, Relaxed);
        drop(arena);
        shared.producer_waker.notify();
        if shared.writer_waiting.load(Relaxed) {
            shared.wake();
        }
        Ok(r)
    }

    /// Advance past `n` elements previously inspected via `peek_range`,
    /// dropping them under a single fence entry. Returns how many were
    /// actually available to advance past.
    pub fn advance(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let head = self.head;
        let k = self.refresh_avail().min(n);
        if k == 0 {
            return 0;
        }
        let shared = &*self.shared;
        shared.arena_enter(Role::Consumer);
        // SAFETY: fence membership held until the exit below.
        let storage = unsafe { shared.storage_unlocked() };
        for i in 0..k {
            // SAFETY: single consumer; `[head, head+k)` is live; dropped
            // exactly once (head advances below).
            unsafe { (*storage.slot(head + i)).assume_init_drop() };
        }
        shared.head.store(head + k, Release);
        self.head = head + k;
        shared.stats.reader.popped.store((head + k) as u64, Relaxed);
        shared.arena_exit(Role::Consumer);
        shared.producer_waker.notify();
        if shared.writer_waiting.load(Relaxed) {
            shared.wake();
        }
        k
    }

    /// Enable the consumer-side replay journal — the input half of the
    /// exactly-once recovery contract (see [`crate::journal`]). Every pop
    /// records a clone; [`commit_consumed`](Self::commit_consumed)
    /// acknowledges them, [`rewind_consumed`](Self::rewind_consumed) queues
    /// them for replay. Call once at wiring time, before the first pop.
    ///
    /// Zero-copy read paths (`pop_slice`, `peek_range` + `advance`) bypass
    /// the journal; journaled links must consume through the per-element or
    /// `pop_range` paths (the runtime's supervised wiring does).
    pub fn enable_journal(&mut self, cfg: JournalConfig)
    where
        T: Clone,
    {
        fn clone_of<T: Clone>(v: &T) -> T {
            v.clone()
        }
        if self.journal.is_none() {
            self.journal = Some(Box::new(ConsumerJournal {
                window: ReplayWindow::new(cfg.bound),
                cursor: 0,
                clone_fn: clone_of::<T>,
            }));
            self.shared.journaled.store(true, Release);
        }
    }

    /// `true` once [`enable_journal`](Self::enable_journal) was called.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Elements queued to be re-served after a rewind.
    pub fn replay_pending(&self) -> usize {
        self.journal
            .as_ref()
            .map_or(0, |j| (j.window.next_seq() - j.cursor) as usize)
    }

    /// Journal entries force-dropped by the replay bound — elements whose
    /// replay coverage was lost (see [`JournalConfig::bound`]).
    pub fn journal_forced_acks(&self) -> u64 {
        self.journal.as_ref().map_or(0, |j| j.window.forced_acks())
    }

    /// Commit the current transaction: acknowledge every element popped
    /// since the last commit, releasing it from the replay window. Returns
    /// how many entries were released.
    pub fn commit_consumed(&mut self) -> usize {
        let Some(j) = self.journal.as_mut() else {
            return 0;
        };
        j.cursor = j.window.next_seq();
        self.shared.journal_pending.store(0, Release);
        j.window.ack_all()
    }

    /// Rewind the current transaction: every unacknowledged element will be
    /// re-served (as a clone, in original order) by subsequent pops.
    /// Returns how many elements were queued for replay. A second panic
    /// before the next commit replays the same elements again.
    pub fn rewind_consumed(&mut self) -> usize {
        let Some(j) = self.journal.as_mut() else {
            return 0;
        };
        j.cursor = j.window.acked();
        let pending = j.window.len();
        self.shared.journal_pending.store(pending, Release);
        if pending > 0 {
            // The restarted kernel's task must observe itself as ready even
            // though the ring may be empty.
            self.shared.consumer_waker.notify();
            self.shared.wake();
        }
        pending
    }

    /// Take a pending asynchronous signal, if any.
    pub fn take_async(&mut self) -> Option<Signal> {
        Signal::decode(self.shared.async_signal.swap(0, Acquire))
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.shared.storage.read().capacity()
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.shared.occupancy()
    }

    /// Producer closed (or link quiesced) and everything consumed,
    /// including any journal replay.
    pub fn is_finished(&self) -> bool {
        (self.shared.producer_closed.load(Acquire)
            || self.shared.drain.load(Acquire) >= DRAIN_QUIESCED)
            && self.shared.occupancy() == 0
    }

    /// Monitor-facing handle for this FIFO.
    pub fn fifo(&self) -> Fifo<T> {
        Fifo {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_closed.store(true, Release);
        // A parked producer-side task must observe the broken stream.
        self.shared.producer_waker.notify();
        self.shared.wake();
        // Remaining elements are dropped by Shared::drop (exactly once, with
        // exclusive access) — not here, to avoid racing a late producer push.
    }
}

/// Borrowed sliding window over the front of the queue (see
/// [`Consumer::peek_range`]). Holding it holds fence membership: resizes
/// wait until it is dropped.
pub struct PeekRange<'a, T: Send> {
    consumer: &'a mut Consumer<T>,
    len: usize,
}

impl<'a, T: Send> PeekRange<'a, T> {
    /// Number of elements visible in this window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot(&self, i: usize) -> *mut MaybeUninit<(T, Signal)> {
        assert!(
            i < self.len,
            "peek_range index {i} out of bounds {}",
            self.len
        );
        // SAFETY: the window holds fence membership (entered in peek_range,
        // exited in Drop), so the storage cannot be swapped under us.
        unsafe {
            self.consumer
                .shared
                .storage_unlocked()
                .slot(self.consumer.head + i)
        }
    }

    /// Signal attached to the `i`-th element of the window.
    pub fn signal(&self, i: usize) -> Signal {
        // SAFETY: elements [head, head+len) were live when the window was
        // taken and the consumer (borrowed mutably by us) has not advanced.
        unsafe { (*self.slot(i)).assume_init_ref().1 }
    }

    /// Iterate over the window.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.len).map(move |i| &self[i])
    }
}

impl<'a, T: Send> Index<usize> for PeekRange<'a, T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        // SAFETY: as in signal().
        unsafe { &(*self.slot(i)).assume_init_ref().0 }
    }
}

impl<'a, T: Send> Drop for PeekRange<'a, T> {
    fn drop(&mut self) {
        self.consumer.shared.arena_exit(Role::Consumer);
    }
}

/// Zero-copy read view lent to the closure of [`Consumer::pop_slice`].
/// Valid only inside that closure (fence membership is held around it).
pub struct SliceView<'a, T: Send> {
    shared: &'a Shared<T>,
    head: usize,
    len: usize,
}

impl<'a, T: Send> SliceView<'a, T> {
    /// Number of elements in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the view is empty (never — pop_slice waits for data).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot(&self, i: usize) -> *mut MaybeUninit<(T, Signal)> {
        assert!(
            i < self.len,
            "SliceView index {i} out of bounds {}",
            self.len
        );
        // SAFETY: pop_slice holds fence membership around the closure, so
        // the storage cannot be swapped while the view exists.
        unsafe { self.shared.storage_unlocked().slot(self.head + i) }
    }

    /// Signal attached to the `i`-th element.
    pub fn signal(&self, i: usize) -> Signal {
        // SAFETY: [head, head+len) is the live region observed via Acquire;
        // the consumer does not advance until the closure returns.
        unsafe { (*self.slot(i)).assume_init_ref().1 }
    }

    /// Iterate over the view.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.len).map(move |i| &self[i])
    }
}

impl<'a, T: Send> Index<usize> for SliceView<'a, T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        // SAFETY: as in signal().
        unsafe { &(*self.slot(i)).assume_init_ref().0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Fifo<u64>, Producer<u64>, Consumer<u64>) {
        fifo_with(FifoConfig {
            initial_capacity: 4,
            max_capacity: 1 << 16,
            min_capacity: 2,
            ..Default::default()
        })
    }

    #[test]
    fn basic_order() {
        let (_f, mut p, mut c) = small();
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(c.try_pop().unwrap(), i);
        }
    }

    #[test]
    fn full_then_grow_preserves_order() {
        let (f, mut p, mut c) = small();
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        assert!(matches!(p.try_push(99), Err(TryPushError::Full(99))));
        assert!(f.grow());
        assert_eq!(f.capacity(), 8);
        for i in 4..8 {
            p.try_push(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(c.try_pop().unwrap(), i);
        }
    }

    #[test]
    fn grow_with_wrapped_ring() {
        let (f, mut p, mut c) = small();
        // Fill, drain half, refill: live region wraps the array end.
        for i in 0..4u64 {
            p.try_push(i).unwrap();
        }
        assert_eq!(c.try_pop().unwrap(), 0);
        assert_eq!(c.try_pop().unwrap(), 1);
        p.try_push(4).unwrap();
        p.try_push(5).unwrap();
        // live = [2,3,4,5] with head index 2 of 4 -> wrapped
        assert!(f.grow());
        for i in 2..6 {
            assert_eq!(c.try_pop().unwrap(), i);
        }
    }

    #[test]
    fn shrink_respects_occupancy() {
        let (f, mut p, _c) = fifo_with::<u64>(FifoConfig {
            initial_capacity: 16,
            max_capacity: 64,
            min_capacity: 2,
            ..Default::default()
        });
        for i in 0..10 {
            p.try_push(i).unwrap();
        }
        // shrink to 8 would lose data: resize clamps to >= occupancy (10 -> 16)
        let c = f.resize(8);
        assert!(c >= 10, "capacity {c} must hold 10 live elements");
    }

    #[test]
    fn resize_to_same_capacity_is_noop() {
        let (f, _p, _c) = small();
        let before = f.snapshot().resizes;
        f.resize(4);
        assert_eq!(f.snapshot().resizes, before);
    }

    #[test]
    fn close_drain_semantics() {
        let (_f, mut p, mut c) = small();
        p.try_push(1).unwrap();
        p.close();
        assert_eq!(c.pop().unwrap(), 1);
        assert!(c.pop().is_err());
        assert!(c.is_finished());
    }

    #[test]
    fn producer_drop_closes() {
        let (_f, p, mut c) = small();
        drop(p);
        assert_eq!(c.try_pop(), Err(TryPopError::Closed));
    }

    #[test]
    fn consumer_drop_rejects_push() {
        let (_f, mut p, c) = small();
        drop(c);
        assert!(matches!(p.try_push(1), Err(TryPushError::Closed(1))));
        assert!(p.push(1).is_err());
    }

    #[test]
    fn blocking_push_unblocks_on_pop() {
        let (_f, mut p, mut c) = small();
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        let t = std::thread::spawn(move || {
            p.push(4).unwrap(); // blocks until a pop
            p
        });
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(c.pop().unwrap(), 0);
        let _p = t.join().unwrap();
        assert_eq!(c.pop().unwrap(), 1);
    }

    #[test]
    fn blocking_push_unblocks_on_grow() {
        let (f, mut p, mut c) = small();
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        let t = std::thread::spawn(move || {
            p.push(4).unwrap();
            p
        });
        std::thread::sleep(Duration::from_millis(10));
        assert!(
            f.stats().writer_blocked_for_ns() > 0,
            "writer should appear blocked"
        );
        assert!(f.grow());
        let _p = t.join().unwrap();
        for i in 0..5 {
            assert_eq!(c.pop().unwrap(), i);
        }
    }

    #[test]
    fn blocking_pop_unblocks_on_push() {
        let (_f, mut p, mut c) = small();
        let t = std::thread::spawn(move || c.pop().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        p.push(77).unwrap();
        assert_eq!(t.join().unwrap(), 77);
    }

    #[test]
    fn peek_range_window() {
        let (_f, mut p, mut c) = small();
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        {
            let w = c.peek_range(3).unwrap();
            assert_eq!(w.len(), 3);
            assert_eq!(w[0], 0);
            assert_eq!(w[1], 1);
            assert_eq!(w[2], 2);
            let sum: u64 = w.iter().sum();
            assert_eq!(sum, 3);
        }
        // window did not consume
        assert_eq!(c.occupancy(), 4);
        assert_eq!(c.advance(2), 2);
        assert_eq!(c.try_pop().unwrap(), 2);
    }

    #[test]
    fn peek_range_grows_ring_when_larger_than_capacity() {
        let (f, mut p, mut c) = small();
        let t = std::thread::spawn(move || {
            for i in 0..10 {
                p.push(i).unwrap();
            }
            p
        });
        {
            let w = c.peek_range(10).unwrap();
            assert_eq!(w.len(), 10);
            for i in 0..10 {
                assert_eq!(w[i as usize], i as u64);
            }
        }
        assert!(f.capacity() >= 10);
        assert!(f.snapshot().resizes >= 1);
        let _p = t.join().unwrap();
    }

    #[test]
    fn peek_range_fails_when_stream_too_short() {
        let (_f, mut p, mut c) = small();
        p.try_push(1).unwrap();
        p.close();
        assert!(c.peek_range(3).is_err());
        // the single element is still poppable
        assert_eq!(c.pop().unwrap(), 1);
    }

    #[test]
    fn pop_range_batches() {
        let (_f, mut p, mut c) = small();
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        let got = c.pop_range(3, &mut out).unwrap();
        assert_eq!(got, 3);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn signals_synchronous_with_data() {
        let (_f, mut p, mut c) = small();
        p.try_push_signal(10, Signal::SoS).unwrap();
        p.try_push(11).unwrap();
        p.try_push_signal(12, Signal::EoS).unwrap();
        assert_eq!(c.try_pop_signal().unwrap(), (10, Signal::SoS));
        assert_eq!(c.try_pop_signal().unwrap(), (11, Signal::None));
        assert_eq!(c.try_pop_signal().unwrap(), (12, Signal::EoS));
    }

    #[test]
    fn async_signal_out_of_band() {
        let (f, mut p, mut c) = small();
        p.try_push(1).unwrap();
        p.try_push(2).unwrap();
        f.post_async(Signal::Flush);
        // visible immediately, before any data is consumed
        assert_eq!(c.take_async(), Some(Signal::Flush));
        assert_eq!(c.take_async(), None);
        assert_eq!(c.try_pop().unwrap(), 1);
    }

    #[test]
    fn allocate_commits_on_drop() {
        let (_f, mut p, mut c) = small();
        {
            let mut g = p.allocate().unwrap();
            *g = 42;
        }
        assert_eq!(c.try_pop().unwrap(), 42);
    }

    #[test]
    fn allocate_with_signal() {
        let (_f, mut p, mut c) = small();
        {
            let mut g = p.allocate().unwrap();
            *g = 7;
            g.set_signal(Signal::EoS);
        }
        assert_eq!(c.try_pop_signal().unwrap(), (7, Signal::EoS));
    }

    #[test]
    fn allocate_abort_discards() {
        let (_f, mut p, mut c) = small();
        {
            let mut g = p.allocate().unwrap();
            *g = 13;
            g.abort();
        }
        assert_eq!(c.try_pop(), Err(TryPopError::Empty));
        p.try_push(1).unwrap();
        assert_eq!(c.try_pop().unwrap(), 1);
    }

    #[test]
    fn allocate_read_back() {
        let (_f, mut p, mut c) = small();
        {
            let mut g = p.allocate().unwrap();
            *g = 5;
            assert_eq!(*g, 5); // Deref sees what DerefMut wrote
        }
        assert_eq!(c.try_pop().unwrap(), 5);
    }

    #[test]
    fn stats_counters() {
        let (f, mut p, mut c) = small();
        for i in 0..3 {
            p.try_push(i).unwrap();
        }
        c.try_pop().unwrap();
        let s = f.snapshot();
        assert_eq!(s.pushed, 3);
        assert_eq!(s.popped, 1);
        assert_eq!(s.occupancy, 2);
    }

    #[test]
    fn reserve_commits_on_drop() {
        let (_f, mut p, mut c) = small();
        {
            let mut w = p.reserve(3).unwrap();
            assert_eq!(w.remaining(), 3);
            w.push(10);
            w.push_signal(11, Signal::EoS);
            assert_eq!(w.len(), 2);
            // third slot left unwritten: only 2 are published
        }
        assert_eq!(c.try_pop_signal().unwrap(), (10, Signal::None));
        assert_eq!(c.try_pop_signal().unwrap(), (11, Signal::EoS));
        assert_eq!(c.try_pop(), Err(TryPopError::Empty));
    }

    #[test]
    fn reserve_grows_ring_when_larger_than_capacity() {
        let (f, mut p, mut c) = small();
        {
            let mut w = p.reserve(10).unwrap();
            for i in 0..10 {
                w.push(i);
            }
        }
        assert!(f.capacity() >= 10);
        assert!(f.snapshot().resizes >= 1);
        for i in 0..10 {
            assert_eq!(c.try_pop().unwrap(), i);
        }
    }

    #[test]
    fn reserve_to_closed_consumer_errs() {
        let (_f, mut p, c) = small();
        drop(c);
        assert!(p.reserve(2).is_err());
    }

    #[test]
    fn reserve_blocks_until_room() {
        let (_f, mut p, mut c) = fifo_with::<u64>(FifoConfig::fixed(4));
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        let t = std::thread::spawn(move || {
            let mut w = p.reserve(2).unwrap(); // blocks: only 0 free
            w.push(4);
            w.push(5);
            drop(w);
            p
        });
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(c.pop().unwrap(), 0);
        assert_eq!(c.pop().unwrap(), 1);
        let _p = t.join().unwrap();
        for i in 2..6 {
            assert_eq!(c.pop().unwrap(), i);
        }
    }

    #[test]
    #[should_panic(expected = "WriteSlice overflow")]
    fn reserve_overflow_panics() {
        let (_f, mut p, _c) = small();
        let mut w = p.reserve(1).unwrap();
        w.push(1);
        w.push(2); // beyond the reservation
    }

    #[test]
    fn pop_slice_views_then_consumes() {
        let (_f, mut p, mut c) = small();
        for i in 0..4 {
            p.try_push_signal(i, if i == 3 { Signal::EoS } else { Signal::None })
                .unwrap();
        }
        let sum = c
            .pop_slice(3, |v| {
                assert_eq!(v.len(), 3);
                assert_eq!(v.signal(0), Signal::None);
                v.iter().sum::<u64>()
            })
            .unwrap();
        assert_eq!(sum, 3);
        // exactly the viewed elements were consumed
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.try_pop_signal().unwrap(), (3, Signal::EoS));
    }

    #[test]
    fn pop_slice_partial_tail_and_close() {
        let (_f, mut p, mut c) = small();
        p.try_push(7).unwrap();
        p.close();
        // asks for 8, stream only ever has 1: view holds the remainder
        let got = c.pop_slice(8, |v| v.iter().copied().collect::<Vec<_>>());
        assert_eq!(got.unwrap(), vec![7]);
        assert!(c.pop_slice(1, |_| ()).is_err());
    }

    #[test]
    fn pop_slice_panic_consumes_nothing() {
        let (_f, mut p, mut c) = small();
        p.try_push(1).unwrap();
        p.try_push(2).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = c.pop_slice(2, |_| panic!("boom"));
        }));
        assert!(r.is_err());
        // nothing consumed, and the fence was released (resize still works)
        assert_eq!(c.occupancy(), 2);
        assert_eq!(c.try_pop().unwrap(), 1);
    }

    #[test]
    fn cross_thread_stress_with_concurrent_resizes() {
        let (f, mut p, mut c) = fifo_with::<u64>(FifoConfig {
            initial_capacity: 4,
            max_capacity: 1 << 12,
            min_capacity: 2,
            ..Default::default()
        });
        const N: u64 = 200_000;
        let monitor = {
            let f = f.clone();
            std::thread::spawn(move || {
                // Aggressively resize up and down while traffic flows.
                for i in 0..500 {
                    if i % 2 == 0 {
                        f.grow();
                    } else {
                        f.shrink();
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
            })
        };
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                p.push(i).unwrap();
            }
        });
        let mut expected = 0u64;
        while let Ok(v) = c.pop() {
            assert_eq!(v, expected, "reordered or lost element under resize");
            expected += 1;
        }
        assert_eq!(expected, N);
        producer.join().unwrap();
        monitor.join().unwrap();
    }

    #[test]
    fn batch_views_under_concurrent_resizes() {
        // Same storm as above, but all traffic goes through reserve/pop_slice.
        let (f, mut p, mut c) = fifo_with::<u64>(FifoConfig {
            initial_capacity: 4,
            max_capacity: 1 << 12,
            min_capacity: 2,
            ..Default::default()
        });
        const N: u64 = 100_000;
        const BATCH: usize = 7; // deliberately not a power of two
        let monitor = {
            let f = f.clone();
            std::thread::spawn(move || {
                for i in 0..300 {
                    if i % 2 == 0 {
                        f.grow();
                    } else {
                        f.shrink();
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
            })
        };
        let producer = std::thread::spawn(move || {
            let mut i = 0u64;
            while i < N {
                let mut w = p.reserve(BATCH.min((N - i) as usize)).unwrap();
                while w.remaining() > 0 {
                    w.push(i);
                    i += 1;
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            let popped = c
                .pop_slice(BATCH, |v| {
                    for j in 0..v.len() {
                        assert_eq!(v[j], expected + j as u64, "batch view corrupted");
                    }
                    v.len() as u64
                })
                .unwrap();
            expected += popped;
        }
        assert_eq!(expected, N);
        producer.join().unwrap();
        monitor.join().unwrap();
    }

    #[test]
    fn drop_with_heap_elements_no_leak() {
        let (_f, mut p, c) = fifo_with::<String>(FifoConfig::starting_at(8));
        for i in 0..5 {
            p.try_push(format!("value-{i}")).unwrap();
        }
        drop(c); // strings are dropped by Shared::drop when _f and p go too
        drop(p);
    }

    #[test]
    fn batch_push_fills_and_blocks_correctly() {
        let (_f, mut p, mut c) = small();
        let mut items: Vec<u64> = (0..10).collect();
        // capacity 4: only 4 fit non-blockingly
        let n = p.try_push_batch(&mut items).unwrap();
        assert_eq!(n, 4);
        assert_eq!(items.len(), 6);
        assert_eq!(c.try_pop().unwrap(), 0);
        // blocking batch completes once a consumer drains concurrently
        let consumer = std::thread::spawn(move || {
            let mut got = vec![0u64]; // already popped
            while let Ok(v) = c.pop() {
                got.push(v);
            }
            got
        });
        p.push_batch(&mut items).unwrap();
        assert!(items.is_empty());
        p.close();
        drop(p);
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn batch_push_to_closed_consumer_errs() {
        let (_f, mut p, c) = small();
        drop(c);
        let mut items = vec![1u64, 2];
        assert!(p.try_push_batch(&mut items).is_err());
        assert_eq!(items.len(), 2, "items must be handed back");
        assert!(p.push_batch(&mut items).is_err());
    }

    #[test]
    fn batch_push_empty_is_noop() {
        let (_f, mut p, _c) = small();
        let mut items: Vec<u64> = Vec::new();
        assert_eq!(p.try_push_batch(&mut items).unwrap(), 0);
        p.push_batch(&mut items).unwrap();
    }

    #[test]
    fn fixed_config_never_resizes() {
        let (f, mut p, _c) = fifo_with::<u32>(FifoConfig::fixed(8));
        for i in 0..8 {
            p.try_push(i).unwrap();
        }
        assert!(!f.grow());
        assert!(!f.shrink());
        assert_eq!(f.capacity(), 8);
    }

    #[test]
    fn shm_backed_fifo_roundtrip() {
        let cfg = FifoConfig::fixed(8).with_alloc(LinkAlloc::Shm);
        let (f, mut p, mut c) = fifo_with::<u64>(cfg);
        if crate::shm::ShmSegment::memfd_supported() {
            assert_eq!(f.link_alloc(), LinkAlloc::Shm);
        } else {
            assert_eq!(f.link_alloc(), LinkAlloc::Heap);
        }
        // Shm storage is fixed-capacity: a mapped segment cannot be
        // resized under a live peer.
        assert!(!f.grow());
        for i in 0..8u64 {
            p.try_push(i).unwrap();
        }
        assert!(matches!(p.try_push(99), Err(TryPushError::Full(_))));
        // Zero-copy views work over the mapped segment too.
        let seen = c
            .pop_slice(8, |view| view.iter().copied().collect::<Vec<_>>())
            .unwrap();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        let mut ws = p.reserve(4).unwrap();
        for i in 0..4u64 {
            ws.push(i * 10);
        }
        drop(ws);
        assert_eq!(c.try_pop().unwrap(), 0);
        assert_eq!(c.try_pop().unwrap(), 10);
    }

    #[test]
    fn journal_rewind_replays_uncommitted_pops() {
        let (f, mut p, mut c) = fifo_with::<u64>(FifoConfig::default());
        c.enable_journal(JournalConfig::default());
        assert!(f.journaled());
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        assert_eq!(c.pop().unwrap(), 0);
        assert_eq!(c.pop().unwrap(), 1);
        // Transaction fails: both pops must be re-served, in order.
        assert_eq!(c.rewind_consumed(), 2);
        assert_eq!(c.replay_pending(), 2);
        assert_eq!(f.occupancy(), 4, "replay counts as occupancy");
        assert_eq!(c.pop().unwrap(), 0);
        assert_eq!(c.pop().unwrap(), 1);
        assert_eq!(c.pop().unwrap(), 2);
        // A second failure before commit replays everything again.
        assert_eq!(c.rewind_consumed(), 3);
        assert_eq!(
            (0..3).map(|_| c.pop().unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(c.commit_consumed(), 3);
        assert_eq!(c.rewind_consumed(), 0, "committed entries stay acked");
        assert_eq!(c.pop().unwrap(), 3);
        assert_eq!(f.snapshot().replayed, 5);
    }

    #[test]
    fn journal_is_finished_waits_for_replay() {
        let (f, mut p, mut c) = fifo_with::<u64>(FifoConfig::default());
        c.enable_journal(JournalConfig::default());
        p.try_push(7).unwrap();
        p.close();
        drop(p);
        assert_eq!(c.pop().unwrap(), 7);
        c.rewind_consumed();
        assert!(!f.is_finished(), "pending replay is unconsumed data");
        assert_eq!(c.pop().unwrap(), 7);
        c.commit_consumed();
        assert!(f.is_finished());
    }

    #[test]
    fn staging_publishes_only_on_commit() {
        let (f, mut p, mut c) = fifo_with::<u64>(FifoConfig::default());
        p.enable_staging();
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(f.occupancy(), 0, "staged pushes are not published");
        assert_eq!(p.staged_len(), 2);
        // Failed transaction: outputs vanish without a trace.
        assert_eq!(p.rewind_produced(), 2);
        p.push(3).unwrap();
        p.push(4).unwrap();
        assert_eq!(p.commit_produced().unwrap(), 2);
        assert_eq!(c.pop().unwrap(), 3);
        assert_eq!(c.pop().unwrap(), 4);
        assert_eq!(p.commit_produced().unwrap(), 0, "commit is idempotent");
    }

    #[test]
    fn shed_policy_drops_on_full_and_counts() {
        let (f, mut p, _c) =
            fifo_with::<u64>(FifoConfig::fixed(4).with_admission(AdmissionPolicy::Shed));
        for i in 0..4 {
            p.push(i).unwrap();
        }
        // Ring full, consumer idle: Block would hang here — Shed returns.
        p.push(99).unwrap();
        p.push(100).unwrap();
        assert_eq!(f.occupancy(), 4);
        assert_eq!(f.snapshot().shed, 2);
        let mut batch = vec![1u64, 2, 3];
        p.push_batch(&mut batch).unwrap();
        assert!(batch.is_empty());
        assert_eq!(f.snapshot().shed, 5);
    }

    #[test]
    fn block_timeout_policy_degrades_to_shed() {
        let (f, mut p, _c) = fifo_with::<u64>(
            FifoConfig::fixed(2)
                .with_admission(AdmissionPolicy::BlockTimeout(Duration::from_millis(5))),
        );
        p.push(0).unwrap();
        p.push(1).unwrap();
        let t0 = Instant::now();
        p.push(2).unwrap(); // blocks ~5ms, then sheds
        assert!(t0.elapsed() >= Duration::from_millis(4));
        assert_eq!(f.snapshot().shed, 1);
    }

    #[test]
    fn quiesce_fails_blocked_endpoints_fast() {
        let (f, mut p, mut c) = fifo_with::<u64>(FifoConfig::fixed(2));
        p.push(0).unwrap();
        p.push(1).unwrap();
        assert_eq!(f.drain_level(), DRAIN_RUNNING);
        f.set_drain_level(DRAIN_QUIESCED);
        // Full ring + quiesce: the blocking push errs instead of wedging.
        assert!(p.push(2).is_err());
        // Queued data still drains...
        assert_eq!(c.pop().unwrap(), 0);
        assert_eq!(c.pop().unwrap(), 1);
        // ...then the consumer sees end-of-stream though the producer lives.
        assert!(matches!(c.try_pop(), Err(TryPopError::Closed)));
        assert!(c.is_finished());
        assert!(f.is_finished());
    }

    #[test]
    fn drain_level_is_monotonic() {
        let (f, _p, _c) = fifo_with::<u64>(FifoConfig::default());
        f.set_drain_level(DRAIN_QUIESCED);
        f.set_drain_level(DRAIN_DRAINING); // lowering is ignored
        assert_eq!(f.drain_level(), DRAIN_QUIESCED);
    }
}
