//! The production stream FIFO: lock-free SPSC fast path + dynamic resizing.
//!
//! RaftLib resizes queues while the application runs (§4): a monitor thread
//! wakes every δ and grows a queue when the writer has been blocked for 3δ,
//! or when a reader asked for more items than the queue can ever hold. The
//! resize itself uses "lock-free exclusion" and prefers the moment when the
//! ring is in a *non-wrapped* position so the live region can be moved with
//! one contiguous copy.
//!
//! Reproduction here:
//!
//! * `head`/`tail` are monotonic atomic counters living *outside* the slot
//!   storage, so a resize only swaps the storage and never disturbs the
//!   producer/consumer protocol;
//! * push/pop take a **shared** [`parking_lot::RwLock`] on the storage —
//!   producer and consumer never contend with each other (both hold read
//!   locks) and proceed lock-free exactly as in [`crate::spsc`];
//! * a resize takes the **exclusive** lock, copies the live region (single
//!   `memcpy` when source and destination are both non-wrapped, element-wise
//!   otherwise), and swaps storage;
//! * blocked endpoints record `*_blocked_since` timestamps in
//!   [`FifoStats`], which is precisely the signal the monitor's 3δ rule
//!   consumes; parked threads are woken by the opposite endpoint or by a
//!   resize.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut, Index};
use std::sync::atomic::{
    AtomicBool, AtomicU64, AtomicUsize,
    Ordering::{Acquire, Relaxed, Release},
};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::utils::Backoff;
use parking_lot::{ArcRwLockReadGuard, Condvar, Mutex, RawRwLock, RwLock, RwLockReadGuard};

use crate::error::{PopError, PushError, TryPopError, TryPushError};
use crate::signal::Signal;
use crate::stats::{FifoStats, StatsSnapshot};

/// Construction parameters for a [`Fifo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoConfig {
    /// Starting capacity in elements (rounded up to a power of two).
    pub initial_capacity: usize,
    /// Growth ceiling — the paper's "buffer cap" engineering solution for
    /// queues that would otherwise grow without bound.
    pub max_capacity: usize,
    /// Shrink floor.
    pub min_capacity: usize,
}

impl Default for FifoConfig {
    fn default() -> Self {
        FifoConfig {
            initial_capacity: 64,
            max_capacity: 1 << 22,
            min_capacity: 8,
        }
    }
}

impl FifoConfig {
    /// Config with a fixed capacity (resizing disabled: floor == ceiling).
    pub fn fixed(capacity: usize) -> Self {
        let c = capacity.max(1).next_power_of_two();
        FifoConfig {
            initial_capacity: c,
            max_capacity: c,
            min_capacity: c,
        }
    }

    /// Config starting at `initial` with the default ceiling/floor.
    pub fn starting_at(initial: usize) -> Self {
        FifoConfig {
            initial_capacity: initial,
            ..Default::default()
        }
    }
}

/// One storage slot: a possibly-uninitialized `(element, signal)` pair.
type Slot<T> = UnsafeCell<MaybeUninit<(T, Signal)>>;

/// Swappable slot storage; everything else lives in [`Shared`].
struct Storage<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
}

// SAFETY: slots are only touched through the head/tail protocol — the
// producer writes a slot strictly before publishing it with a Release store
// of `tail`, the consumer reads it strictly after an Acquire load of `tail`,
// and a resize holds the exclusive storage lock, which excludes both
// endpoints' shared-lock fast paths. Every access is therefore ordered, so
// the storage may move to (Send) or be shared with (Sync) other threads
// whenever the elements themselves are Send.
unsafe impl<T: Send> Send for Storage<T> {}
// SAFETY: see the `Send` justification above.
unsafe impl<T: Send> Sync for Storage<T> {}

impl<T> Storage<T> {
    fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        let slots: Box<[Slot<T>]> = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Storage {
            mask: capacity - 1,
            slots,
        }
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Raw pointer to the slot for monotonic index `idx`.
    #[inline]
    fn slot(&self, idx: usize) -> *mut MaybeUninit<(T, Signal)> {
        self.slots[idx & self.mask].get()
    }
}

/// State shared by producer, consumer, and monitor.
struct Shared<T> {
    /// `Arc` so endpoints can take *owned* read guards (`read_arc`) that are
    /// held across user code (see [`WriteGuard`]) without self-referential
    /// lifetimes.
    storage: Arc<RwLock<Storage<T>>>,
    /// Next index to read (monotonic).
    head: AtomicUsize,
    /// Next index to write (monotonic).
    tail: AtomicUsize,
    producer_closed: AtomicBool,
    consumer_closed: AtomicBool,
    /// Out-of-band signal channel ("asynchronous signaling", §4.2).
    async_signal: AtomicU64,
    /// Set while the producer is parked waiting for space.
    writer_waiting: AtomicBool,
    /// Set while the consumer is parked waiting for data.
    reader_waiting: AtomicBool,
    park: Mutex<()>,
    unpark: Condvar,
    stats: FifoStats,
    cfg: FifoConfig,
}

impl<T> Shared<T> {
    #[inline]
    fn occupancy(&self) -> usize {
        self.tail
            .load(Acquire)
            .saturating_sub(self.head.load(Acquire))
    }

    /// Wake any parked endpoint. Cheap when nobody is waiting (one relaxed
    /// load each).
    #[inline]
    fn wake(&self) {
        if self.writer_waiting.load(Relaxed) || self.reader_waiting.load(Relaxed) {
            let _g = self.park.lock();
            self.unpark.notify_all();
        }
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Last owner of the FIFO: drop whatever elements remain exactly once.
        // (Storage never drops its MaybeUninit contents itself.)
        let storage = self.storage.write();
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            // SAFETY: [head, tail) is the live region; exclusive access here.
            unsafe { (*storage.slot(i)).assume_init_drop() };
        }
    }
}

/// How long a parked endpoint sleeps before re-checking, as a missed-wakeup
/// safety net.
const PARK_TIMEOUT: Duration = Duration::from_micros(200);

/// The dynamically resizable stream FIFO. Create one with [`fifo_with`];
/// this handle is the monitor/third-party view, [`Producer`]/[`Consumer`]
/// are the data endpoints.
pub struct Fifo<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Fifo<T> {
    fn clone(&self) -> Self {
        Fifo {
            shared: self.shared.clone(),
        }
    }
}

/// Create a FIFO with the given configuration; returns the monitor-facing
/// handle plus the two endpoints.
pub fn fifo_with<T: Send>(cfg: FifoConfig) -> (Fifo<T>, Producer<T>, Consumer<T>) {
    let cfg = FifoConfig {
        initial_capacity: cfg
            .initial_capacity
            .clamp(1, cfg.max_capacity.max(1))
            .next_power_of_two(),
        max_capacity: cfg.max_capacity.max(1).next_power_of_two(),
        min_capacity: cfg.min_capacity.max(1).next_power_of_two(),
    };
    let shared = Arc::new(Shared {
        storage: Arc::new(RwLock::new(Storage::with_capacity(cfg.initial_capacity))),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        producer_closed: AtomicBool::new(false),
        consumer_closed: AtomicBool::new(false),
        async_signal: AtomicU64::new(0),
        writer_waiting: AtomicBool::new(false),
        reader_waiting: AtomicBool::new(false),
        park: Mutex::new(()),
        unpark: Condvar::new(),
        stats: FifoStats::new(),
        cfg,
    });
    (
        Fifo {
            shared: shared.clone(),
        },
        Producer {
            shared: shared.clone(),
        },
        Consumer { shared },
    )
}

impl<T: Send> Fifo<T> {
    /// Current capacity (elements).
    pub fn capacity(&self) -> usize {
        self.shared.storage.read().capacity()
    }

    /// Current occupancy (elements queued).
    pub fn occupancy(&self) -> usize {
        self.shared.occupancy()
    }

    /// The FIFO's telemetry counters.
    pub fn stats(&self) -> &FifoStats {
        &self.shared.stats
    }

    /// Point-in-time statistics snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.shared
            .stats
            .snapshot(self.capacity(), self.occupancy())
    }

    /// The configured growth ceiling.
    pub fn max_capacity(&self) -> usize {
        self.shared.cfg.max_capacity
    }

    /// The configured shrink floor.
    pub fn min_capacity(&self) -> usize {
        self.shared.cfg.min_capacity
    }

    /// `true` once the producer closed and all data has been consumed.
    pub fn is_finished(&self) -> bool {
        self.shared.producer_closed.load(Acquire) && self.shared.occupancy() == 0
    }

    /// Post an asynchronous (out-of-band) signal, immediately visible to the
    /// consumer regardless of queued data.
    pub fn post_async(&self, signal: Signal) {
        self.shared.async_signal.store(signal.encode(), Release);
        self.shared.wake();
    }

    /// Take a pending asynchronous signal, if any.
    pub fn take_async(&self) -> Option<Signal> {
        Signal::decode(self.shared.async_signal.swap(0, Acquire))
    }

    /// Resize the ring to `new_capacity` (clamped to config bounds and to
    /// current occupancy). Returns the resulting capacity.
    ///
    /// Takes the exclusive storage lock; endpoints retry their shared-lock
    /// fast path as soon as we release. The live region is moved with one
    /// contiguous copy when both source and destination regions are
    /// non-wrapped (the paper's preferred resize position), element-wise
    /// otherwise.
    pub fn resize(&self, new_capacity: usize) -> usize {
        let shared = &self.shared;
        let mut guard = shared.storage.write();
        // Under the exclusive lock nobody moves head/tail.
        let head = shared.head.load(Relaxed);
        let tail = shared.tail.load(Relaxed);
        let live = tail - head;
        let new_capacity = new_capacity
            .clamp(shared.cfg.min_capacity, shared.cfg.max_capacity)
            .max(live)
            .next_power_of_two();
        if new_capacity == guard.capacity() {
            return new_capacity;
        }
        let new = Storage::<T>::with_capacity(new_capacity);
        let old_mask = guard.mask;
        let old_cap = guard.capacity();
        if live > 0 {
            let src_start = head & old_mask;
            let dst_start = head & new.mask;
            let src_contig = src_start + live <= old_cap;
            let dst_contig = dst_start + live <= new.capacity();
            // SAFETY: the exclusive write lock excludes both endpoints, so
            // nothing reads or writes either storage concurrently. Source
            // slots `[head, tail)` are initialized (live region); destination
            // slots are freshly allocated and distinct allocations, so the
            // ranges cannot overlap. `new_capacity >= live` (clamped above)
            // guarantees the destination indices stay in bounds, and the
            // bit-copy is a move: the old slots are discarded as
            // `MaybeUninit` (never dropped) right after, so no element is
            // duplicated or leaked.
            unsafe {
                if src_contig && dst_contig {
                    // Fast path: one memcpy of the whole live region.
                    std::ptr::copy_nonoverlapping(
                        guard.slots[src_start].get(),
                        new.slot(head),
                        live,
                    );
                } else {
                    // Wrapped on either side: move element-wise.
                    for i in 0..live {
                        std::ptr::copy_nonoverlapping(
                            guard.slots[(head + i) & old_mask].get(),
                            new.slot(head + i),
                            1,
                        );
                    }
                }
            }
        }
        // Old slots' live elements were moved out byte-wise: discarding the
        // old storage is safe because MaybeUninit never drops its contents.
        *guard = new;
        shared.stats.resizes.fetch_add(1, Relaxed);
        drop(guard);
        shared.wake();
        new_capacity
    }

    /// Grow by doubling (bounded by `max_capacity`). Returns `true` if the
    /// capacity changed.
    pub fn grow(&self) -> bool {
        let cur = self.capacity();
        if cur >= self.shared.cfg.max_capacity {
            return false;
        }
        self.resize(cur * 2) > cur
    }

    /// Grow until `capacity >= target` (bounded). Returns `true` if the
    /// final capacity satisfies the request.
    pub fn grow_to(&self, target: usize) -> bool {
        if self.capacity() >= target {
            return true;
        }
        self.resize(target.next_power_of_two()) >= target
    }

    /// Halve the capacity (bounded by `min_capacity` and occupancy).
    pub fn shrink(&self) -> bool {
        let cur = self.capacity();
        if cur <= self.shared.cfg.min_capacity {
            return false;
        }
        self.resize(cur / 2) < cur
    }

    /// Monitor tick: record an occupancy sample into the histogram.
    pub fn sample(&self) {
        self.shared.stats.sample_occupancy(self.occupancy());
    }
}

/// Monitor-facing, type-erased view of a FIFO — what the runtime's monitor
/// thread holds for every stream in the application.
pub trait Monitorable: Send + Sync {
    /// Current capacity (elements).
    fn capacity(&self) -> usize;
    /// Current occupancy (elements).
    fn occupancy(&self) -> usize;
    /// Telemetry counters.
    fn stats(&self) -> &FifoStats;
    /// Double the capacity; `true` if changed.
    fn grow(&self) -> bool;
    /// Grow to at least `target`; `true` if satisfied.
    fn grow_to(&self, target: usize) -> bool;
    /// Halve the capacity; `true` if changed.
    fn shrink(&self) -> bool;
    /// Record an occupancy sample.
    fn sample(&self);
    /// Growth ceiling.
    fn max_capacity(&self) -> usize;
    /// Statistics snapshot.
    fn snapshot(&self) -> StatsSnapshot;
    /// Producer closed and drained.
    fn is_finished(&self) -> bool;
    /// Post an asynchronous signal to the consumer side.
    fn post_async(&self, signal: Signal);
}

impl<T: Send> Monitorable for Fifo<T> {
    fn capacity(&self) -> usize {
        Fifo::capacity(self)
    }
    fn occupancy(&self) -> usize {
        Fifo::occupancy(self)
    }
    fn stats(&self) -> &FifoStats {
        Fifo::stats(self)
    }
    fn grow(&self) -> bool {
        Fifo::grow(self)
    }
    fn grow_to(&self, target: usize) -> bool {
        Fifo::grow_to(self, target)
    }
    fn shrink(&self) -> bool {
        Fifo::shrink(self)
    }
    fn sample(&self) {
        Fifo::sample(self);
    }
    fn max_capacity(&self) -> usize {
        Fifo::max_capacity(self)
    }
    fn snapshot(&self) -> StatsSnapshot {
        Fifo::snapshot(self)
    }
    fn is_finished(&self) -> bool {
        Fifo::is_finished(self)
    }
    fn post_async(&self, signal: Signal) {
        Fifo::post_async(self, signal);
    }
}

/// Producing endpoint of a [`Fifo`]. One per stream; `Send`, not `Clone`.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

// SAFETY: the producer handle is the unique owner of the producer role (not
// Clone), so sending it to another thread only relocates that role; all slot
// access it performs is ordered by the head/tail protocol and `T: Send`
// covers the elements that cross threads.
unsafe impl<T: Send> Send for Producer<T> {}

impl<T: Send> Producer<T> {
    /// Non-blocking push of `(value, signal)`.
    pub fn try_push_signal(&mut self, value: T, signal: Signal) -> Result<(), TryPushError<T>> {
        let shared = &*self.shared;
        if shared.consumer_closed.load(Relaxed) {
            return Err(TryPushError::Closed(value));
        }
        let storage = shared.storage.read();
        let tail = shared.tail.load(Relaxed);
        let head = shared.head.load(Acquire);
        if tail - head >= storage.capacity() {
            return Err(TryPushError::Full(value));
        }
        // SAFETY: single producer; slot [tail] is outside the live region.
        unsafe { (*storage.slot(tail)).write((value, signal)) };
        shared.tail.store(tail + 1, Release);
        shared.stats.pushed.fetch_add(1, Relaxed);
        drop(storage);
        if shared.reader_waiting.load(Relaxed) {
            shared.wake();
        }
        Ok(())
    }

    /// Non-blocking push.
    #[inline]
    pub fn try_push(&mut self, value: T) -> Result<(), TryPushError<T>> {
        self.try_push_signal(value, Signal::None)
    }

    /// Blocking push of `(value, signal)`; errs only if the consumer is gone.
    ///
    /// While blocked, the producer is visible to the monitor through
    /// `writer_blocked_since` — after 3δ of continuous blocking the monitor
    /// grows this queue (the paper's write-side resize trigger).
    pub fn push_signal(&mut self, value: T, signal: Signal) -> Result<(), PushError<T>> {
        let mut value = match self.try_push_signal(value, signal) {
            Ok(()) => return Ok(()),
            Err(TryPushError::Closed(v)) => return Err(PushError(v)),
            Err(TryPushError::Full(v)) => v,
        };
        let shared = self.shared.clone();
        shared.stats.writer_block_begin();
        let backoff = Backoff::new();
        let result = loop {
            match self.try_push_signal(value, signal) {
                Ok(()) => break Ok(()),
                Err(TryPushError::Closed(v)) => break Err(PushError(v)),
                Err(TryPushError::Full(v)) => value = v,
            }
            if !backoff.is_completed() {
                backoff.snooze();
                continue;
            }
            // Park until a pop or a resize makes room.
            shared.writer_waiting.store(true, Relaxed);
            let mut g = shared.park.lock();
            // Re-check under the lock to close the race with wake().
            let full = {
                let storage = shared.storage.read();
                shared.tail.load(Relaxed) - shared.head.load(Acquire) >= storage.capacity()
            };
            if full && !shared.consumer_closed.load(Relaxed) {
                shared.unpark.wait_for(&mut g, PARK_TIMEOUT);
            }
            drop(g);
            shared.writer_waiting.store(false, Relaxed);
        };
        shared.stats.writer_block_end();
        result
    }

    /// Blocking push; errs only if the consumer is gone.
    #[inline]
    pub fn push(&mut self, value: T) -> Result<(), PushError<T>> {
        self.push_signal(value, Signal::None)
    }

    /// Push as many elements from `items` as currently fit, under a single
    /// storage-lock acquisition (the batch path split adapters and sources
    /// use). Returns the number pushed; the rest stay in `items`.
    pub fn try_push_batch(&mut self, items: &mut Vec<T>) -> Result<usize, PushError<()>> {
        if items.is_empty() {
            return Ok(0);
        }
        let shared = &*self.shared;
        if shared.consumer_closed.load(Relaxed) {
            return Err(PushError(()));
        }
        let storage = shared.storage.read();
        let mut tail = shared.tail.load(Relaxed);
        let head = shared.head.load(Acquire);
        let room = storage.capacity().saturating_sub(tail - head);
        let n = room.min(items.len());
        for v in items.drain(..n) {
            // SAFETY: single producer; slots [tail, tail+n) are outside the
            // live region, so nothing reads them until the Release store of
            // `tail` below publishes the batch.
            unsafe { (*storage.slot(tail)).write((v, Signal::None)) };
            tail += 1;
        }
        if n > 0 {
            shared.tail.store(tail, Release);
            shared.stats.pushed.fetch_add(n as u64, Relaxed);
        }
        drop(storage);
        if n > 0 && shared.reader_waiting.load(Relaxed) {
            shared.wake();
        }
        Ok(n)
    }

    /// Blocking batch push: pushes *all* of `items`, waiting for room as
    /// needed. Errs only if the consumer is gone (remaining items stay in
    /// `items`).
    pub fn push_batch(&mut self, items: &mut Vec<T>) -> Result<(), PushError<()>> {
        let backoff = Backoff::new();
        let mut began_block = false;
        while !items.is_empty() {
            let pushed = self.try_push_batch(items)?;
            if items.is_empty() {
                break;
            }
            if pushed == 0 {
                if !began_block {
                    self.shared.stats.writer_block_begin();
                    began_block = true;
                }
                if !backoff.is_completed() {
                    backoff.snooze();
                } else {
                    self.shared.writer_waiting.store(true, Relaxed);
                    let mut g = self.shared.park.lock();
                    self.shared.unpark.wait_for(&mut g, PARK_TIMEOUT);
                    drop(g);
                    self.shared.writer_waiting.store(false, Relaxed);
                }
            } else {
                backoff.reset();
            }
        }
        if began_block {
            self.shared.stats.writer_block_end();
        }
        Ok(())
    }

    /// In-place write: returns a guard holding a defaulted element; mutate it
    /// through `DerefMut` and it is committed (pushed) when the guard drops —
    /// the paper's `allocate_s` semantics. Blocks while the ring is full.
    ///
    /// The guard pins the storage (holds a shared lock), so a concurrent
    /// resize waits until the guard drops.
    pub fn allocate(&mut self) -> Result<WriteGuard<'_, T>, PushError<T>>
    where
        T: Default,
    {
        let shared = self.shared.clone();
        let backoff = Backoff::new();
        let mut began_block = false;
        loop {
            if shared.consumer_closed.load(Relaxed) {
                if began_block {
                    shared.stats.writer_block_end();
                }
                return Err(PushError(T::default()));
            }
            {
                let storage = RwLock::read_arc(&shared.storage);
                let tail = shared.tail.load(Relaxed);
                let head = shared.head.load(Acquire);
                if tail - head < storage.capacity() {
                    if began_block {
                        shared.stats.writer_block_end();
                    }
                    // SAFETY: single producer; slot outside the live region.
                    unsafe { (*storage.slot(tail)).write((T::default(), Signal::None)) };
                    return Ok(WriteGuard {
                        producer: self,
                        storage,
                        tail,
                        committed: false,
                    });
                }
            }
            if !began_block {
                shared.stats.writer_block_begin();
                began_block = true;
            }
            if !backoff.is_completed() {
                backoff.snooze();
            } else {
                shared.writer_waiting.store(true, Relaxed);
                let mut g = shared.park.lock();
                shared.unpark.wait_for(&mut g, PARK_TIMEOUT);
                drop(g);
                shared.writer_waiting.store(false, Relaxed);
            }
        }
    }

    /// Close the stream: the consumer drains what remains, then sees
    /// `Closed`. Idempotent.
    pub fn close(&mut self) {
        self.shared.producer_closed.store(true, Release);
        self.shared.wake();
    }

    /// `true` once the consumer endpoint dropped.
    pub fn is_closed(&self) -> bool {
        self.shared.consumer_closed.load(Relaxed)
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.shared.storage.read().capacity()
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.shared.occupancy()
    }

    /// Monitor-facing handle for this FIFO.
    pub fn fifo(&self) -> Fifo<T> {
        Fifo {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.producer_closed.store(true, Release);
        self.shared.wake();
    }
}

/// RAII guard returned by [`Producer::allocate`]; commits the element on
/// drop (or discards it via [`WriteGuard::abort`]).
///
/// Holds a shared storage lock for its lifetime: references handed out by
/// `Deref` stay valid because any resize must wait for the guard.
pub struct WriteGuard<'a, T: Send + Default> {
    producer: &'a mut Producer<T>,
    storage: ArcRwLockReadGuard<RawRwLock, Storage<T>>,
    tail: usize,
    committed: bool,
}

impl<'a, T: Send + Default> WriteGuard<'a, T> {
    /// Attach a synchronous signal to the element being written.
    pub fn set_signal(&mut self, signal: Signal) {
        // SAFETY: slot was initialized in allocate() and is not yet visible
        // to the consumer (tail not advanced); storage pinned by our guard.
        unsafe {
            (*self.storage.slot(self.tail)).assume_init_mut().1 = signal;
        }
    }

    /// Abandon the element without sending it.
    pub fn abort(mut self) {
        // SAFETY: initialized in allocate(), never published.
        unsafe { (*self.storage.slot(self.tail)).assume_init_drop() };
        self.committed = true; // prevent Drop from publishing
    }
}

impl<'a, T: Send + Default> Deref for WriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: initialized, unpublished slot, storage pinned by guard.
        unsafe { &(*self.storage.slot(self.tail)).assume_init_ref().0 }
    }
}

impl<'a, T: Send + Default> DerefMut for WriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in Deref; single producer, so no aliasing.
        unsafe { &mut (*self.storage.slot(self.tail)).assume_init_mut().0 }
    }
}

impl<'a, T: Send + Default> Drop for WriteGuard<'a, T> {
    fn drop(&mut self) {
        if self.committed {
            return;
        }
        let shared = &*self.producer.shared;
        shared.tail.store(self.tail + 1, Release);
        shared.stats.pushed.fetch_add(1, Relaxed);
        if shared.reader_waiting.load(Relaxed) {
            shared.wake();
        }
    }
}

/// Consuming endpoint of a [`Fifo`]. One per stream; `Send`, not `Clone`.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

// SAFETY: same argument as `Producer` — one non-Clone handle per role.
unsafe impl<T: Send> Send for Consumer<T> {}

impl<T: Send> Consumer<T> {
    /// Non-blocking pop of `(value, signal)`.
    pub fn try_pop_signal(&mut self) -> Result<(T, Signal), TryPopError> {
        let shared = &*self.shared;
        let storage = shared.storage.read();
        let head = shared.head.load(Relaxed);
        let tail = shared.tail.load(Acquire);
        if head == tail {
            drop(storage);
            return if shared.producer_closed.load(Acquire) && shared.tail.load(Acquire) == head {
                Err(TryPopError::Closed)
            } else {
                Err(TryPopError::Empty)
            };
        }
        // SAFETY: single consumer; slot [head] is inside the live region.
        let pair = unsafe { (*storage.slot(head)).assume_init_read() };
        shared.head.store(head + 1, Release);
        shared.stats.popped.fetch_add(1, Relaxed);
        drop(storage);
        if shared.writer_waiting.load(Relaxed) {
            shared.wake();
        }
        Ok(pair)
    }

    /// Non-blocking pop.
    #[inline]
    pub fn try_pop(&mut self) -> Result<T, TryPopError> {
        self.try_pop_signal().map(|(v, _)| v)
    }

    /// Blocking pop of `(value, signal)`; errs when the stream closed and
    /// drained.
    pub fn pop_signal(&mut self) -> Result<(T, Signal), PopError> {
        match self.try_pop_signal() {
            Ok(p) => return Ok(p),
            Err(TryPopError::Closed) => return Err(PopError),
            Err(TryPopError::Empty) => {}
        }
        let shared = self.shared.clone();
        shared.stats.reader_block_begin();
        let backoff = Backoff::new();
        let result = loop {
            match self.try_pop_signal() {
                Ok(p) => break Ok(p),
                Err(TryPopError::Closed) => break Err(PopError),
                Err(TryPopError::Empty) => {}
            }
            if !backoff.is_completed() {
                backoff.snooze();
                continue;
            }
            shared.reader_waiting.store(true, Relaxed);
            let mut g = shared.park.lock();
            let empty = shared.head.load(Relaxed) == shared.tail.load(Acquire);
            if empty && !shared.producer_closed.load(Acquire) {
                shared.unpark.wait_for(&mut g, PARK_TIMEOUT);
            }
            drop(g);
            shared.reader_waiting.store(false, Relaxed);
        };
        shared.stats.reader_block_end();
        result
    }

    /// Blocking pop.
    #[inline]
    pub fn pop(&mut self) -> Result<T, PopError> {
        self.pop_signal().map(|(v, _)| v)
    }

    /// Blocking sliding-window view of the next `n` elements without
    /// consuming them — the paper's `peek_range`. If `n` exceeds the current
    /// capacity the request is recorded and the ring is grown on the spot
    /// (read-side resize trigger), rather than deadlocking.
    ///
    /// Returns `Err(PopError)` if the stream closes before `n` elements are
    /// available (fewer than `n` remain, forever).
    pub fn peek_range(&mut self, n: usize) -> Result<PeekRange<'_, T>, PopError> {
        let shared = self.shared.clone();
        shared.stats.note_read_request(n);
        let backoff = Backoff::new();
        loop {
            // Grow first if the request can never be satisfied (paper: queue
            // "tagged for resizing" when a read request exceeds capacity).
            if n > self.capacity() {
                let f = Fifo {
                    shared: self.shared.clone(),
                };
                if !f.grow_to(n) {
                    // Request exceeds even max_capacity: impossible.
                    return Err(PopError);
                }
            }
            let occ = shared.occupancy();
            if occ >= n {
                let storage = self.shared.storage.read();
                let head = self.shared.head.load(Relaxed);
                return Ok(PeekRange {
                    storage,
                    head,
                    len: n,
                });
            }
            if shared.producer_closed.load(Acquire) && shared.occupancy() < n {
                return Err(PopError);
            }
            shared.stats.reader_block_begin();
            if !backoff.is_completed() {
                backoff.snooze();
            } else {
                shared.reader_waiting.store(true, Relaxed);
                let mut g = shared.park.lock();
                shared.unpark.wait_for(&mut g, PARK_TIMEOUT);
                drop(g);
                shared.reader_waiting.store(false, Relaxed);
            }
            shared.stats.reader_block_end();
        }
    }

    /// Reference to the front element, if present (non-blocking). The
    /// closure style keeps the storage lock scoped.
    pub fn peek<R>(&mut self, f: impl FnOnce(&T, Signal) -> R) -> Option<R> {
        let shared = &*self.shared;
        let storage = shared.storage.read();
        let head = shared.head.load(Relaxed);
        let tail = shared.tail.load(Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: single consumer, live slot.
        let pair = unsafe { (*storage.slot(head)).assume_init_ref() };
        Some(f(&pair.0, pair.1))
    }

    /// Pop up to `n` elements into `out`; blocks until at least one element
    /// is available or the stream ends. Returns the number popped.
    pub fn pop_range(&mut self, n: usize, out: &mut Vec<T>) -> Result<usize, PopError> {
        self.shared.stats.note_read_request(n);
        let first = self.pop()?;
        out.push(first);
        let mut got = 1;
        while got < n {
            match self.try_pop() {
                Ok(v) => {
                    out.push(v);
                    got += 1;
                }
                Err(_) => break,
            }
        }
        Ok(got)
    }

    /// Advance past `n` elements previously inspected via `peek_range`.
    pub fn advance(&mut self, n: usize) -> usize {
        let mut advanced = 0;
        for _ in 0..n {
            if self.try_pop().is_err() {
                break;
            }
            advanced += 1;
        }
        advanced
    }

    /// Take a pending asynchronous signal, if any.
    pub fn take_async(&mut self) -> Option<Signal> {
        Signal::decode(self.shared.async_signal.swap(0, Acquire))
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.shared.storage.read().capacity()
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.shared.occupancy()
    }

    /// Producer closed and everything consumed.
    pub fn is_finished(&self) -> bool {
        self.shared.producer_closed.load(Acquire) && self.shared.occupancy() == 0
    }

    /// Monitor-facing handle for this FIFO.
    pub fn fifo(&self) -> Fifo<T> {
        Fifo {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_closed.store(true, Release);
        self.shared.wake();
        // Remaining elements are dropped by Shared::drop (exactly once, with
        // exclusive access) — not here, to avoid racing a late producer push.
    }
}

/// Borrowed sliding window over the front of the queue (see
/// [`Consumer::peek_range`]). Holding it pins the storage: resizes wait
/// until it is dropped.
pub struct PeekRange<'a, T> {
    storage: RwLockReadGuard<'a, Storage<T>>,
    head: usize,
    len: usize,
}

impl<'a, T> PeekRange<'a, T> {
    /// Number of elements visible in this window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Signal attached to the `i`-th element of the window.
    pub fn signal(&self, i: usize) -> Signal {
        assert!(
            i < self.len,
            "peek_range index {i} out of bounds {}",
            self.len
        );
        // SAFETY: elements [head, head+len) were live when the guard was
        // taken and the consumer (us) has not advanced since.
        unsafe { (*self.storage.slot(self.head + i)).assume_init_ref().1 }
    }

    /// Iterate over the window.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.len).map(move |i| &self[i])
    }
}

impl<'a, T> Index<usize> for PeekRange<'a, T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        assert!(
            i < self.len,
            "peek_range index {i} out of bounds {}",
            self.len
        );
        // SAFETY: as in signal().
        unsafe { &(*self.storage.slot(self.head + i)).assume_init_ref().0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Fifo<u64>, Producer<u64>, Consumer<u64>) {
        fifo_with(FifoConfig {
            initial_capacity: 4,
            max_capacity: 1 << 16,
            min_capacity: 2,
        })
    }

    #[test]
    fn basic_order() {
        let (_f, mut p, mut c) = small();
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(c.try_pop().unwrap(), i);
        }
    }

    #[test]
    fn full_then_grow_preserves_order() {
        let (f, mut p, mut c) = small();
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        assert!(matches!(p.try_push(99), Err(TryPushError::Full(99))));
        assert!(f.grow());
        assert_eq!(f.capacity(), 8);
        for i in 4..8 {
            p.try_push(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(c.try_pop().unwrap(), i);
        }
    }

    #[test]
    fn grow_with_wrapped_ring() {
        let (f, mut p, mut c) = small();
        // Fill, drain half, refill: live region wraps the array end.
        for i in 0..4u64 {
            p.try_push(i).unwrap();
        }
        assert_eq!(c.try_pop().unwrap(), 0);
        assert_eq!(c.try_pop().unwrap(), 1);
        p.try_push(4).unwrap();
        p.try_push(5).unwrap();
        // live = [2,3,4,5] with head index 2 of 4 -> wrapped
        assert!(f.grow());
        for i in 2..6 {
            assert_eq!(c.try_pop().unwrap(), i);
        }
    }

    #[test]
    fn shrink_respects_occupancy() {
        let (f, mut p, _c) = fifo_with::<u64>(FifoConfig {
            initial_capacity: 16,
            max_capacity: 64,
            min_capacity: 2,
        });
        for i in 0..10 {
            p.try_push(i).unwrap();
        }
        // shrink to 8 would lose data: resize clamps to >= occupancy (10 -> 16)
        let c = f.resize(8);
        assert!(c >= 10, "capacity {c} must hold 10 live elements");
    }

    #[test]
    fn resize_to_same_capacity_is_noop() {
        let (f, _p, _c) = small();
        let before = f.snapshot().resizes;
        f.resize(4);
        assert_eq!(f.snapshot().resizes, before);
    }

    #[test]
    fn close_drain_semantics() {
        let (_f, mut p, mut c) = small();
        p.try_push(1).unwrap();
        p.close();
        assert_eq!(c.pop().unwrap(), 1);
        assert!(c.pop().is_err());
        assert!(c.is_finished());
    }

    #[test]
    fn producer_drop_closes() {
        let (_f, p, mut c) = small();
        drop(p);
        assert_eq!(c.try_pop(), Err(TryPopError::Closed));
    }

    #[test]
    fn consumer_drop_rejects_push() {
        let (_f, mut p, c) = small();
        drop(c);
        assert!(matches!(p.try_push(1), Err(TryPushError::Closed(1))));
        assert!(p.push(1).is_err());
    }

    #[test]
    fn blocking_push_unblocks_on_pop() {
        let (_f, mut p, mut c) = small();
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        let t = std::thread::spawn(move || {
            p.push(4).unwrap(); // blocks until a pop
            p
        });
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(c.pop().unwrap(), 0);
        let _p = t.join().unwrap();
        assert_eq!(c.pop().unwrap(), 1);
    }

    #[test]
    fn blocking_push_unblocks_on_grow() {
        let (f, mut p, mut c) = small();
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        let t = std::thread::spawn(move || {
            p.push(4).unwrap();
            p
        });
        std::thread::sleep(Duration::from_millis(10));
        assert!(
            f.stats().writer_blocked_for_ns() > 0,
            "writer should appear blocked"
        );
        assert!(f.grow());
        let _p = t.join().unwrap();
        for i in 0..5 {
            assert_eq!(c.pop().unwrap(), i);
        }
    }

    #[test]
    fn blocking_pop_unblocks_on_push() {
        let (_f, mut p, mut c) = small();
        let t = std::thread::spawn(move || c.pop().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        p.push(77).unwrap();
        assert_eq!(t.join().unwrap(), 77);
    }

    #[test]
    fn peek_range_window() {
        let (_f, mut p, mut c) = small();
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        {
            let w = c.peek_range(3).unwrap();
            assert_eq!(w.len(), 3);
            assert_eq!(w[0], 0);
            assert_eq!(w[1], 1);
            assert_eq!(w[2], 2);
            let sum: u64 = w.iter().sum();
            assert_eq!(sum, 3);
        }
        // window did not consume
        assert_eq!(c.occupancy(), 4);
        assert_eq!(c.advance(2), 2);
        assert_eq!(c.try_pop().unwrap(), 2);
    }

    #[test]
    fn peek_range_grows_ring_when_larger_than_capacity() {
        let (f, mut p, mut c) = small();
        let t = std::thread::spawn(move || {
            for i in 0..10 {
                p.push(i).unwrap();
            }
            p
        });
        {
            let w = c.peek_range(10).unwrap();
            assert_eq!(w.len(), 10);
            for i in 0..10 {
                assert_eq!(w[i as usize], i as u64);
            }
        }
        assert!(f.capacity() >= 10);
        assert!(f.snapshot().resizes >= 1);
        let _p = t.join().unwrap();
    }

    #[test]
    fn peek_range_fails_when_stream_too_short() {
        let (_f, mut p, mut c) = small();
        p.try_push(1).unwrap();
        p.close();
        assert!(c.peek_range(3).is_err());
        // the single element is still poppable
        assert_eq!(c.pop().unwrap(), 1);
    }

    #[test]
    fn pop_range_batches() {
        let (_f, mut p, mut c) = small();
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        let got = c.pop_range(3, &mut out).unwrap();
        assert_eq!(got, 3);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn signals_synchronous_with_data() {
        let (_f, mut p, mut c) = small();
        p.try_push_signal(10, Signal::SoS).unwrap();
        p.try_push(11).unwrap();
        p.try_push_signal(12, Signal::EoS).unwrap();
        assert_eq!(c.try_pop_signal().unwrap(), (10, Signal::SoS));
        assert_eq!(c.try_pop_signal().unwrap(), (11, Signal::None));
        assert_eq!(c.try_pop_signal().unwrap(), (12, Signal::EoS));
    }

    #[test]
    fn async_signal_out_of_band() {
        let (f, mut p, mut c) = small();
        p.try_push(1).unwrap();
        p.try_push(2).unwrap();
        f.post_async(Signal::Flush);
        // visible immediately, before any data is consumed
        assert_eq!(c.take_async(), Some(Signal::Flush));
        assert_eq!(c.take_async(), None);
        assert_eq!(c.try_pop().unwrap(), 1);
    }

    #[test]
    fn allocate_commits_on_drop() {
        let (_f, mut p, mut c) = small();
        {
            let mut g = p.allocate().unwrap();
            *g = 42;
        }
        assert_eq!(c.try_pop().unwrap(), 42);
    }

    #[test]
    fn allocate_with_signal() {
        let (_f, mut p, mut c) = small();
        {
            let mut g = p.allocate().unwrap();
            *g = 7;
            g.set_signal(Signal::EoS);
        }
        assert_eq!(c.try_pop_signal().unwrap(), (7, Signal::EoS));
    }

    #[test]
    fn allocate_abort_discards() {
        let (_f, mut p, mut c) = small();
        {
            let mut g = p.allocate().unwrap();
            *g = 13;
            g.abort();
        }
        assert_eq!(c.try_pop(), Err(TryPopError::Empty));
        p.try_push(1).unwrap();
        assert_eq!(c.try_pop().unwrap(), 1);
    }

    #[test]
    fn allocate_read_back() {
        let (_f, mut p, mut c) = small();
        {
            let mut g = p.allocate().unwrap();
            *g = 5;
            assert_eq!(*g, 5); // Deref sees what DerefMut wrote
        }
        assert_eq!(c.try_pop().unwrap(), 5);
    }

    #[test]
    fn stats_counters() {
        let (f, mut p, mut c) = small();
        for i in 0..3 {
            p.try_push(i).unwrap();
        }
        c.try_pop().unwrap();
        let s = f.snapshot();
        assert_eq!(s.pushed, 3);
        assert_eq!(s.popped, 1);
        assert_eq!(s.occupancy, 2);
    }

    #[test]
    fn cross_thread_stress_with_concurrent_resizes() {
        let (f, mut p, mut c) = fifo_with::<u64>(FifoConfig {
            initial_capacity: 4,
            max_capacity: 1 << 12,
            min_capacity: 2,
        });
        const N: u64 = 200_000;
        let monitor = {
            let f = f.clone();
            std::thread::spawn(move || {
                // Aggressively resize up and down while traffic flows.
                for i in 0..500 {
                    if i % 2 == 0 {
                        f.grow();
                    } else {
                        f.shrink();
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
            })
        };
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                p.push(i).unwrap();
            }
        });
        let mut expected = 0u64;
        while let Ok(v) = c.pop() {
            assert_eq!(v, expected, "reordered or lost element under resize");
            expected += 1;
        }
        assert_eq!(expected, N);
        producer.join().unwrap();
        monitor.join().unwrap();
    }

    #[test]
    fn drop_with_heap_elements_no_leak() {
        let (_f, mut p, c) = fifo_with::<String>(FifoConfig::starting_at(8));
        for i in 0..5 {
            p.try_push(format!("value-{i}")).unwrap();
        }
        drop(c); // strings are dropped by Shared::drop when _f and p go too
        drop(p);
    }

    #[test]
    fn batch_push_fills_and_blocks_correctly() {
        let (_f, mut p, mut c) = small();
        let mut items: Vec<u64> = (0..10).collect();
        // capacity 4: only 4 fit non-blockingly
        let n = p.try_push_batch(&mut items).unwrap();
        assert_eq!(n, 4);
        assert_eq!(items.len(), 6);
        assert_eq!(c.try_pop().unwrap(), 0);
        // blocking batch completes once a consumer drains concurrently
        let consumer = std::thread::spawn(move || {
            let mut got = vec![0u64]; // already popped
            while let Ok(v) = c.pop() {
                got.push(v);
            }
            got
        });
        p.push_batch(&mut items).unwrap();
        assert!(items.is_empty());
        p.close();
        drop(p);
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn batch_push_to_closed_consumer_errs() {
        let (_f, mut p, c) = small();
        drop(c);
        let mut items = vec![1u64, 2];
        assert!(p.try_push_batch(&mut items).is_err());
        assert_eq!(items.len(), 2, "items must be handed back");
        assert!(p.push_batch(&mut items).is_err());
    }

    #[test]
    fn batch_push_empty_is_noop() {
        let (_f, mut p, _c) = small();
        let mut items: Vec<u64> = Vec::new();
        assert_eq!(p.try_push_batch(&mut items).unwrap(), 0);
        p.push_batch(&mut items).unwrap();
    }

    #[test]
    fn fixed_config_never_resizes() {
        let (f, mut p, _c) = fifo_with::<u32>(FifoConfig::fixed(8));
        for i in 0..8 {
            p.try_push(i).unwrap();
        }
        assert!(!f.grow());
        assert!(!f.shrink());
        assert_eq!(f.capacity(), 8);
    }
}
