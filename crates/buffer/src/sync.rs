//! Concurrency primitives, swappable for [loom] model checking.
//!
//! The lock-free code in this crate ([`crate::spsc`]) is written against
//! this module instead of `std` directly. In a normal build it re-exports
//! the `std` types (plus a zero-cost [`UnsafeCell`] wrapper exposing loom's
//! closure-based access API). Under `RUSTFLAGS="--cfg loom"` it re-exports
//! loom's instrumented equivalents, which exhaustively explore every
//! interleaving the C11 memory model permits — including weak-memory
//! reorderings a test machine may never exhibit.
//!
//! Run the model checks with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p raft-buffer --test loom_spsc --release
//! ```
//!
//! [loom]: https://docs.rs/loom

#[cfg(loom)]
pub(crate) use loom::{
    cell::UnsafeCell,
    sync::{
        atomic::{fence, AtomicBool, AtomicUsize, Ordering},
        Arc,
    },
    thread::yield_now,
};

#[cfg(not(loom))]
pub(crate) use std::{
    sync::{
        atomic::{fence, AtomicBool, AtomicUsize, Ordering},
        Arc,
    },
    thread::yield_now,
};

/// CPU relax hint used inside busy-wait loops. Under loom a busy spin would
/// starve the model checker (it can only switch threads at loom operations),
/// so every pause must be a loom yield instead.
#[cfg(not(loom))]
#[inline]
pub(crate) fn spin_loop() {
    std::hint::spin_loop();
}

/// CPU relax hint (loom backend: a model-checker yield).
#[cfg(loom)]
#[inline]
pub(crate) fn spin_loop() {
    loom::thread::yield_now();
}

/// `std::cell::UnsafeCell` behind loom's `with`/`with_mut` closure API, so
/// the same call sites compile against either backend. The closures receive
/// raw pointers; dereferencing them carries exactly the usual `UnsafeCell`
/// obligations (no aliasing `&mut`, no data races — here guaranteed by the
/// SPSC head/tail protocol).
#[cfg(not(loom))]
#[derive(Debug)]
pub(crate) struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(loom))]
impl<T> UnsafeCell<T> {
    pub(crate) fn new(data: T) -> Self {
        UnsafeCell(std::cell::UnsafeCell::new(data))
    }

    /// Shared access to the contents as `*const T`.
    #[inline]
    pub(crate) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get())
    }

    /// Exclusive access to the contents as `*mut T`. The *caller's* protocol
    /// (not the borrow checker) must guarantee exclusivity — which is why
    /// loom's instrumented version exists to check it.
    #[inline]
    pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }
}
