//! Lock-free resize exclusion: a Dekker-style membership fence.
//!
//! The paper's monitor thread resizes a live FIFO while the producer and
//! consumer keep streaming ("lock-free exclusion", §4). The original
//! implementation guarded every push/pop with a shared `RwLock` read
//! acquisition — correct, but it puts an atomic RMW on the hot path and the
//! lock word itself becomes a contended cache line between the endpoints.
//!
//! [`ResizeFence`] replaces that with an *arena membership* protocol:
//!
//! * Each endpoint owns a cache-padded `active` flag. It raises the flag on
//!   entry to a ring critical section (one uncontended SeqCst swap on a line
//!   nobody else writes), checks `pending`, and drops it with a plain
//!   Release store on exit. Batch operations ([`WriteSlice`], `pop_slice`)
//!   hold one membership across the whole batch, amortizing entry to
//!   fractions of a cycle per element — and fixed-capacity FIFOs skip the
//!   fence altogether.
//! * The monitor raises `pending`, then waits for both `active` flags to
//!   drop. Endpoints that see `pending` at entry back out, wait out the
//!   resize, and re-enter.
//!
//! [`WriteSlice`]: crate::fifo::WriteSlice
//!
//! Entry is where the memory-model subtlety lives; it is the classic
//! store-buffering (Dekker) pattern:
//!
//! ```text
//! endpoint:  active.swap(true, SeqCst);  pending.load(SeqCst)
//! monitor:   pending.swap(true, SeqCst); active.load(SeqCst)
//! ```
//!
//! All four accesses are SeqCst, so they have a single total order `S`
//! consistent with each thread's program order. If the endpoint's `pending`
//! load misses the monitor's store, then in `S` that load — and the
//! endpoint's `active` swap before it — precede the monitor's `pending`
//! swap, so the monitor's later `active` load must see the endpoint's swap:
//! at least one side always sees the other. Both may "lose" (endpoint backs
//! out *and* monitor waits one extra round) — that is safe, just one wasted
//! retry. With anything weaker, both writes could sit in store buffers
//! while both loads read stale values, and an endpoint would stream into a
//! ring that is mid-`memcpy`. The swap (one locked RMW on x86) is what buys
//! the store→load ordering; a plain store would need a full fence after it.
//!
//! Publication of the resized storage itself rides on the flag edges: the
//! endpoint's `active = false` is a Release store (its last ring access
//! happens-before it), the monitor's load of `active` is Acquire; after the
//! resize, the monitor's `pending = false` Release pairs with the endpoint's
//! Acquire re-check, so the new slot array is fully visible on re-entry.
//!
//! The fence is built on [`crate::sync`], so `--cfg loom` model-checks the
//! protocol (see `tests/loom_fence.rs`).

use crossbeam::utils::CachePadded;

use crate::sync::{
    AtomicBool,
    Ordering::{Acquire, Relaxed, Release, SeqCst},
};

/// Which endpoint an [`ResizeFence`] operation concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The producing endpoint.
    Producer,
    /// The consuming endpoint.
    Consumer,
}

/// Dekker-style membership fence excluding endpoint ring access from
/// monitor-driven resizes. See the module docs for the protocol.
#[derive(Debug)]
pub struct ResizeFence {
    /// Raised by the resizer before it waits out the endpoints. Endpoints
    /// poll it with a Relaxed load on every operation.
    pending: AtomicBool,
    /// Producer is inside the arena (may touch ring storage).
    producer_active: CachePadded<AtomicBool>,
    /// Consumer is inside the arena.
    consumer_active: CachePadded<AtomicBool>,
}

impl Default for ResizeFence {
    fn default() -> Self {
        Self::new()
    }
}

impl ResizeFence {
    /// A fence with both endpoints outside the arena and no resize pending.
    pub fn new() -> Self {
        ResizeFence {
            pending: AtomicBool::new(false),
            producer_active: CachePadded::new(AtomicBool::new(false)),
            consumer_active: CachePadded::new(AtomicBool::new(false)),
        }
    }

    #[inline]
    fn active(&self, role: Role) -> &AtomicBool {
        match role {
            Role::Producer => &self.producer_active,
            Role::Consumer => &self.consumer_active,
        }
    }

    /// Fast-path check: is a resize waiting for this endpoint to leave?
    ///
    /// One Relaxed load — the endpoint calls this at the top of every
    /// operation *while already inside the arena*. Relaxed is enough for the
    /// check itself because missing a freshly-raised flag for a few
    /// operations is harmless: the monitor cannot proceed until this
    /// endpoint's `active` flag drops, so the ring is never mutated under us.
    #[inline]
    pub fn resize_pending(&self) -> bool {
        self.pending.load(Relaxed)
    }

    /// Enter the arena as `role`, waiting out any pending resize.
    ///
    /// On return the endpoint's `active` flag is raised, no resize is in
    /// progress, and any storage mutation by a previous resize is visible
    /// (Acquire on the `pending` re-check pairs with the resizer's Release
    /// in [`end_resize`](Self::end_resize)).
    pub fn enter(&self, role: Role) {
        let active = self.active(role);
        loop {
            // Dekker: the SeqCst RMW orders our `active` write before the
            // `pending` load in the SC total order, so this load and the
            // resizer's `active` load can't both miss (see module docs).
            active.swap(true, SeqCst);
            if !self.pending.load(SeqCst) {
                return;
            }
            // Resize in flight — back out and wait for it to finish. Resizes
            // are short (one copy) and there is no wake signal, so the shared
            // spin-then-yield strategy applies.
            active.store(false, Release);
            let mut waiter = crate::wait::Waiter::new(crate::wait::WaitStrategy::spinning());
            while self.pending.load(Acquire) {
                waiter.pause();
            }
        }
    }

    /// Leave the arena as `role` (before parking, on drop, or when backing
    /// off for a resize). Release: orders all our ring accesses before the
    /// flag drop the resizer acquires.
    #[inline]
    pub fn exit(&self, role: Role) {
        self.active(role).store(false, Release);
    }

    /// Resizer side: raise `pending` and wait until both endpoints have left
    /// the arena. On return the resizer has exclusive access to the ring
    /// storage (endpoints' Release flag-drops acquired) until
    /// [`end_resize`](Self::end_resize).
    ///
    /// Must not be called concurrently with itself — resizer-vs-resizer
    /// exclusion is the caller's job (the FIFO keeps a lock for that; it is
    /// simply no longer on the endpoint hot path).
    pub fn begin_resize(&self) {
        // Dekker: SeqCst RMW orders the `pending` write before the `active`
        // loads below in the SC total order. The SeqCst loads also acquire
        // the endpoints' Release flag-drops, ordering their last ring access
        // before our mutation.
        self.pending.swap(true, SeqCst);
        let mut waiter = crate::wait::Waiter::new(crate::wait::WaitStrategy::spinning());
        while self.producer_active.load(SeqCst) {
            waiter.pause();
        }
        waiter.reset();
        while self.consumer_active.load(SeqCst) {
            waiter.pause();
        }
    }

    /// Resizer side: publish the mutated storage (Release) and let endpoints
    /// re-enter.
    pub fn end_resize(&self) {
        self.pending.store(false, Release);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn enter_exit_toggle_active() {
        let f = ResizeFence::new();
        f.enter(Role::Producer);
        assert!(f.producer_active.load(Relaxed));
        assert!(!f.consumer_active.load(Relaxed));
        f.exit(Role::Producer);
        assert!(!f.producer_active.load(Relaxed));
    }

    #[test]
    fn begin_resize_blocks_entry_until_end() {
        let f = std::sync::Arc::new(ResizeFence::new());
        f.begin_resize();
        assert!(f.resize_pending());
        let f2 = f.clone();
        let t = std::thread::spawn(move || {
            // blocks until end_resize, then enters
            f2.enter(Role::Consumer);
            f2.exit(Role::Consumer);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!f.consumer_active.load(Relaxed));
        f.end_resize();
        t.join().unwrap();
        assert!(!f.resize_pending());
    }

    #[test]
    fn begin_resize_waits_for_occupants() {
        let f = std::sync::Arc::new(ResizeFence::new());
        f.enter(Role::Producer);
        let f2 = f.clone();
        let t = std::thread::spawn(move || {
            f2.begin_resize();
            f2.end_resize();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // resizer is stuck on our raised flag
        assert!(f.resize_pending());
        f.exit(Role::Producer);
        t.join().unwrap();
    }
}
