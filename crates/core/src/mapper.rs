//! Kernel-to-resource mapping.
//!
//! §4.1 of the paper: "the initial mapping algorithm provided with RaftLib
//! is a simple one (similar to a spanning tree) that attempts to place the
//! fewest number of 'streams' over high latency connections (i.e., across
//! physical compute cores or TCP links). It begins with a priority queue
//! with the highest latency link getting the highest priority, finds the
//! partition with the minimal number of links crossing it then proceeds to
//! partition based on the next highest latency link for these two
//! partitions. If no difference in latency exists ... then computation is
//! shared evenly amongst the cores. No claim is made to optimality for this
//! simple algorithm, however it is fast."
//!
//! The resource topology is a tree of latency domains (machine → socket →
//! core; network → machine). The partitioner recursively bisects the kernel
//! graph at each latency boundary, greedily minimizing the number of
//! streams crossing the cut while keeping the two sides balanced by the
//! capacity (core count) of each side.

use raft_buffer::LinkAlloc;

/// A leaf compute resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// Display name (e.g. `"node0/socket0/core3"`). Segments are
    /// `/`-separated, outermost first; a `procN` segment marks a process
    /// boundary inside a machine (see [`classify_link`]).
    pub name: String,
}

impl Resource {
    /// The machine component: everything before the first `/` (the whole
    /// name if there is no `/`).
    pub fn machine(&self) -> &str {
        self.name.split('/').next().unwrap_or(&self.name)
    }

    /// The process component, if the name carries a `procN` segment
    /// (`"node0/proc1/core3"` → `Some("proc1")`). Names without one are
    /// treated as a single process per machine.
    pub fn process(&self) -> Option<&str> {
        self.name
            .split('/')
            .find(|seg| seg.starts_with("proc") && seg[4..].bytes().all(|b| b.is_ascii_digit()))
    }
}

/// Select the link allocator for a stream between two placed kernels —
/// the paper's "link allocation type is selected" step (§4), resolved
/// from the placement: same process → heap ring, same machine but
/// different processes → shared-memory segment, different machines → TCP.
/// DESIGN §14 has the full matrix.
pub fn classify_link(src: &Resource, dst: &Resource) -> LinkAlloc {
    if src.machine() != dst.machine() {
        return LinkAlloc::Tcp;
    }
    match (src.process(), dst.process()) {
        (Some(a), Some(b)) if a != b => LinkAlloc::Shm,
        _ => LinkAlloc::Heap,
    }
}

/// A latency domain: either a leaf resource or a group of subdomains whose
/// members communicate at `internal_latency_ns` with each other.
#[derive(Debug, Clone)]
pub enum Domain {
    /// A single schedulable resource (one core / one accelerator slot).
    Leaf(Resource),
    /// Subdomains joined by links of the given latency.
    Group {
        /// Cost of crossing between children, in nanoseconds.
        internal_latency_ns: u64,
        /// Child domains.
        children: Vec<Domain>,
    },
}

impl Domain {
    /// A host with `cores` symmetric cores (uniform intra-host latency).
    pub fn symmetric_host(name: &str, cores: usize, core_latency_ns: u64) -> Domain {
        Domain::Group {
            internal_latency_ns: core_latency_ns,
            children: (0..cores)
                .map(|c| {
                    Domain::Leaf(Resource {
                        name: format!("{name}/core{c}"),
                    })
                })
                .collect(),
        }
    }

    /// A host partitioned into `procs` worker processes of
    /// `cores_per_proc` cores each. Crossing a process boundary costs
    /// `proc_latency_ns` (> core latency, < network latency), so the
    /// partitioner keeps chatty kernels inside one process and
    /// [`classify_link`] gives the cut edges shared-memory rings.
    pub fn multi_process_host(
        name: &str,
        procs: usize,
        cores_per_proc: usize,
        proc_latency_ns: u64,
        core_latency_ns: u64,
    ) -> Domain {
        Domain::Group {
            internal_latency_ns: proc_latency_ns,
            children: (0..procs)
                .map(|p| {
                    Domain::symmetric_host(
                        &format!("{name}/proc{p}"),
                        cores_per_proc,
                        core_latency_ns,
                    )
                })
                .collect(),
        }
    }

    /// A cluster of hosts joined by a network of the given latency.
    pub fn cluster(hosts: Vec<Domain>, network_latency_ns: u64) -> Domain {
        Domain::Group {
            internal_latency_ns: network_latency_ns,
            children: hosts,
        }
    }

    /// Total leaf count.
    pub fn capacity(&self) -> usize {
        match self {
            Domain::Leaf(_) => 1,
            Domain::Group { children, .. } => children.iter().map(Domain::capacity).sum(),
        }
    }

    fn leaves(&self, out: &mut Vec<Resource>) {
        match self {
            Domain::Leaf(r) => out.push(r.clone()),
            Domain::Group { children, .. } => {
                for c in children {
                    c.leaves(out);
                }
            }
        }
    }
}

/// The kernel communication graph handed to the mapper: `n` kernels and
/// weighted edges (weight = expected traffic; 1 if unknown).
#[derive(Debug, Clone, Default)]
pub struct CommGraph {
    /// Number of kernels.
    pub n: usize,
    /// `(a, b, weight)` undirected communication edges.
    pub edges: Vec<(usize, usize, u64)>,
}

impl CommGraph {
    /// Graph over `n` kernels with no edges yet.
    pub fn new(n: usize) -> Self {
        CommGraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Add a communication edge.
    pub fn add_edge(&mut self, a: usize, b: usize, weight: u64) {
        assert!(a < self.n && b < self.n && a != b);
        self.edges.push((a, b, weight));
    }
}

/// Mapping result: `assignment[k]` is the resource for kernel `k`, plus the
/// total weight of streams that cross latency domains, scored by latency.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// Chosen resource per kernel.
    pub assignment: Vec<Resource>,
    /// Σ (edge weight × link latency) over cut edges — the objective the
    /// partitioner minimizes.
    pub cut_cost_ns: u64,
}

/// Map `graph` onto `topology` with the paper's recursive latency-priority
/// bisection.
pub fn map_kernels(graph: &CommGraph, topology: &Domain) -> Mapping {
    let mut cut_cost = 0u64;
    let mut assignment: Vec<Option<Resource>> = vec![None; graph.n];
    let all: Vec<usize> = (0..graph.n).collect();
    place(graph, topology, &all, &mut assignment, &mut cut_cost);
    Mapping {
        assignment: assignment.into_iter().map(Option::unwrap).collect(),
        cut_cost_ns: cut_cost,
    }
}

fn place(
    graph: &CommGraph,
    domain: &Domain,
    kernels: &[usize],
    assignment: &mut [Option<Resource>],
    cut_cost: &mut u64,
) {
    match domain {
        Domain::Leaf(r) => {
            // Everything that remains shares this resource.
            for &k in kernels {
                assignment[k] = Some(r.clone());
            }
        }
        Domain::Group {
            internal_latency_ns,
            children,
        } => {
            // Split `kernels` into per-child groups, proportional to each
            // child's capacity, minimizing cut weight greedily.
            let mut remaining: Vec<usize> = kernels.to_vec();
            let total_cap: usize = children.iter().map(Domain::capacity).sum();
            for (ci, child) in children.iter().enumerate() {
                let is_last = ci == children.len() - 1;
                let quota = if is_last {
                    remaining.len()
                } else {
                    // proportional share, at least 0
                    (kernels.len() * child.capacity())
                        .div_ceil(total_cap)
                        .min(remaining.len())
                };
                let group = extract_group(graph, &mut remaining, quota);
                // Edges from this group to kernels left in `remaining` are
                // cut at this domain's latency.
                for &(a, b, w) in &graph.edges {
                    let a_in = group.contains(&a);
                    let b_in = group.contains(&b);
                    let a_rem = remaining.contains(&a);
                    let b_rem = remaining.contains(&b);
                    if (a_in && b_rem) || (b_in && a_rem) {
                        *cut_cost += w * internal_latency_ns;
                    }
                }
                place(graph, child, &group, assignment, cut_cost);
                if remaining.is_empty() {
                    // Later children get nothing; still recurse for shape
                    // correctness? No: nothing left to place.
                    break;
                }
            }
        }
    }
}

/// Min-cut group extraction: grow a group greedily by absorbing the
/// remaining kernel with the strongest ties to the group; try every seed
/// and keep the grouping with the smallest cut weight. Kernel graphs are
/// small (tens of kernels), so the O(n² · e) cost is negligible next to
/// queue allocation.
fn extract_group(graph: &CommGraph, remaining: &mut Vec<usize>, quota: usize) -> Vec<usize> {
    let quota = quota.min(remaining.len());
    if quota == 0 {
        return Vec::new();
    }
    if quota == remaining.len() {
        return std::mem::take(remaining);
    }

    let grow = |seed: usize| -> Vec<usize> {
        let mut group = vec![seed];
        let mut pool: Vec<usize> = remaining.iter().copied().filter(|&k| k != seed).collect();
        while group.len() < quota {
            let affinity = |k: usize| -> u64 {
                graph
                    .edges
                    .iter()
                    .filter(|(a, b, _)| {
                        (group.contains(a) && *b == k) || (group.contains(b) && *a == k)
                    })
                    .map(|(_, _, w)| *w)
                    .sum()
            };
            // Strongest ties win; ties broken toward the lowest kernel
            // index for determinism.
            let best = (0..pool.len())
                .max_by(|&i, &j| {
                    affinity(pool[i])
                        .cmp(&affinity(pool[j]))
                        .then(pool[j].cmp(&pool[i]))
                })
                .unwrap();
            group.push(pool.swap_remove(best));
        }
        group
    };

    let cut_weight = |group: &[usize]| -> u64 {
        graph
            .edges
            .iter()
            .filter(|(a, b, _)| {
                let a_in = group.contains(a);
                let b_in = group.contains(b);
                let a_rem = remaining.contains(a);
                let b_rem = remaining.contains(b);
                (a_in && b_rem && !b_in) || (b_in && a_rem && !a_in)
            })
            .map(|(_, _, w)| *w)
            .sum()
    };

    let mut best_group: Option<(u64, Vec<usize>)> = None;
    for &seed in remaining.iter() {
        let group = grow(seed);
        let cut = cut_weight(&group);
        let better = match &best_group {
            None => true,
            Some((best_cut, _)) => cut < *best_cut,
        };
        if better {
            best_group = Some((cut, group));
        }
    }
    let (_, group) = best_group.unwrap();
    remaining.retain(|k| !group.contains(k));
    group
}

/// All leaves of a topology (for round-robin fallback mapping).
pub fn leaves(topology: &Domain) -> Vec<Resource> {
    let mut out = Vec::new();
    topology.leaves(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pipeline of 4 kernels on a 2-host cluster: the single cross-host cut
    /// should land on exactly one pipeline edge.
    #[test]
    fn pipeline_cut_once_across_network() {
        let mut g = CommGraph::new(4);
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 10);
        g.add_edge(2, 3, 10);
        let topo = Domain::cluster(
            vec![
                Domain::symmetric_host("a", 2, 100),
                Domain::symmetric_host("b", 2, 100),
            ],
            10_000,
        );
        let m = map_kernels(&g, &topo);
        // Exactly one pipeline edge crosses the network: cost 10 * 10_000,
        // plus possibly intra-host cuts at 100.
        let net_cuts = m.cut_cost_ns / 100_000;
        assert_eq!(net_cuts, 1, "expected exactly 1 network cut: {m:?}");
        // Both hosts used (2 kernels each).
        let host_a = m
            .assignment
            .iter()
            .filter(|r| r.name.starts_with("a/"))
            .count();
        assert_eq!(host_a, 2, "{:?}", m.assignment);
    }

    /// Uniform latency: kernels spread evenly across cores (the paper's
    /// fallback behaviour).
    #[test]
    fn uniform_latency_spreads_evenly() {
        let mut g = CommGraph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, 1);
        let topo = Domain::symmetric_host("host", 4, 100);
        let m = map_kernels(&g, &topo);
        let mut names: Vec<&str> = m.assignment.iter().map(|r| r.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4, "each kernel on its own core: {m:?}");
    }

    /// Heavily-communicating pair sticks together when capacity allows.
    #[test]
    fn chatty_pair_stays_on_one_host() {
        let mut g = CommGraph::new(4);
        g.add_edge(0, 1, 1000); // chatty pair
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, 1);
        let topo = Domain::cluster(
            vec![
                Domain::symmetric_host("a", 2, 100),
                Domain::symmetric_host("b", 2, 100),
            ],
            10_000,
        );
        let m = map_kernels(&g, &topo);
        let host_of = |k: usize| m.assignment[k].name.split('/').next().unwrap().to_string();
        assert_eq!(host_of(0), host_of(1), "chatty pair split: {m:?}");
    }

    #[test]
    fn more_kernels_than_cores_share() {
        let mut g = CommGraph::new(6);
        for i in 0..5 {
            g.add_edge(i, i + 1, 1);
        }
        let topo = Domain::symmetric_host("host", 2, 100);
        let m = map_kernels(&g, &topo);
        assert_eq!(m.assignment.len(), 6);
        // both cores used
        let core0 = m
            .assignment
            .iter()
            .filter(|r| r.name.ends_with("core0"))
            .count();
        assert!((1..=5).contains(&core0));
    }

    #[test]
    fn single_kernel_single_core() {
        let g = CommGraph::new(1);
        let topo = Domain::symmetric_host("h", 1, 10);
        let m = map_kernels(&g, &topo);
        assert_eq!(m.assignment[0].name, "h/core0");
        assert_eq!(m.cut_cost_ns, 0);
    }

    /// The selection matrix of DESIGN §14: heap within a process, shm
    /// across processes on one machine, TCP across machines.
    #[test]
    fn classify_link_selection_matrix() {
        let r = |name: &str| Resource { name: name.into() };
        // Same process (explicit proc segment, or none at all).
        assert_eq!(
            classify_link(&r("a/proc0/core0"), &r("a/proc0/core1")),
            LinkAlloc::Heap
        );
        assert_eq!(classify_link(&r("a/core0"), &r("a/core1")), LinkAlloc::Heap);
        // Same machine, different processes.
        assert_eq!(
            classify_link(&r("a/proc0/core0"), &r("a/proc1/core0")),
            LinkAlloc::Shm
        );
        // Only one side names a process: conservatively co-resident.
        assert_eq!(
            classify_link(&r("a/proc0/core0"), &r("a/core1")),
            LinkAlloc::Heap
        );
        // Different machines always go over the wire, proc or not.
        assert_eq!(
            classify_link(&r("a/proc0/core0"), &r("b/proc0/core0")),
            LinkAlloc::Tcp
        );
        assert_eq!(classify_link(&r("a/core0"), &r("b/core0")), LinkAlloc::Tcp);
        // "processor" is not a proc segment; "proc12" is.
        assert_eq!(r("a/processor/core0").process(), None);
        assert_eq!(r("a/proc12/core0").process(), Some("proc12"));
    }

    /// A chatty pair placed by the partitioner stays inside one process of
    /// a multi-process host; the cut edge classifies as shm.
    #[test]
    fn multi_process_host_cuts_classify_shm() {
        let mut g = CommGraph::new(4);
        g.add_edge(0, 1, 1000); // chatty pair
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, 1);
        let topo = Domain::multi_process_host("node0", 2, 2, 2_000, 100);
        assert_eq!(topo.capacity(), 4);
        let m = map_kernels(&g, &topo);
        let chatty = classify_link(&m.assignment[0], &m.assignment[1]);
        assert_eq!(chatty, LinkAlloc::Heap, "chatty pair split: {m:?}");
        // Some pipeline edge crosses the process boundary.
        let crossings = (0..3)
            .filter(|&i| classify_link(&m.assignment[i], &m.assignment[i + 1]) == LinkAlloc::Shm)
            .count();
        assert!(crossings >= 1, "no shm edge: {m:?}");
    }

    #[test]
    fn capacity_counts_leaves() {
        let topo = Domain::cluster(
            vec![
                Domain::symmetric_host("a", 3, 1),
                Domain::symmetric_host("b", 5, 1),
            ],
            100,
        );
        assert_eq!(topo.capacity(), 8);
        assert_eq!(leaves(&topo).len(), 8);
    }
}
