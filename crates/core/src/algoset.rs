//! Synonymous kernel groupings with runtime algorithm swap.
//!
//! §4.2 of the paper: "RaftLib gives the user the ability to specify
//! synonymous kernel groupings that the run-time can swap out to optimize
//! the computation. ... For instance, a version of the UNIX utility grep
//! could be implemented with multiple search algorithms ... they can all be
//! expressed as a 'search' kernel." §5 then demonstrates the payoff:
//! manually swapping the search kernel from Aho-Corasick to
//! Boyer-Moore-Horspool removed the pipeline bottleneck.
//!
//! [`AlgoSet`] wraps N alternative kernels that share a port signature; the
//! active one handles every `run()`. An [`AlgoSwitch`] handle (cloneable,
//! thread-safe) swaps the active algorithm between `run()` invocations —
//! from a monitor callback, an operator thread, or the benchmark harness.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::kernel::{KStatus, Kernel, PortSpec};
use crate::port::Context;

/// A group of interchangeable kernel implementations.
pub struct AlgoSet {
    alternatives: Vec<Box<dyn Kernel>>,
    active: Arc<AtomicUsize>,
    /// Swap counter (diagnostics).
    swaps: Arc<AtomicUsize>,
    label: String,
}

/// Thread-safe handle that selects which alternative runs.
#[derive(Debug, Clone)]
pub struct AlgoSwitch {
    active: Arc<AtomicUsize>,
    swaps: Arc<AtomicUsize>,
    count: usize,
}

impl AlgoSwitch {
    /// Index of the currently active alternative.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Activate alternative `idx`. Panics if out of range. Takes effect at
    /// the next `run()` boundary (kernels are sequential, so mid-run state
    /// is never torn).
    pub fn select(&self, idx: usize) {
        assert!(
            idx < self.count,
            "algo index {idx} out of range ({} alternatives)",
            self.count
        );
        if self.active.swap(idx, Ordering::Relaxed) != idx {
            self.swaps.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of alternatives.
    pub fn count(&self) -> usize {
        self.count
    }

    /// How many effective swaps have occurred.
    pub fn swap_count(&self) -> usize {
        self.swaps.load(Ordering::Relaxed)
    }
}

impl AlgoSet {
    /// Build a set from alternatives with identical port signatures.
    /// Panics if the set is empty or signatures differ (names + types, both
    /// directions, in order).
    pub fn new(label: impl Into<String>, alternatives: Vec<Box<dyn Kernel>>) -> Self {
        assert!(!alternatives.is_empty(), "AlgoSet needs >= 1 alternative");
        let reference = alternatives[0].ports();
        for alt in &alternatives[1..] {
            let spec = alt.ports();
            assert!(
                specs_match(&reference, &spec),
                "AlgoSet alternatives must share a port signature: {:?} vs {:?}",
                reference,
                spec
            );
        }
        AlgoSet {
            alternatives,
            active: Arc::new(AtomicUsize::new(0)),
            swaps: Arc::new(AtomicUsize::new(0)),
            label: label.into(),
        }
    }

    /// The swap handle.
    pub fn switch(&self) -> AlgoSwitch {
        AlgoSwitch {
            active: self.active.clone(),
            swaps: self.swaps.clone(),
            count: self.alternatives.len(),
        }
    }
}

fn specs_match(a: &PortSpec, b: &PortSpec) -> bool {
    let same = |x: &[crate::kernel::PortDef], y: &[crate::kernel::PortDef]| {
        x.len() == y.len()
            && x.iter()
                .zip(y)
                .all(|(p, q)| p.name == q.name && p.type_id == q.type_id)
    };
    same(&a.inputs, &b.inputs) && same(&a.outputs, &b.outputs)
}

impl Kernel for AlgoSet {
    fn ports(&self) -> PortSpec {
        self.alternatives[0].ports()
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let idx = self
            .active
            .load(Ordering::Relaxed)
            .min(self.alternatives.len() - 1);
        self.alternatives[idx].run(ctx)
    }

    fn name(&self) -> String {
        format!("algoset:{}", self.label)
    }

    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        // Replicate only if every alternative can; replicas share the same
        // switch so a swap applies to the whole replica group.
        let alternatives: Option<Vec<Box<dyn Kernel>>> = self
            .alternatives
            .iter()
            .map(|a| a.clone_replica())
            .collect();
        alternatives.map(|alternatives| {
            Box::new(AlgoSet {
                alternatives,
                active: self.active.clone(),
                swaps: self.swaps.clone(),
                label: self.label.clone(),
            }) as Box<dyn Kernel>
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Tag(u64);
    impl Kernel for Tag {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u64>("in").output::<u64>("out")
        }
        fn run(&mut self, ctx: &Context) -> KStatus {
            let mut input = ctx.input::<u64>("in");
            match input.pop() {
                Ok(v) => {
                    drop(input);
                    let mut out = ctx.output::<u64>("out");
                    if out.push(v * 10 + self.0).is_err() {
                        return KStatus::Stop;
                    }
                    KStatus::Proceed
                }
                Err(_) => KStatus::Stop,
            }
        }
        fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
            Some(Box::new(Tag(self.0)))
        }
    }

    struct OtherPorts;
    impl Kernel for OtherPorts {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u32>("in").output::<u32>("out")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }

    #[test]
    fn switch_selects_alternative() {
        let set = AlgoSet::new("tag", vec![Box::new(Tag(1)), Box::new(Tag(2))]);
        let sw = set.switch();
        assert_eq!(sw.active(), 0);
        sw.select(1);
        assert_eq!(sw.active(), 1);
        assert_eq!(sw.swap_count(), 1);
        sw.select(1); // no-op
        assert_eq!(sw.swap_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_out_of_range_panics() {
        let set = AlgoSet::new("tag", vec![Box::new(Tag(1))]);
        set.switch().select(3);
    }

    #[test]
    #[should_panic(expected = "share a port signature")]
    fn mismatched_signatures_rejected() {
        let _ = AlgoSet::new("bad", vec![Box::new(Tag(1)), Box::new(OtherPorts)]);
    }

    #[test]
    fn replicas_share_the_switch() {
        let set = AlgoSet::new("tag", vec![Box::new(Tag(1)), Box::new(Tag(2))]);
        let sw = set.switch();
        let replica = set.clone_replica().expect("replicable");
        // flipping the original's switch affects the replica (same Arc)
        sw.select(1);
        // verify by checking the replica is an AlgoSet on index 1: run it
        // indirectly through name (cheap structural check).
        assert_eq!(replica.name(), "algoset:tag");
        assert_eq!(sw.active(), 1);
    }

    #[test]
    fn name_includes_label() {
        let set = AlgoSet::new("search", vec![Box::new(Tag(0))]);
        assert_eq!(set.name(), "algoset:search");
    }
}
